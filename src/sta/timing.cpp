#include "sta/timing.hpp"

#include <algorithm>
#include <cassert>

namespace flh {

double gateDelayPs(const Netlist& nl, GateId g, const TimingOverlay& ov) {
    const Gate& gate = nl.gate(g);
    const Cell& cell = nl.library().cell(gate.cell);
    const double load = nl.netCapFf(gate.output) + ov.extraCap(gate.output);
    return cell.r_out_kohm * load + kIntrinsicStagePs + ov.gateAdder(g);
}

TimingResult runSta(const Netlist& nl, const TimingOverlay& ov) {
    return runSta(nl, ov, {});
}

TimingResult runSta(const Netlist& nl, const TimingOverlay& ov,
                    std::span<const double> gate_delay_factor) {
    const auto gd = [&](GateId g) {
        const double base = gateDelayPs(nl, g, ov);
        return gate_delay_factor.empty() ? base : base * gate_delay_factor[g];
    };

    TimingResult res;
    res.arrival_ps.assign(nl.netCount(), 0.0);
    res.required_ps.assign(nl.netCount(), 0.0);
    std::vector<NetId> pred(nl.netCount(), kInvalidId);
    std::vector<int> levels_from_source(nl.netCount(), 0);

    // --- sources ---------------------------------------------------------
    for (const NetId pi : nl.pis()) res.arrival_ps[pi] = ov.sourceSeries(pi);
    for (const GateId ff : nl.flipFlops()) {
        const Gate& gate = nl.gate(ff);
        const Cell& cell = nl.library().cell(gate.cell);
        const NetId q = gate.output;
        const double clk2q =
            cell.r_out_kohm * (nl.netCapFf(q) + ov.extraCap(q)) + kIntrinsicStagePs;
        res.arrival_ps[q] = clk2q + ov.sourceSeries(q);
    }

    // --- forward propagation ----------------------------------------------
    for (const GateId g : nl.topoOrder()) {
        const Gate& gate = nl.gate(g);
        double worst = 0.0;
        NetId worst_in = kInvalidId;
        for (const NetId in : gate.inputs) {
            if (res.arrival_ps[in] > worst || worst_in == kInvalidId) {
                worst = res.arrival_ps[in];
                worst_in = in;
            }
        }
        const NetId out = gate.output;
        res.arrival_ps[out] = worst + gd(g);
        pred[out] = worst_in;
        levels_from_source[out] = (worst_in == kInvalidId ? 0 : levels_from_source[worst_in]) + 1;
    }

    // --- endpoints ---------------------------------------------------------
    NetId worst_end = kInvalidId;
    const auto consider = [&](NetId n) {
        if (worst_end == kInvalidId || res.arrival_ps[n] > res.arrival_ps[worst_end])
            worst_end = n;
    };
    for (const NetId po : nl.pos()) consider(po);
    for (const GateId ff : nl.flipFlops()) consider(nl.gate(ff).inputs[0]);
    if (worst_end != kInvalidId) {
        res.critical_delay_ps = res.arrival_ps[worst_end];
        res.critical_levels = levels_from_source[worst_end];
        for (NetId n = worst_end; n != kInvalidId; n = pred[n]) res.critical_path.push_back(n);
        std::reverse(res.critical_path.begin(), res.critical_path.end());
    }

    // --- required times (backward) -----------------------------------------
    res.required_ps.assign(nl.netCount(), res.critical_delay_ps);
    const auto& topo = nl.topoOrder();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const Gate& gate = nl.gate(*it);
        const double req_at_inputs = res.required_ps[gate.output] - gd(*it);
        for (const NetId in : gate.inputs)
            res.required_ps[in] = std::min(res.required_ps[in], req_at_inputs);
    }
    return res;
}

} // namespace flh
