// Static timing analysis with load-dependent gate delays.
//
// Delay model: a gate driving net N contributes
//     d = r_out * (C(N) + extra_cap(N)) + p_intrinsic [+ adder]
// where C(N) is the receiver pin + wire + driver diffusion capacitance.
// This is the standard RC/logical-effort model; it is calibrated so an FO4
// inverter lands in the 70 nm ballpark (see cell tests).
//
// DFT hardware enters as a TimingOverlay, computed by the dft module:
//  * enhanced-scan / MUX holding elements add a series delay at the scan-FF
//    outputs (they sit in the stimulus path, paper Fig. 1a);
//  * FLH adds a per-gate delay adder on the supply-gated first-level gates
//    and keeper load on their output nets.
// The paper's Table II is the difference of runSta() results across
// overlays on the same netlist.
#pragma once

#include "netlist/netlist.hpp"

#include <span>
#include <unordered_map>
#include <vector>

namespace flh {

/// Timing side-effects of DFT hardware (all optional).
struct TimingOverlay {
    /// Extra capacitance on a net (fF): keeper input cap, latch input cap...
    std::unordered_map<NetId, double> extra_net_cap_ff;
    /// Series delay (ps) added where a source net launches into the logic
    /// (hold latch / MUX between the scan FF and the combinational block).
    std::unordered_map<NetId, double> source_series_ps;
    /// Fixed delay adder (ps) on a specific gate (FLH sleep-pair drive
    /// degradation on first-level gates).
    std::unordered_map<GateId, double> gate_delay_adder_ps;

    [[nodiscard]] double extraCap(NetId n) const noexcept {
        const auto it = extra_net_cap_ff.find(n);
        return it == extra_net_cap_ff.end() ? 0.0 : it->second;
    }
    [[nodiscard]] double sourceSeries(NetId n) const noexcept {
        const auto it = source_series_ps.find(n);
        return it == source_series_ps.end() ? 0.0 : it->second;
    }
    [[nodiscard]] double gateAdder(GateId g) const noexcept {
        const auto it = gate_delay_adder_ps.find(g);
        return it == gate_delay_adder_ps.end() ? 0.0 : it->second;
    }
};

struct TimingResult {
    double critical_delay_ps = 0.0;
    int critical_levels = 0;           ///< logic levels on the critical path
    std::vector<NetId> critical_path;  ///< source net ... endpoint net
    std::vector<double> arrival_ps;    ///< per net (kInvalid nets = 0)
    std::vector<double> required_ps;   ///< per net, w.r.t. critical delay
    [[nodiscard]] double slackPs(NetId n) const { return required_ps.at(n) - arrival_ps.at(n); }
};

/// Intrinsic per-stage delay floor (ps) added to every gate evaluation.
inline constexpr double kIntrinsicStagePs = 1.0;

/// Delay of one gate `g` driving its output under `ov` (ps).
[[nodiscard]] double gateDelayPs(const Netlist& nl, GateId g, const TimingOverlay& ov);

/// Full-netlist STA. Endpoints are POs and FF D pins; sources are PIs
/// (arrival 0) and FF Q nets (clk-to-q + any source series delay).
[[nodiscard]] TimingResult runSta(const Netlist& nl, const TimingOverlay& ov = {});

/// STA with a per-gate delay multiplier (indexed by GateId; empty = all 1).
/// Used by the process-variation Monte Carlo: each die sample scales every
/// gate's nominal delay by its sampled factor.
[[nodiscard]] TimingResult runSta(const Netlist& nl, const TimingOverlay& ov,
                                  std::span<const double> gate_delay_factor);

} // namespace flh
