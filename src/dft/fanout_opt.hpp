// Section V: local fanout reduction under a delay constraint.
//
// The paper's algorithm: identify scan flip-flops with high fanout, insert
// two cascaded inverters between the FF output and its fanout gates (never
// on the critical path), and re-synthesize the second inverter into the
// fanout cone where possible; "if a scan flip-flop already has an inverter
// connected to it, we do not need the second inverter". After the transform
// the FF's unique first-level gate is the single inserted inverter, so the
// FLH gating hardware shrinks from k gates to one, at the cost of the
// inverter pair — a win whenever k >= 2 and the displaced paths have slack.
//
// The optimizer only moves fanout pins whose downstream slack covers the
// added buffer delay, so the critical path is provably untouched
// ("maximum circuit delay is kept unaltered").
#pragma once

#include "cell/dft_cells.hpp"
#include "netlist/netlist.hpp"

#include <cstdint>
#include <vector>

namespace flh {

struct FanoutOptConfig {
    /// Only consider FFs whose unique first-level fanout is at least this.
    int min_fanout = 2;
    /// Slack safety margin (ps) kept on every displaced path.
    double slack_margin_ps = 2.0;
    /// FLH gating sizing (determines the per-gate saving the transform buys).
    FlhGatingSpec flh{};
};

struct FanoutOptResult {
    std::size_t ffs_optimized = 0;      ///< FFs whose fanout was rebuffered
    std::size_t inverters_added = 0;    ///< INV cells inserted
    std::size_t first_level_before = 0; ///< unique first-level gates before
    std::size_t first_level_after = 0;
    double delay_before_ps = 0.0; ///< base critical delay (must not change)
    double delay_after_ps = 0.0;
};

/// Apply the optimization in place. The netlist must be acyclic and checked;
/// it remains so afterwards.
FanoutOptResult optimizeFanout(Netlist& nl, const FanoutOptConfig& cfg = {});

} // namespace flh
