// Full-scan insertion.
//
// Every DFF is replaced by a scan DFF (SDFF: D, SI, SE) and the SI pins are
// stitched into a single chain: SCAN_IN -> FF[n-1] -> ... -> FF[0], whose Q
// is additionally exported as SCAN_OUT. The test-control input TC (the
// paper's only control signal; its complement is generated locally) is added
// as a primary input driving every SE pin.
//
// The paper assumes "full-scan implementation of the benchmarks"; all three
// holding styles (enhanced scan, MUX-hold, FLH) are layered on top of this
// common scan fabric, so its cost cancels out of every comparison.
#pragma once

#include "netlist/netlist.hpp"

#include <string>

namespace flh {

struct ScanInfo {
    NetId scan_in = kInvalidId;
    NetId scan_out = kInvalidId;
    NetId test_control = kInvalidId; ///< the paper's TC signal
    std::size_t chain_length = 0;
};

/// In-place full-scan insertion. Idempotent: calling on an already-scanned
/// netlist throws. Returns the created scan ports.
ScanInfo insertScan(Netlist& nl);

/// True if every flip-flop is already a scan flip-flop.
[[nodiscard]] bool isFullScan(const Netlist& nl);

} // namespace flh
