#include "dft/design.hpp"

#include "util/json.hpp"

#include <stdexcept>

namespace flh {

void DftEvaluation::writeJson(JsonWriter& w) const {
    w.beginObject();
    w.kv("style", toString(style));
    w.kv("base_area_um2", base_area_um2);
    w.kv("dft_area_um2", dft_area_um2);
    w.kv("area_increase_pct", area_increase_pct);
    w.kv("base_delay_ps", base_delay_ps);
    w.kv("delay_ps", delay_ps);
    w.kv("delay_increase_pct", delay_increase_pct);
    w.kv("base_power_uw", base_power_uw);
    w.kv("power_uw", power_uw);
    w.kv("power_increase_pct", power_increase_pct);
    w.endObject();
}

DftDesign planDft(const Netlist& nl, HoldStyle style, const DftSizing& sizing) {
    DftDesign d;
    d.style = style;
    d.sizing = sizing;
    if (style == HoldStyle::Flh) d.gated_gates = nl.uniqueFirstLevelGates();
    return d;
}

double driveUnits(const Netlist& nl, GateId g) {
    const Tech& t = nl.library().tech();
    return t.r_on_n_kohm / nl.library().cell(nl.gate(g).cell).r_out_kohm;
}

double flhGateAreaUm2(const Netlist& nl, GateId g, const FlhGatingSpec& spec) {
    return spec.areaUm2(nl.library().tech(), driveUnits(nl, g));
}

double dftAreaUm2(const Netlist& nl, const DftDesign& d) {
    const Tech& t = nl.library().tech();
    const double n_ffs = static_cast<double>(nl.flipFlops().size());
    switch (d.style) {
        case HoldStyle::None: return 0.0;
        case HoldStyle::EnhancedScan: return n_ffs * d.sizing.latch.areaUm2(t);
        case HoldStyle::MuxHold: return n_ffs * d.sizing.mux.areaUm2(t);
        case HoldStyle::Flh: {
            double area = 0.0;
            for (const GateId g : d.gated_gates) area += flhGateAreaUm2(nl, g, d.sizing.flh);
            return area;
        }
    }
    return 0.0;
}

TimingOverlay makeTimingOverlay(const Netlist& nl, const DftDesign& d) {
    const Tech& t = nl.library().tech();
    TimingOverlay ov;
    switch (d.style) {
        case HoldStyle::None:
            break;
        case HoldStyle::EnhancedScan:
            for (const GateId ff : nl.flipFlops()) {
                const NetId q = nl.gate(ff).output;
                ov.source_series_ps[q] = d.sizing.latch.seriesDelayPs(t, nl.netCapFf(q));
            }
            break;
        case HoldStyle::MuxHold:
            for (const GateId ff : nl.flipFlops()) {
                const NetId q = nl.gate(ff).output;
                ov.source_series_ps[q] = d.sizing.mux.seriesDelayPs(t, nl.netCapFf(q));
            }
            break;
        case HoldStyle::Flh:
            for (const GateId g : d.gated_gates) {
                const NetId out = nl.gate(g).output;
                const double r_out = nl.library().cell(nl.gate(g).cell).r_out_kohm;
                ov.extra_net_cap_ff[out] += d.sizing.flh.outputLoadFf(t);
                ov.gate_delay_adder_ps[g] =
                    d.sizing.flh.addedDelayPs(t, r_out, nl.netCapFf(out));
            }
            break;
    }
    return ov;
}

PowerOverlay makePowerOverlay(const Netlist& nl, const DftDesign& d) {
    const Tech& t = nl.library().tech();
    PowerOverlay ov;
    switch (d.style) {
        case HoldStyle::None:
            break;
        case HoldStyle::EnhancedScan:
            for (const GateId ff : nl.flipFlops()) {
                const NetId q = nl.gate(ff).output;
                // Transparent latch: its input cap and internal nodes switch
                // with every FF output toggle.
                ov.extra_switched_cap_ff[q] =
                    d.sizing.latch.inputCapFf(t) + d.sizing.latch.switchedCapFf(t);
            }
            ov.extra_leak_nw +=
                static_cast<double>(nl.flipFlops().size()) * d.sizing.latch.leakageNw(t);
            break;
        case HoldStyle::MuxHold:
            for (const GateId ff : nl.flipFlops()) {
                const NetId q = nl.gate(ff).output;
                ov.extra_switched_cap_ff[q] =
                    d.sizing.mux.inputCapFf(t) + d.sizing.mux.switchedCapFf(t);
            }
            ov.extra_leak_nw +=
                static_cast<double>(nl.flipFlops().size()) * d.sizing.mux.leakageNw(t);
            break;
        case HoldStyle::Flh:
            for (const GateId g : d.gated_gates) {
                const NetId out = nl.gate(g).output;
                // "The only source of power overhead is due to switching of
                // the minimum-sized inverters and the diffusion capacitance
                // added to the outputs of the first level gates" (Sec. III).
                ov.extra_net_cap_ff[out] += d.sizing.flh.outputLoadFf(t);
                ov.extra_switched_cap_ff[out] += d.sizing.flh.switchedCapFf(t);
                // ON sleep pair stacks with the gate: active leakage drops.
                ov.gate_leak_factor[g] = d.sizing.flh.activeLeakFactor(t);
                ov.extra_leak_nw += d.sizing.flh.addedLeakageNw(t);
            }
            break;
    }
    return ov;
}

DftEvaluation evaluateDft(const Netlist& nl, const DftDesign& d, const PowerConfig& power_cfg) {
    DftEvaluation e;
    e.style = d.style;

    e.base_area_um2 = nl.totalAreaUm2();
    e.dft_area_um2 = dftAreaUm2(nl, d);
    e.area_increase_pct = 100.0 * e.dft_area_um2 / e.base_area_um2;

    const TimingResult base_t = runSta(nl);
    const TimingResult with_t = runSta(nl, makeTimingOverlay(nl, d));
    e.base_delay_ps = base_t.critical_delay_ps;
    e.delay_ps = with_t.critical_delay_ps;
    e.delay_increase_pct = 100.0 * (e.delay_ps - e.base_delay_ps) / e.base_delay_ps;

    const PowerResult base_p = measureNormalPower(nl, {}, power_cfg);
    const PowerResult with_p = measureNormalPower(nl, makePowerOverlay(nl, d), power_cfg);
    e.base_power_uw = base_p.totalUw();
    e.power_uw = with_p.totalUw();
    e.power_increase_pct = 100.0 * (e.power_uw - e.base_power_uw) / e.base_power_uw;
    return e;
}

double overheadImprovementPct(double baseline_increase_pct, double flh_increase_pct) {
    if (baseline_increase_pct == 0.0) return 0.0;
    return 100.0 * (baseline_increase_pct - flh_increase_pct) / baseline_increase_pct;
}

} // namespace flh
