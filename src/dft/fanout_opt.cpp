#include "dft/fanout_opt.hpp"

#include "sta/timing.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace flh {

namespace {

/// Comb gates driven by `q`, with the pins each occupies.
std::unordered_map<GateId, std::vector<int>> combReceivers(const Netlist& nl, NetId q) {
    std::unordered_map<GateId, std::vector<int>> out;
    for (const PinRef& pr : nl.fanout(q)) {
        if (isSequential(nl.gate(pr.gate).fn)) continue; // scan-chain SI / FF D pins stay put
        out[pr.gate].push_back(pr.pin);
    }
    return out;
}

/// True if gate `g` has an input driven by any flip-flop other than `ff`.
bool fedByOtherFf(const Netlist& nl, GateId g, GateId ff) {
    for (const NetId in : nl.gate(g).inputs) {
        const GateId drv = nl.net(in).driver;
        if (drv != kInvalidId && drv != ff && isSequential(nl.gate(drv).fn)) return true;
    }
    return false;
}

/// An existing inverter whose (single) input is `q`, if any.
GateId findExistingInverter(const Netlist& nl, NetId q) {
    for (const PinRef& pr : nl.fanout(q))
        if (nl.gate(pr.gate).fn == CellFn::Inv) return pr.gate;
    return kInvalidId;
}

} // namespace

FanoutOptResult optimizeFanout(Netlist& nl, const FanoutOptConfig& cfg) {
    const Tech& t = nl.library().tech();
    const Library& lib = nl.library();
    const Cell& inv = lib.cell(lib.find(CellFn::Inv, 1));

    FanoutOptResult res;
    res.first_level_before = nl.uniqueFirstLevelGates().size();
    res.delay_before_ps = runSta(nl).critical_delay_ps;

    // Process FFs in descending comb-fanout order (the paper targets "scan
    // flip flops with higher fanouts" first).
    std::vector<GateId> ffs = nl.flipFlops();
    std::stable_sort(ffs.begin(), ffs.end(), [&](GateId a, GateId b) {
        return combReceivers(nl, nl.gate(a).output).size() >
               combReceivers(nl, nl.gate(b).output).size();
    });

    int name_seq = 0;
    for (const GateId ff : ffs) {
        const NetId q = nl.gate(ff).output;
        const auto receivers = combReceivers(nl, q);
        if (static_cast<int>(receivers.size()) < cfg.min_fanout) continue;

        const TimingResult sta = runSta(nl);
        const GateId reuse_inv = findExistingInverter(nl, q);

        // Estimate the rebuffer penalty: two inverter stages (or one if an
        // inverter is reused) in front of the displaced pins.
        double moved_load = 0.0;
        std::vector<std::pair<GateId, std::vector<int>>> candidates;
        for (const auto& [g, pins] : receivers) {
            if (g == reuse_inv) continue; // the reused inverter stays on q
            double pin_cap = 0.0;
            for (const int p : pins)
                pin_cap += lib.cell(nl.gate(g).cell).pinCapFf(t, p) + t.c_wire_ff_per_fanout;
            candidates.push_back({g, pins});
            moved_load += pin_cap;
        }
        // The displaced pins traverse two inverter stages either way; reusing
        // an existing inverter saves *area*, not delay (its output is not
        // where the moved pins used to hang).
        const double c_stage1 =
            (reuse_inv != kInvalidId
                 ? nl.netCapFf(nl.gate(reuse_inv).output) + inv.pinCapFf(t, 0) +
                       t.c_wire_ff_per_fanout
                 : inv.pinCapFf(t, 0) + inv.outputParasiticFf(t) + t.c_wire_ff_per_fanout);
        const double d_stage1 = inv.r_out_kohm * c_stage1 + kIntrinsicStagePs;
        const double d_stage2 =
            inv.r_out_kohm * (moved_load + inv.outputParasiticFf(t)) + kIntrinsicStagePs;
        const double penalty = d_stage1 + d_stage2 + cfg.slack_margin_ps;

        // Reusing an inverter loads its output with one more pin; paths
        // through its *other* fanouts must absorb that too.
        if (reuse_inv != kInvalidId) {
            const double extra = inv.r_out_kohm * (inv.pinCapFf(t, 0) + t.c_wire_ff_per_fanout);
            if (sta.slackPs(nl.gate(reuse_inv).output) < extra + cfg.slack_margin_ps) continue;
        }

        // Movable: every displaced path must absorb the penalty.
        std::vector<std::pair<GateId, std::vector<int>>> movable;
        std::size_t sole = 0; // gates first-level only because of this FF
        for (const auto& cand : candidates) {
            if (sta.slackPs(nl.gate(cand.first).output) < penalty) continue;
            movable.push_back(cand);
            if (!fedByOtherFf(nl, cand.first, ff)) ++sole;
        }
        if (movable.size() < 2 || sole == 0) continue;

        // If the new first-stage inverter loads q by more than the moved
        // pins unload it, the *remaining* paths through q slow down; they
        // must have the slack for it (slack(q) covers the worst of them).
        if (reuse_inv == kInvalidId) {
            double moved_caps = 0.0;
            for (const auto& [g, pins] : movable)
                for (const int p : pins)
                    moved_caps += lib.cell(nl.gate(g).cell).pinCapFf(t, p) + t.c_wire_ff_per_fanout;
            const double delta_q = inv.pinCapFf(t, 0) + t.c_wire_ff_per_fanout - moved_caps;
            if (delta_q > 0.0) {
                const GateId drv = nl.net(q).driver;
                const double r_drv = lib.cell(nl.gate(drv).cell).r_out_kohm;
                if (sta.slackPs(q) < r_drv * delta_q + cfg.slack_margin_ps) continue;
            }
        }

        // Area win: gating hardware saved vs inverters added.
        const int added_inv = reuse_inv != kInvalidId ? 1 : 2;
        const std::size_t new_first_level = reuse_inv != kInvalidId ? 0 : 1;
        const double saving = static_cast<double>(sole - (sole ? new_first_level : 0)) *
                                  cfg.flh.areaUm2(t) -
                              static_cast<double>(added_inv) * inv.areaUm2(t);
        if (saving <= 0.0) continue;

        // --- mutate -------------------------------------------------------
        NetId stage1_out;
        if (reuse_inv != kInvalidId) {
            stage1_out = nl.gate(reuse_inv).output;
        } else {
            stage1_out = nl.addNet("fopt_a" + std::to_string(name_seq));
            nl.addGate(CellFn::Inv, {q}, stage1_out);
        }
        const NetId stage2_out = nl.addNet("fopt_b" + std::to_string(name_seq));
        nl.addGate(CellFn::Inv, {stage1_out}, stage2_out);
        ++name_seq;
        for (const auto& [g, pins] : movable)
            for (const int p : pins) nl.rewireInput(g, p, stage2_out);

        res.inverters_added += static_cast<std::size_t>(added_inv);
        ++res.ffs_optimized;
    }

    nl.check();
    res.first_level_after = nl.uniqueFirstLevelGates().size();
    res.delay_after_ps = runSta(nl).critical_delay_ps;
    return res;
}

} // namespace flh
