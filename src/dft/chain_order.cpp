#include "dft/chain_order.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace flh {

std::uint64_t chainShiftTransitions(std::span<const Pattern> patterns,
                                    std::span<const std::size_t> order) {
    std::uint64_t transitions = 0;
    for (const Pattern& p : patterns) {
        for (std::size_t i = 0; i + 1 < order.size(); ++i) {
            const Logic a = p.state[order[i]];
            const Logic b = p.state[order[i + 1]];
            if (a != Logic::X && b != Logic::X && a != b) ++transitions;
        }
    }
    return transitions;
}

ChainOrderResult optimizeChainOrder(std::span<const Pattern> patterns, std::size_t n_ffs) {
    ChainOrderResult res;
    res.order.resize(n_ffs);
    std::iota(res.order.begin(), res.order.end(), 0);
    res.transitions_before = chainShiftTransitions(patterns, res.order);
    if (n_ffs < 3 || patterns.empty()) {
        res.transitions_after = res.transitions_before;
        return res;
    }

    // Pairwise Hamming distance between FF bit columns.
    const auto dist = [&](std::size_t a, std::size_t b) {
        std::size_t d = 0;
        for (const Pattern& p : patterns) {
            const Logic x = p.state[a];
            const Logic y = p.state[b];
            if (x != Logic::X && y != Logic::X && x != y) ++d;
        }
        return d;
    };

    // Nearest-neighbour walk starting from each of a few seeds; keep best.
    std::vector<std::size_t> best;
    std::uint64_t best_cost = std::numeric_limits<std::uint64_t>::max();
    const std::size_t n_seeds = std::min<std::size_t>(n_ffs, 4);
    for (std::size_t seed = 0; seed < n_seeds; ++seed) {
        std::vector<bool> used(n_ffs, false);
        std::vector<std::size_t> order;
        order.reserve(n_ffs);
        std::size_t cur = seed * (n_ffs / n_seeds);
        used[cur] = true;
        order.push_back(cur);
        while (order.size() < n_ffs) {
            std::size_t next = n_ffs;
            std::size_t next_d = std::numeric_limits<std::size_t>::max();
            for (std::size_t c = 0; c < n_ffs; ++c) {
                if (used[c]) continue;
                const std::size_t d = dist(cur, c);
                if (d < next_d) {
                    next_d = d;
                    next = c;
                }
            }
            used[next] = true;
            order.push_back(next);
            cur = next;
        }
        const std::uint64_t cost = chainShiftTransitions(patterns, order);
        if (cost < best_cost) {
            best_cost = cost;
            best = std::move(order);
        }
    }

    if (best_cost < res.transitions_before) {
        res.order = std::move(best);
        res.transitions_after = best_cost;
    } else {
        res.transitions_after = res.transitions_before;
    }
    return res;
}

} // namespace flh
