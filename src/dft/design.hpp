// DFT design: which holding hardware is attached where, and what it costs.
//
// This is the evaluation harness behind the paper's Tables I-III. A DftDesign
// never rewrites the logic netlist (none of the three schemes changes the
// logic function); it records the holding hardware placement and exposes the
// derived area, and the timing/power overlays consumed by the sta and power
// modules. Comparing evaluate() results across styles on the same scanned
// netlist reproduces the paper's "% increase" columns.
#pragma once

#include "cell/dft_cells.hpp"
#include "netlist/netlist.hpp"
#include "power/power.hpp"
#include "sim/sequential.hpp"
#include "sta/timing.hpp"

#include <vector>

namespace flh {

class JsonWriter;

/// Sizing knobs for all three schemes (defaults reproduce the paper setup).
struct DftSizing {
    HoldLatchSpec latch{};
    MuxHoldSpec mux{};
    FlhGatingSpec flh{};
};

/// A holding-hardware plan for one scanned netlist.
struct DftDesign {
    HoldStyle style = HoldStyle::None;
    DftSizing sizing{};
    /// FLH only: the supply-gated gates (the unique first-level gates, or
    /// the reduced set after fanout optimization).
    std::vector<GateId> gated_gates;
};

/// Build the design for a style: latch/MUX attach one element per scan FF;
/// FLH gates every unique first-level gate.
[[nodiscard]] DftDesign planDft(const Netlist& nl, HoldStyle style, const DftSizing& sizing = {});

/// Drive strength of a gate in units of a minimum NMOS (used to size its
/// proportional sleep pair).
[[nodiscard]] double driveUnits(const Netlist& nl, GateId g);

/// Area of the FLH gating hardware on one specific gate (um^2).
[[nodiscard]] double flhGateAreaUm2(const Netlist& nl, GateId g, const FlhGatingSpec& spec);

/// Active area added by the DFT hardware (um^2).
[[nodiscard]] double dftAreaUm2(const Netlist& nl, const DftDesign& d);

/// Timing overlay (series stimulus-path delay / gated-gate degradation).
[[nodiscard]] TimingOverlay makeTimingOverlay(const Netlist& nl, const DftDesign& d);

/// Power overlay (switched caps, leakage factors).
[[nodiscard]] PowerOverlay makePowerOverlay(const Netlist& nl, const DftDesign& d);

/// One style's evaluation, all relative numbers against the plain scanned
/// netlist (style None).
struct DftEvaluation {
    HoldStyle style = HoldStyle::None;
    double base_area_um2 = 0.0;
    double dft_area_um2 = 0.0;
    double area_increase_pct = 0.0;

    double base_delay_ps = 0.0;
    double delay_ps = 0.0;
    double delay_increase_pct = 0.0;

    double base_power_uw = 0.0;
    double power_uw = 0.0;
    double power_increase_pct = 0.0;

    /// Shared writeJson(JsonWriter&) convention (util/json.hpp): one
    /// object with the style name and every absolute/relative figure.
    void writeJson(JsonWriter& w) const;
};

/// Full area/delay/power evaluation of one style on a scanned netlist.
[[nodiscard]] DftEvaluation evaluateDft(const Netlist& nl, const DftDesign& d,
                                        const PowerConfig& power_cfg = {});

/// Paper-style improvement of FLH over a baseline, on *overhead* (e.g. the
/// "71% improvement in delay overhead"): (base_ovh - flh_ovh) / base_ovh.
[[nodiscard]] double overheadImprovementPct(double baseline_increase_pct,
                                            double flh_increase_pct);

} // namespace flh
