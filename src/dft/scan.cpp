#include "dft/scan.hpp"

#include <stdexcept>

namespace flh {

bool isFullScan(const Netlist& nl) {
    const auto& ffs = nl.flipFlops();
    if (ffs.empty()) return false;
    for (const GateId ff : ffs)
        if (nl.gate(ff).fn != CellFn::Sdff) return false;
    return true;
}

ScanInfo insertScan(Netlist& nl) {
    const auto ffs = nl.flipFlops();
    if (ffs.empty()) throw std::invalid_argument("insertScan: no flip-flops in " + nl.name());
    for (const GateId ff : ffs)
        if (nl.gate(ff).fn == CellFn::Sdff)
            throw std::invalid_argument("insertScan: netlist already scanned");

    ScanInfo info;
    info.test_control = nl.addPi("TC");
    info.scan_in = nl.addPi("SCAN_IN");
    info.chain_length = ffs.size();

    // Chain: SI of FF[i] is Q of FF[i+1]; SI of the last FF is SCAN_IN.
    for (std::size_t i = 0; i < ffs.size(); ++i) {
        const GateId ff = ffs[i];
        const NetId d = nl.gate(ff).inputs[0];
        const NetId si = (i + 1 < ffs.size()) ? nl.gate(ffs[i + 1]).output : info.scan_in;
        nl.replaceGate(ff, CellFn::Sdff, {d, si, info.test_control});
    }
    info.scan_out = nl.gate(ffs.front()).output;
    nl.markPo(info.scan_out);
    nl.check();
    return info;
}

} // namespace flh
