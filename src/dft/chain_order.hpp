// Scan-chain ordering for shift-power reduction.
//
// Under FLH the combinational block is silent during shifting (Section IV),
// but the scan-FF output wires still toggle with the moving stream — the
// one residual test-power term FLH does not remove (enhanced scan blocks it
// at the latch, at much higher normal-mode cost). The number of wire
// toggles is the number of adjacent-bit transitions in the serialized
// stream, which depends on the chain order: placing FFs whose pattern bits
// correlate next to each other smooths the stream.
//
// optimizeChainOrder runs a nearest-neighbour pass over the FF bit columns
// (Hamming distance), the classical greedy for this TSP-shaped problem.
#pragma once

#include "fault/fault_sim.hpp"

#include <cstdint>
#include <vector>

namespace flh {

/// Adjacent-bit transitions of the serialized shift streams for `patterns`
/// when the chain is ordered by `order` (order[i] = FF index at chain
/// position i). Each transition ripples down the whole chain, so relative
/// comparisons equal relative shift-wire energy.
[[nodiscard]] std::uint64_t chainShiftTransitions(std::span<const Pattern> patterns,
                                                  std::span<const std::size_t> order);

struct ChainOrderResult {
    std::vector<std::size_t> order; ///< FF index per chain position
    std::uint64_t transitions_before = 0; ///< identity order
    std::uint64_t transitions_after = 0;

    [[nodiscard]] double reductionPct() const noexcept {
        return transitions_before
                   ? 100.0 *
                         static_cast<double>(transitions_before - transitions_after) /
                         static_cast<double>(transitions_before)
                   : 0.0;
    }
};

/// Greedy chain reordering minimizing the serialized-stream transitions of
/// the given pattern set.
[[nodiscard]] ChainOrderResult optimizeChainOrder(std::span<const Pattern> patterns,
                                                  std::size_t n_ffs);

} // namespace flh
