#include "sim/sequential.hpp"

#include <cassert>
#include <stdexcept>

namespace flh {

const char* toString(HoldStyle s) noexcept {
    switch (s) {
        case HoldStyle::None: return "none";
        case HoldStyle::EnhancedScan: return "enhanced-scan";
        case HoldStyle::MuxHold: return "mux-hold";
        case HoldStyle::Flh: return "flh";
    }
    return "?";
}

SequentialSim::SequentialSim(const Netlist& nl, HoldStyle style)
    : sim_(nl), style_(style), ffs_(nl.flipFlops()), first_level_(nl.uniqueFirstLevelGates()) {
    state_.assign(ffs_.size(), PV::all(Logic::X));
}

void SequentialSim::setState(const std::vector<PV>& state) {
    if (state.size() != ffs_.size()) throw std::invalid_argument("state size mismatch");
    state_ = state;
    if (!holding_ || style_ == HoldStyle::None || style_ == HoldStyle::Flh) driveQ();
}

void SequentialSim::setPi(std::size_t index, PV v) {
    sim_.setNet(sim_.netlist().pis().at(index), v);
}

void SequentialSim::setPis(const std::vector<PV>& pis) {
    const auto& nets = sim_.netlist().pis();
    if (pis.size() != nets.size()) throw std::invalid_argument("pi count mismatch");
    for (std::size_t i = 0; i < pis.size(); ++i) sim_.setNet(nets[i], pis[i]);
}

void SequentialSim::driveQ() {
    const Netlist& nl = sim_.netlist();
    for (std::size_t i = 0; i < ffs_.size(); ++i) sim_.setNet(nl.gate(ffs_[i]).output, state_[i]);
}

void SequentialSim::settle() { sim_.propagate(); }

void SequentialSim::clock() {
    const Netlist& nl = sim_.netlist();
    settle();
    for (std::size_t i = 0; i < ffs_.size(); ++i) state_[i] = sim_.get(nl.gate(ffs_[i]).inputs[0]);
    driveQ();
    settle();
}

PV SequentialSim::shift(PV scan_in) {
    const PV out = state_.empty() ? PV::all(Logic::X) : state_.front();
    for (std::size_t i = 0; i + 1 < state_.size(); ++i) state_[i] = state_[i + 1];
    if (!state_.empty()) state_.back() = scan_in;

    switch (style_) {
        case HoldStyle::None:
            // Plain scan: the logic sees every intermediate shift state.
            driveQ();
            settle();
            break;
        case HoldStyle::EnhancedScan:
        case HoldStyle::MuxHold:
            // Hold latches / MUXes freeze the comb inputs: Q-side nets keep
            // the held snapshot, nothing to simulate.
            if (!holding_) {
                driveQ();
                settle();
            }
            break;
        case HoldStyle::Flh:
            // FF outputs toggle (their wire/pin energy is real) but the held
            // first-level gates stop all propagation.
            driveQ();
            settle();
            break;
    }
    return out;
}

void SequentialSim::setFlhGatedGates(std::vector<GateId> gates) {
    if (holding_) throw std::logic_error("cannot change gated set while holding");
    first_level_ = std::move(gates);
}

void SequentialSim::setHolding(bool holding) {
    if (holding == holding_) return;
    holding_ = holding;
    switch (style_) {
        case HoldStyle::None:
            break;
        case HoldStyle::EnhancedScan:
        case HoldStyle::MuxHold:
            if (!holding) {
                // Latches open: the current state becomes visible.
                driveQ();
                settle();
            }
            break;
        case HoldStyle::Flh:
            sim_.setHeldAll(first_level_, holding);
            if (!holding) settle();
            break;
    }
}

std::vector<PV> SequentialSim::observe() const {
    const Netlist& nl = sim_.netlist();
    std::vector<PV> out;
    out.reserve(nl.pos().size() + ffs_.size());
    for (const NetId po : nl.pos()) out.push_back(sim_.get(po));
    for (const GateId ff : ffs_) out.push_back(sim_.get(nl.gate(ff).inputs[0]));
    return out;
}

} // namespace flh
