// Word-packed levelized event-driven logic simulator: W x 64 patterns wide.
//
// PackedSim generalizes PatternSim's 64-slot PPSFP pass to W machine words
// per net (W in [1, kMaxPackedWords], i.e. up to 512 patterns per pass).
// Each net carries two planes of W words — value and unknown — stored
// plane-major per net ([net * W, net * W + W)), so a gate evaluation is W
// plane-wise bitwise ops handled by the runtime-dispatched SIMD kernel in
// cell/logic_block.hpp. Slots are addressed as (word, slot) pairs: pattern
// p lives in word p / 64, slot p % 64.
//
// The fault-simulation semantics mirror PatternSim exactly (same event
// scheduling, same single-fault injection with an event-frontier undo log,
// same Kleene formulas), which is what makes the packed engine bit-identical
// to the scalar oracle — enforced by tests/packed_sim_test.cpp and the
// flh_fuzz cross-engine differential checks. Gate holding (FLH supply
// gating) is deliberately not modelled here; scan-shift simulation stays on
// PatternSim.
//
// Toggle counting follows the fixed PatternSim semantics: flips are only
// counted while no fault is active, so faulty excursions never contaminate
// the power numbers built on totalToggles().
#pragma once

#include "cell/logic_block.hpp"
#include "sim/pattern_sim.hpp"

#include <cstdint>
#include <vector>

namespace flh {

class PackedSim {
public:
    /// `words` must be in [1, kMaxPackedWords]; throws std::invalid_argument
    /// otherwise, or if any combinational gate exceeds kMaxGateArity.
    PackedSim(const Netlist& nl, unsigned words);

    [[nodiscard]] const Netlist& netlist() const noexcept { return *nl_; }
    [[nodiscard]] unsigned words() const noexcept { return words_; }

    /// Reset every net to X in every word, clear fault state and toggles.
    void reset();

    /// Set one 64-slot word of a source net and schedule affected gates.
    void setNet(NetId net, unsigned word, PV value);

    [[nodiscard]] PV get(NetId net, unsigned word) const {
        const std::size_t base = planeIndex(net, word);
        return PV{v_[base], x_[base]};
    }

    /// Scalar value of one (word, slot) position.
    [[nodiscard]] Logic get(NetId net, unsigned word, unsigned slot) const {
        return get(net, word).get(slot);
    }

    /// Raw plane access for bulk observation (W words per net).
    [[nodiscard]] const std::uint64_t* valuePlane(NetId net) const {
        return &v_[planeIndex(net, 0)];
    }
    [[nodiscard]] const std::uint64_t* unknownPlane(NetId net) const {
        return &x_[planeIndex(net, 0)];
    }

    /// Propagate all pending events in level order; returns gate evaluations.
    std::size_t propagate();

    /// Schedule every combinational gate, then propagate.
    std::size_t evalAll();

    // ---- single-fault injection (PPSFP) ---------------------------------
    /// Same contract as PatternSim::injectFault: the stuck value applies to
    /// every slot of every word; inject from a quiescent state. While the
    /// fault is active, first-touch pre-fault planes are recorded so
    /// clearFault can restore the exact state without re-propagating.
    void injectFault(const FaultSite& f);
    void clearFault();

    /// Per-word detection diff against the pre-fault state: for every net
    /// touched since injectFault whose `is_obs[net]` flag is set, OR
    /// `(good_v ^ cur_v) & ~good_x & ~cur_x` into m[0..words()). The undo
    /// log already holds each touched net's fault-free planes (gradings
    /// start from a quiescent good state), and an untouched observation
    /// point cannot differ, so this is exactly the classical good-vs-faulty
    /// observation compare — but its cost scales with the fault cone, not
    /// with the number of observation points times words. Call between
    /// propagate() and clearFault(); `is_obs` needs netCount() entries; `m`
    /// (words() entries) is overwritten.
    void faultDiffOnto(const std::uint8_t* is_obs, std::uint64_t* m) const;

    // ---- toggle accounting ----------------------------------------------
    void enableToggleCount(bool on) { count_toggles_ = on; }
    void clearToggleCounts() { toggles_.assign(nl_->netCount(), 0); }
    [[nodiscard]] const std::vector<std::uint64_t>& toggleCounts() const noexcept {
        return toggles_;
    }
    [[nodiscard]] std::uint64_t totalToggles() const noexcept;

private:
    [[nodiscard]] std::size_t planeIndex(NetId net, unsigned word) const {
        return static_cast<std::size_t>(net) * words_ + word;
    }
    void schedule(GateId g);
    void scheduleFanout(NetId net);
    void applyValue(NetId net, const std::uint64_t* nv, const std::uint64_t* nx);
    void recordUndo(NetId net);

    const Netlist* nl_;
    unsigned words_;
    std::vector<std::uint64_t> v_; ///< value planes, netCount * words_
    std::vector<std::uint64_t> x_; ///< unknown planes, netCount * words_
    // Flattened event-scheduling structures, copied from the Netlist at
    // construction: the per-net fanout gate list as a CSR array and the
    // per-gate level, so the hot scheduling path never chases the Netlist's
    // per-net vectors. Sequential gates are born with scheduled_ = 1 and are
    // never queued, which removes the isSequential check from the per-event
    // path.
    std::vector<std::uint32_t> fan_off_;  ///< netCount + 1 offsets
    std::vector<GateId> fan_gate_;        ///< fanout gate ids, CSR payload
    std::vector<std::int32_t> level_of_;  ///< per-gate level
    // Flattened gate records (combinational evaluation only): function,
    // output net, and the input nets as a CSR array, so an evaluation reads
    // contiguous arrays instead of each Gate's heap-allocated inputs vector.
    std::vector<CellFn> gate_fn_;         ///< per gate
    std::vector<NetId> gate_out_;         ///< per gate
    std::vector<std::uint32_t> gin_off_;  ///< gateCount + 1 offsets
    std::vector<NetId> gin_net_;          ///< input nets, CSR payload
    std::vector<std::uint8_t> scheduled_;
    std::vector<std::vector<GateId>> queue_by_level_;
    int min_pending_level_ = 0;

    bool fault_active_ = false;
    FaultSite fault_{};
    /// Event-frontier undo log: `undo_nets_[k]`'s pre-fault planes live at
    /// [k * words_, (k + 1) * words_) in undo_v_ / undo_x_.
    std::vector<NetId> undo_nets_;
    std::vector<std::uint64_t> undo_v_;
    std::vector<std::uint64_t> undo_x_;
    std::vector<std::uint8_t> undo_mark_;

    bool count_toggles_ = false;
    std::vector<std::uint64_t> toggles_;
};

} // namespace flh
