// Sequential (clocked) simulation on top of PatternSim: normal-mode vector
// application and scan-chain operation with the paper's holding semantics.
//
// Scan shifting is where the three DFT styles differ (Section IV):
//  * None          — a plain scan FF drives the logic directly, so every
//                    shift cycle ripples through the combinational block
//                    (the redundant switching Gerstendorfer & Wunderlich
//                    quantify at ~78% of test energy);
//  * EnhancedScan  — the hold latches freeze the combinational inputs, so
//                    the block sees nothing during shifting;
//  * MuxHold       — same freezing, implemented at the MUX;
//  * Flh           — the FF outputs *do* toggle, but the supply-gated
//                    first-level gates hold their outputs, so nothing
//                    propagates past level 1.
#pragma once

#include "sim/pattern_sim.hpp"

#include <cstdint>
#include <vector>

namespace flh {

/// Which holding hardware the circuit carries (see header comment).
enum class HoldStyle : std::uint8_t { None, EnhancedScan, MuxHold, Flh };

[[nodiscard]] const char* toString(HoldStyle s) noexcept;

/// Clocked simulation driver. All 64 pattern slots advance in lockstep.
class SequentialSim {
public:
    explicit SequentialSim(const Netlist& nl, HoldStyle style = HoldStyle::None);

    [[nodiscard]] PatternSim& sim() noexcept { return sim_; }
    [[nodiscard]] const PatternSim& sim() const noexcept { return sim_; }
    [[nodiscard]] HoldStyle style() const noexcept { return style_; }
    [[nodiscard]] std::size_t ffCount() const noexcept { return ffs_.size(); }

    /// Current FF state (per FF, in scan-chain order).
    [[nodiscard]] const std::vector<PV>& state() const noexcept { return state_; }

    /// Force the FF state and drive it onto the Q nets.
    void setState(const std::vector<PV>& state);

    /// Set one primary input.
    void setPi(std::size_t index, PV v);
    void setPis(const std::vector<PV>& pis);

    /// Evaluate the combinational logic with current PIs/state.
    void settle();

    /// One functional clock: capture D into the FFs and drive Q nets.
    void clock();

    /// One scan-shift clock: state[i] <- state[i+1], last <- scan_in.
    /// Returns the bit shifted out (state[0] before the shift).
    /// Q-net visibility follows the hold style (see header comment).
    PV shift(PV scan_in);

    /// Restrict FLH holding to a subset of the first-level gates (partial
    /// FLH, the analog of partial enhanced scan). Only meaningful for
    /// HoldStyle::Flh; must not be called while holding.
    void setFlhGatedGates(std::vector<GateId> gates);

    /// Enter/leave the "hold" phase used during shifting:
    ///  * EnhancedScan/MuxHold: freeze (or release) the comb-side view of
    ///    the FF outputs;
    ///  * Flh: assert (or release) supply gating on the first-level gates;
    ///  * None: no effect.
    /// Releasing re-drives the current state and re-evaluates.
    void setHolding(bool holding);
    [[nodiscard]] bool holding() const noexcept { return holding_; }

    /// Observed response: PO values followed by FF D values (the capture
    /// view used to compare good/faulty machines).
    [[nodiscard]] std::vector<PV> observe() const;

private:
    void driveQ();

    PatternSim sim_;
    HoldStyle style_;
    std::vector<GateId> ffs_;
    std::vector<GateId> first_level_;
    std::vector<PV> state_;
    bool holding_ = false;
};

} // namespace flh
