#include "sim/pattern_sim.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>
#include <string>

namespace flh {

PatternSim::PatternSim(const Netlist& nl) : nl_(&nl) {
    // Hard arity check, not just the debug assert in propagate(): the hot
    // loop evaluates gates into a fixed kMaxGateArity-entry input buffer, so
    // a wider combinational gate would silently corrupt the stack in release
    // builds. Netlist::addGate rejects such gates too, but a Library built
    // directly (Library::add takes any cell) can still smuggle one in.
    for (GateId g = 0; g < nl.gateCount(); ++g) {
        const Gate& gate = nl.gate(g);
        if (!isSequential(gate.fn) && gate.inputs.size() > kMaxGateArity)
            throw std::invalid_argument(
                "PatternSim: gate '" + nl.net(gate.output).name + "' has arity " +
                std::to_string(gate.inputs.size()) + " > " + std::to_string(kMaxGateArity));
    }
    (void)nl_->topoOrder(); // force levelization (throws on comb loops)
    reset();
}

void PatternSim::reset() {
    values_.assign(nl_->netCount(), PV::all(Logic::X));
    held_.assign(nl_->gateCount(), 0);
    scheduled_.assign(nl_->gateCount(), 0);
    queue_by_level_.assign(static_cast<std::size_t>(nl_->logicDepth()) + 1, {});
    min_pending_level_ = 0;
    fault_active_ = false;
    fault_ = FaultSite{};
    undo_.clear();
    undo_mark_.assign(nl_->netCount(), 0);
    toggles_.assign(nl_->netCount(), 0);
}

void PatternSim::schedule(GateId g) {
    if (isSequential(nl_->gate(g).fn)) return;
    if (scheduled_[g]) return;
    scheduled_[g] = 1;
    const int lvl = nl_->levels()[g];
    queue_by_level_[static_cast<std::size_t>(lvl)].push_back(g);
    if (lvl < min_pending_level_) min_pending_level_ = lvl;
}

void PatternSim::scheduleFanout(NetId net) {
    for (const PinRef& pr : nl_->fanout(net)) schedule(pr.gate);
}

void PatternSim::applyValue(NetId net, PV value) {
    if (fault_active_ && !fault_.isPinFault() && fault_.net == net)
        value = PV::all(fault_.stuck_at_one ? Logic::One : Logic::Zero);
    PV& cur = values_[net];
    if (cur == value) return;
    if (fault_active_ && !undo_mark_[net]) {
        undo_mark_[net] = 1;
        undo_.push_back({net, cur});
    }
    // Toggle counting is suspended while a fault is active: the faulty
    // excursion's flips are rolled back by clearFault, so counting them (and
    // counting the rollback writes, which bypass applyValue) would
    // contaminate the power numbers derived from totalToggles().
    if (count_toggles_ && !fault_active_) {
        const std::uint64_t flips = (cur.v ^ value.v) & ~cur.x & ~value.x;
        toggles_[net] += static_cast<std::uint64_t>(std::popcount(flips));
    }
    cur = value;
    scheduleFanout(net);
}

void PatternSim::setNet(NetId net, PV value) { applyValue(net, value); }

std::size_t PatternSim::propagate() {
    std::size_t evals = 0;
    for (std::size_t lvl = static_cast<std::size_t>(std::max(min_pending_level_, 0));
         lvl < queue_by_level_.size(); ++lvl) {
        auto& q = queue_by_level_[lvl];
        // Gates scheduled during this pass land at strictly higher levels,
        // so draining level by level visits each gate at most once.
        for (std::size_t i = 0; i < q.size(); ++i) {
            const GateId g = q[i];
            scheduled_[g] = 0;
            if (held_[g]) continue;
            const Gate& gate = nl_->gate(g);
            PV ins[kMaxGateArity];
            assert(gate.inputs.size() <= kMaxGateArity); // enforced in ctor
            for (std::size_t p = 0; p < gate.inputs.size(); ++p) {
                PV v = values_[gate.inputs[p]];
                if (fault_active_ && fault_.isPinFault() && fault_.gate == g &&
                    fault_.pin == static_cast<int>(p))
                    v = PV::all(fault_.stuck_at_one ? Logic::One : Logic::Zero);
                ins[p] = v;
            }
            ++evals;
            applyValue(gate.output, evalCell(gate.fn, {ins, gate.inputs.size()}));
        }
        q.clear();
    }
    min_pending_level_ = static_cast<int>(queue_by_level_.size());
    return evals;
}

std::size_t PatternSim::evalAll() {
    for (const GateId g : nl_->topoOrder()) schedule(g);
    return propagate();
}

void PatternSim::setHeld(GateId gate, bool held) {
    held_.at(gate) = held ? 1 : 0;
    if (!held) schedule(gate); // re-evaluate with current inputs on release
}

void PatternSim::setHeldAll(const std::vector<GateId>& gates, bool held) {
    for (GateId g : gates) setHeld(g, held);
}

void PatternSim::injectFault(const FaultSite& f) {
    fault_active_ = true;
    fault_ = f;
    if (f.isPinFault()) {
        schedule(f.gate);
    } else {
        // Force the stuck value at the net right away; applyValue records
        // the good value in the undo log before overwriting it.
        applyValue(f.net, values_[f.net]); // applyValue overrides via fault
    }
}

void PatternSim::clearFault() {
    if (!fault_active_) return;
    fault_active_ = false;
    // Restore the recorded event frontier: only nets the faulty excursion
    // touched are written back, nothing is re-evaluated. Toggle counts need
    // no compensation: counting was suspended while the fault was active.
    for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
        values_[it->net] = it->value;
        undo_mark_[it->net] = 0;
    }
    undo_.clear();
}

void PatternSim::enableToggleCount(bool on) { count_toggles_ = on; }

void PatternSim::clearToggleCounts() { toggles_.assign(nl_->netCount(), 0); }

std::uint64_t PatternSim::totalToggles() const noexcept {
    std::uint64_t sum = 0;
    for (const std::uint64_t t : toggles_) sum += t;
    return sum;
}

} // namespace flh
