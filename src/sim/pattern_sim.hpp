// Levelized event-driven logic simulator, 64 patterns wide.
//
// The simulator evaluates 64 three-valued patterns per pass (PPSFP-style).
// It is the shared engine for:
//  * normal-mode power analysis (toggle counting over random vectors),
//  * parallel-pattern fault simulation (single-fault injection + event-driven
//    propagation from the fault site),
//  * scan-shift simulation with the paper's holding semantics (held gates
//    simply do not re-evaluate, exactly what FLH's supply gating does), and
//  * ATPG implication (one pattern per word, X-aware).
//
// Only gates whose inputs actually changed are re-evaluated, processed in
// level order, so a pass costs O(affected gates).
#pragma once

#include "cell/logic.hpp"
#include "netlist/netlist.hpp"

#include <cstdint>
#include <vector>

namespace flh {

/// A single stuck-at fault site: a net (output fault) or one gate input pin
/// (input fault). `pin < 0` means the fault is on the net itself.
struct FaultSite {
    NetId net = kInvalidId;
    GateId gate = kInvalidId; ///< receiving gate for pin faults
    int pin = -1;
    bool stuck_at_one = false;

    [[nodiscard]] bool isPinFault() const noexcept { return pin >= 0; }
    [[nodiscard]] bool operator==(const FaultSite&) const noexcept = default;
};

class PatternSim {
public:
    explicit PatternSim(const Netlist& nl);

    [[nodiscard]] const Netlist& netlist() const noexcept { return *nl_; }

    /// Reset every net to X, clear holds/faults/toggle counts.
    void reset();

    /// Set a source net (PI or FF output) and schedule affected gates.
    /// Setting an internal net is allowed (used for fault injection tests)
    /// but will be overwritten by its driver on the next propagate unless
    /// the driver is held.
    void setNet(NetId net, PV value);

    [[nodiscard]] PV get(NetId net) const { return values_.at(net); }

    /// Propagate all pending events in level order. Returns the number of
    /// gate evaluations performed.
    std::size_t propagate();

    /// Full evaluation: schedule every combinational gate, then propagate.
    std::size_t evalAll();

    // ---- holding (FLH supply gating / enhanced-scan freeze) -------------
    /// A held gate keeps its current output: it is never re-evaluated while
    /// held. This is the simulator-level model of a supply-gated first-level
    /// gate whose keeper retains the output state.
    void setHeld(GateId gate, bool held);
    void setHeldAll(const std::vector<GateId>& gates, bool held);
    [[nodiscard]] bool isHeld(GateId gate) const { return held_.at(gate) != 0; }

    // ---- single-fault injection (PPSFP) ---------------------------------
    /// Activate a stuck-at fault for subsequent propagation. The fault
    /// applies to all 64 pattern slots. While a fault is active every net
    /// change is recorded in an undo log (at most one entry per net), so
    /// clearFault can restore the pre-fault state without re-propagating.
    /// Inject from a quiescent (fully propagated) state.
    void injectFault(const FaultSite& f);

    /// Deactivate the fault and roll the simulator back to the exact state
    /// it had when injectFault was called, by restoring the recorded event
    /// frontier — only the nets the faulty excursion actually touched are
    /// written; nothing is re-evaluated. setNet calls made while the fault
    /// was active are rolled back too; sessions that keep a fault active
    /// permanently (BIST, PODEM) discard the log via reset() instead.
    void clearFault();

    // ---- toggle accounting ----------------------------------------------
    /// When enabled, every known-value bit flip on a net is counted
    /// (per-net, summed over pattern slots). Counting is suspended while a
    /// fault is active, so PPSFP fault grading leaves toggle counts exactly
    /// as a fault-free run of the same patterns would.
    void enableToggleCount(bool on);
    void clearToggleCounts();
    [[nodiscard]] const std::vector<std::uint64_t>& toggleCounts() const noexcept {
        return toggles_;
    }
    [[nodiscard]] std::uint64_t totalToggles() const noexcept;

private:
    void schedule(GateId g);
    void scheduleFanout(NetId net);
    void applyValue(NetId net, PV value);
    [[nodiscard]] PV faultyInputValue(GateId g, int pin, PV v) const noexcept;

    const Netlist* nl_;
    std::vector<PV> values_;
    std::vector<std::uint8_t> held_;
    std::vector<std::uint8_t> scheduled_;
    std::vector<std::vector<GateId>> queue_by_level_; ///< index: level
    int min_pending_level_ = 0;

    bool fault_active_ = false;
    FaultSite fault_{};
    /// Event-frontier undo log: pre-fault value of every net the faulty
    /// excursion touched, recorded on first change. clearFault restores
    /// these directly instead of re-propagating the good cone.
    struct FaultUndo {
        NetId net;
        PV value;
    };
    std::vector<FaultUndo> undo_;
    std::vector<std::uint8_t> undo_mark_; ///< per net: already in undo_

    bool count_toggles_ = false;
    std::vector<std::uint64_t> toggles_;
};

} // namespace flh
