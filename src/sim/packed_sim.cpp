#include "sim/packed_sim.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>
#include <string>

namespace flh {

PackedSim::PackedSim(const Netlist& nl, unsigned words) : nl_(&nl), words_(words) {
    if (words < 1 || words > kMaxPackedWords)
        throw std::invalid_argument("PackedSim: words must be in [1, " +
                                    std::to_string(kMaxPackedWords) + "], got " +
                                    std::to_string(words));
    // Hard arity check (not an assert): the propagate hot loop gathers
    // input planes into fixed kMaxGateArity-sized buffers.
    for (GateId g = 0; g < nl.gateCount(); ++g) {
        const Gate& gate = nl.gate(g);
        if (!isSequential(gate.fn) && gate.inputs.size() > kMaxGateArity)
            throw std::invalid_argument(
                "PackedSim: gate '" + nl.net(gate.output).name + "' has arity " +
                std::to_string(gate.inputs.size()) + " > " + std::to_string(kMaxGateArity));
    }
    (void)nl_->topoOrder(); // force levelization (throws on comb loops)
    fan_off_.assign(nl.netCount() + 1, 0);
    for (NetId n = 0; n < nl.netCount(); ++n)
        fan_off_[n + 1] =
            fan_off_[n] + static_cast<std::uint32_t>(nl.fanout(n).size());
    fan_gate_.reserve(fan_off_.back());
    for (NetId n = 0; n < nl.netCount(); ++n)
        for (const PinRef& pr : nl.fanout(n)) fan_gate_.push_back(pr.gate);
    level_of_.assign(nl.gateCount(), 0);
    for (GateId g = 0; g < nl.gateCount(); ++g) level_of_[g] = nl.levels()[g];
    gate_fn_.resize(nl.gateCount());
    gate_out_.resize(nl.gateCount());
    gin_off_.assign(nl.gateCount() + 1, 0);
    for (GateId g = 0; g < nl.gateCount(); ++g) {
        const Gate& gate = nl.gate(g);
        gate_fn_[g] = gate.fn;
        gate_out_[g] = gate.output;
        gin_off_[g + 1] = gin_off_[g] + static_cast<std::uint32_t>(gate.inputs.size());
    }
    gin_net_.reserve(gin_off_.back());
    for (GateId g = 0; g < nl.gateCount(); ++g)
        for (const NetId in : nl.gate(g).inputs) gin_net_.push_back(in);
    reset();
}

void PackedSim::reset() {
    const std::size_t planes = nl_->netCount() * static_cast<std::size_t>(words_);
    v_.assign(planes, 0);
    x_.assign(planes, ~0ULL);
    // Sequential gates look permanently scheduled so schedule() skips them
    // without touching the gate record.
    scheduled_.assign(nl_->gateCount(), 0);
    for (GateId g = 0; g < nl_->gateCount(); ++g)
        if (isSequential(nl_->gate(g).fn)) scheduled_[g] = 1;
    queue_by_level_.assign(static_cast<std::size_t>(nl_->logicDepth()) + 1, {});
    min_pending_level_ = 0;
    fault_active_ = false;
    fault_ = FaultSite{};
    undo_nets_.clear();
    undo_v_.clear();
    undo_x_.clear();
    undo_mark_.assign(nl_->netCount(), 0);
    toggles_.assign(nl_->netCount(), 0);
}

void PackedSim::schedule(GateId g) {
    if (scheduled_[g]) return; // sequential gates are born scheduled
    scheduled_[g] = 1;
    const int lvl = level_of_[g];
    queue_by_level_[static_cast<std::size_t>(lvl)].push_back(g);
    if (lvl < min_pending_level_) min_pending_level_ = lvl;
}

void PackedSim::scheduleFanout(NetId net) {
    const std::uint32_t lo = fan_off_[net];
    const std::uint32_t hi = fan_off_[net + 1];
    for (std::uint32_t i = lo; i < hi; ++i) schedule(fan_gate_[i]);
}

void PackedSim::recordUndo(NetId net) {
    if (undo_mark_[net]) return;
    undo_mark_[net] = 1;
    undo_nets_.push_back(net);
    const std::size_t base = planeIndex(net, 0);
    undo_v_.insert(undo_v_.end(), v_.begin() + static_cast<std::ptrdiff_t>(base),
                   v_.begin() + static_cast<std::ptrdiff_t>(base + words_));
    undo_x_.insert(undo_x_.end(), x_.begin() + static_cast<std::ptrdiff_t>(base),
                   x_.begin() + static_cast<std::ptrdiff_t>(base + words_));
}

void PackedSim::applyValue(NetId net, const std::uint64_t* nv, const std::uint64_t* nx) {
    static constexpr std::uint64_t kZeroPlane[kMaxPackedWords] = {};
    const std::uint64_t stuck_v = fault_.stuck_at_one ? ~0ULL : 0;
    std::uint64_t forced_v[kMaxPackedWords];
    if (fault_active_ && !fault_.isPinFault() && fault_.net == net) {
        for (unsigned w = 0; w < words_; ++w) forced_v[w] = stuck_v;
        nv = forced_v;
        nx = kZeroPlane; // stuck value is fully known: x plane = 0
    }
    const std::size_t base = planeIndex(net, 0);
    std::uint64_t* cv = &v_[base];
    std::uint64_t* cx = &x_[base];
    std::uint64_t delta = 0;
    for (unsigned w = 0; w < words_; ++w) delta |= (cv[w] ^ nv[w]) | (cx[w] ^ nx[w]);
    if (!delta) return;
    if (fault_active_) recordUndo(net);
    // Toggle counting is suspended while a fault is active: the faulty
    // excursion's flips (and their rollback) must not contaminate the
    // power numbers derived from totalToggles().
    if (count_toggles_ && !fault_active_) {
        std::uint64_t flips = 0;
        for (unsigned w = 0; w < words_; ++w)
            flips += static_cast<std::uint64_t>(
                std::popcount((cv[w] ^ nv[w]) & ~cx[w] & ~nx[w]));
        toggles_[net] += flips;
    }
    for (unsigned w = 0; w < words_; ++w) {
        cv[w] = nv[w];
        cx[w] = nx[w];
    }
    scheduleFanout(net);
}

void PackedSim::setNet(NetId net, unsigned word, PV value) {
    if (word >= words_) throw std::out_of_range("PackedSim::setNet: word out of range");
    // Route through applyValue so net-fault overrides, undo logging, and
    // toggle accounting all behave exactly like a full-width write.
    std::uint64_t nv[kMaxPackedWords];
    std::uint64_t nx[kMaxPackedWords];
    const std::size_t base = planeIndex(net, 0);
    std::memcpy(nv, &v_[base], words_ * sizeof(std::uint64_t));
    std::memcpy(nx, &x_[base], words_ * sizeof(std::uint64_t));
    nv[word] = value.v;
    nx[word] = value.x;
    applyValue(net, nv, nx);
}

std::size_t PackedSim::propagate() {
    std::size_t evals = 0;
    const unsigned W = words_;
    // Resolve the SIMD kernel once per pass; per-gate dispatch through the
    // table is measurable at fault-cone sizes (a few gates per grading).
    const BlockKernelFn kernel = activeBlockKernel();
    const std::uint64_t* in_v[kMaxGateArity];
    const std::uint64_t* in_x[kMaxGateArity];
    std::uint64_t out_v[kMaxPackedWords];
    std::uint64_t out_x[kMaxPackedWords];
    std::uint64_t pin_v[kMaxPackedWords];
    std::uint64_t pin_x[kMaxPackedWords];
    for (std::size_t lvl = static_cast<std::size_t>(std::max(min_pending_level_, 0));
         lvl < queue_by_level_.size(); ++lvl) {
        auto& q = queue_by_level_[lvl];
        // Gates scheduled during this pass land at strictly higher levels,
        // so draining level by level visits each gate at most once.
        for (std::size_t i = 0; i < q.size(); ++i) {
            const GateId g = q[i];
            scheduled_[g] = 0;
            const std::uint32_t in_lo = gin_off_[g];
            const std::size_t arity = gin_off_[g + 1] - in_lo;
            for (std::size_t p = 0; p < arity; ++p) {
                const std::size_t base = planeIndex(gin_net_[in_lo + p], 0);
                in_v[p] = &v_[base];
                in_x[p] = &x_[base];
            }
            if (fault_active_ && fault_.isPinFault() && fault_.gate == g) {
                const std::uint64_t stuck_v = fault_.stuck_at_one ? ~0ULL : 0;
                for (unsigned w = 0; w < W; ++w) {
                    pin_v[w] = stuck_v;
                    pin_x[w] = 0;
                }
                in_v[static_cast<std::size_t>(fault_.pin)] = pin_v;
                in_x[static_cast<std::size_t>(fault_.pin)] = pin_x;
            }
            ++evals;
            kernel(gate_fn_[g], in_v, in_x, arity, out_v, out_x, W);
            applyValue(gate_out_[g], out_v, out_x);
        }
        q.clear();
    }
    min_pending_level_ = static_cast<int>(queue_by_level_.size());
    return evals;
}

std::size_t PackedSim::evalAll() {
    for (const GateId g : nl_->topoOrder()) schedule(g);
    return propagate();
}

void PackedSim::injectFault(const FaultSite& f) {
    fault_active_ = true;
    fault_ = f;
    if (f.isPinFault()) {
        schedule(f.gate);
    } else {
        // Force the stuck value at the net right away; applyValue records
        // the good planes in the undo log before overwriting them.
        const std::size_t base = planeIndex(f.net, 0);
        applyValue(f.net, &v_[base], &x_[base]); // overridden via the fault
    }
}

void PackedSim::faultDiffOnto(const std::uint8_t* is_obs, std::uint64_t* m) const {
    const unsigned W = words_;
    for (unsigned w = 0; w < W; ++w) m[w] = 0;
    for (std::size_t k = 0; k < undo_nets_.size(); ++k) {
        const NetId net = undo_nets_[k];
        if (!is_obs[net]) continue;
        const std::uint64_t* gv = &undo_v_[k * W];
        const std::uint64_t* gx = &undo_x_[k * W];
        const std::uint64_t* fv = &v_[planeIndex(net, 0)];
        const std::uint64_t* fx = &x_[planeIndex(net, 0)];
        for (unsigned w = 0; w < W; ++w) m[w] |= (gv[w] ^ fv[w]) & ~gx[w] & ~fx[w];
    }
}

void PackedSim::clearFault() {
    if (!fault_active_) return;
    fault_active_ = false;
    for (std::size_t k = undo_nets_.size(); k-- > 0;) {
        const NetId net = undo_nets_[k];
        const std::size_t src = k * words_;
        const std::size_t dst = planeIndex(net, 0);
        std::memcpy(&v_[dst], &undo_v_[src], words_ * sizeof(std::uint64_t));
        std::memcpy(&x_[dst], &undo_x_[src], words_ * sizeof(std::uint64_t));
        undo_mark_[net] = 0;
    }
    undo_nets_.clear();
    undo_v_.clear();
    undo_x_.clear();
}

std::uint64_t PackedSim::totalToggles() const noexcept {
    std::uint64_t sum = 0;
    for (const std::uint64_t t : toggles_) sum += t;
    return sum;
}

} // namespace flh
