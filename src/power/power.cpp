#include "power/power.hpp"

#include "util/rng.hpp"

#include <algorithm>
#include <cassert>

namespace flh {

namespace {

// Energy of one rail-to-rail toggle of capacitance c_ff (femtojoules).
double toggleEnergyFj(const Tech& t, double c_ff) { return 0.5 * c_ff * t.vdd * t.vdd; }

// Convert accumulated energy (fJ) over n_cycles at Tech::freq_mhz to uW.
double energyToUw(const Tech& t, double energy_fj, double n_cycles) {
    if (n_cycles <= 0.0) return 0.0;
    const double t_total_s = n_cycles / (t.freq_mhz * 1e6);
    return energy_fj * 1e-15 / t_total_s * 1e6;
}

std::vector<PV> randomPv(std::size_t n, Rng& rng) {
    std::vector<PV> v(n);
    for (PV& p : v) p = PV{rng.next(), 0};
    return v;
}

// 64-bit mask with each bit set independently with probability p.
std::uint64_t bernoulliMask(Rng& rng, double p) {
    if (p >= 1.0) return ~0ULL;
    if (p <= 0.0) return 0;
    std::uint64_t m = 0;
    for (int i = 0; i < 64; ++i)
        if (rng.chance(p)) m |= 1ULL << i;
    return m;
}

} // namespace

PowerResult measureNormalPower(const Netlist& nl, const PowerOverlay& ov,
                               const PowerConfig& cfg) {
    const Tech& t = nl.library().tech();
    const Library& lib = nl.library();
    Rng rng(cfg.seed);

    SequentialSim seq(nl);
    std::vector<PV> state = randomPv(nl.flipFlops().size(), rng);
    std::vector<PV> pis = randomPv(nl.pis().size(), rng);
    seq.setState(state);
    seq.setPis(pis);
    seq.settle();

    PatternSim& sim = seq.sim();
    sim.enableToggleCount(true);
    sim.clearToggleCounts();

    // Each pattern slot carries an independent random sequence, so one
    // simulated vector yields 64 sampled vectors. PI bits toggle with
    // pi_toggle_prob; FFs hold with ff_hold_prob (enable-gated registers).
    for (int v = 0; v < cfg.n_vectors; ++v) {
        for (PV& p : pis) p.v ^= bernoulliMask(rng, cfg.pi_toggle_prob);
        seq.setPis(pis);
        seq.settle();
        std::vector<PV> next = state;
        const auto& ffs = nl.flipFlops();
        for (std::size_t i = 0; i < ffs.size(); ++i) {
            const PV d = sim.get(nl.gate(ffs[i]).inputs[0]);
            const std::uint64_t hold = bernoulliMask(rng, cfg.ff_hold_prob);
            next[i] = PV{(state[i].v & hold) | (d.v & ~hold),
                         (state[i].x & hold) | (d.x & ~hold)};
        }
        state = std::move(next);
        seq.setState(state);
        seq.settle();
    }

    const double sampled_cycles = static_cast<double>(cfg.n_vectors) * 64.0;

    PowerResult res;
    double energy_fj = 0.0;
    const auto& toggles = sim.toggleCounts();
    for (NetId n = 0; n < nl.netCount(); ++n) {
        if (toggles[n] == 0) continue;
        res.toggles += toggles[n];
        double cap = nl.netCapFf(n) + ov.extraCap(n) + ov.extraSwitched(n);
        // The driving cell's internal nodes switch with its output.
        if (const GateId drv = nl.net(n).driver; drv != kInvalidId)
            cap += lib.cell(nl.gate(drv).cell).c_internal_ff;
        energy_fj += static_cast<double>(toggles[n]) * toggleEnergyFj(t, cap);
    }
    res.switching_uw = energyToUw(t, energy_fj, sampled_cycles);

    // Clock power: every FF's internal clock nodes switch twice per cycle.
    double clk_energy_per_cycle_fj = 0.0;
    for (const GateId ff : nl.flipFlops())
        clk_energy_per_cycle_fj += toggleEnergyFj(t, lib.cell(nl.gate(ff).cell).c_internal_ff);
    res.clocking_uw = energyToUw(t, clk_energy_per_cycle_fj * sampled_cycles, sampled_cycles);

    // Leakage. The sleep-pair stacking saving applies to *idle* gates
    // ("active leakage reduction for the idle gates", Section III): a gate
    // that switches every cycle spends its time conducting, not stacked off,
    // so the saving is weighted by the gate's measured idleness.
    double leak_nw = ov.extra_leak_nw;
    for (GateId g = 0; g < nl.gateCount(); ++g) {
        const double f = ov.leakFactor(g);
        double eff = f;
        if (f < 1.0) {
            const double activity =
                std::min(1.0, static_cast<double>(toggles[nl.gate(g).output]) / sampled_cycles);
            eff = 1.0 - (1.0 - f) * (1.0 - activity);
        }
        leak_nw += lib.cell(nl.gate(g).cell).leakageNw(t) * eff;
    }
    res.leakage_uw = leak_nw * 1e-3;
    return res;
}

ScanShiftPowerResult measureScanShiftPower(const Netlist& nl, HoldStyle style, int n_patterns,
                                           std::uint64_t seed) {
    const Tech& t = nl.library().tech();
    Rng rng(seed);

    SequentialSim seq(nl, style);
    seq.setState(randomPv(nl.flipFlops().size(), rng));
    seq.setPis(randomPv(nl.pis().size(), rng));
    seq.settle();

    PatternSim& sim = seq.sim();
    sim.enableToggleCount(true);
    sim.clearToggleCounts();

    const std::size_t chain = nl.flipFlops().size();
    seq.setHolding(true);
    for (int p = 0; p < n_patterns; ++p)
        for (std::size_t i = 0; i < chain; ++i) seq.shift(PV{rng.next(), 0});
    // Stop counting before release: the single apply-pattern edge after a
    // load is functional activity, not shift activity.
    sim.enableToggleCount(false);
    seq.setHolding(false);

    const double shift_cycles = static_cast<double>(n_patterns) * static_cast<double>(chain) * 64.0;

    ScanShiftPowerResult res;
    double comb_fj = 0.0;
    double ffq_fj = 0.0;
    const auto& toggles = sim.toggleCounts();
    std::vector<bool> is_ffq(nl.netCount(), false);
    for (const GateId ff : nl.flipFlops()) is_ffq[nl.gate(ff).output] = true;
    for (NetId n = 0; n < nl.netCount(); ++n) {
        if (toggles[n] == 0) continue;
        const double e = static_cast<double>(toggles[n]) * toggleEnergyFj(t, nl.netCapFf(n));
        if (is_ffq[n]) {
            ffq_fj += e;
        } else {
            comb_fj += e;
            res.comb_toggles += toggles[n];
        }
    }
    res.comb_switching_uw = energyToUw(t, comb_fj, shift_cycles);
    res.ffq_switching_uw = energyToUw(t, ffq_fj, shift_cycles);
    return res;
}

} // namespace flh
