// Power analysis: switching (dynamic), internal, and leakage power.
//
// Mirrors the paper's measurement protocol (Section III): "Power is measured
// in NanoSim by applying 100 random vectors to the inputs" — here, a seeded
// sequential simulation of N random primary-input vectors at Tech::freq_mhz,
// with per-net toggle counting. Components:
//  * net switching:      sum over nets of toggles * 1/2 C V^2 / T
//  * cell internal:      per output toggle, the cell's internal switched cap
//  * clocking:           every FF switches its internal clock nodes each cycle
//  * leakage:            per-cell subthreshold leakage, with per-gate factors
//                        (FLH's ON sleep pair reduces first-level gate leakage
//                        by the active stacking factor)
// DFT hardware contributes through a PowerOverlay built by the dft module.
#pragma once

#include "netlist/netlist.hpp"
#include "sim/sequential.hpp"

#include <cstdint>
#include <unordered_map>

namespace flh {

/// Power side-effects of DFT hardware.
struct PowerOverlay {
    /// Extra capacitance physically attached to a net (fF) — switches
    /// whenever the net toggles (keeper input cap, latch/MUX input cap).
    std::unordered_map<NetId, double> extra_net_cap_ff;
    /// Extra *internal* capacitance switched per toggle of a net (fF) —
    /// internal nodes of a holding element driven by this net.
    std::unordered_map<NetId, double> extra_switched_cap_ff;
    /// Leakage multiplier per gate (< 1 for FLH-gated gates in normal mode).
    std::unordered_map<GateId, double> gate_leak_factor;
    /// Flat extra leakage of added DFT devices (nW).
    double extra_leak_nw = 0.0;

    [[nodiscard]] double extraCap(NetId n) const noexcept {
        const auto it = extra_net_cap_ff.find(n);
        return it == extra_net_cap_ff.end() ? 0.0 : it->second;
    }
    [[nodiscard]] double extraSwitched(NetId n) const noexcept {
        const auto it = extra_switched_cap_ff.find(n);
        return it == extra_switched_cap_ff.end() ? 0.0 : it->second;
    }
    [[nodiscard]] double leakFactor(GateId g) const noexcept {
        const auto it = gate_leak_factor.find(g);
        return it == gate_leak_factor.end() ? 1.0 : it->second;
    }
};

struct PowerResult {
    double switching_uw = 0.0; ///< net + internal switched capacitance
    double clocking_uw = 0.0;  ///< FF clock-node power (style-independent)
    double leakage_uw = 0.0;
    std::uint64_t toggles = 0; ///< total counted net toggles

    [[nodiscard]] double totalUw() const noexcept {
        return switching_uw + clocking_uw + leakage_uw;
    }

    /// Combinational-block power: what the paper's NanoSim columns measure
    /// (Table IV is headed "Combinational power"). Clock-tree/FF-internal
    /// power is identical across holding styles and excluded.
    [[nodiscard]] double logicUw() const noexcept { return switching_uw + leakage_uw; }
};

struct PowerConfig {
    int n_vectors = 100;       ///< the paper's 100 random vectors
    std::uint64_t seed = 1234; ///< vector/initial-state seed

    /// Per-cycle toggle probability of each primary input bit. Random
    /// vectors with full 0.5 activity overstate real workloads; 0.3 is a
    /// typical datapath input rate.
    double pi_toggle_prob = 0.3;

    /// Per-cycle probability that a flip-flop holds its value instead of
    /// capturing (models the enable-gated / hold registers that dominate
    /// large designs — the "many idle first level gates" of Section III).
    double ff_hold_prob = 0.0;
};

/// Normal-mode power: sequential simulation of random vectors.
[[nodiscard]] PowerResult measureNormalPower(const Netlist& nl, const PowerOverlay& ov = {},
                                             const PowerConfig& cfg = {});

/// Test-mode (scan-shift) power: energy dissipated in the combinational
/// block while a full pattern is shifted in, per the given hold style.
/// Returns the power averaged over `n_patterns` pattern loads.
struct ScanShiftPowerResult {
    double comb_switching_uw = 0.0; ///< redundant switching inside the logic
    double ffq_switching_uw = 0.0;  ///< scan-FF output / first-level input wires
    std::uint64_t comb_toggles = 0;
};
[[nodiscard]] ScanShiftPowerResult measureScanShiftPower(const Netlist& nl, HoldStyle style,
                                                         int n_patterns = 10,
                                                         std::uint64_t seed = 99);

} // namespace flh
