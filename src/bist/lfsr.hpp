// LFSR pattern generation and MISR response compaction for BIST.
//
// Section IV: "The proposed technique can be easily applied to scan-based
// test-per-scan BIST circuits. A circuit designed with BIST has weighted
// random pattern generator and output response analyzer built into the
// circuit." This module provides both halves:
//  * Lfsr      — maximal-length Fibonacci LFSR (widths 3..32) with an
//                optional weighting layer (AND-ing taps biases 1-density);
//  * Misr      — multiple-input signature register compacting one
//                observation word per cycle.
#pragma once

#include <cstdint>
#include <vector>

namespace flh {

/// Maximal-length Fibonacci LFSR.
class Lfsr {
public:
    /// width in [3, 32]; seed must be non-zero (forced to 1 otherwise).
    Lfsr(int width, std::uint32_t seed);

    [[nodiscard]] int width() const noexcept { return width_; }
    [[nodiscard]] std::uint32_t state() const noexcept { return state_; }

    /// Advance one step; returns the output bit (the stage shifted out).
    bool step();

    /// Next pseudo-random bit with P(1) ~= one_density (weighted generator):
    /// AND of k raw bits gives density 2^-k; OR raises it symmetrically.
    bool stepWeighted(double one_density);

    /// Period of the maximal-length sequence (2^width - 1).
    [[nodiscard]] std::uint64_t period() const noexcept {
        return (1ULL << width_) - 1;
    }

private:
    int width_;
    std::uint32_t state_;
    std::uint32_t taps_;
};

/// Characteristic tap mask (primitive polynomial) for a width; throws for
/// unsupported widths.
[[nodiscard]] std::uint32_t primitiveTaps(int width);

/// Multiple-input signature register (Galois form, 32 bits).
class Misr {
public:
    explicit Misr(std::uint32_t seed = 0xDEADBEEF) : state_(seed) {}

    /// Compact one observation word.
    void absorb(std::uint32_t word);

    [[nodiscard]] std::uint32_t signature() const noexcept { return state_; }

private:
    std::uint32_t state_;
};

} // namespace flh
