#include "bist/bist.hpp"

#include "fault/faults.hpp"

#include <algorithm>

namespace flh {

namespace {

/// Shift one full pattern into the chain (and PI shadow registers) from the
/// LFSR, with the logic held per the configured style.
Pattern nextPattern(const Netlist& nl, Lfsr& lfsr, double density) {
    Pattern p;
    p.state.resize(nl.flipFlops().size());
    p.pis.resize(nl.pis().size());
    for (Logic& b : p.state) b = lfsr.stepWeighted(density) ? Logic::One : Logic::Zero;
    for (Logic& b : p.pis) b = lfsr.stepWeighted(density) ? Logic::One : Logic::Zero;
    return p;
}

std::uint32_t packObservation(const std::vector<PV>& obs, std::size_t index) {
    // Fold the observation vector into words of 32 (slot 0 of each PV).
    std::uint32_t word = 0;
    for (std::size_t i = 0; i < 32 && index * 32 + i < obs.size(); ++i)
        if (obs[index * 32 + i].get(0) == Logic::One) word |= 1u << i;
    return word;
}

} // namespace

std::vector<Pattern> bistPatterns(const Netlist& nl, const BistConfig& cfg) {
    Lfsr lfsr(cfg.lfsr_width, cfg.lfsr_seed);
    std::vector<Pattern> out;
    out.reserve(static_cast<std::size_t>(cfg.n_patterns));
    for (int i = 0; i < cfg.n_patterns; ++i)
        out.push_back(nextPattern(nl, lfsr, cfg.one_density));
    return out;
}

namespace {

/// Shared session driver; optionally injects a fault into the machine.
BistResult runSession(const Netlist& nl, const BistConfig& cfg,
                      const std::optional<FaultSite>& fault) {
    SequentialSim seq(nl, cfg.style);
    PatternSim& sim = seq.sim();
    if (fault) sim.injectFault(*fault);
    sim.enableToggleCount(true);

    Lfsr lfsr(cfg.lfsr_width, cfg.lfsr_seed);
    Misr misr;
    BistResult res;

    seq.setState(std::vector<PV>(seq.ffCount(), PV::all(Logic::Zero)));
    seq.setPis(std::vector<PV>(nl.pis().size(), PV::all(Logic::Zero)));
    seq.settle();

    std::vector<bool> is_comb_out(nl.netCount(), false);
    for (const GateId g : nl.topoOrder()) is_comb_out[nl.gate(g).output] = true;

    for (int p = 0; p < cfg.n_patterns; ++p) {
        const Pattern pat = nextPattern(nl, lfsr, cfg.one_density);

        // Shift phase, logic held; count redundant comb switching.
        sim.clearToggleCounts();
        seq.setHolding(true);
        for (std::size_t i = 0; i < pat.state.size(); ++i) seq.shift(PV::all(pat.state[i]));
        for (NetId n = 0; n < nl.netCount(); ++n)
            if (is_comb_out[n]) res.comb_shift_toggles += sim.toggleCounts()[n];

        // Apply: release, drive PIs, settle, capture, compact.
        std::vector<PV> pis(pat.pis.size());
        for (std::size_t i = 0; i < pis.size(); ++i) pis[i] = PV::all(pat.pis[i]);
        seq.setPis(pis);
        seq.setHolding(false);
        seq.settle();
        // The capture view (PO values + FF D inputs) is what the next shift
        // phase streams into the MISR; compact it, then clock the capture.
        const std::vector<PV> obs = seq.observe();
        seq.clock();
        const std::size_t words = (obs.size() + 31) / 32;
        for (std::size_t w = 0; w < words; ++w) misr.absorb(packObservation(obs, w));
        ++res.patterns_applied;
    }
    res.signature = misr.signature();
    return res;
}

} // namespace

BistResult runBist(const Netlist& nl, const BistConfig& cfg) {
    BistResult res = runSession(nl, cfg, std::nullopt);
    const auto faults = collapsedStuckAtFaults(nl);
    const auto pats = bistPatterns(nl, cfg);
    res.stuck_at_coverage_pct = runStuckAtFaultSim(nl, pats, faults).coveragePct();
    return res;
}

bool bistDetects(const Netlist& nl, const BistConfig& cfg, const FaultSite& fault,
                 std::uint32_t golden) {
    return runSession(nl, cfg, fault).signature != golden;
}

FaultSimResult bistDelayCoverage(const Netlist& nl, const BistConfig& cfg,
                                 TestApplication style) {
    const auto loads = bistPatterns(nl, cfg);
    std::vector<TwoPattern> tests;
    tests.reserve(loads.size());
    for (std::size_t i = 0; i + 1 < loads.size(); ++i) {
        switch (style) {
            case TestApplication::EnhancedScan:
                // FLH holds V1's response while the next LFSR load shifts in:
                // consecutive loads form an arbitrary pair.
                tests.push_back(TwoPattern{loads[i], loads[i + 1]});
                break;
            case TestApplication::SkewedLoad:
                tests.push_back(makePair(nl, style, loads[i], loads[i + 1].pis,
                                         loads[i + 1].state.empty() ? Logic::Zero
                                                                    : loads[i + 1].state[0]));
                break;
            case TestApplication::Broadside:
                tests.push_back(makePair(nl, style, loads[i], loads[i + 1].pis));
                break;
        }
    }
    const auto faults = allTransitionFaults(nl);
    return runTransitionFaultSim(nl, tests, faults);
}

} // namespace flh
