#include "bist/lfsr.hpp"

#include <bit>
#include <stdexcept>

namespace flh {

std::uint32_t primitiveTaps(int width) {
    // Tap masks of primitive polynomials (bit i set = stage i+1 feeds the
    // XOR), standard tables.
    switch (width) {
        case 3: return 0b110;
        case 4: return 0b1100;
        case 5: return 0b10100;
        case 6: return 0b110000;
        case 7: return 0b1100000;
        case 8: return 0b10111000;
        case 9: return 0b100010000;
        case 10: return 0b1001000000;
        case 11: return 0b10100000000;
        case 12: return 0b111000001000;
        case 13: return 0b1110010000000;
        case 14: return 0b11100000000010;
        case 15: return 0b110000000000000;
        case 16: return 0b1101000000001000;
        case 17: return 0x12000;
        case 18: return 0x20400;
        case 19: return 0x72000;
        case 20: return 0x90000;
        case 21: return 0x140000;
        case 22: return 0x300000;
        case 23: return 0x420000;
        case 24: return 0xE10000;
        case 25: return 0x1200000;
        case 26: return 0x2000023;
        case 27: return 0x4000013;
        case 28: return 0x9000000;
        case 29: return 0x14000000;
        case 30: return 0x20000029;
        case 31: return 0x48000000;
        case 32: return 0x80200003;
        default: throw std::invalid_argument("unsupported LFSR width");
    }
}

Lfsr::Lfsr(int width, std::uint32_t seed) : width_(width), taps_(primitiveTaps(width)) {
    const std::uint32_t mask = width == 32 ? ~0u : ((1u << width) - 1);
    state_ = seed & mask;
    if (state_ == 0) state_ = 1;
}

bool Lfsr::step() {
    // Galois (right-shift) form: the tap mask is XORed in when the output
    // stage carries a 1.
    const bool out = (state_ & 1u) != 0;
    state_ >>= 1;
    if (out) state_ ^= taps_;
    return out;
}

bool Lfsr::stepWeighted(double one_density) {
    if (one_density >= 0.5 - 1e-12 && one_density <= 0.5 + 1e-12) return step();
    if (one_density < 0.5) {
        // AND of k bits: density 2^-k.
        int k = 1;
        double d = 0.5;
        while (d > one_density && k < 5) {
            d *= 0.5;
            ++k;
        }
        bool v = true;
        for (int i = 0; i < k; ++i) v = v && step();
        return v;
    }
    // OR of k bits: density 1 - 2^-k.
    int k = 1;
    double d = 0.5;
    while (1.0 - d < one_density && k < 5) {
        d *= 0.5;
        ++k;
    }
    bool v = false;
    for (int i = 0; i < k; ++i) v = v || step();
    return v;
}

void Misr::absorb(std::uint32_t word) {
    const bool msb = (state_ & 0x80000000u) != 0;
    state_ <<= 1;
    if (msb) state_ ^= 0x04C11DB7u; // CRC-32 polynomial
    state_ ^= word;
}

} // namespace flh
