// Test-per-scan BIST with FLH holding (Section IV).
//
// A test-per-scan session: the LFSR shifts a pseudo-random pattern into the
// scan chain (and serially into the primary inputs, as the paper suggests:
// "if test patterns are applied to the primary inputs serially, as in the
// scan chain, FLH ... can be equally used to the fanout logic gates for the
// primary inputs"), the response is captured, and the capture is compacted
// into the MISR while the next pattern shifts in.
//
// Delay BIST: FLH's arbitrary-pair capability means consecutive LFSR loads
// (V1, V2) form an *unconstrained* two-pattern test — plain scan BIST only
// gets launch-on-shift pairs (V2 = one extra shift of V1). bistDelayCoverage
// quantifies the difference.
#pragma once

#include "bist/lfsr.hpp"
#include "fault/fault_sim.hpp"
#include "sim/sequential.hpp"

#include <optional>

namespace flh {

struct BistConfig {
    int n_patterns = 64;
    int lfsr_width = 20;
    std::uint32_t lfsr_seed = 0xACE1;
    double one_density = 0.5; ///< weighted-random 1-density
    HoldStyle style = HoldStyle::Flh;
};

struct BistResult {
    std::uint32_t signature = 0;
    std::size_t patterns_applied = 0;
    std::uint64_t comb_shift_toggles = 0; ///< redundant switching during shifts
    double stuck_at_coverage_pct = 0.0;   ///< of the collapsed fault list
};

/// Run a stuck-at test-per-scan BIST session on the good machine (and
/// measure the coverage of the generated patterns by fault simulation).
[[nodiscard]] BistResult runBist(const Netlist& nl, const BistConfig& cfg = {});

/// Golden-signature fault detection: run the (short) BIST session on the
/// machine with `fault` injected; returns true if the signature differs
/// from the good one.
[[nodiscard]] bool bistDetects(const Netlist& nl, const BistConfig& cfg, const FaultSite& fault,
                               std::uint32_t golden);

/// The pseudo-random pattern sequence a BIST session applies (for external
/// fault simulation / coverage studies).
[[nodiscard]] std::vector<Pattern> bistPatterns(const Netlist& nl, const BistConfig& cfg);

/// Delay (transition-fault) coverage of a BIST session under an application
/// style: EnhancedScan treats consecutive loads as arbitrary pairs (what
/// FLH's hold enables); SkewedLoad derives V2 from one extra shift;
/// Broadside derives V2 from the functional response.
[[nodiscard]] FaultSimResult bistDelayCoverage(const Netlist& nl, const BistConfig& cfg,
                                               TestApplication style);

} // namespace flh
