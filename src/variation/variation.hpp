// Process-variation Monte Carlo: the paper's opening motivation made
// quantitative.
//
// "An emerging cause of delay failure is the uncertainty in circuit design
// due to process fluctuations ... With growing impact of process variation
// in sub-100nm technology regime, designers face more uncertainty and delay
// faults become more likely. Therefore, it is becoming mandatory for
// manufacturing test to include delay testing along with stuck-at tests."
//
// Each Monte Carlo sample is one die: every gate's delay is scaled by a
// lognormal-ish factor combining a die-wide (systematic) component and a
// per-gate (random) component. STA over the sampled factors gives that
// die's true critical delay; comparing against the shipping clock yields
// the timing-yield curve, the delay-fault incidence, and the escape rate of
// a test applied at a given test clock.
#pragma once

#include "fault/faults.hpp"
#include "sta/timing.hpp"

#include <vector>

namespace flh {

struct VariationModel {
    double sigma_die_pct = 5.0;   ///< die-to-die (systematic) sigma, % of nominal
    double sigma_gate_pct = 8.0;  ///< within-die per-gate (random) sigma
    std::uint64_t seed = 2005;
};

/// Per-gate delay multipliers for one sampled die.
[[nodiscard]] std::vector<double> sampleDie(const Netlist& nl, const VariationModel& m,
                                            std::uint64_t die_index);

struct MonteCarloResult {
    double nominal_ps = 0.0;
    std::vector<double> delay_ps; ///< per sampled die, critical delay
    /// Gate whose sampled slowdown dominates each die's critical path
    /// (the natural site of that die's transition fault).
    std::vector<GateId> worst_gate;

    [[nodiscard]] double meanPs() const;
    [[nodiscard]] double sigmaPs() const;
    /// Fraction of dies whose critical delay fits within `clock_ps`.
    [[nodiscard]] double timingYieldPct(double clock_ps) const;
    /// Smallest clock achieving the given yield (e.g. 99%).
    [[nodiscard]] double clockForYieldPs(double yield_pct) const;
};

/// Run the Monte Carlo: n_dies sampled STAs under the given DFT overlay.
[[nodiscard]] MonteCarloResult runTimingMonteCarlo(const Netlist& nl, const TimingOverlay& ov,
                                                   const VariationModel& m, int n_dies);

/// Delay-test escape analysis: of the dies failing the shipping clock, how
/// many carry a slow gate whose transition fault the given test set covers?
/// (covered_mask aligned with allTransitionFaults(nl)).
struct EscapeAnalysis {
    int failing_dies = 0;
    int caught = 0; ///< failing dies whose dominant slow-gate fault is covered

    [[nodiscard]] double catchRatePct() const {
        return failing_dies ? 100.0 * caught / failing_dies : 100.0;
    }
};
[[nodiscard]] EscapeAnalysis analyzeEscapes(const Netlist& nl, const MonteCarloResult& mc,
                                            double clock_ps,
                                            const std::vector<bool>& covered_mask);

} // namespace flh
