#include "variation/variation.hpp"

#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

namespace flh {

namespace {

/// Standard normal via Box-Muller.
double gaussian(Rng& rng) {
    const double u1 = std::max(rng.uniform(), 1e-12);
    const double u2 = rng.uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
}

} // namespace

std::vector<double> sampleDie(const Netlist& nl, const VariationModel& m,
                              std::uint64_t die_index) {
    Rng rng(m.seed ^ (die_index * 0x9E3779B97F4A7C15ULL + 0x1234));
    const double die_factor = 1.0 + gaussian(rng) * m.sigma_die_pct / 100.0;
    std::vector<double> f(nl.gateCount(), 1.0);
    for (GateId g = 0; g < nl.gateCount(); ++g) {
        const double local = 1.0 + gaussian(rng) * m.sigma_gate_pct / 100.0;
        f[g] = std::max(0.3, die_factor * local);
    }
    return f;
}

double MonteCarloResult::meanPs() const {
    double s = 0.0;
    for (const double d : delay_ps) s += d;
    return delay_ps.empty() ? 0.0 : s / static_cast<double>(delay_ps.size());
}

double MonteCarloResult::sigmaPs() const {
    if (delay_ps.size() < 2) return 0.0;
    const double mu = meanPs();
    double s = 0.0;
    for (const double d : delay_ps) s += (d - mu) * (d - mu);
    return std::sqrt(s / static_cast<double>(delay_ps.size() - 1));
}

double MonteCarloResult::timingYieldPct(double clock_ps) const {
    if (delay_ps.empty()) return 0.0;
    std::size_t ok = 0;
    for (const double d : delay_ps)
        if (d <= clock_ps) ++ok;
    return 100.0 * static_cast<double>(ok) / static_cast<double>(delay_ps.size());
}

double MonteCarloResult::clockForYieldPs(double yield_pct) const {
    if (delay_ps.empty()) return 0.0;
    std::vector<double> sorted = delay_ps;
    std::sort(sorted.begin(), sorted.end());
    const auto idx = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(sorted.size()) - 1.0,
                         std::ceil(yield_pct / 100.0 * static_cast<double>(sorted.size())) - 1.0));
    return sorted[std::max<std::size_t>(idx, 0)];
}

MonteCarloResult runTimingMonteCarlo(const Netlist& nl, const TimingOverlay& ov,
                                     const VariationModel& m, int n_dies) {
    MonteCarloResult res;
    res.nominal_ps = runSta(nl, ov).critical_delay_ps;
    res.delay_ps.reserve(static_cast<std::size_t>(n_dies));
    res.worst_gate.reserve(static_cast<std::size_t>(n_dies));
    for (int die = 0; die < n_dies; ++die) {
        const auto f = sampleDie(nl, m, static_cast<std::uint64_t>(die));
        const TimingResult sta = runSta(nl, ov, f);
        res.delay_ps.push_back(sta.critical_delay_ps);
        // Dominant slow gate: the on-critical-path gate with the largest
        // sampled slowdown (the die's most natural transition-fault site).
        GateId worst = kInvalidId;
        double worst_factor = 0.0;
        for (const NetId n : sta.critical_path) {
            const GateId drv = nl.net(n).driver;
            if (drv == kInvalidId || isSequential(nl.gate(drv).fn)) continue;
            if (f[drv] > worst_factor) {
                worst_factor = f[drv];
                worst = drv;
            }
        }
        res.worst_gate.push_back(worst);
    }
    return res;
}

EscapeAnalysis analyzeEscapes(const Netlist& nl, const MonteCarloResult& mc, double clock_ps,
                              const std::vector<bool>& covered_mask) {
    // Map: transition fault index for (net, rise/fall) follows the layout
    // of allTransitionFaults: 2 faults per net, SlowToRise first.
    EscapeAnalysis ea;
    for (std::size_t die = 0; die < mc.delay_ps.size(); ++die) {
        if (mc.delay_ps[die] <= clock_ps) continue;
        ++ea.failing_dies;
        const GateId g = mc.worst_gate[die];
        if (g == kInvalidId) continue;
        const NetId out = nl.gate(g).output;
        const std::size_t idx_rise = 2 * static_cast<std::size_t>(out);
        // A slow gate delays both transitions; catching either suffices.
        if (idx_rise + 1 < covered_mask.size() &&
            (covered_mask[idx_rise] || covered_mask[idx_rise + 1]))
            ++ea.caught;
    }
    return ea;
}

} // namespace flh
