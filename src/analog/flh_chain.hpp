// Circuit builders for the paper's transistor-level experiments.
//
// buildGatedInverterChain reproduces Fig. 2 (supply gating applied to the
// first stage of an inverter chain) and, with `with_keeper`, Fig. 3's FLH
// scheme (cross-coupled keeper inverters behind a transmission gate enabled
// in sleep mode). The bench binaries fig2_float_decay and fig4_flh_hold
// drive these circuits with the paper's stimulus.
#pragma once

#include "analog/analog.hpp"

namespace flh {

struct ChainConfig {
    int stages = 3;
    double inv_wp = 2.0;      ///< stage inverter PMOS width (units)
    double inv_wn = 1.0;      ///< stage inverter NMOS width
    double sleep_w = 2.0;     ///< sleep pair width; 0 disables gating
    bool with_keeper = false; ///< attach the FLH keeper to OUT1
    double keeper_w = 0.75;
    double keeper_tg_w = 0.5;
    double stage_load_ff = 1.5; ///< extra wire/fanout load per stage output
};

/// The built chain plus handles for probing.
struct GatedChain {
    AnalogCircuit ckt;
    NodeId vdd = 0;
    NodeId gnd = 0;
    NodeId in = 0;
    std::vector<NodeId> outs;           ///< OUT1..OUTn
    std::vector<std::size_t> pmos_devs; ///< per stage, for Idd probes

    explicit GatedChain(const Tech& t) : ckt(t) {}
};

/// Build the chain. `in` and `sleep` are stimuli; sleep = 1 means gated
/// (the paper's SLEEP / test-control low phase). The keeper enable follows
/// the sleep signal, exactly as FLH ties it to the existing TC signal.
[[nodiscard]] GatedChain buildGatedInverterChain(const Tech& tech, const ChainConfig& cfg,
                                                 Stimulus in, Stimulus sleep);

} // namespace flh
