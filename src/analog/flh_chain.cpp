#include "analog/flh_chain.hpp"

namespace flh {

GatedChain buildGatedInverterChain(const Tech& tech, const ChainConfig& cfg, Stimulus in,
                                   Stimulus sleep) {
    GatedChain chain(tech);
    AnalogCircuit& c = chain.ckt;

    chain.vdd = c.addRail("VDD", tech.vdd);
    chain.gnd = c.addRail("GND", 0.0);
    chain.in = c.addSource("IN", std::move(in));
    const NodeId sleep_n = c.addSource("SLEEP", sleep);
    const NodeId sleep_b =
        c.addSource("SLEEP_B", [sleep, vdd = tech.vdd](double t) { return vdd - sleep(t); });

    const bool gated = cfg.sleep_w > 0.0;
    NodeId vvdd = chain.vdd;
    NodeId vgnd = chain.gnd;
    if (gated) {
        // Virtual rails behind the sleep pair (first stage only — FLH).
        vvdd = c.addNode("VVDD", tech.diffCapFf(cfg.sleep_w + cfg.inv_wp));
        vgnd = c.addNode("VGND", tech.diffCapFf(cfg.sleep_w + cfg.inv_wn));
        c.setInitialVoltage(vvdd, tech.vdd);
        c.setInitialVoltage(vgnd, 0.0);
        // Header PMOS conducts when SLEEP=0; footer NMOS likewise.
        c.addMos(true, sleep_n, chain.vdd, vvdd, cfg.sleep_w * tech.mobility_ratio);
        c.addMos(false, sleep_b, chain.gnd, vgnd, cfg.sleep_w);
    }

    NodeId prev = chain.in;
    for (int s = 0; s < cfg.stages; ++s) {
        const std::string label = "OUT" + std::to_string(s + 1);
        const double node_cap = tech.diffCapFf(cfg.inv_wp + cfg.inv_wn) +
                                tech.gateCapFf(cfg.inv_wp + cfg.inv_wn) + cfg.stage_load_ff;
        const NodeId out = c.addNode(label, node_cap);
        const NodeId src_p = (s == 0) ? vvdd : chain.vdd;
        const NodeId src_n = (s == 0) ? vgnd : chain.gnd;
        const std::size_t p = c.addMos(true, prev, src_p, out, cfg.inv_wp);
        c.addMos(false, prev, src_n, out, cfg.inv_wn);
        chain.pmos_devs.push_back(p);
        chain.outs.push_back(out);
        // Consistent DC initial condition for IN = 0 at t = 0.
        c.setInitialVoltage(out, (s % 2 == 0) ? tech.vdd : 0.0);
        prev = out;
    }

    if (cfg.with_keeper && !chain.outs.empty()) {
        const NodeId out1 = chain.outs[0];
        const double kcap = tech.gateCapFf((1.0 + tech.mobility_ratio) * cfg.keeper_w) +
                            tech.diffCapFf(cfg.keeper_w);
        const NodeId k1 = c.addNode("K1", kcap);
        const NodeId k2 = c.addNode("K2", kcap + tech.diffCapFf(2.0 * cfg.keeper_tg_w));
        c.setInitialVoltage(k1, 0.0);
        c.setInitialVoltage(k2, tech.vdd);
        // INV1: OUT1 -> K1; INV2: K1 -> K2.
        c.addMos(true, out1, chain.vdd, k1, cfg.keeper_w * tech.mobility_ratio);
        c.addMos(false, out1, chain.gnd, k1, cfg.keeper_w);
        c.addMos(true, k1, chain.vdd, k2, cfg.keeper_w * tech.mobility_ratio);
        c.addMos(false, k1, chain.gnd, k2, cfg.keeper_w);
        // Transmission gate K2 <-> OUT1, conducting in sleep mode
        // (NMOS gate = SLEEP, PMOS gate = SLEEP_B): the keeper loop closes
        // exactly when the supply gating floats the output.
        c.addMos(false, sleep_n, k2, out1, cfg.keeper_tg_w);
        c.addMos(true, sleep_b, k2, out1, cfg.keeper_tg_w);
    }

    return chain;
}

} // namespace flh
