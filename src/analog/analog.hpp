// Transistor-level transient simulation ("uspice").
//
// Substitute for the paper's HSPICE + 70 nm BPTM experiments (Figs. 2 and 4):
// a square-law MOSFET model with an exponential subthreshold region,
// explicit node capacitances, piecewise-linear stimuli, and fixed-step
// explicit integration with a per-step voltage clamp for stability.
//
// The model is deliberately simple — the phenomena the paper demonstrates
// are first-order:
//  * a supply-gated gate output *floats* and its charge leaks away through
//    subthreshold conduction (Fig. 2's decay below 600 mV within ~100 ns);
//  * the discharged intermediate level turns both devices of the next
//    inverter partially on -> static short-circuit current (Idd2, Idd3);
//  * a keeper (cross-coupled inverters behind a transmission gate) pins the
//    node and the state holds indefinitely (Fig. 4).
// Device parameters derive from the same Tech as the digital models, so the
// digital calibration (e.g. Tech::i_off_na_per_um) is exercised here too.
#pragma once

#include "cell/tech.hpp"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace flh {

using NodeId = std::uint32_t;

/// MOSFET parameters derived from Tech (per minimum-width unit).
struct MosModel {
    double vth = 0.2;          ///< threshold (V)
    double k_ua_per_v2 = 260;  ///< transconductance per width unit (uA/V^2)
    double lambda = 0.08;      ///< channel-length modulation (1/V)
    double n_sub = 1.5;        ///< subthreshold slope factor
    double i_off_na = 25.0;    ///< off current per width unit at Vgs=0 (nA)

    /// Drain current (uA) for terminal voltages (V), width in units.
    /// Positive current flows drain -> source for NMOS conduction.
    [[nodiscard]] double currentUa(double vgs, double vds, double w_units) const;
};

/// NMOS/PMOS models for a Tech.
[[nodiscard]] MosModel nmosModel(const Tech& t);
[[nodiscard]] MosModel pmosModel(const Tech& t);

/// Piecewise-constant stimulus: value of a source node over time.
using Stimulus = std::function<double(double t_ps)>;

class AnalogCircuit {
public:
    explicit AnalogCircuit(const Tech& tech);

    [[nodiscard]] const Tech& tech() const noexcept { return tech_; }

    /// Add a floating node with capacitance to ground (fF).
    NodeId addNode(std::string name, double cap_ff);

    /// Add a fixed-voltage source node (rails, driven inputs).
    NodeId addSource(std::string name, Stimulus stimulus);
    NodeId addRail(std::string name, double volts);

    /// Extra capacitance on an existing node.
    void addCap(NodeId node, double cap_ff);

    /// Coupling capacitor between two nodes (crosstalk / charge-sharing
    /// experiments, Section II: "the switching of input (IN) can couple to
    /// OUT1 through the gate-to-drain capacitances").
    void addCouplingCap(NodeId a, NodeId b, double cap_ff);

    /// Add a MOSFET; returns a device index usable as a current probe.
    std::size_t addMos(bool is_pmos, NodeId gate, NodeId source, NodeId drain, double w_units);

    void setInitialVoltage(NodeId node, double volts);

    [[nodiscard]] NodeId node(const std::string& name) const;
    [[nodiscard]] std::size_t nodeCount() const noexcept { return names_.size(); }

    struct Probe {
        std::string label;
        bool is_device = false; ///< false: node voltage (V); true: |device current| (uA)
        std::uint32_t index = 0;
    };

    struct Transient {
        std::vector<double> time_ps;
        std::vector<std::string> labels;
        std::vector<std::vector<double>> samples; ///< [probe][time]

        [[nodiscard]] const std::vector<double>& trace(const std::string& label) const;
    };

    /// Run a transient: fixed step dt_ps, sampling every sample_every steps.
    [[nodiscard]] Transient run(double t_end_ps, double dt_ps, const std::vector<Probe>& probes,
                                int sample_every = 10);

private:
    struct Mos {
        bool is_pmos;
        NodeId gate, source, drain;
        double w_units;
    };

    struct Coupling {
        NodeId a, b;
        double cap_ff;
    };

    [[nodiscard]] double deviceCurrentUa(const Mos& m, const std::vector<double>& v) const;

    Tech tech_;
    MosModel nmos_;
    MosModel pmos_;
    std::vector<std::string> names_;
    std::vector<double> cap_ff_;
    std::vector<double> init_v_;
    std::vector<int> source_index_; ///< -1 for free nodes
    std::vector<Stimulus> stimuli_;
    std::vector<Mos> devices_;
    std::vector<Coupling> couplings_;
};

} // namespace flh
