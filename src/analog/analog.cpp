#include "analog/analog.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace flh {

double MosModel::currentUa(double vgs, double vds, double w_units) const {
    // Symmetric device: fold vds < 0 onto the caller (see deviceCurrentUa).
    assert(vds >= 0.0);
    const double vt_thermal = 0.0259;
    const double vov = vgs - vth;
    if (vov <= 0.0) {
        // Subthreshold: exponential in vgs, saturating in vds.
        const double i0 = i_off_na * 1e-3 * std::exp(vth / (n_sub * vt_thermal)); // uA at vgs=vth
        return i0 * w_units * std::exp(vov / (n_sub * vt_thermal)) *
               (1.0 - std::exp(-vds / vt_thermal));
    }
    if (vds >= vov) {
        return 0.5 * k_ua_per_v2 * w_units * vov * vov * (1.0 + lambda * vds);
    }
    return k_ua_per_v2 * w_units * (vov * vds - 0.5 * vds * vds);
}

MosModel nmosModel(const Tech& t) {
    MosModel m;
    m.vth = t.vth_n;
    m.i_off_na = t.i_off_na_per_um * t.w_min_um;
    return m;
}

MosModel pmosModel(const Tech& t) {
    MosModel m;
    m.vth = t.vth_p;
    m.k_ua_per_v2 = 260.0 / t.mobility_ratio;
    m.i_off_na = t.i_off_na_per_um * t.w_min_um / t.mobility_ratio;
    return m;
}

AnalogCircuit::AnalogCircuit(const Tech& tech)
    : tech_(tech), nmos_(nmosModel(tech)), pmos_(pmosModel(tech)) {}

NodeId AnalogCircuit::addNode(std::string name, double cap_ff) {
    const NodeId id = static_cast<NodeId>(names_.size());
    names_.push_back(std::move(name));
    cap_ff_.push_back(cap_ff);
    init_v_.push_back(0.0);
    source_index_.push_back(-1);
    return id;
}

NodeId AnalogCircuit::addSource(std::string name, Stimulus stimulus) {
    const NodeId id = addNode(std::move(name), 1.0);
    source_index_[id] = static_cast<int>(stimuli_.size());
    stimuli_.push_back(std::move(stimulus));
    return id;
}

NodeId AnalogCircuit::addRail(std::string name, double volts) {
    return addSource(std::move(name), [volts](double) { return volts; });
}

void AnalogCircuit::addCap(NodeId node, double cap_ff) { cap_ff_.at(node) += cap_ff; }

void AnalogCircuit::addCouplingCap(NodeId a, NodeId b, double cap_ff) {
    couplings_.push_back(Coupling{a, b, cap_ff});
    // First-order treatment: the coupling cap loads both nodes; its
    // displacement current is injected explicitly each step.
    cap_ff_.at(a) += cap_ff;
    cap_ff_.at(b) += cap_ff;
}

std::size_t AnalogCircuit::addMos(bool is_pmos, NodeId gate, NodeId source, NodeId drain,
                                  double w_units) {
    devices_.push_back(Mos{is_pmos, gate, source, drain, w_units});
    return devices_.size() - 1;
}

void AnalogCircuit::setInitialVoltage(NodeId node, double volts) { init_v_.at(node) = volts; }

NodeId AnalogCircuit::node(const std::string& name) const {
    for (NodeId i = 0; i < names_.size(); ++i)
        if (names_[i] == name) return i;
    throw std::out_of_range("no analog node named " + name);
}

double AnalogCircuit::deviceCurrentUa(const Mos& m, const std::vector<double>& v) const {
    // Returns current flowing INTO the drain terminal (out of the source).
    const double vg = v[m.gate];
    double vs = v[m.source];
    double vd = v[m.drain];
    if (!m.is_pmos) {
        // NMOS conducts with the more negative terminal as source.
        const bool swapped = vd < vs;
        if (swapped) std::swap(vs, vd);
        const double i = nmos_.currentUa(vg - vs, vd - vs, m.w_units);
        return swapped ? i : -i; // current into the *drain* node terminal
    }
    // PMOS: mirror voltages.
    const bool swapped = vd > vs;
    if (swapped) std::swap(vs, vd);
    const double i = pmos_.currentUa(vs - vg, vs - vd, m.w_units);
    return swapped ? -i : i;
}

const std::vector<double>& AnalogCircuit::Transient::trace(const std::string& label) const {
    for (std::size_t i = 0; i < labels.size(); ++i)
        if (labels[i] == label) return samples[i];
    throw std::out_of_range("no trace labelled " + label);
}

AnalogCircuit::Transient AnalogCircuit::run(double t_end_ps, double dt_ps,
                                            const std::vector<Probe>& probes, int sample_every) {
    std::vector<double> v = init_v_;
    std::vector<double> i_node(names_.size(), 0.0);

    Transient out;
    for (const Probe& p : probes) out.labels.push_back(p.label);
    out.samples.resize(probes.size());

    const double clamp_v = 0.05; // max voltage move per step (stability)
    std::vector<double> v_prev = v;
    long step = 0;
    for (double t = 0.0; t <= t_end_ps; t += dt_ps, ++step) {
        v_prev = v;
        // Sources.
        for (NodeId n = 0; n < names_.size(); ++n)
            if (source_index_[n] >= 0) v[n] = stimuli_[static_cast<std::size_t>(source_index_[n])](t);

        if (step % sample_every == 0) {
            out.time_ps.push_back(t);
            for (std::size_t pi = 0; pi < probes.size(); ++pi) {
                const Probe& p = probes[pi];
                out.samples[pi].push_back(
                    p.is_device ? std::abs(deviceCurrentUa(devices_[p.index], v)) : v[p.index]);
            }
        }

        // Device currents into nodes.
        std::fill(i_node.begin(), i_node.end(), 0.0);
        for (const Mos& m : devices_) {
            const double i = deviceCurrentUa(m, v); // into drain
            i_node[m.drain] += i;
            i_node[m.source] -= i;
        }
        // Coupling displacement currents: i = C dV/dt of the far plate
        // (fF * V / ps = mA, hence the 1e3 to uA).
        for (const Coupling& c : couplings_) {
            i_node[c.a] += 1e3 * c.cap_ff * (v[c.b] - v_prev[c.b]) / dt_ps;
            i_node[c.b] += 1e3 * c.cap_ff * (v[c.a] - v_prev[c.a]) / dt_ps;
        }

        // Explicit Euler with clamping; dV = I*dt/C (uA * ps / fF = mV).
        for (NodeId n = 0; n < names_.size(); ++n) {
            if (source_index_[n] >= 0) continue;
            double dv = i_node[n] * dt_ps / cap_ff_[n] * 1e-3;
            dv = std::clamp(dv, -clamp_v, clamp_v);
            v[n] = std::clamp(v[n] + dv, -0.2, tech_.vdd + 0.2);
        }
    }
    return out;
}

} // namespace flh
