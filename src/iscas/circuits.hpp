// ISCAS89 benchmark circuits used by the paper's evaluation.
//
// The original ISCAS89 netlists are not redistributable within this
// repository's offline build, so (per DESIGN.md Section 2) the evaluation
// circuits are *statistics-matched synthetic reconstructions*: for each
// circuit the registry records the published structural statistics
// (flip-flop count, gate count, PI/PO, critical-path logic depth, average
// flip-flop fanout, unique first-level-gate ratio from Table I) and a fixed
// seed; the generator reproduces a circuit with those statistics. The small
// s27 benchmark is embedded verbatim as a genuine reference point.
//
// Every quantity in the paper's Tables I-IV is a function of exactly these
// statistics, so the reconstruction preserves the comparisons.
#pragma once

#include "netlist/netlist.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace flh {

/// Target statistics for one synthetic ISCAS89-like circuit.
struct CircuitSpec {
    std::string name;
    int n_pis = 1;
    int n_pos = 1;
    int n_ffs = 1;
    int n_comb_gates = 10;
    int depth = 5;              ///< target critical-path logic levels
    double ff_fanout_avg = 2.3; ///< paper Table I: total fanouts / FFs
    double unique_ratio = 1.8;  ///< paper Table I: unique first-level gates / FFs
    std::uint64_t seed = 1;

    /// Workload realism: fraction of cycles each register holds its value
    /// (enable-gated / hold registers). Larger control-dominated designs
    /// idle more — this drives Section III's observation that on s13207 the
    /// FLH circuit dissipates less than the original.
    double ff_hold_prob = 0.0;
};

/// The genuine s27 benchmark (embedded verbatim).
[[nodiscard]] Netlist makeS27(const Library& lib);

/// Registry of the 11 evaluation circuits (Tables I-III).
[[nodiscard]] const std::vector<CircuitSpec>& paperCircuits();

/// The 8 higher-FF-count circuits used for Table IV (fanout optimization).
[[nodiscard]] std::vector<CircuitSpec> tableIvCircuits();

/// Look up a spec by name (throws if unknown).
[[nodiscard]] const CircuitSpec& findCircuit(const std::string& name);

/// Generate the statistics-matched netlist for a spec.
[[nodiscard]] Netlist generateCircuit(const CircuitSpec& spec, const Library& lib);

/// Convenience: generate a registered circuit by name ("s27" returns the
/// genuine netlist).
[[nodiscard]] Netlist makeCircuit(const std::string& name, const Library& lib);

} // namespace flh
