#include "iscas/circuits.hpp"

#include "netlist/bench_io.hpp"

#include <stdexcept>

namespace flh {

namespace {

// The genuine ISCAS89 s27 netlist.
constexpr const char* kS27 = R"(
# s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
)";

} // namespace

Netlist makeS27(const Library& lib) { return readBenchString(kS27, "s27", lib); }

const std::vector<CircuitSpec>& paperCircuits() {
    // Structural statistics: PI/PO/FF/gate counts follow the published
    // ISCAS89 profiles; unique_ratio values follow paper Table I (average
    // 1.8, worst case 3.0 on s838); ff_fanout_avg averages 2.3 per Table I.
    static const std::vector<CircuitSpec> specs = {
        //    name      PI  PO   FF  gates depth  fan   uniq  seed    hold
        {"s298", 3, 6, 14, 119, 9, 3.1, 2.5, 0x298, 0.0},
        {"s344", 9, 11, 15, 160, 14, 2.7, 2.1, 0x344, 0.0},
        {"s386", 7, 7, 6, 159, 11, 1.3, 1.0, 0x386, 0.0},
        {"s510", 19, 7, 6, 211, 12, 1.7, 1.3, 0x510, 0.1},
        {"s641", 35, 24, 19, 379, 24, 2.8, 2.2, 0x641, 0.1},
        {"s838", 34, 1, 32, 446, 16, 3.7, 3.0, 0x838, 0.2},
        {"s1196", 14, 14, 18, 529, 24, 2.0, 1.6, 0x1196, 0.2},
        {"s1423", 17, 5, 74, 657, 35, 2.6, 2.1, 0x1423, 0.3},
        {"s5378", 35, 49, 179, 2779, 25, 1.5, 1.14, 0x5378, 0.5},
        {"s9234", 36, 39, 211, 5597, 30, 1.9, 1.5, 0x9234, 0.55},
        {"s13207", 62, 152, 638, 7951, 32, 2.0, 1.6, 0x13207, 0.85},
    };
    return specs;
}

std::vector<CircuitSpec> tableIvCircuits() {
    // Table IV applies the fanout optimizer to the circuits with the larger
    // scan chains.
    std::vector<CircuitSpec> out;
    for (const CircuitSpec& s : paperCircuits()) {
        if (s.n_ffs >= 15 && s.name != "s386" && s.name != "s510") out.push_back(s);
    }
    return out;
}

const CircuitSpec& findCircuit(const std::string& name) {
    for (const CircuitSpec& s : paperCircuits())
        if (s.name == name) return s;
    throw std::out_of_range("unknown circuit: " + name);
}

Netlist makeCircuit(const std::string& name, const Library& lib) {
    if (name == "s27") return makeS27(lib);
    return generateCircuit(findCircuit(name), lib);
}

} // namespace flh
