// Statistics-matched synthetic circuit generation (see circuits.hpp).
//
// Construction invariants:
//  * exactly round(unique_ratio * n_ffs) gates take flip-flop outputs as
//    inputs (the unique first-level gates); no other gate touches a FF
//    output, so Table I's "unique fanouts" column is reproduced exactly;
//  * total FF->pin connections equal round(ff_fanout_avg * n_ffs) exactly;
//  * a backbone chain guarantees the critical path has exactly `depth`
//    logic levels, and no gate exceeds it;
//  * every FF D input is driven by a dedicated gate, every gate output is
//    consumed (dangling outputs become primary outputs);
//  * the whole construction is a pure function of the seed.
#include "iscas/circuits.hpp"

#include "util/rng.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_set>

namespace flh {

namespace {

struct FnChoice {
    CellFn fn;
    int arity;
    double weight;
};

const std::vector<FnChoice>& fnChoices() {
    static const std::vector<FnChoice> choices = {
        {CellFn::Inv, 1, 0.14},  {CellFn::Buf, 1, 0.02},   {CellFn::Nand, 2, 0.22},
        {CellFn::Nor, 2, 0.12},  {CellFn::And, 2, 0.09},   {CellFn::Or, 2, 0.07},
        {CellFn::Xor, 2, 0.04},  {CellFn::Xnor, 2, 0.02},  {CellFn::Nand, 3, 0.08},
        {CellFn::Nor, 3, 0.04},  {CellFn::And, 3, 0.03},   {CellFn::Or, 3, 0.02},
        {CellFn::Nand, 4, 0.02}, {CellFn::Nor, 4, 0.01},   {CellFn::Aoi21, 3, 0.04},
        {CellFn::Oai21, 3, 0.03}, {CellFn::Aoi22, 4, 0.015}, {CellFn::Oai22, 4, 0.01},
        {CellFn::Mux2, 3, 0.02},
    };
    return choices;
}

/// Pick a gate function with arity in [min_arity, 4], weighted.
FnChoice pickFn(Rng& rng, int min_arity) {
    const auto& all = fnChoices();
    std::vector<double> w(all.size(), 0.0);
    bool any = false;
    for (std::size_t i = 0; i < all.size(); ++i) {
        if (all[i].arity >= min_arity) {
            w[i] = all[i].weight;
            any = true;
        }
    }
    if (!any) throw std::logic_error("no gate with arity >= " + std::to_string(min_arity));
    return all[rng.weighted(w)];
}

} // namespace

Netlist generateCircuit(const CircuitSpec& spec, const Library& lib) {
    if (spec.n_ffs < 1 || spec.n_pis < 1 || spec.n_comb_gates < 4)
        throw std::invalid_argument("circuit spec too small: " + spec.name);

    Rng rng(spec.seed * 0x9e3779b97f4a7c15ULL + 0xA5A5);
    Netlist nl(spec.name, lib);

    // --- primary inputs and flip-flops ---------------------------------
    std::vector<NetId> pis;
    for (int i = 0; i < spec.n_pis; ++i) pis.push_back(nl.addPi("PI" + std::to_string(i)));

    std::vector<NetId> ffq(static_cast<std::size_t>(spec.n_ffs));
    std::vector<NetId> ffd(static_cast<std::size_t>(spec.n_ffs));
    for (int i = 0; i < spec.n_ffs; ++i) {
        ffq[static_cast<std::size_t>(i)] = nl.addNet("FFQ" + std::to_string(i));
        ffd[static_cast<std::size_t>(i)] = nl.addNet("FFD" + std::to_string(i));
    }
    for (int i = 0; i < spec.n_ffs; ++i)
        nl.addDff(ffd[static_cast<std::size_t>(i)], ffq[static_cast<std::size_t>(i)]);

    // --- first-level gate planning --------------------------------------
    const int n_fl = std::max(1, static_cast<int>(spec.unique_ratio * spec.n_ffs + 0.5));
    int total_ff_pins =
        std::max({spec.n_ffs, n_fl,
                  static_cast<int>(spec.ff_fanout_avg * spec.n_ffs + 0.5)});
    total_ff_pins = std::min(total_ff_pins, 4 * n_fl);

    // k[i]: number of FF-driven pins on first-level gate i (1..4 each).
    std::vector<int> k(static_cast<std::size_t>(n_fl), 1);
    for (int extra = total_ff_pins - n_fl; extra > 0;) {
        const auto i = static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(n_fl)));
        if (k[i] < 4) {
            ++k[i];
            --extra;
        }
    }

    // Assign FF sources to pins: every FF appears at least once.
    std::vector<int> pin_sources;
    pin_sources.reserve(static_cast<std::size_t>(total_ff_pins));
    for (int f = 0; f < spec.n_ffs; ++f) pin_sources.push_back(f);
    for (int p = spec.n_ffs; p < total_ff_pins; ++p) pin_sources.push_back(rng.range(0, spec.n_ffs - 1));
    rng.shuffle(pin_sources);

    // --- signal pool by realized logic level ----------------------------
    // Interior gates must never take a FF output (that would add first-level
    // gates); their pool holds PIs (level 0) and gate outputs.
    std::vector<std::vector<NetId>> by_level(1);
    by_level[0] = pis;

    int next_net = 0;
    const auto freshNet = [&] { return nl.addNet("N" + std::to_string(next_net++)); };

    std::size_t src_cursor = 0;
    for (int i = 0; i < n_fl; ++i) {
        const int want = k[static_cast<std::size_t>(i)];
        const FnChoice fc = pickFn(rng, want);
        std::vector<NetId> ins;
        std::unordered_set<NetId> used;
        for (int p = 0; p < want; ++p) {
            // Prefer distinct FFs on the same gate; fall back to any FF.
            NetId q = ffq[static_cast<std::size_t>(pin_sources[src_cursor++])];
            for (int tries = 0; used.contains(q) && tries < 8; ++tries)
                q = ffq[static_cast<std::size_t>(rng.range(0, spec.n_ffs - 1))];
            used.insert(q);
            ins.push_back(q);
        }
        while (static_cast<int>(ins.size()) < fc.arity) {
            const NetId pi = pis[static_cast<std::size_t>(rng.range(0, spec.n_pis - 1))];
            if (!used.insert(pi).second && spec.n_pis > static_cast<int>(used.size())) continue;
            ins.push_back(pi);
        }
        rng.shuffle(ins);
        const NetId out = freshNet();
        nl.addGate(fc.fn, ins, out);
        if (by_level.size() < 2) by_level.emplace_back();
        by_level[1].push_back(out);
    }

    // --- interior gates --------------------------------------------------
    const int n_interior = spec.n_comb_gates - n_fl;
    if (n_interior < spec.n_ffs)
        throw std::invalid_argument(spec.name + ": not enough gates to drive all FF inputs");
    const int depth = std::max(2, std::min(spec.depth, n_interior + 1));
    by_level.resize(static_cast<std::size_t>(depth) + 1);

    // Plan levels: one backbone gate per level 2..depth, the rest random.
    std::vector<int> gate_level;
    gate_level.reserve(static_cast<std::size_t>(n_interior));
    for (int l = 2; l <= depth; ++l) gate_level.push_back(l);
    for (int i = static_cast<int>(gate_level.size()); i < n_interior; ++i)
        gate_level.push_back(rng.range(2, depth));
    std::sort(gate_level.begin(), gate_level.end());

    // The last n_ffs *non-backbone* interior gates (highest levels) drive the
    // FF D nets. Backbone gates (the first gate at each level) must stay in
    // the signal pool so the depth chain never starves.
    std::vector<bool> is_backbone(static_cast<std::size_t>(n_interior), false);
    {
        int prev_level = -1;
        int non_backbone = 0;
        for (int i = 0; i < n_interior; ++i) {
            const int l = gate_level[static_cast<std::size_t>(i)];
            if (l != prev_level) {
                is_backbone[static_cast<std::size_t>(i)] = true;
                prev_level = l;
            } else {
                ++non_backbone;
            }
        }
        if (non_backbone < spec.n_ffs)
            throw std::invalid_argument(spec.name + ": not enough non-backbone gates for FFs");
    }
    std::vector<NetId> d_assign(ffd);
    rng.shuffle(d_assign);

    const auto pickBelow = [&](int level, std::unordered_set<NetId>& used) -> NetId {
        // Draw from levels [0, level); bias toward deeper signals.
        for (int tries = 0; tries < 16; ++tries) {
            int l = rng.chance(0.5) ? level - 1 : rng.range(0, level - 1);
            while (l >= 0 && by_level[static_cast<std::size_t>(l)].empty()) --l;
            if (l < 0) break;
            const auto& pool = by_level[static_cast<std::size_t>(l)];
            const NetId n = pool[rng.below(pool.size())];
            if (!used.contains(n)) return n;
        }
        // Give up on distinctness: return any available signal.
        for (int l = level - 1; l >= 0; --l)
            if (!by_level[static_cast<std::size_t>(l)].empty())
                return by_level[static_cast<std::size_t>(l)][0];
        throw std::logic_error("no signal below level " + std::to_string(level));
    };

    int d_next = 0;
    int non_backbone_left = 0;
    for (bool b : is_backbone)
        if (!b) ++non_backbone_left;
    for (int i = 0; i < n_interior; ++i) {
        const int level = gate_level[static_cast<std::size_t>(i)];
        const FnChoice fc = pickFn(rng, 1);
        std::vector<NetId> ins;
        std::unordered_set<NetId> used;

        // Anchor: one input from exactly level-1 so the gate lands on its
        // planned level (keeps the realized depth equal to the target).
        int anchor_level = level - 1;
        while (anchor_level > 0 && by_level[static_cast<std::size_t>(anchor_level)].empty())
            --anchor_level;
        const auto& anchor_pool = by_level[static_cast<std::size_t>(anchor_level)];
        const NetId anchor = anchor_pool[rng.below(anchor_pool.size())];
        ins.push_back(anchor);
        used.insert(anchor);

        while (static_cast<int>(ins.size()) < fc.arity) {
            const NetId n = pickBelow(level, used);
            used.insert(n);
            ins.push_back(n);
        }
        rng.shuffle(ins);

        const bool backbone = is_backbone[static_cast<std::size_t>(i)];
        const bool drives_ff = !backbone && non_backbone_left <= (spec.n_ffs - d_next);
        if (!backbone) --non_backbone_left;
        const NetId out = drives_ff ? d_assign[static_cast<std::size_t>(d_next++)] : freshNet();
        nl.addGate(fc.fn, ins, out);
        const int realized = anchor_level + 1;
        if (!drives_ff) by_level[static_cast<std::size_t>(realized)].push_back(out);
    }
    assert(d_next == spec.n_ffs);

    // --- primary outputs --------------------------------------------------
    // Prefer deep, otherwise-unused signals as POs; then promote any
    // remaining dangling outputs to POs so nothing is left floating.
    std::vector<NetId> candidates;
    for (int l = depth; l >= 1; --l)
        for (NetId n : by_level[static_cast<std::size_t>(l)]) candidates.push_back(n);
    std::size_t po_count = 0;
    for (NetId n : candidates) {
        if (po_count >= static_cast<std::size_t>(spec.n_pos)) break;
        if (nl.fanout(n).empty()) {
            nl.markPo(n);
            ++po_count;
        }
    }
    for (NetId n : candidates) {
        if (po_count >= static_cast<std::size_t>(spec.n_pos)) break;
        const auto& already = nl.pos();
        if (std::find(already.begin(), already.end(), n) == already.end()) {
            nl.markPo(n);
            ++po_count;
        }
    }
    // Promote leftover dangling outputs.
    for (NetId n : candidates) {
        if (nl.fanout(n).empty()) {
            const auto& already = nl.pos();
            if (std::find(already.begin(), already.end(), n) == already.end()) nl.markPo(n);
        }
    }

    nl.check();
    return nl;
}

} // namespace flh
