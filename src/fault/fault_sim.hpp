// Parallel-pattern single-fault fault simulation (PPSFP).
//
// Patterns are packed FaultSimOptions::words x 64 per simulator pass (the
// word-packed engine in sim/packed_sim.hpp, evaluated by the
// runtime-dispatched SIMD kernel; words = 0 selects the scalar 64-wide
// PatternSim oracle); each candidate fault is then injected and its cone
// re-propagated event-driven, comparing the observation points (primary
// outputs + flip-flop D inputs — the full-scan capture view) against the
// good machine. Every width produces bit-identical detected masks.
//
// Two-pattern (transition) tests follow the paper's application styles:
//  * EnhancedScan (identical for FLH): V1 and V2 are arbitrary;
//  * Broadside:   V2's state is the circuit's response to V1;
//  * SkewedLoad:  V2's state is V1's state shifted by one scan position.
// A transition fault is detected by (V1, V2) iff V1 establishes the initial
// value at the fault site and V2 detects the corresponding stuck-at fault.
#pragma once

#include "fault/faults.hpp"

#include <span>
#include <vector>

namespace flh {

class JsonWriter;

/// One full-scan test pattern: primary-input values + scan state.
struct Pattern {
    std::vector<Logic> pis;
    std::vector<Logic> state;
};

/// A two-pattern delay test.
struct TwoPattern {
    Pattern v1;
    Pattern v2;
};

/// How the second pattern is applied (paper Section I).
enum class TestApplication : std::uint8_t { EnhancedScan, Broadside, SkewedLoad };

[[nodiscard]] const char* toString(TestApplication a) noexcept;

struct FaultSimResult {
    std::size_t total = 0;
    std::size_t detected = 0;
    std::vector<bool> detected_mask; ///< per fault, aligned with the input list

    [[nodiscard]] double coveragePct() const noexcept {
        return total ? 100.0 * static_cast<double>(detected) / static_cast<double>(total) : 0.0;
    }

    /// Shared writeJson(JsonWriter&) convention (util/json.hpp): one
    /// object with totals and coverage; the per-fault mask is summarized,
    /// not dumped.
    void writeJson(JsonWriter& w) const;
};

/// Random patterns with fully specified bits.
[[nodiscard]] std::vector<Pattern> randomPatterns(const Netlist& nl, std::size_t count,
                                                  std::uint64_t seed);

/// The circuit's next state under a pattern (combinational response captured
/// into the flip-flops).
[[nodiscard]] std::vector<Logic> nextState(const Netlist& nl, const Pattern& p);

/// Construct the V2 implied by an application style (broadside derives the
/// state from V1's response; skewed-load shifts V1's state by one position
/// with `scan_in_bit` entering the chain). PIs of V2 are free and provided.
[[nodiscard]] TwoPattern makePair(const Netlist& nl, TestApplication style, const Pattern& v1,
                                  const std::vector<Logic>& v2_pis, Logic scan_in_bit = Logic::Zero);

/// True if `tp` satisfies the structural constraint of `style` (enhanced
/// scan accepts anything).
[[nodiscard]] bool isValidPair(const Netlist& nl, TestApplication style, const TwoPattern& tp);

/// Stuck-at fault simulation over a pattern set. Runs on the engine in
/// fault/parallel_sim.hpp with the default (single-threaded) options.
[[nodiscard]] FaultSimResult runStuckAtFaultSim(const Netlist& nl, std::span<const Pattern> pats,
                                                std::span<const FaultSite> faults);

/// Transition fault simulation over two-pattern tests (same engine).
[[nodiscard]] FaultSimResult runTransitionFaultSim(const Netlist& nl,
                                                   std::span<const TwoPattern> tests,
                                                   std::span<const TransitionFault> faults);

/// N-detect profile: how many of the tests detect each fault (no fault
/// dropping). Higher multiplicity means the fault is exercised through more
/// distinct paths — the standard proxy for small-delay-defect quality.
/// Batched 64 tests per pass on shared simulators (same engine).
[[nodiscard]] std::vector<std::size_t> countTransitionDetections(
    const Netlist& nl, std::span<const TwoPattern> tests,
    std::span<const TransitionFault> faults);

} // namespace flh
