#include "fault/fault_sim.hpp"

#include "util/rng.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace flh {

const char* toString(TestApplication a) noexcept {
    switch (a) {
        case TestApplication::EnhancedScan: return "enhanced-scan";
        case TestApplication::Broadside: return "broadside";
        case TestApplication::SkewedLoad: return "skewed-load";
    }
    return "?";
}

namespace {

/// Load up to 64 patterns into the simulator (slot i = pattern i); missing
/// slots repeat the last pattern so they never create spurious detections
/// (their detection bits are masked off by `valid`).
void loadPatterns(PatternSim& sim, std::span<const Pattern> pats, std::size_t base,
                  std::size_t count) {
    const Netlist& nl = sim.netlist();
    const auto& pis = nl.pis();
    const auto& ffs = nl.flipFlops();
    for (std::size_t k = 0; k < pis.size(); ++k) {
        PV v;
        for (unsigned slot = 0; slot < 64; ++slot) {
            const Pattern& p = pats[base + std::min<std::size_t>(slot, count - 1)];
            v.set(slot, p.pis.at(k));
        }
        sim.setNet(pis[k], v);
    }
    for (std::size_t k = 0; k < ffs.size(); ++k) {
        PV v;
        for (unsigned slot = 0; slot < 64; ++slot) {
            const Pattern& p = pats[base + std::min<std::size_t>(slot, count - 1)];
            v.set(slot, p.state.at(k));
        }
        sim.setNet(nl.gate(ffs[k]).output, v);
    }
    sim.propagate();
}

/// Observation snapshot: POs then FF D nets.
std::vector<PV> observe(const PatternSim& sim) {
    const Netlist& nl = sim.netlist();
    std::vector<PV> out;
    out.reserve(nl.pos().size() + nl.flipFlops().size());
    for (const NetId po : nl.pos()) out.push_back(sim.get(po));
    for (const GateId ff : nl.flipFlops()) out.push_back(sim.get(nl.gate(ff).inputs[0]));
    return out;
}

/// Slots where any observation point definitely differs.
std::uint64_t diffMask(const std::vector<PV>& good, const std::vector<PV>& faulty) {
    std::uint64_t m = 0;
    for (std::size_t i = 0; i < good.size(); ++i)
        m |= (good[i].v ^ faulty[i].v) & ~good[i].x & ~faulty[i].x;
    return m;
}

} // namespace

std::vector<Pattern> randomPatterns(const Netlist& nl, std::size_t count, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<Pattern> out(count);
    for (Pattern& p : out) {
        p.pis.resize(nl.pis().size());
        p.state.resize(nl.flipFlops().size());
        for (Logic& b : p.pis) b = rng.chance(0.5) ? Logic::One : Logic::Zero;
        for (Logic& b : p.state) b = rng.chance(0.5) ? Logic::One : Logic::Zero;
    }
    return out;
}

std::vector<Logic> nextState(const Netlist& nl, const Pattern& p) {
    PatternSim sim(nl);
    const Pattern pats[1] = {p};
    loadPatterns(sim, pats, 0, 1);
    std::vector<Logic> next(nl.flipFlops().size());
    for (std::size_t k = 0; k < next.size(); ++k)
        next[k] = sim.get(nl.gate(nl.flipFlops()[k]).inputs[0]).get(0);
    return next;
}

TwoPattern makePair(const Netlist& nl, TestApplication style, const Pattern& v1,
                    const std::vector<Logic>& v2_pis, Logic scan_in_bit) {
    if (v1.pis.size() != nl.pis().size() || v1.state.size() != nl.flipFlops().size())
        throw std::invalid_argument("makePair: V1 shape mismatch");
    TwoPattern tp;
    tp.v1 = v1;
    tp.v2.pis = v2_pis;
    switch (style) {
        case TestApplication::EnhancedScan:
            // Caller supplies an arbitrary V2 state afterwards; default to
            // V1's state so the pair is always well-formed.
            tp.v2.state = v1.state;
            break;
        case TestApplication::Broadside:
            tp.v2.state = nextState(nl, v1);
            break;
        case TestApplication::SkewedLoad:
            // One more shift toward the scan-out end: state[i] <- state[i+1].
            tp.v2.state = v1.state;
            for (std::size_t i = 0; i + 1 < tp.v2.state.size(); ++i)
                tp.v2.state[i] = v1.state[i + 1];
            if (!tp.v2.state.empty()) tp.v2.state.back() = scan_in_bit;
            break;
    }
    return tp;
}

bool isValidPair(const Netlist& nl, TestApplication style, const TwoPattern& tp) {
    if (tp.v1.state.size() != nl.flipFlops().size() ||
        tp.v2.state.size() != nl.flipFlops().size())
        return false;
    switch (style) {
        case TestApplication::EnhancedScan:
            return true;
        case TestApplication::Broadside:
            return tp.v2.state == nextState(nl, tp.v1);
        case TestApplication::SkewedLoad: {
            for (std::size_t i = 0; i + 1 < tp.v2.state.size(); ++i)
                if (tp.v2.state[i] != tp.v1.state[i + 1]) return false;
            return true; // the scan-in bit is free
        }
    }
    return false;
}

FaultSimResult runStuckAtFaultSim(const Netlist& nl, std::span<const Pattern> pats,
                                  std::span<const FaultSite> faults) {
    FaultSimResult res;
    res.total = faults.size();
    res.detected_mask.assign(faults.size(), false);
    if (pats.empty() || faults.empty()) return res;

    PatternSim sim(nl);
    for (std::size_t base = 0; base < pats.size(); base += 64) {
        const std::size_t count = std::min<std::size_t>(64, pats.size() - base);
        const std::uint64_t valid = count == 64 ? ~0ULL : ((1ULL << count) - 1);
        loadPatterns(sim, pats, base, count);
        const std::vector<PV> good = observe(sim);

        for (std::size_t fi = 0; fi < faults.size(); ++fi) {
            if (res.detected_mask[fi]) continue;
            sim.injectFault(faults[fi]);
            sim.propagate();
            const std::uint64_t hit = diffMask(good, observe(sim)) & valid;
            sim.clearFault();
            sim.propagate();
            if (hit) {
                res.detected_mask[fi] = true;
                ++res.detected;
            }
        }
    }
    return res;
}

FaultSimResult runTransitionFaultSim(const Netlist& nl, std::span<const TwoPattern> tests,
                                     std::span<const TransitionFault> faults) {
    FaultSimResult res;
    res.total = faults.size();
    res.detected_mask.assign(faults.size(), false);
    if (tests.empty() || faults.empty()) return res;

    PatternSim sim_v1(nl);
    PatternSim sim_v2(nl);

    std::vector<Pattern> v1s;
    std::vector<Pattern> v2s;
    v1s.reserve(tests.size());
    v2s.reserve(tests.size());
    for (const TwoPattern& tp : tests) {
        v1s.push_back(tp.v1);
        v2s.push_back(tp.v2);
    }

    for (std::size_t base = 0; base < tests.size(); base += 64) {
        const std::size_t count = std::min<std::size_t>(64, tests.size() - base);
        const std::uint64_t valid = count == 64 ? ~0ULL : ((1ULL << count) - 1);
        loadPatterns(sim_v1, v1s, base, count);
        loadPatterns(sim_v2, v2s, base, count);
        const std::vector<PV> good = observe(sim_v2);

        for (std::size_t fi = 0; fi < faults.size(); ++fi) {
            if (res.detected_mask[fi]) continue;
            const TransitionFault& tf = faults[fi];

            // V1 must establish the initial value at the fault site.
            const PV at_site = sim_v1.get(tf.net);
            const std::uint64_t want_one = tf.initialValue() == Logic::One ? ~0ULL : 0;
            const std::uint64_t init_ok = ~(at_site.v ^ want_one) & ~at_site.x;

            if ((init_ok & valid) == 0) continue;

            const FaultSite sa = tf.equivalentStuckAt();
            sim_v2.injectFault(sa);
            sim_v2.propagate();
            const std::uint64_t hit = diffMask(good, observe(sim_v2)) & init_ok & valid;
            sim_v2.clearFault();
            sim_v2.propagate();
            if (hit) {
                res.detected_mask[fi] = true;
                ++res.detected;
            }
        }
    }
    return res;
}

std::vector<std::size_t> countTransitionDetections(const Netlist& nl,
                                                   std::span<const TwoPattern> tests,
                                                   std::span<const TransitionFault> faults) {
    std::vector<std::size_t> counts(faults.size(), 0);
    for (const TwoPattern& tp : tests) {
        const TwoPattern one[1] = {tp};
        const FaultSimResult r = runTransitionFaultSim(nl, one, faults);
        for (std::size_t f = 0; f < faults.size(); ++f)
            if (r.detected_mask[f]) ++counts[f];
    }
    return counts;
}

} // namespace flh
