#include "fault/fault_sim.hpp"

#include "fault/parallel_sim.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

#include <stdexcept>

namespace flh {

void FaultSimResult::writeJson(JsonWriter& w) const {
    w.beginObject();
    w.kv("total_faults", static_cast<std::int64_t>(total));
    w.kv("detected", static_cast<std::int64_t>(detected));
    w.kv("coverage_pct", coveragePct());
    w.endObject();
}

const char* toString(TestApplication a) noexcept {
    switch (a) {
        case TestApplication::EnhancedScan: return "enhanced-scan";
        case TestApplication::Broadside: return "broadside";
        case TestApplication::SkewedLoad: return "skewed-load";
    }
    return "?";
}

std::vector<Pattern> randomPatterns(const Netlist& nl, std::size_t count, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<Pattern> out(count);
    for (Pattern& p : out) {
        p.pis.resize(nl.pis().size());
        p.state.resize(nl.flipFlops().size());
        for (Logic& b : p.pis) b = rng.chance(0.5) ? Logic::One : Logic::Zero;
        for (Logic& b : p.state) b = rng.chance(0.5) ? Logic::One : Logic::Zero;
    }
    return out;
}

std::vector<Logic> nextState(const Netlist& nl, const Pattern& p) {
    PatternSim sim(nl);
    const auto& pis = nl.pis();
    const auto& ffs = nl.flipFlops();
    for (std::size_t k = 0; k < pis.size(); ++k) sim.setNet(pis[k], PV::all(p.pis.at(k)));
    for (std::size_t k = 0; k < ffs.size(); ++k)
        sim.setNet(nl.gate(ffs[k]).output, PV::all(p.state.at(k)));
    sim.propagate();
    std::vector<Logic> next(ffs.size());
    for (std::size_t k = 0; k < next.size(); ++k)
        next[k] = sim.get(nl.gate(ffs[k]).inputs[0]).get(0);
    return next;
}

TwoPattern makePair(const Netlist& nl, TestApplication style, const Pattern& v1,
                    const std::vector<Logic>& v2_pis, Logic scan_in_bit) {
    if (v1.pis.size() != nl.pis().size() || v1.state.size() != nl.flipFlops().size())
        throw std::invalid_argument("makePair: V1 shape mismatch");
    TwoPattern tp;
    tp.v1 = v1;
    tp.v2.pis = v2_pis;
    switch (style) {
        case TestApplication::EnhancedScan:
            // Caller supplies an arbitrary V2 state afterwards; default to
            // V1's state so the pair is always well-formed.
            tp.v2.state = v1.state;
            break;
        case TestApplication::Broadside:
            tp.v2.state = nextState(nl, v1);
            break;
        case TestApplication::SkewedLoad:
            // One more shift toward the scan-out end: state[i] <- state[i+1].
            tp.v2.state = v1.state;
            for (std::size_t i = 0; i + 1 < tp.v2.state.size(); ++i)
                tp.v2.state[i] = v1.state[i + 1];
            if (!tp.v2.state.empty()) tp.v2.state.back() = scan_in_bit;
            break;
    }
    return tp;
}

bool isValidPair(const Netlist& nl, TestApplication style, const TwoPattern& tp) {
    if (tp.v1.state.size() != nl.flipFlops().size() ||
        tp.v2.state.size() != nl.flipFlops().size())
        return false;
    switch (style) {
        case TestApplication::EnhancedScan:
            return true;
        case TestApplication::Broadside:
            return tp.v2.state == nextState(nl, tp.v1);
        case TestApplication::SkewedLoad: {
            for (std::size_t i = 0; i + 1 < tp.v2.state.size(); ++i)
                if (tp.v2.state[i] != tp.v1.state[i + 1]) return false;
            return true; // the scan-in bit is free
        }
    }
    return false;
}

FaultSimResult runStuckAtFaultSim(const Netlist& nl, std::span<const Pattern> pats,
                                  std::span<const FaultSite> faults) {
    return runStuckAtFaultSim(nl, pats, faults, FaultSimOptions{});
}

FaultSimResult runTransitionFaultSim(const Netlist& nl, std::span<const TwoPattern> tests,
                                     std::span<const TransitionFault> faults) {
    return runTransitionFaultSim(nl, tests, faults, FaultSimOptions{});
}

std::vector<std::size_t> countTransitionDetections(const Netlist& nl,
                                                   std::span<const TwoPattern> tests,
                                                   std::span<const TransitionFault> faults) {
    return countTransitionDetections(nl, tests, faults, FaultSimOptions{});
}

} // namespace flh
