#include "fault/parallel_sim.hpp"

#include "obs/telemetry.hpp"
#include "sim/packed_sim.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <exception>
#include <string>
#include <thread>

namespace flh {

namespace {

/// Load up to 64 patterns into the simulator (slot i = pattern i); missing
/// slots repeat the last pattern so they never create spurious detections
/// (their detection bits are masked off by `valid`).
void loadPatterns(PatternSim& sim, std::span<const Pattern> pats, std::size_t base,
                  std::size_t count) {
    const Netlist& nl = sim.netlist();
    const auto& pis = nl.pis();
    const auto& ffs = nl.flipFlops();
    for (std::size_t k = 0; k < pis.size(); ++k) {
        PV v;
        for (unsigned slot = 0; slot < 64; ++slot) {
            const Pattern& p = pats[base + std::min<std::size_t>(slot, count - 1)];
            v.set(slot, p.pis.at(k));
        }
        sim.setNet(pis[k], v);
    }
    for (std::size_t k = 0; k < ffs.size(); ++k) {
        PV v;
        for (unsigned slot = 0; slot < 64; ++slot) {
            const Pattern& p = pats[base + std::min<std::size_t>(slot, count - 1)];
            v.set(slot, p.state.at(k));
        }
        sim.setNet(nl.gate(ffs[k]).output, v);
    }
    sim.propagate();
}

/// Observation snapshot into a reusable buffer: POs then FF D nets.
void observeInto(const PatternSim& sim, std::vector<PV>& out) {
    const Netlist& nl = sim.netlist();
    out.clear();
    for (const NetId po : nl.pos()) out.push_back(sim.get(po));
    for (const GateId ff : nl.flipFlops()) out.push_back(sim.get(nl.gate(ff).inputs[0]));
}

/// Slots where any observation point definitely differs.
std::uint64_t diffMask(const std::vector<PV>& good, const std::vector<PV>& faulty) {
    std::uint64_t m = 0;
    for (std::size_t i = 0; i < good.size(); ++i)
        m |= (good[i].v ^ faulty[i].v) & ~good[i].x & ~faulty[i].x;
    return m;
}

std::uint64_t validMask(std::size_t count) {
    return count == 64 ? ~0ULL : ((1ULL << count) - 1);
}

/// One detection bit per fault, shared by every worker. Bits move only
/// 0 -> 1 and each is written under the single-fault independence
/// assumption, so relaxed ordering suffices; the final read-out happens
/// after the pool joins, which synchronizes everything.
class DetectedBitmap {
public:
    explicit DetectedBitmap(std::size_t bits) : words_((bits + 63) / 64) {}

    [[nodiscard]] bool test(std::size_t i) const noexcept {
        return (words_[i >> 6].load(std::memory_order_relaxed) >> (i & 63)) & 1;
    }
    void set(std::size_t i) noexcept {
        words_[i >> 6].fetch_or(1ULL << (i & 63), std::memory_order_relaxed);
    }

private:
    std::vector<std::atomic<std::uint64_t>> words_;
};

/// Telemetry hooks shared by the three grading engines. Counter lookups
/// happen once per process (static refs); workers accumulate locally and
/// flush once per partition so the enabled path adds no per-fault atomics.
struct SimTelemetry {
    obs::Counter& graded = obs::counter("fault_sim.faults_graded");
    obs::Counter& detected = obs::counter("fault_sim.faults_detected");
    obs::Counter& dropped = obs::counter("fault_sim.faults_dropped");
    obs::Counter& batches = obs::counter("fault_sim.batches");
    obs::Counter& partitions = obs::counter("fault_sim.partitions");

    static const SimTelemetry& get() {
        static const SimTelemetry t;
        return t;
    }
};

/// Worker-local accumulators, flushed to the shared counters when the
/// worker's partition finishes.
struct WorkerTally {
    std::uint64_t graded = 0;
    std::uint64_t detected = 0;
    std::uint64_t dropped = 0;
    std::uint64_t batches = 0;

    void flush() const {
        const SimTelemetry& t = SimTelemetry::get();
        t.graded.add(graded);
        t.detected.add(detected);
        t.dropped.add(dropped);
        t.batches.add(batches);
        t.partitions.add(1);
    }
};

/// Span label for one worker's contiguous fault range.
std::string partitionLabel(const char* engine, std::size_t lo, std::size_t hi) {
    return std::string(engine) + ":partition[" + std::to_string(lo) + "," +
           std::to_string(hi) + ")";
}

/// Run `work(lo, hi, tally)` over [0, n) split into `t` contiguous ranges.
/// t == 1 runs inline on the caller. Worker exceptions are rethrown here.
/// `engine` names the grading engine in spans and worker lane labels.
template <typename Fn>
void runPartitioned(const char* engine, std::size_t n, unsigned t, const Fn& work) {
    if (t <= 1 || n == 0) {
        obs::ScopedSpan span(obs::enabled() ? partitionLabel(engine, 0, n) : std::string(),
                             "fault_sim");
        WorkerTally tally;
        work(std::size_t{0}, n, tally);
        tally.flush();
        return;
    }
    std::vector<std::thread> pool;
    std::vector<std::exception_ptr> errors(t);
    pool.reserve(t);
    for (unsigned w = 0; w < t; ++w) {
        const std::size_t lo = n * w / t;
        const std::size_t hi = n * (w + 1) / t;
        pool.emplace_back([&work, &errors, lo, hi, w, engine] {
            try {
                if (obs::enabled())
                    obs::setThreadLabel("sim-worker-" + std::to_string(w));
                obs::ScopedSpan span(
                    obs::enabled() ? partitionLabel(engine, lo, hi) : std::string(),
                    "fault_sim");
                WorkerTally tally;
                work(lo, hi, tally);
                tally.flush();
            } catch (...) {
                errors[w] = std::current_exception();
            }
        });
    }
    for (std::thread& th : pool) th.join();
    for (const std::exception_ptr& e : errors)
        if (e) std::rethrow_exception(e);
}

/// The Netlist builds fanout/topo/levels lazily into mutable caches; force
/// them before spawning so workers only ever read.
void warmCaches(const Netlist& nl) {
    (void)nl.topoOrder();
    (void)nl.levels();
    if (nl.netCount()) (void)nl.fanout(0);
}

// ---- packed (word-parallel) engine helpers -------------------------------

/// Effective packed width for a run: 0 keeps the scalar PatternSim engine;
/// otherwise clamp to the words the pattern count actually fills, so small
/// runs (ATPG grading one test at a time) never propagate unused words.
unsigned effectiveWords(unsigned words, std::size_t n_patterns) {
    if (words == 0) return 0;
    const std::size_t need = (n_patterns + 63) / 64;
    return static_cast<unsigned>(std::min<std::size_t>(
        {static_cast<std::size_t>(words), need, static_cast<std::size_t>(kMaxPackedWords)}));
}

/// Load up to words*64 patterns into the packed simulator (pattern i in
/// word i/64, slot i%64); missing slots repeat the last pattern so they
/// never create spurious detections (masked off via the per-word valid
/// masks). The transpose runs pattern-major — one pass over each Pattern's
/// bit vectors, accumulating words per source — instead of revisiting all
/// words*64 Pattern objects once per source net.
void loadPatternsPacked(PackedSim& sim, std::span<const Pattern> pats, std::size_t base,
                        std::size_t count) {
    const Netlist& nl = sim.netlist();
    const unsigned W = sim.words();
    const auto& pis = nl.pis();
    const auto& ffs = nl.flipFlops();
    const std::size_t n_pis = pis.size();
    const std::size_t n_src = n_pis + ffs.size();
    std::vector<std::uint64_t> tv(n_src * W, 0);
    std::vector<std::uint64_t> tx(n_src * W, 0);
    for (unsigned w = 0; w < W; ++w) {
        for (unsigned slot = 0; slot < 64; ++slot) {
            const std::size_t i = std::min<std::size_t>(64ULL * w + slot, count - 1);
            const Pattern& p = pats[base + i];
            const std::uint64_t bit = 1ULL << slot;
            for (std::size_t k = 0; k < n_pis; ++k) {
                const Logic l = p.pis[k];
                if (l == Logic::One) tv[k * W + w] |= bit;
                else if (l == Logic::X) tx[k * W + w] |= bit;
            }
            for (std::size_t k = 0; k < ffs.size(); ++k) {
                const Logic l = p.state[k];
                if (l == Logic::One) tv[(n_pis + k) * W + w] |= bit;
                else if (l == Logic::X) tx[(n_pis + k) * W + w] |= bit;
            }
        }
    }
    for (std::size_t k = 0; k < n_pis; ++k)
        for (unsigned w = 0; w < W; ++w)
            sim.setNet(pis[k], w, PV{tv[k * W + w], tx[k * W + w]});
    for (std::size_t k = 0; k < ffs.size(); ++k)
        for (unsigned w = 0; w < W; ++w)
            sim.setNet(nl.gate(ffs[k]).output, w,
                       PV{tv[(n_pis + k) * W + w], tx[(n_pis + k) * W + w]});
    sim.propagate();
}

/// One flag per net marking the observation points (POs and FF D nets) for
/// PackedSim::faultDiffOnto. The packed engine detects against the undo
/// log's pre-fault planes, so no good-machine observation snapshot is ever
/// taken: per fault it compares only the nets the fault cone touched.
std::vector<std::uint8_t> observationFlags(const Netlist& nl) {
    std::vector<std::uint8_t> is_obs(nl.netCount(), 0);
    for (const NetId po : nl.pos()) is_obs[po] = 1;
    for (const GateId ff : nl.flipFlops()) is_obs[nl.gate(ff).inputs[0]] = 1;
    return is_obs;
}

/// Valid-slot mask of word `w` in a block of `count` patterns.
std::uint64_t validMaskWord(std::size_t count, unsigned w) {
    const std::size_t lo = 64ULL * w;
    if (count <= lo) return 0;
    return validMask(std::min<std::size_t>(count - lo, 64));
}

} // namespace

FaultSimResult runStuckAtFaultSim(const Netlist& nl, std::span<const Pattern> pats,
                                  std::span<const FaultSite> faults,
                                  const FaultSimOptions& opts) {
    FaultSimResult res;
    res.total = faults.size();
    res.detected_mask.assign(faults.size(), false);
    if (pats.empty() || faults.empty()) return res;

    warmCaches(nl);
    DetectedBitmap det(faults.size());
    const unsigned W = effectiveWords(opts.words, pats.size());
    const unsigned threads = opts.resolveThreads(faults.size());
    if (W) {
        runPartitioned(
            "stuck_at", faults.size(), threads,
            [&](std::size_t lo, std::size_t hi, WorkerTally& tally) {
                if (lo == hi) return;
                PackedSim sim(nl, W);
                const std::vector<std::uint8_t> is_obs = observationFlags(nl);
                std::uint64_t diff[kMaxPackedWords];
                std::uint64_t validw[kMaxPackedWords];
                const std::size_t block = 64ULL * W;
                for (std::size_t base = 0; base < pats.size(); base += block) {
                    obs::ScopedSpan batch_span(
                        obs::enabled() ? "batch@" + std::to_string(base) : std::string(),
                        "fault_sim.batch");
                    ++tally.batches;
                    const std::size_t count = std::min<std::size_t>(block, pats.size() - base);
                    for (unsigned w = 0; w < W; ++w) validw[w] = validMaskWord(count, w);
                    loadPatternsPacked(sim, pats, base, count);
                    for (std::size_t fi = lo; fi < hi; ++fi) {
                        if (det.test(fi)) {
                            ++tally.dropped;
                            continue;
                        }
                        sim.injectFault(faults[fi]);
                        sim.propagate();
                        sim.faultDiffOnto(is_obs.data(), diff);
                        sim.clearFault();
                        ++tally.graded;
                        std::uint64_t hit = 0;
                        for (unsigned w = 0; w < W; ++w) hit |= diff[w] & validw[w];
                        if (hit) {
                            det.set(fi);
                            ++tally.detected;
                        }
                    }
                }
            });

        for (std::size_t fi = 0; fi < faults.size(); ++fi)
            if (det.test(fi)) {
                res.detected_mask[fi] = true;
                ++res.detected;
            }
        return res;
    }
    runPartitioned("stuck_at", faults.size(), threads,
                   [&](std::size_t lo, std::size_t hi, WorkerTally& tally) {
                       if (lo == hi) return;
                       PatternSim sim(nl);
                       std::vector<PV> good;
                       std::vector<PV> faulty;
                       for (std::size_t base = 0; base < pats.size(); base += 64) {
                           obs::ScopedSpan batch_span(
                               obs::enabled() ? "batch@" + std::to_string(base)
                                              : std::string(),
                               "fault_sim.batch");
                           ++tally.batches;
                           const std::size_t count = std::min<std::size_t>(64, pats.size() - base);
                           const std::uint64_t valid = validMask(count);
                           loadPatterns(sim, pats, base, count);
                           observeInto(sim, good);
                           for (std::size_t fi = lo; fi < hi; ++fi) {
                               if (det.test(fi)) {
                                   ++tally.dropped;
                                   continue;
                               }
                               sim.injectFault(faults[fi]);
                               sim.propagate();
                               observeInto(sim, faulty);
                               const std::uint64_t hit = diffMask(good, faulty) & valid;
                               sim.clearFault();
                               ++tally.graded;
                               if (hit) {
                                   det.set(fi);
                                   ++tally.detected;
                               }
                           }
                       }
                   });

    for (std::size_t fi = 0; fi < faults.size(); ++fi)
        if (det.test(fi)) {
            res.detected_mask[fi] = true;
            ++res.detected;
        }
    return res;
}

namespace {

/// Split two-pattern tests into the V1 / V2 pattern sequences the 64-wide
/// loader consumes.
void splitPairs(std::span<const TwoPattern> tests, std::vector<Pattern>& v1s,
                std::vector<Pattern>& v2s) {
    v1s.reserve(tests.size());
    v2s.reserve(tests.size());
    for (const TwoPattern& tp : tests) {
        v1s.push_back(tp.v1);
        v2s.push_back(tp.v2);
    }
}

/// Batch detection mask for one transition fault: slots where V1 launches
/// the transition (initial value established at the site) AND V2 propagates
/// the equivalent stuck-at effect to an observation point.
struct TransitionWorkerState {
    PatternSim sim_v1;
    PatternSim sim_v2;
    std::vector<PV> good;
    std::vector<PV> faulty;

    explicit TransitionWorkerState(const Netlist& nl) : sim_v1(nl), sim_v2(nl) {}

    void loadBatch(std::span<const Pattern> v1s, std::span<const Pattern> v2s,
                   std::size_t base, std::size_t count) {
        loadPatterns(sim_v1, v1s, base, count);
        loadPatterns(sim_v2, v2s, base, count);
        observeInto(sim_v2, good);
    }

    [[nodiscard]] std::uint64_t launchMask(const TransitionFault& tf) const {
        const PV at_site = sim_v1.get(tf.net);
        const std::uint64_t want_one = tf.initialValue() == Logic::One ? ~0ULL : 0;
        return ~(at_site.v ^ want_one) & ~at_site.x;
    }

    [[nodiscard]] std::uint64_t detectMask(const TransitionFault& tf, std::uint64_t init_ok,
                                           std::uint64_t valid) {
        sim_v2.injectFault(tf.equivalentStuckAt());
        sim_v2.propagate();
        observeInto(sim_v2, faulty);
        const std::uint64_t hit = diffMask(good, faulty) & init_ok & valid;
        sim_v2.clearFault();
        return hit;
    }
};

/// Word-packed variant of TransitionWorkerState: same V1-launch / V2-detect
/// split, per word. Detection runs against the V2 machine's undo log
/// (PackedSim::faultDiffOnto) instead of good/faulty observation snapshots.
struct PackedTransitionState {
    PackedSim sim_v1;
    PackedSim sim_v2;
    std::vector<std::uint8_t> is_obs;

    PackedTransitionState(const Netlist& nl, unsigned words)
        : sim_v1(nl, words), sim_v2(nl, words), is_obs(observationFlags(nl)) {}

    void loadBlock(std::span<const Pattern> v1s, std::span<const Pattern> v2s, std::size_t base,
                   std::size_t count) {
        loadPatternsPacked(sim_v1, v1s, base, count);
        loadPatternsPacked(sim_v2, v2s, base, count);
    }

    /// Fill `init_ok` with the per-word launch-and-valid mask; returns the
    /// OR over words (zero means no slot of this block can detect `tf`).
    std::uint64_t launchMask(const TransitionFault& tf, const std::uint64_t* validw,
                             std::uint64_t* init_ok) const {
        const unsigned W = sim_v1.words();
        const std::uint64_t* v = sim_v1.valuePlane(tf.net);
        const std::uint64_t* x = sim_v1.unknownPlane(tf.net);
        const std::uint64_t want_one = tf.initialValue() == Logic::One ? ~0ULL : 0;
        std::uint64_t any = 0;
        for (unsigned w = 0; w < W; ++w) {
            init_ok[w] = ~(v[w] ^ want_one) & ~x[w] & validw[w];
            any |= init_ok[w];
        }
        return any;
    }

    /// Fill `hit` with the per-word detection mask; returns the OR over
    /// words.
    std::uint64_t detectMask(const TransitionFault& tf, const std::uint64_t* init_ok,
                             std::uint64_t* hit) {
        const unsigned W = sim_v2.words();
        sim_v2.injectFault(tf.equivalentStuckAt());
        sim_v2.propagate();
        sim_v2.faultDiffOnto(is_obs.data(), hit);
        sim_v2.clearFault();
        std::uint64_t any = 0;
        for (unsigned w = 0; w < W; ++w) {
            hit[w] &= init_ok[w];
            any |= hit[w];
        }
        return any;
    }
};

} // namespace

FaultSimResult runTransitionFaultSim(const Netlist& nl, std::span<const TwoPattern> tests,
                                     std::span<const TransitionFault> faults,
                                     const FaultSimOptions& opts) {
    FaultSimResult res;
    res.total = faults.size();
    res.detected_mask.assign(faults.size(), false);
    if (tests.empty() || faults.empty()) return res;

    warmCaches(nl);
    std::vector<Pattern> v1s;
    std::vector<Pattern> v2s;
    splitPairs(tests, v1s, v2s);

    DetectedBitmap det(faults.size());
    const unsigned W = effectiveWords(opts.words, tests.size());
    const unsigned threads = opts.resolveThreads(faults.size());
    if (W) {
        runPartitioned(
            "transition", faults.size(), threads,
            [&](std::size_t lo, std::size_t hi, WorkerTally& tally) {
                if (lo == hi) return;
                PackedTransitionState ws(nl, W);
                std::uint64_t validw[kMaxPackedWords];
                std::uint64_t init_ok[kMaxPackedWords];
                std::uint64_t hit[kMaxPackedWords];
                const std::size_t block = 64ULL * W;
                for (std::size_t base = 0; base < tests.size(); base += block) {
                    obs::ScopedSpan batch_span(
                        obs::enabled() ? "batch@" + std::to_string(base) : std::string(),
                        "fault_sim.batch");
                    ++tally.batches;
                    const std::size_t count = std::min<std::size_t>(block, tests.size() - base);
                    for (unsigned w = 0; w < W; ++w) validw[w] = validMaskWord(count, w);
                    ws.loadBlock(v1s, v2s, base, count);
                    for (std::size_t fi = lo; fi < hi; ++fi) {
                        if (det.test(fi)) {
                            ++tally.dropped;
                            continue;
                        }
                        if (ws.launchMask(faults[fi], validw, init_ok) == 0) continue;
                        ++tally.graded;
                        if (ws.detectMask(faults[fi], init_ok, hit)) {
                            det.set(fi);
                            ++tally.detected;
                        }
                    }
                }
            });

        for (std::size_t fi = 0; fi < faults.size(); ++fi)
            if (det.test(fi)) {
                res.detected_mask[fi] = true;
                ++res.detected;
            }
        return res;
    }
    runPartitioned("transition", faults.size(), threads,
                   [&](std::size_t lo, std::size_t hi, WorkerTally& tally) {
                       if (lo == hi) return;
                       TransitionWorkerState ws(nl);
                       for (std::size_t base = 0; base < tests.size(); base += 64) {
                           obs::ScopedSpan batch_span(
                               obs::enabled() ? "batch@" + std::to_string(base)
                                              : std::string(),
                               "fault_sim.batch");
                           ++tally.batches;
                           const std::size_t count = std::min<std::size_t>(64, tests.size() - base);
                           const std::uint64_t valid = validMask(count);
                           ws.loadBatch(v1s, v2s, base, count);
                           for (std::size_t fi = lo; fi < hi; ++fi) {
                               if (det.test(fi)) {
                                   ++tally.dropped;
                                   continue;
                               }
                               const std::uint64_t init_ok = ws.launchMask(faults[fi]);
                               if ((init_ok & valid) == 0) continue;
                               ++tally.graded;
                               if (ws.detectMask(faults[fi], init_ok, valid)) {
                                   det.set(fi);
                                   ++tally.detected;
                               }
                           }
                       }
                   });

    for (std::size_t fi = 0; fi < faults.size(); ++fi)
        if (det.test(fi)) {
            res.detected_mask[fi] = true;
            ++res.detected;
        }
    return res;
}

std::vector<std::size_t> countTransitionDetections(const Netlist& nl,
                                                   std::span<const TwoPattern> tests,
                                                   std::span<const TransitionFault> faults,
                                                   const FaultSimOptions& opts) {
    std::vector<std::size_t> counts(faults.size(), 0);
    if (tests.empty() || faults.empty()) return counts;

    warmCaches(nl);
    std::vector<Pattern> v1s;
    std::vector<Pattern> v2s;
    splitPairs(tests, v1s, v2s);

    // No fault dropping (the profile needs every test), and each worker
    // writes a disjoint slice of `counts`, so no synchronization is needed.
    const unsigned W = effectiveWords(opts.words, tests.size());
    const unsigned threads = opts.resolveThreads(faults.size());
    if (W) {
        runPartitioned(
            "ndetect", faults.size(), threads,
            [&](std::size_t lo, std::size_t hi, WorkerTally& tally) {
                if (lo == hi) return;
                PackedTransitionState ws(nl, W);
                std::uint64_t validw[kMaxPackedWords];
                std::uint64_t init_ok[kMaxPackedWords];
                std::uint64_t hit[kMaxPackedWords];
                const std::size_t block = 64ULL * W;
                for (std::size_t base = 0; base < tests.size(); base += block) {
                    obs::ScopedSpan batch_span(
                        obs::enabled() ? "batch@" + std::to_string(base) : std::string(),
                        "fault_sim.batch");
                    ++tally.batches;
                    const std::size_t count = std::min<std::size_t>(block, tests.size() - base);
                    for (unsigned w = 0; w < W; ++w) validw[w] = validMaskWord(count, w);
                    ws.loadBlock(v1s, v2s, base, count);
                    for (std::size_t fi = lo; fi < hi; ++fi) {
                        if (ws.launchMask(faults[fi], validw, init_ok) == 0) continue;
                        ++tally.graded;
                        ws.detectMask(faults[fi], init_ok, hit);
                        for (unsigned w = 0; w < W; ++w)
                            counts[fi] += static_cast<std::size_t>(std::popcount(hit[w]));
                    }
                }
            });
        return counts;
    }
    runPartitioned("ndetect", faults.size(), threads,
                   [&](std::size_t lo, std::size_t hi, WorkerTally& tally) {
                       if (lo == hi) return;
                       TransitionWorkerState ws(nl);
                       for (std::size_t base = 0; base < tests.size(); base += 64) {
                           obs::ScopedSpan batch_span(
                               obs::enabled() ? "batch@" + std::to_string(base)
                                              : std::string(),
                               "fault_sim.batch");
                           ++tally.batches;
                           const std::size_t count = std::min<std::size_t>(64, tests.size() - base);
                           const std::uint64_t valid = validMask(count);
                           ws.loadBatch(v1s, v2s, base, count);
                           for (std::size_t fi = lo; fi < hi; ++fi) {
                               const std::uint64_t init_ok = ws.launchMask(faults[fi]);
                               if ((init_ok & valid) == 0) continue;
                               ++tally.graded;
                               counts[fi] += static_cast<std::size_t>(
                                   std::popcount(ws.detectMask(faults[fi], init_ok, valid)));
                           }
                       }
                   });
    return counts;
}

} // namespace flh
