// Path-delay fault model (Section IV: "the conventional stuck-at fault
// model, transition and path delay fault models remain valid").
//
// A path-delay fault is a slow rising/falling transition along one complete
// structural path from a launch point (PI or scan-FF output) to a capture
// point (PO or scan-FF D input). Testing it needs a two-pattern test whose
// V2 *sensitizes* every gate along the path (side inputs at non-controlling
// values) while V1/V2 launch the transition at the path input — exactly the
// arbitrary-pair capability FLH provides.
//
// This module enumerates the timing-critical paths (the ones worth testing)
// and checks sensitization; test generation lives in atpg/path_atpg.hpp.
#pragma once

#include "fault/fault_sim.hpp"
#include "sta/timing.hpp"

#include <vector>

namespace flh {

/// One structural path: nets[0] is the launch net (PI or FF Q), nets.back()
/// the capture net; gates[i] drives nets[i+1] from nets[i].
struct DelayPath {
    std::vector<NetId> nets;
    std::vector<GateId> gates;
    double delay_ps = 0.0;

    [[nodiscard]] std::size_t length() const noexcept { return gates.size(); }
};

/// A path-delay fault: a path plus the transition polarity at its input.
struct PathDelayFault {
    DelayPath path;
    bool rising = true; ///< transition launched at nets[0]
};

/// Enumerate every structural path whose delay is within `slack_window_ps`
/// of the critical delay, capped at `max_paths` (longest first).
[[nodiscard]] std::vector<DelayPath> enumerateCriticalPaths(const Netlist& nl,
                                                            const TimingOverlay& ov,
                                                            double slack_window_ps,
                                                            std::size_t max_paths = 64);

/// Side-input sensitization constraints for a path under V2: (net, value)
/// pairs that put every off-path input at a non-controlling value. Returns
/// false if the path passes through a gate that cannot be statically
/// sensitized this way (e.g. conflicting requirements on one net).
bool sensitizationConstraints(const Netlist& nl, const DelayPath& path,
                              std::vector<std::pair<NetId, Logic>>& out);

/// The value the path input must hold under V2 for the transition to travel
/// with the given polarity, and the resulting value at each on-path net.
/// on_path_values[i] corresponds to path.nets[i].
[[nodiscard]] std::vector<Logic> onPathValues(const Netlist& nl, const DelayPath& path,
                                              bool rising_at_input);

/// Validate that a two-pattern test really tests the fault (non-robust
/// criterion): V2 satisfies the sensitization constraints and the on-path
/// values; V1 sets the path input to the opposite value.
[[nodiscard]] bool testsPath(const Netlist& nl, const PathDelayFault& fault,
                             const TwoPattern& tp);

} // namespace flh
