#include "fault/small_delay.hpp"

#include <algorithm>

namespace flh {

std::vector<double> longestPathThroughNet(const Netlist& nl, const TimingOverlay& ov) {
    const TimingResult sta = runSta(nl, ov);

    // downstream[n]: max remaining delay from n to any endpoint.
    std::vector<bool> is_end(nl.netCount(), false);
    for (const NetId po : nl.pos()) is_end[po] = true;
    for (const GateId ff : nl.flipFlops()) is_end[nl.gate(ff).inputs[0]] = true;

    std::vector<double> downstream(nl.netCount(), -1e18);
    for (NetId n = 0; n < nl.netCount(); ++n)
        if (is_end[n]) downstream[n] = 0.0;
    const auto& topo = nl.topoOrder();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const Gate& g = nl.gate(*it);
        if (downstream[g.output] < -1e17) continue;
        const double d = gateDelayPs(nl, *it, ov) + downstream[g.output];
        for (const NetId in : g.inputs) downstream[in] = std::max(downstream[in], d);
    }

    std::vector<double> through(nl.netCount(), 0.0);
    for (NetId n = 0; n < nl.netCount(); ++n)
        through[n] = downstream[n] < -1e17 ? 0.0 : sta.arrival_ps[n] + downstream[n];
    return through;
}

std::vector<SddGrade> gradeSmallDelayCoverage(const Netlist& nl, const TimingOverlay& ov,
                                              std::span<const TwoPattern> tests,
                                              std::span<const TransitionFault> faults,
                                              double clock_ps,
                                              std::span<const double> defect_sizes_ps) {
    const auto through = longestPathThroughNet(nl, ov);
    const FaultSimResult sim = runTransitionFaultSim(nl, tests, faults);

    std::vector<SddGrade> grades;
    grades.reserve(defect_sizes_ps.size());
    for (const double d : defect_sizes_ps) {
        SddGrade g;
        g.defect_size_ps = d;
        for (std::size_t f = 0; f < faults.size(); ++f) {
            if (through[faults[f].net] + d <= clock_ps) continue; // harmless defect
            ++g.detectable;
            if (sim.detected_mask[f]) ++g.detected;
        }
        grades.push_back(g);
    }
    return grades;
}

} // namespace flh
