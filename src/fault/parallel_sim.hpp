// Multi-threaded fault-simulation engine.
//
// The fault list is split into contiguous ranges, one per worker; each
// worker owns a private simulator replica (two for two-pattern tests) and
// grades only its range, block-major: for every pattern block the worker
// loads the block, snapshots the good machine, then injects each
// still-undetected fault of its range, propagates the faulty cone
// event-driven, compares observation points, and rolls the simulator back
// through the recorded event frontier (clearFault).
//
// The default engine is the word-packed PPSFP simulator (sim/packed_sim.hpp):
// a block is FaultSimOptions::words x 64 patterns, evaluated plane-wise by
// the runtime-dispatched SIMD kernel (cell/logic_block.hpp). words = 0
// selects the scalar 64-wide PatternSim path, kept as the differential
// oracle; both produce bit-identical detected masks (the verdict is a pure
// function of the pattern set). The packed width is clamped per run to
// ceil(n_patterns / 64), so small pattern sets never pay for unused words.
//
// Fault dropping is shared through an atomic detected bitmap: a worker sets
// a fault's bit with a relaxed fetch_or on first detection and skips any
// fault whose bit is already set. Since faults are independent (single-fault
// assumption) and each fault's verdict is a pure function of the pattern
// set, the result is deterministic: every thread count produces the same
// detected mask, bit-identical to the serial engine (threads = 1 runs the
// identical loop inline, with no pool at all).
#pragma once

#include "fault/fault_sim.hpp"
#include "util/exec_policy.hpp"

namespace flh {

/// Tuning knobs for the fault-simulation engine.
///
/// The two threading fields are kept as thin, deprecated aliases of the
/// unified flh::ExecPolicy vocabulary (util/exec_policy.hpp): `threads`
/// maps to ExecPolicy::threads and `min_faults_per_worker` to
/// ExecPolicy::min_items_per_worker. New code should build an ExecPolicy
/// and assign through exec(); resolution always goes through the single
/// ExecPolicy::resolveThreads implementation.
struct FaultSimOptions {
    /// Worker threads. 1 = run inline on the calling thread (no spawn);
    /// 0 = one worker per hardware thread. Deprecated alias of
    /// ExecPolicy::threads.
    unsigned threads = 1;

    /// Pool shrink floor: never spawn more workers than
    /// n_faults / min_faults_per_worker — below that the per-worker
    /// good-machine loads and thread startup dominate the grading work.
    /// 0 disables the floor. Deprecated alias of
    /// ExecPolicy::min_items_per_worker.
    std::size_t min_faults_per_worker = 64;

    /// 64-bit words per packed-simulation block: each propagation pass
    /// grades words x 64 patterns (kMaxPackedWords max). 0 selects the
    /// scalar one-word PatternSim engine — the differential oracle; any
    /// width produces bit-identical detected masks. Values above
    /// ceil(n_patterns / 64) are clamped, so the default never slows down
    /// single-batch runs (e.g. ATPG grading one test at a time).
    unsigned words = 4;

    /// The unified policy view of the knobs above.
    [[nodiscard]] ExecPolicy exec() const noexcept {
        return ExecPolicy{threads, min_faults_per_worker};
    }

    /// Replace both knobs from a policy.
    void setExec(const ExecPolicy& p) noexcept {
        threads = p.threads;
        min_faults_per_worker = p.min_items_per_worker;
    }

    /// Effective worker count for an `n_faults`-sized fault list. Always
    /// >= 1, even for threads = 0 on hardware that reports no concurrency
    /// or for min_faults_per_worker = 0.
    [[nodiscard]] unsigned resolveThreads(std::size_t n_faults) const noexcept {
        return exec().resolveThreads(n_faults);
    }
};

/// Stuck-at grading with fault dropping, partitioned across workers.
[[nodiscard]] FaultSimResult runStuckAtFaultSim(const Netlist& nl,
                                                std::span<const Pattern> pats,
                                                std::span<const FaultSite> faults,
                                                const FaultSimOptions& opts);

/// Transition grading with fault dropping, partitioned across workers.
[[nodiscard]] FaultSimResult runTransitionFaultSim(const Netlist& nl,
                                                   std::span<const TwoPattern> tests,
                                                   std::span<const TransitionFault> faults,
                                                   const FaultSimOptions& opts);

/// N-detect profile (no fault dropping): per-test detections are counted
/// 64 tests at a time via popcount of the batch hit mask, partitioned
/// across workers (each writes a disjoint slice of the counts).
[[nodiscard]] std::vector<std::size_t> countTransitionDetections(
    const Netlist& nl, std::span<const TwoPattern> tests,
    std::span<const TransitionFault> faults, const FaultSimOptions& opts);

} // namespace flh
