#include "fault/path_delay.hpp"

#include <algorithm>
#include <functional>
#include <map>

namespace flh {

namespace {

/// Endpoint nets: POs and FF D inputs.
std::vector<bool> endpointMask(const Netlist& nl) {
    std::vector<bool> is_end(nl.netCount(), false);
    for (const NetId po : nl.pos()) is_end[po] = true;
    for (const GateId ff : nl.flipFlops()) is_end[nl.gate(ff).inputs[0]] = true;
    return is_end;
}

} // namespace

std::vector<DelayPath> enumerateCriticalPaths(const Netlist& nl, const TimingOverlay& ov,
                                              double slack_window_ps, std::size_t max_paths) {
    const TimingResult sta = runSta(nl, ov);
    const double threshold = sta.critical_delay_ps - slack_window_ps;
    const auto is_end = endpointMask(nl);

    // downstream[n]: max remaining delay from net n to any endpoint.
    std::vector<double> downstream(nl.netCount(), -1e18);
    for (NetId n = 0; n < nl.netCount(); ++n)
        if (is_end[n]) downstream[n] = 0.0;
    const auto& topo = nl.topoOrder();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const Gate& g = nl.gate(*it);
        if (downstream[g.output] < -1e17) continue;
        const double d = gateDelayPs(nl, *it, ov) + downstream[g.output];
        for (const NetId in : g.inputs) downstream[in] = std::max(downstream[in], d);
    }

    std::vector<DelayPath> found;
    long budget = 500000; // DFS step guard

    struct Frame {
        NetId net;
        double prefix;
    };
    DelayPath current;

    const std::function<void(NetId, double)> dfs = [&](NetId net, double prefix) {
        if (--budget < 0 || found.size() >= max_paths * 4) return;
        if (prefix + downstream[net] < threshold - 1e-9) return;
        current.nets.push_back(net);
        if (is_end[net] && prefix >= threshold - 1e-9) {
            DelayPath p = current;
            p.delay_ps = prefix;
            found.push_back(std::move(p));
        }
        for (const PinRef& pr : nl.fanout(net)) {
            if (isSequential(nl.gate(pr.gate).fn)) continue;
            current.gates.push_back(pr.gate);
            dfs(nl.gate(pr.gate).output, prefix + gateDelayPs(nl, pr.gate, ov));
            current.gates.pop_back();
        }
        current.nets.pop_back();
    };

    for (const NetId pi : nl.pis()) dfs(pi, sta.arrival_ps[pi]);
    for (const GateId ff : nl.flipFlops()) {
        const NetId q = nl.gate(ff).output;
        dfs(q, sta.arrival_ps[q]); // arrival already includes clk2q + series
    }

    std::sort(found.begin(), found.end(),
              [](const DelayPath& a, const DelayPath& b) { return a.delay_ps > b.delay_ps; });
    if (found.size() > max_paths) found.resize(max_paths);
    return found;
}

namespace {

/// Side-input requirements for propagating through `gate` via input `pin`.
/// Empty value = no constraint on that pin. Returns false if the function
/// cannot be sensitized pin-locally.
bool sideRequirements(CellFn fn, std::size_t pin, std::size_t arity,
                      std::vector<std::pair<std::size_t, Logic>>& req) {
    req.clear();
    switch (fn) {
        case CellFn::Buf:
        case CellFn::Inv:
            return true;
        case CellFn::And:
        case CellFn::Nand:
            for (std::size_t p = 0; p < arity; ++p)
                if (p != pin) req.push_back({p, Logic::One});
            return true;
        case CellFn::Or:
        case CellFn::Nor:
            for (std::size_t p = 0; p < arity; ++p)
                if (p != pin) req.push_back({p, Logic::Zero});
            return true;
        case CellFn::Xor:
        case CellFn::Xnor:
            // Pin any side value; zero keeps the polarity bookkeeping simple.
            for (std::size_t p = 0; p < arity; ++p)
                if (p != pin) req.push_back({p, Logic::Zero});
            return true;
        case CellFn::Aoi21: // !((a&b)|c)
            if (pin == 0) req = {{1, Logic::One}, {2, Logic::Zero}};
            if (pin == 1) req = {{0, Logic::One}, {2, Logic::Zero}};
            if (pin == 2) req = {{0, Logic::Zero}};
            return true;
        case CellFn::Aoi22: // !((a&b)|(c&d))
            if (pin == 0) req = {{1, Logic::One}, {2, Logic::Zero}};
            if (pin == 1) req = {{0, Logic::One}, {2, Logic::Zero}};
            if (pin == 2) req = {{3, Logic::One}, {0, Logic::Zero}};
            if (pin == 3) req = {{2, Logic::One}, {0, Logic::Zero}};
            return true;
        case CellFn::Oai21: // !((a|b)&c)
            if (pin == 0) req = {{1, Logic::Zero}, {2, Logic::One}};
            if (pin == 1) req = {{0, Logic::Zero}, {2, Logic::One}};
            if (pin == 2) req = {{0, Logic::One}};
            return true;
        case CellFn::Oai22: // !((a|b)&(c|d))
            if (pin == 0) req = {{1, Logic::Zero}, {2, Logic::One}};
            if (pin == 1) req = {{0, Logic::Zero}, {2, Logic::One}};
            if (pin == 2) req = {{3, Logic::Zero}, {0, Logic::One}};
            if (pin == 3) req = {{2, Logic::Zero}, {0, Logic::One}};
            return true;
        case CellFn::Mux2: // (a, b, s)
            if (pin == 0) req = {{2, Logic::Zero}};
            if (pin == 1) req = {{2, Logic::One}};
            if (pin == 2) req = {{0, Logic::Zero}, {1, Logic::One}};
            return true;
        case CellFn::Dff:
        case CellFn::Sdff:
            return false;
    }
    return false;
}

} // namespace

bool sensitizationConstraints(const Netlist& nl, const DelayPath& path,
                              std::vector<std::pair<NetId, Logic>>& out) {
    out.clear();
    std::map<NetId, Logic> merged;
    for (std::size_t i = 0; i < path.gates.size(); ++i) {
        const Gate& g = nl.gate(path.gates[i]);
        // Locate the on-path pin (first occurrence).
        std::size_t pin = g.inputs.size();
        for (std::size_t p = 0; p < g.inputs.size(); ++p) {
            if (g.inputs[p] == path.nets[i]) {
                pin = p;
                break;
            }
        }
        if (pin == g.inputs.size()) return false;

        std::vector<std::pair<std::size_t, Logic>> req;
        if (!sideRequirements(g.fn, pin, g.inputs.size(), req)) return false;
        for (const auto& [p, v] : req) {
            const NetId n = g.inputs[p];
            // A side requirement on an on-path net is checked later against
            // the on-path values; collect it all the same.
            const auto it = merged.find(n);
            if (it != merged.end() && it->second != v) return false; // conflict
            merged[n] = v;
        }
    }
    // On-path nets must not carry side constraints that contradict the
    // transition values; verify against both polarities' value chains later
    // (callers pair this with onPathValues).
    out.assign(merged.begin(), merged.end());
    return true;
}

std::vector<Logic> onPathValues(const Netlist& nl, const DelayPath& path, bool rising_at_input) {
    std::vector<std::pair<NetId, Logic>> cons;
    if (!sensitizationConstraints(nl, path, cons)) return {};
    std::map<NetId, Logic> side(cons.begin(), cons.end());

    std::vector<Logic> values(path.nets.size(), Logic::X);
    values[0] = rising_at_input ? Logic::One : Logic::Zero;
    for (std::size_t i = 0; i < path.gates.size(); ++i) {
        const Gate& g = nl.gate(path.gates[i]);
        Logic ins[8];
        for (std::size_t p = 0; p < g.inputs.size(); ++p) {
            const NetId n = g.inputs[p];
            if (n == path.nets[i]) {
                ins[p] = values[i];
            } else if (const auto it = side.find(n); it != side.end()) {
                ins[p] = it->second;
            } else {
                ins[p] = Logic::X;
            }
        }
        const Logic out = evalCellScalar(g.fn, {ins, g.inputs.size()});
        if (out == Logic::X) return {}; // sensitization insufficient
        values[i + 1] = out;
    }
    // Check on-path nets against side constraints (no contradictions).
    for (std::size_t i = 0; i < path.nets.size(); ++i) {
        const auto it = side.find(path.nets[i]);
        if (it != side.end() && it->second != values[i]) return {};
    }
    return values;
}

bool testsPath(const Netlist& nl, const PathDelayFault& fault, const TwoPattern& tp) {
    const auto values = onPathValues(nl, fault.path, fault.rising);
    if (values.empty()) return false;
    std::vector<std::pair<NetId, Logic>> cons;
    if (!sensitizationConstraints(nl, fault.path, cons)) return false;

    const auto load = [&](const Pattern& p) {
        PatternSim sim(nl);
        for (std::size_t i = 0; i < nl.pis().size(); ++i)
            sim.setNet(nl.pis()[i], PV::all(p.pis[i]));
        for (std::size_t i = 0; i < nl.flipFlops().size(); ++i)
            sim.setNet(nl.gate(nl.flipFlops()[i]).output, PV::all(p.state[i]));
        sim.propagate();
        return sim;
    };

    // V1: the path input holds the pre-transition value.
    {
        PatternSim sim = load(tp.v1);
        if (sim.get(fault.path.nets[0]).get(0) != negate(values[0])) return false;
    }
    // V2: sensitized path, post-transition values along it.
    {
        PatternSim sim = load(tp.v2);
        for (const auto& [n, v] : cons)
            if (sim.get(n).get(0) != v) return false;
        for (std::size_t i = 0; i < fault.path.nets.size(); ++i)
            if (sim.get(fault.path.nets[i]).get(0) != values[i]) return false;
    }
    return true;
}

} // namespace flh
