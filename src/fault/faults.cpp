#include "fault/faults.hpp"

#include <unordered_set>

namespace flh {

std::string toString(const Netlist& nl, const FaultSite& f) {
    std::string s = nl.net(f.net).name;
    if (f.isPinFault())
        s += "->g" + std::to_string(f.gate) + ".p" + std::to_string(f.pin);
    s += f.stuck_at_one ? "/1" : "/0";
    return s;
}

std::string toString(const Netlist& nl, const TransitionFault& f) {
    return nl.net(f.net).name + (f.kind == Transition::SlowToRise ? " STR" : " STF");
}

namespace {

bool isObservableNet(const Netlist& nl, NetId n) {
    // A net is part of the fault universe if it is a PI or driven by a
    // combinational gate; FF outputs are pseudo-PIs and carry faults too.
    (void)nl;
    (void)n;
    return true;
}

} // namespace

std::vector<FaultSite> allStuckAtFaults(const Netlist& nl) {
    std::vector<FaultSite> out;
    for (NetId n = 0; n < nl.netCount(); ++n) {
        if (!isObservableNet(nl, n)) continue;
        for (const bool sa1 : {false, true}) {
            FaultSite f;
            f.net = n;
            f.stuck_at_one = sa1;
            out.push_back(f);
        }
        for (const PinRef& pr : nl.fanout(n)) {
            if (isSequential(nl.gate(pr.gate).fn)) continue;
            for (const bool sa1 : {false, true}) {
                FaultSite f;
                f.net = n;
                f.gate = pr.gate;
                f.pin = pr.pin;
                f.stuck_at_one = sa1;
                out.push_back(f);
            }
        }
    }
    return out;
}

std::vector<FaultSite> collapsedStuckAtFaults(const Netlist& nl) {
    std::vector<FaultSite> out;
    for (NetId n = 0; n < nl.netCount(); ++n) {
        // Keep both output faults on every net.
        for (const bool sa1 : {false, true}) {
            FaultSite f;
            f.net = n;
            f.stuck_at_one = sa1;
            out.push_back(f);
        }
        // Input-pin faults are distinct only where the net fans out to more
        // than one combinational pin (a fanout stem); on a fanout-free net
        // the pin fault is equivalent to the net fault.
        std::size_t comb_fanout = 0;
        for (const PinRef& pr : nl.fanout(n))
            if (!isSequential(nl.gate(pr.gate).fn)) ++comb_fanout;
        if (comb_fanout <= 1) continue;
        for (const PinRef& pr : nl.fanout(n)) {
            const Gate& g = nl.gate(pr.gate);
            if (isSequential(g.fn)) continue;
            // BUF/INV inputs collapse to their (inverted) output faults.
            if (g.fn == CellFn::Buf || g.fn == CellFn::Inv) continue;
            for (const bool sa1 : {false, true}) {
                FaultSite f;
                f.net = n;
                f.gate = pr.gate;
                f.pin = pr.pin;
                f.stuck_at_one = sa1;
                out.push_back(f);
            }
        }
    }
    return out;
}

std::vector<TransitionFault> allTransitionFaults(const Netlist& nl) {
    std::vector<TransitionFault> out;
    for (NetId n = 0; n < nl.netCount(); ++n) {
        for (const Transition k : {Transition::SlowToRise, Transition::SlowToFall})
            out.push_back(TransitionFault{n, k});
    }
    return out;
}

} // namespace flh
