// Fault models: stuck-at and transition (gate-delay) faults.
//
// Fault universe follows standard practice (Bushnell & Agrawal, the paper's
// reference [11]):
//  * stuck-at faults on every gate output net and every gate input pin,
//    collapsed by structural equivalence (a fanout-free net keeps only the
//    output fault of its dominating class);
//  * transition faults (slow-to-rise / slow-to-fall) on every net — a
//    slow-to-rise fault at n is detected by a two-pattern test (V1, V2)
//    where V1 sets n = 0 and V2 both sets n = 1 and propagates n's
//    stuck-at-0 effect to an observation point.
//
// Section IV of the paper: FLH changes neither the models nor the vectors;
// this module lets the benches demonstrate that instead of asserting it.
#pragma once

#include "sim/pattern_sim.hpp"

#include <string>
#include <vector>

namespace flh {

/// Transition-fault polarity.
enum class Transition : std::uint8_t {
    SlowToRise, ///< tested by V1: n=0, V2: detect n stuck-at-0
    SlowToFall, ///< tested by V1: n=1, V2: detect n stuck-at-1
};

struct TransitionFault {
    NetId net = kInvalidId;
    Transition kind = Transition::SlowToRise;

    [[nodiscard]] bool operator==(const TransitionFault&) const noexcept = default;

    /// The stuck-at fault whose detection by V2 completes the test.
    [[nodiscard]] FaultSite equivalentStuckAt() const noexcept {
        FaultSite f;
        f.net = net;
        f.stuck_at_one = (kind == Transition::SlowToFall);
        return f;
    }

    /// Value V1 must establish at the net.
    [[nodiscard]] Logic initialValue() const noexcept {
        return kind == Transition::SlowToRise ? Logic::Zero : Logic::One;
    }
};

/// Human-readable fault names for reports.
[[nodiscard]] std::string toString(const Netlist& nl, const FaultSite& f);
[[nodiscard]] std::string toString(const Netlist& nl, const TransitionFault& f);

/// Full (uncollapsed) stuck-at list: 2 output faults per net + 2 faults per
/// gate input pin.
[[nodiscard]] std::vector<FaultSite> allStuckAtFaults(const Netlist& nl);

/// Structurally collapsed stuck-at list. For single-input cells (BUF/INV)
/// input faults are equivalent to (possibly inverted) output faults; on
/// fanout-free nets, input faults collapse into the net fault.
[[nodiscard]] std::vector<FaultSite> collapsedStuckAtFaults(const Netlist& nl);

/// Transition-fault list: slow-to-rise and slow-to-fall on every gate output
/// and primary input net.
[[nodiscard]] std::vector<TransitionFault> allTransitionFaults(const Netlist& nl);

} // namespace flh
