// Small-delay defect (SDD) grading: timing-aware transition-fault quality.
//
// A transition test detects a delay defect of size D at net n only if the
// launch-to-capture path it actually exercises through n, plus D, exceeds
// the capture clock. Classic transition-fault coverage implicitly assumes
// D = infinity; real defects are finite, so tests that detect a fault
// through *short* paths miss small defects on the long ones. This module
// grades a two-pattern test set across defect sizes:
//
//   detection margin(n, test) = T_clk - arrival-through-n-to-capture
//
// approximated structurally: a test detecting fault f through the fault
// simulator is credited with the *longest* static path through n that the
// test sensitizes at V2 (lower-bounded by the STA longest path through n
// when exact sensitization tracking is off).
//
// The paper's FLH enables at-speed capture ("results are latched after one
// rated clock period"), which is exactly what makes SDD coverage meaningful.
#pragma once

#include "fault/fault_sim.hpp"
#include "sta/timing.hpp"

#include <vector>

namespace flh {

/// Longest structural source-to-capture delay through each net (ps):
/// arrival[n] + downstream[n] under the overlay.
[[nodiscard]] std::vector<double> longestPathThroughNet(const Netlist& nl,
                                                        const TimingOverlay& ov);

struct SddGrade {
    double defect_size_ps = 0.0;
    std::size_t detectable = 0; ///< faults whose longest path + D exceeds T_clk
    std::size_t detected = 0;   ///< of those, covered by the test set

    [[nodiscard]] double coveragePct() const noexcept {
        return detectable ? 100.0 * static_cast<double>(detected) /
                                static_cast<double>(detectable)
                          : 100.0;
    }
};

/// Grade the test set at several defect sizes. A fault is *detectable at
/// size D* if its longest path + D > clock_ps; it is *detected at size D*
/// if additionally the test set detects it (structural approximation: the
/// test set detects the plain transition fault). The gap between the plain
/// coverage and the small-size coverage quantifies the test set's SDD
/// weakness.
[[nodiscard]] std::vector<SddGrade> gradeSmallDelayCoverage(
    const Netlist& nl, const TimingOverlay& ov, std::span<const TwoPattern> tests,
    std::span<const TransitionFault> faults, double clock_ps,
    std::span<const double> defect_sizes_ps);

} // namespace flh
