#include "serve/batcher.hpp"

namespace flh::serve {

SingleFlight::Outcome SingleFlight::run(const std::string& key,
                                        const std::function<std::string()>& fn) {
    std::shared_ptr<Flight> flight;
    {
        std::unique_lock<std::mutex> lock(mu_);
        const auto it = flights_.find(key);
        if (it != flights_.end()) {
            // Follower: wait out the leader, share its result.
            flight = it->second;
            cv_.wait(lock, [&] { return flight->done; });
            if (flight->error) std::rethrow_exception(flight->error);
            return Outcome{flight->value, true};
        }
        flight = std::make_shared<Flight>();
        flights_.emplace(key, flight);
    }

    // Leader: run outside the lock. Followers hold the Flight by
    // shared_ptr, so erasing the map entry before they wake is safe.
    try {
        std::string value = fn();
        std::unique_lock<std::mutex> lock(mu_);
        flight->value = std::move(value);
        flight->done = true;
        flights_.erase(key);
        cv_.notify_all();
        return Outcome{flight->value, false};
    } catch (...) {
        std::unique_lock<std::mutex> lock(mu_);
        flight->error = std::current_exception();
        flight->done = true;
        flights_.erase(key);
        cv_.notify_all();
        throw;
    }
}

std::size_t SingleFlight::inflight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return flights_.size();
}

} // namespace flh::serve
