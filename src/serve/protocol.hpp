// flh_serve wire protocol: length-prefixed JSON request/response pairs.
//
// Transport framing lives in util/socket.hpp (u32 big-endian length +
// payload); this layer defines what the payload bytes mean. One frame
// carries exactly one JSON object. Requests:
//
//   { "v": 1, "id": 7, "type": "flow", "deadline_ms": 5000,
//     "params": { "circuits": ["s27", "s298"], "pairs": 64, "seed": 11 } }
//
// `id` is chosen by the client and echoed verbatim — clients may pipeline
// requests and match responses out of order. `deadline_ms` bounds queue
// wait (a request still queued past its deadline is rejected, not run).
// Request types: ping, flow, fuzz, equiv, metrics, shutdown. Responses:
//
//   { "v": 1, "id": 7, "ok": true, "trace_id": "r-000042",
//     "queue_ms": 0.4, "wall_ms": 18.2, "coalesced": false,
//     "result": { ... } }                          // per request type
//   { "v": 1, "id": 7, "ok": false, "trace_id": "r-000043",
//     "error": { "code": "overloaded", "message": "...",
//                "retry_after_ms": 50 } }
//
// Error codes: bad_request, overloaded (carries retry_after_ms),
// deadline_exceeded, shutting_down, internal. `trace_id` is the server-
// assigned request identity, also threaded through the telemetry lanes
// (obs::ScopedTraceId) so a trace export groups one request's spans.
//
// Trace context propagates over the wire: a request may carry an optional
// `trace` string (client-chosen, <= kMaxTraceBytes). The server adopts it
// as the prefix of its own id — the response's trace_id and every server
// span become "<trace>/r-NNNNNN" — so one request's client and server
// spans group under one identity in a merged fleet trace. Requests
// without `trace` keep plain server-minted ids.
//
// Server-side parsing runs under kWireLimits — the untrusted-input bounds
// of util/json.hpp's parseJson — plus a frame-size cap at the transport.
#pragma once

#include "util/json.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace flh::serve {

inline constexpr int kProtocolVersion = 1;

/// parseJson bounds for untrusted wire payloads: requests are small,
/// shallow documents — anything outside these limits is hostile or broken.
inline constexpr JsonLimits kWireLimits{/*max_depth=*/16,
                                        /*max_string_bytes=*/1u << 20,
                                        /*max_number_chars=*/64};

/// Frame payload cap the server reads under (well below the transport's
/// 64 MiB hard limit; a request has no business being this large).
inline constexpr std::size_t kMaxRequestFrame = 1u << 20;

/// Cap on the client-supplied `trace` field: ids are for humans and trace
/// viewers, not payload smuggling.
inline constexpr std::size_t kMaxTraceBytes = 128;

enum class RequestType { Ping, Flow, Fuzz, Equiv, Metrics, Shutdown };

[[nodiscard]] std::string_view toString(RequestType t) noexcept;
[[nodiscard]] std::optional<RequestType> requestTypeFromString(std::string_view s) noexcept;

/// Build side of a request (client). `params_json` is a complete JSON
/// value (object) spliced verbatim.
struct Request {
    std::uint64_t id = 0;
    RequestType type = RequestType::Ping;
    double deadline_ms = 0.0; ///< 0 = no deadline
    std::string trace;        ///< optional client trace context, "" = none
    std::string params_json = "{}";

    [[nodiscard]] std::string toJson() const;
};

/// Parse side of a request (server). Throws std::runtime_error with a
/// client-presentable message on malformed frames (bad JSON, missing or
/// mistyped fields, unknown type, unsupported version).
struct ParsedRequest {
    std::uint64_t id = 0;
    RequestType type = RequestType::Ping;
    double deadline_ms = 0.0;
    std::string trace; ///< validated client trace context, "" = none
    JsonValue params;  ///< object, or Null when the request omitted it
};

[[nodiscard]] ParsedRequest parseRequest(std::string_view frame);

struct ErrorInfo {
    std::string code;
    std::string message;
    double retry_after_ms = 0.0; ///< only meaningful for "overloaded"
};

/// Build side of a response (server). `result_json` is a complete JSON
/// value spliced verbatim when ok.
struct Response {
    std::uint64_t id = 0;
    bool ok = true;
    std::string trace_id;
    double queue_ms = 0.0;
    double wall_ms = 0.0;
    bool coalesced = false;
    std::string result_json = "{}";
    ErrorInfo error;

    [[nodiscard]] std::string toJson() const;

    [[nodiscard]] static Response okFor(std::uint64_t id, std::string trace_id,
                                        std::string result_json);
    [[nodiscard]] static Response errorFor(std::uint64_t id, std::string trace_id,
                                           ErrorInfo err);
};

/// Parse side of a response (client / tests). Throws on malformed frames.
struct ParsedResponse {
    std::uint64_t id = 0;
    bool ok = false;
    std::string trace_id;
    double queue_ms = 0.0;
    double wall_ms = 0.0;
    bool coalesced = false;
    JsonValue result;
    ErrorInfo error;
};

[[nodiscard]] ParsedResponse parseResponse(std::string_view frame);

/// Serialize a parsed JsonValue back to the writer (keys in sorted map
/// order) — the canonical form used for coalescing keys: two requests
/// whose params differ only in key order or whitespace canonicalize to
/// the same bytes.
void writeValue(JsonWriter& w, const JsonValue& v);
[[nodiscard]] std::string canonicalJson(const JsonValue& v);

// ---- params access helpers (tolerant lookups with defaults) ------------

[[nodiscard]] double numOr(const JsonValue& obj, const std::string& key, double fallback);
[[nodiscard]] std::string strOr(const JsonValue& obj, const std::string& key,
                                const std::string& fallback);

} // namespace flh::serve
