#include "serve/server.hpp"

#include "cell/cells.hpp"
#include "dft/scan.hpp"
#include "iscas/circuits.hpp"
#include "obs/eventlog.hpp"
#include "obs/sampler.hpp"
#include "obs/telemetry.hpp"
#include "util/exec_policy.hpp"
#include "verify/equivalence.hpp"
#include "verify/fuzz.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>
#include <stdexcept>

#include <unistd.h>

namespace flh::serve {

namespace {

constexpr auto relaxed = std::memory_order_relaxed;
using Clock = std::chrono::steady_clock;

/// Request-content validation failure: answered as "bad_request", never
/// treated as a server fault.
struct BadRequest : std::runtime_error {
    using std::runtime_error::runtime_error;
};

double msSince(Clock::time_point from, Clock::time_point to = Clock::now()) {
    return std::chrono::duration<double, std::milli>(to - from).count();
}

const Library& serveLibrary() {
    static const Library lib = makeDefaultLibrary();
    return lib;
}

/// numOr + range check in one step; rejects NaN and out-of-range values
/// with a field-named error.
double boundedNum(const JsonValue& params, const std::string& key, double fallback, double lo,
                  double hi) {
    const double v = numOr(params, key, fallback);
    if (!(v >= lo && v <= hi)) // negated comparison also catches NaN
        throw BadRequest("field \"" + key + "\" must be in [" + formatNumber(lo) + ", " +
                         formatNumber(hi) + "]");
    return v;
}

std::string stripTrailingNewline(std::string s) {
    if (!s.empty() && s.back() == '\n') s.pop_back();
    return s;
}

/// One flow request's slice of a (possibly merged) cone report.
std::string flowMemberJson(const std::vector<std::string>& circuits,
                           const std::set<std::string>& design_names, const RunReport& report,
                           std::size_t batch_size) {
    std::size_t stages = 0, hits = 0, misses = 0, failures = 0;
    JsonWriter w;
    w.beginObject();
    w.key("circuits");
    w.beginArray();
    for (const std::string& c : circuits) w.value(c);
    w.endArray();
    w.key("records");
    w.beginArray();
    for (const StageRecord& r : report.records()) {
        if (design_names.count(r.design) == 0) continue;
        ++stages;
        if (r.failed)
            ++failures;
        else if (r.cache_hit)
            ++hits;
        else
            ++misses;
        w.beginObject();
        w.kv("design", r.design);
        w.kv("stage", r.stage);
        w.kv("cache_hit", r.cache_hit);
        w.kv("failed", r.failed);
        w.kv("wall_ms", r.wall_ms);
        w.endObject();
    }
    w.endArray();
    w.kv("stages", static_cast<std::uint64_t>(stages));
    w.kv("hits", static_cast<std::uint64_t>(hits));
    w.kv("misses", static_cast<std::uint64_t>(misses));
    w.kv("failures", static_cast<std::uint64_t>(failures));
    w.kv("hit_rate", (hits + misses) > 0
                         ? static_cast<double>(hits) / static_cast<double>(hits + misses)
                         : 0.0);
    w.kv("batch_size", static_cast<std::uint64_t>(batch_size));
    w.endObject();
    return w.str();
}

} // namespace

void StatsSnapshot::writeJson(JsonWriter& w) const {
    w.beginObject();
    w.kv("connections", connections);
    w.kv("accepted", accepted);
    w.kv("completed", completed);
    w.kv("ok", ok);
    w.kv("errors", errors);
    w.kv("bad_requests", bad_requests);
    w.kv("rejected_overload", rejected_overload);
    w.kv("rejected_deadline", rejected_deadline);
    w.kv("rejected_shutdown", rejected_shutdown);
    w.kv("coalesced", coalesced);
    w.kv("batched", batched);
    w.kv("dropped_replies", dropped_replies);
    w.kv("queue_depth", static_cast<std::uint64_t>(queue_depth));
    w.kv("open_sessions", static_cast<std::uint64_t>(open_sessions));
    w.kv("ema_service_ms", ema_service_ms);
    w.endObject();
}

namespace {

/// Histogram summary as a JSON object — the metrics response's latency
/// section shares the rollup shape of obs::metricsJson() histograms.
void writeLatencySummary(JsonWriter& w, const obs::Histogram& h) {
    const obs::Histogram::Summary s = h.summarize();
    w.beginObject();
    w.kv("count", s.count);
    w.kv("sum", s.sum);
    w.kv("min", s.min);
    w.kv("max", s.max);
    w.kv("p50", s.p50);
    w.kv("p95", s.p95);
    w.kv("p99", s.p99);
    w.endObject();
}

} // namespace

Server::Server(ServeOptions opts) : opts_(std::move(opts)), flow_(opts_.flow) {
    for (std::size_t i = 0; i < kNumRequestTypes; ++i) {
        const std::string t(toString(static_cast<RequestType>(i)));
        queue_hist_[i] = &obs::histogram("serve.latency." + t + ".queue_ms");
        service_hist_[i] = &obs::histogram("serve.latency." + t + ".service_ms");
    }
}

Server::~Server() { stop(); }

void Server::start() {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (started_) throw std::logic_error("serve: Server::start() called twice");

    listener_ = net::listenOn(opts_.endpoint);
    bound_ = opts_.endpoint;
    if (bound_.unix_path.empty()) bound_.port = net::boundPort(listener_);

    // ExecPolicy semantics for the pool knob; floor of one queued slot per
    // worker — a pool wider than the admission queue can never fill up.
    n_workers_ = ExecPolicy{opts_.workers, 1}.resolveThreads(
        opts_.queue_limit > 0 ? opts_.queue_limit : 1);

    if (opts_.sampler_period_ms > 0) {
        obs::SamplerOptions so;
        so.period_ms = opts_.sampler_period_ms;
        sampler_ = std::make_unique<obs::Sampler>(so);
        sampler_->start();
    }

    workers_.reserve(n_workers_);
    for (unsigned i = 0; i < n_workers_; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
    listen_thread_ = std::thread([this] { listenLoop(); });
    start_time_ = Clock::now();
    started_ = true;
}

void Server::requestStop() noexcept {
    if (stopping_.exchange(true)) return;
    listener_.shutdownBoth(); // unblocks accept -> listener exits
    queue_cv_.notify_all();   // workers wake up to drain + exit
    std::lock_guard<std::mutex> lock(sessions_mu_);
    // Read side only: pending responses of in-flight jobs still flush.
    for (const std::shared_ptr<Session>& s : sessions_) s->sock.shutdownRead();
}

void Server::waitUntilStopped() {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (!started_ || joined_) return;
    if (listen_thread_.joinable()) listen_thread_.join();
    for (std::thread& w : workers_)
        if (w.joinable()) w.join();
    // Listener is gone, so the session list is final: join the still-live
    // session threads (each retires itself on the way out), then reap the
    // retired ones the listener never got to.
    std::vector<std::shared_ptr<Session>> sessions;
    {
        std::lock_guard<std::mutex> sl(sessions_mu_);
        sessions = sessions_;
    }
    for (const std::shared_ptr<Session>& s : sessions)
        if (s->thread.joinable()) s->thread.join();
    reapFinishedSessions();
    {
        std::lock_guard<std::mutex> sl(sessions_mu_);
        sessions_.clear();
    }
    if (sampler_) sampler_->stop();
    listener_.close();
    if (!opts_.endpoint.unix_path.empty()) ::unlink(opts_.endpoint.unix_path.c_str());
    joined_ = true;
}

void Server::stop() {
    requestStop();
    waitUntilStopped();
}

StatsSnapshot Server::stats() const {
    StatsSnapshot s;
    s.connections = stats_.connections.load(relaxed);
    s.accepted = stats_.accepted.load(relaxed);
    s.completed = stats_.completed.load(relaxed);
    s.ok = stats_.ok.load(relaxed);
    s.errors = stats_.errors.load(relaxed);
    s.bad_requests = stats_.bad_requests.load(relaxed);
    s.rejected_overload = stats_.rejected_overload.load(relaxed);
    s.rejected_deadline = stats_.rejected_deadline.load(relaxed);
    s.rejected_shutdown = stats_.rejected_shutdown.load(relaxed);
    s.coalesced = stats_.coalesced.load(relaxed);
    s.batched = stats_.batched.load(relaxed);
    s.dropped_replies = stats_.dropped_replies.load(relaxed);
    {
        std::lock_guard<std::mutex> lock(queue_mu_);
        s.queue_depth = queue_.size();
    }
    {
        std::lock_guard<std::mutex> lock(sessions_mu_);
        s.open_sessions = sessions_.size();
    }
    s.ema_service_ms = static_cast<double>(ema_service_us_.load(relaxed)) / 1000.0;
    return s;
}

// ---- threads -----------------------------------------------------------

void Server::listenLoop() {
    obs::setThreadLabel("serve-listener");
    try {
        for (;;) {
            reapFinishedSessions();
            std::optional<net::Socket> accepted = net::acceptOn(listener_);
            if (!accepted) break;
            auto session = std::make_shared<Session>();
            session->sock = std::move(*accepted);
            if (opts_.io_timeout_ms > 0) net::setRecvTimeout(session->sock, opts_.io_timeout_ms);
            stats_.connections.fetch_add(1, relaxed);
            static obs::Counter& c_conn = obs::counter("serve.connections");
            c_conn.add();
            {
                std::lock_guard<std::mutex> lock(sessions_mu_);
                sessions_.push_back(session);
            }
            session->thread = std::thread([this, session] { sessionLoop(session); });
            // Close the race with a concurrent requestStop() that iterated
            // the session list before this connection appeared in it. Under
            // sessions_mu_ so it cannot interleave with the session closing
            // its own socket in retireSession.
            if (stopping_.load(relaxed)) {
                std::lock_guard<std::mutex> lock(sessions_mu_);
                if (std::find(sessions_.begin(), sessions_.end(), session) != sessions_.end())
                    session->sock.shutdownRead();
            }
        }
    } catch (const std::exception&) {
        // Listener socket died; stop accepting. Existing sessions live on.
    }
}

void Server::sessionLoop(const std::shared_ptr<Session>& session) {
    obs::setThreadLabel("serve-session");
    for (;;) {
        std::optional<std::string> frame;
        try {
            frame = net::readFrame(session->sock, opts_.max_frame_bytes);
        } catch (const std::exception& e) {
            // Oversized length prefix or a torn stream: answer if the pipe
            // still works, then drop the connection (no way to resync).
            stats_.errors.fetch_add(1, relaxed);
            stats_.bad_requests.fetch_add(1, relaxed);
            sendResponse(*session, Response::errorFor(0, nextTraceId(),
                                                      ErrorInfo{"bad_request", e.what(), 0.0}));
            break;
        }
        if (!frame) break; // clean disconnect, idle timeout, or stop
        handleFrame(session, *frame);
    }
    retireSession(session);
}

void Server::retireSession(const std::shared_ptr<Session>& session) {
    if (obs::eventLogEnabled()) {
        std::size_t open = 0;
        {
            std::lock_guard<std::mutex> lock(sessions_mu_);
            open = sessions_.size();
        }
        obs::logEvent(obs::EventLevel::Debug, "serve", "session_close",
                      {{"open_sessions", static_cast<std::uint64_t>(open)}});
    }
    // Unblock any send stuck on a full socket buffer before taking
    // write_mu, so a worker mid-response cannot hold the close back.
    session->sock.shutdownBoth();
    std::scoped_lock lock(sessions_mu_, session->write_mu);
    // Close under both locks: sendResponse serializes on write_mu (a late
    // response sees fd -1 and counts a dropped reply, never a reused fd),
    // and requestStop/listenLoop only touch sockets still in sessions_.
    session->sock.close();
    const auto it = std::find(sessions_.begin(), sessions_.end(), session);
    if (it != sessions_.end()) {
        finished_sessions_.push_back(std::move(*it));
        sessions_.erase(it);
    }
    // Not found: waitUntilStopped already took ownership and will join us.
}

void Server::reapFinishedSessions() {
    std::vector<std::shared_ptr<Session>> done;
    {
        std::lock_guard<std::mutex> lock(sessions_mu_);
        done.swap(finished_sessions_);
    }
    for (const std::shared_ptr<Session>& s : done)
        if (s->thread.joinable()) s->thread.join();
}

void Server::workerLoop(unsigned index) {
    obs::setThreadLabel("serve-worker-" + std::to_string(index));
    static obs::Gauge& g_depth = obs::gauge("serve.queue_depth");
    for (;;) {
        Job job;
        std::vector<Job> absorbed;
        bool drain = false;
        {
            std::unique_lock<std::mutex> lock(queue_mu_);
            queue_cv_.wait(lock, [this] { return stopping_.load(relaxed) || !queue_.empty(); });
            if (queue_.empty()) {
                if (stopping_.load(relaxed)) return;
                continue;
            }
            job = std::move(queue_.front());
            queue_.pop_front();
            drain = stopping_.load(relaxed);
            if (!drain && job.req.type == RequestType::Flow) {
                // Batch absorption: pull still-queued flow jobs with the
                // same flow config into this cone.
                for (auto it = queue_.begin();
                     it != queue_.end() && absorbed.size() + 1 < opts_.max_flow_batch;) {
                    if (it->req.type == RequestType::Flow &&
                        it->flow_cfg_key == job.flow_cfg_key) {
                        absorbed.push_back(std::move(*it));
                        it = queue_.erase(it);
                    } else {
                        ++it;
                    }
                }
            }
            g_depth.set(static_cast<std::int64_t>(queue_.size()));
        }
        if (drain) {
            rejectJob(job, "shutting_down", "server is shutting down");
            continue;
        }
        process(std::move(job), std::move(absorbed));
    }
}

// ---- request path ------------------------------------------------------

void Server::handleFrame(const std::shared_ptr<Session>& session, const std::string& frame) {
    ParsedRequest req;
    try {
        req = parseRequest(frame);
    } catch (const std::exception& e) {
        stats_.errors.fetch_add(1, relaxed);
        stats_.bad_requests.fetch_add(1, relaxed);
        static obs::Counter& c_err = obs::counter("serve.errors");
        c_err.add();
        sendResponse(*session,
                     Response::errorFor(0, nextTraceId(), ErrorInfo{"bad_request", e.what(), 0.0}));
        return;
    }

    Job job;
    job.req = std::move(req);
    job.session = session;
    // Wire-propagated trace context: a client-supplied trace becomes the
    // prefix of the server-minted id, so the merged fleet trace groups
    // this request's client and server spans under one identity.
    job.trace_id = job.req.trace.empty() ? nextTraceId()
                                         : job.req.trace + "/" + nextTraceId();
    job.enqueued = Clock::now();
    job.deadline_ms = job.req.deadline_ms > 0.0 ? job.req.deadline_ms : opts_.default_deadline_ms;

    // ping / metrics / shutdown answer inline on the session thread: they
    // must stay responsive under full-queue overload.
    if (job.req.type == RequestType::Ping || job.req.type == RequestType::Metrics ||
        job.req.type == RequestType::Shutdown) {
        obs::ScopedTraceId tid(job.trace_id);
        obs::ScopedSpan span("serve." + std::string(toString(job.req.type)), "serve.request");
        static obs::Counter& c_req = obs::counter("serve.requests");
        c_req.add();
        const Clock::time_point t0 = Clock::now();
        std::string result;
        if (job.req.type == RequestType::Ping) {
            JsonWriter w;
            w.beginObject();
            w.kv("pong", true);
            w.kv("workers", static_cast<std::uint64_t>(n_workers_));
            w.endObject();
            result = w.str();
        } else if (job.req.type == RequestType::Metrics) {
            result = metricsResultJson();
        } else {
            JsonWriter w;
            w.beginObject();
            w.kv("stopping", true);
            w.endObject();
            result = w.str();
        }
        respondOk(job, std::move(result), /*coalesced=*/false, /*queue_ms=*/0.0, msSince(t0));
        if (job.req.type == RequestType::Shutdown) requestStop();
        return;
    }

    try {
        validateJob(job);
    } catch (const BadRequest& e) {
        rejectJob(job, "bad_request", e.what());
        return;
    }
    admit(std::move(job));
}

void Server::validateJob(Job& job) {
    const JsonValue& p = job.req.params;
    job.canon_key = std::string(toString(job.req.type)) + ":" + canonicalJson(p);

    switch (job.req.type) {
    case RequestType::Flow: {
        if (p.kind != JsonValue::Kind::Obj || !p.has("circuits"))
            throw BadRequest("flow: params.circuits (array of circuit names) is required");
        const JsonValue& cs = p.at("circuits");
        if (cs.kind != JsonValue::Kind::Arr || cs.arr.empty())
            throw BadRequest("flow: \"circuits\" must be a non-empty array");
        if (cs.arr.size() > opts_.max_flow_circuits)
            throw BadRequest("flow: at most " + std::to_string(opts_.max_flow_circuits) +
                             " circuits per request");
        for (const JsonValue& c : cs.arr) {
            if (c.kind != JsonValue::Kind::Str || c.str.empty())
                throw BadRequest("flow: \"circuits\" entries must be non-empty strings");
            job.spec.circuits.push_back(c.str);
        }
        job.spec.cfg.random_pairs = static_cast<int>(boundedNum(p, "pairs", 64, 1, 4096));
        job.spec.cfg.atpg_seed =
            static_cast<std::uint64_t>(boundedNum(p, "atpg_seed", 11, 0, 1e15));
        job.spec.cfg.power_vectors =
            static_cast<int>(boundedNum(p, "power_vectors", 40, 1, 4096));
        job.spec.cfg.power_seed =
            static_cast<std::uint64_t>(boundedNum(p, "power_seed", 1234, 0, 1e15));
        job.spec.threads = static_cast<unsigned>(
            boundedNum(p, "threads", 1, 1, static_cast<double>(opts_.max_flow_threads)));
        job.flow_cfg_key = std::to_string(job.spec.cfg.random_pairs) + ":" +
                           std::to_string(job.spec.cfg.atpg_seed) + ":" +
                           std::to_string(job.spec.cfg.power_vectors) + ":" +
                           std::to_string(job.spec.cfg.power_seed);
        break;
    }
    case RequestType::Fuzz:
        (void)boundedNum(p, "seeds", 1, 1, static_cast<double>(opts_.max_fuzz_seeds));
        break;
    case RequestType::Equiv: {
        const double total = boundedNum(p, "random_pairs", 8, 0, 1e9) +
                             boundedNum(p, "atpg_pairs", 4, 0, 1e9);
        if (total < 1 || total > static_cast<double>(opts_.max_equiv_pairs))
            throw BadRequest("equiv: random_pairs + atpg_pairs must be in [1, " +
                             std::to_string(opts_.max_equiv_pairs) + "]");
        break;
    }
    default:
        break;
    }
}

void Server::admit(Job job) {
    static obs::Gauge& g_depth = obs::gauge("serve.queue_depth");
    bool reject_shutdown = false;
    bool reject_full = false;
    std::size_t backlog = 0;
    {
        std::lock_guard<std::mutex> lock(queue_mu_);
        if (stopping_.load(relaxed)) {
            reject_shutdown = true;
        } else if (queue_.size() >= opts_.queue_limit) {
            reject_full = true;
            backlog = queue_.size();
        } else {
            queue_.push_back(std::move(job));
            g_depth.set(static_cast<std::int64_t>(queue_.size()));
            stats_.accepted.fetch_add(1, relaxed);
        }
    }
    if (reject_shutdown) {
        rejectJob(job, "shutting_down", "server is shutting down");
        return;
    }
    if (reject_full) {
        rejectJob(job, "overloaded",
                  "admission queue full (" + std::to_string(backlog) + " queued)",
                  retryAfterMs(backlog));
        return;
    }
    static obs::Counter& c_req = obs::counter("serve.requests");
    c_req.add();
    queue_cv_.notify_one();
}

void Server::process(Job job, std::vector<Job> absorbed) {
    const Clock::time_point t0 = Clock::now();
    auto queueMs = [&](const Job& j) { return msSince(j.enqueued, t0); };

    // Queue-wait deadlines: an expired member is rejected, never run; the
    // rest of a batch proceeds without it.
    std::vector<Job*> members;
    auto aliveAfterDeadline = [&](Job& j) {
        if (j.deadline_ms > 0.0 && queueMs(j) > j.deadline_ms) {
            rejectJob(j, "deadline_exceeded",
                      "spent " + formatNumber(queueMs(j)) + " ms queued, deadline " +
                          formatNumber(j.deadline_ms) + " ms");
            return false;
        }
        return true;
    };
    if (aliveAfterDeadline(job)) members.push_back(&job);
    for (Job& a : absorbed)
        if (aliveAfterDeadline(a)) members.push_back(&a);
    if (members.empty()) return;

    Job& lead = *members.front();
    obs::ScopedTraceId tid(lead.trace_id);
    obs::ScopedSpan span("serve." + std::string(toString(lead.req.type)), "serve.request");

    if (lead.req.type == RequestType::Flow) {
        runFlowBatch(members, t0); // handles its own per-member errors
        return;
    }

    try {
        // fuzz / equiv: identical concurrent requests share one run.
        const SingleFlight::Outcome out = flights_.run(lead.canon_key, [&] {
            return lead.req.type == RequestType::Fuzz ? fuzzResultJson(lead)
                                                      : equivResultJson(lead);
        });
        if (out.coalesced)
            obs::logEvent(obs::EventLevel::Info, "serve", "coalesced",
                          {{"type", std::string(toString(lead.req.type))},
                           {"trace", lead.trace_id}});
        respondOk(lead, out.value, out.coalesced, queueMs(lead), msSince(t0));
    } catch (const BadRequest& e) {
        rejectJob(lead, "bad_request", e.what());
    } catch (const std::exception& e) {
        rejectJob(lead, "internal", e.what());
    }
}

void Server::runFlowBatch(const std::vector<Job*>& members, Clock::time_point t0) {
    // Resolve every member's circuits up front; a member with an
    // unresolvable circuit is rejected alone, not the whole batch.
    std::vector<Job*> alive;
    std::vector<std::set<std::string>> names; // parallel to alive
    for (Job* m : members) {
        try {
            std::set<std::string> ns;
            for (const std::string& c : m->spec.circuits) ns.insert(flow_.designName(c));
            alive.push_back(m);
            names.push_back(std::move(ns));
        } catch (const std::exception& e) {
            rejectJob(*m, "bad_request", e.what());
        }
    }
    if (alive.empty()) return;

    FlowJobSpec merged = alive.front()->spec; // config identical across the batch
    merged.circuits.clear();
    std::set<std::string> seen;
    for (Job* m : alive) {
        merged.threads = std::max(merged.threads, m->spec.threads);
        for (const std::string& c : m->spec.circuits)
            if (seen.insert(c).second) merged.circuits.push_back(c);
    }
    if (alive.size() > 1) {
        stats_.batched.fetch_add(alive.size() - 1, relaxed);
        static obs::Counter& c_batched = obs::counter("serve.batched");
        c_batched.add(alive.size() - 1);
        obs::logEvent(obs::EventLevel::Info, "serve", "batch_absorbed",
                      {{"members", static_cast<std::uint64_t>(alive.size())},
                       {"circuits", static_cast<std::uint64_t>(merged.circuits.size())},
                       {"trace", alive.front()->trace_id}});
    }

    try {
        const RunReport report = flow_.run(merged);
        const double wall = msSince(t0);
        for (std::size_t i = 0; i < alive.size(); ++i)
            respondOk(*alive[i],
                      flowMemberJson(alive[i]->spec.circuits, names[i], report, alive.size()),
                      /*coalesced=*/alive[i] != alive.front(), msSince(alive[i]->enqueued, t0),
                      wall);
    } catch (const std::exception& e) {
        for (Job* m : alive) rejectJob(*m, "internal", e.what());
    }
}

// ---- handlers ----------------------------------------------------------

std::string Server::fuzzResultJson(const Job& job) {
    const JsonValue& p = job.req.params;
    FuzzOptions fo;
    fo.start_seed = static_cast<std::uint64_t>(boundedNum(p, "start_seed", 1, 0, 1e15));
    fo.seeds = static_cast<std::size_t>(
        boundedNum(p, "seeds", 1, 1, static_cast<double>(opts_.max_fuzz_seeds)));
    fo.random_pairs = static_cast<std::size_t>(boundedNum(p, "random_pairs", 4, 0, 64));
    fo.atpg_pairs = static_cast<std::size_t>(boundedNum(p, "atpg_pairs", 2, 0, 64));
    fo.stuck_patterns = static_cast<std::size_t>(boundedNum(p, "patterns", 8, 1, 256));
    fo.max_faults = static_cast<std::size_t>(boundedNum(p, "max_faults", 48, 1, 4096));
    // Service posture: cones already run on a shared worker pool, so the
    // differential checks stay single-threaded and narrow, and findings are
    // data in the response — no shrinking, no corpus writes, no early stop.
    fo.thread_counts = {1};
    fo.word_widths = {1, 4};
    fo.shrink = false;
    fo.corpus_dir.clear();
    fo.stop_on_first = false;

    const FuzzReport rep = runFuzz(fo);
    JsonWriter w;
    w.beginObject();
    w.kv("seeds_run", static_cast<std::uint64_t>(rep.seeds_run));
    w.kv("checks_run", static_cast<std::uint64_t>(rep.checks_run));
    w.kv("ok", rep.ok());
    w.key("findings");
    w.beginArray();
    for (const FuzzFinding& f : rep.findings) {
        w.beginObject();
        w.kv("seed", f.seed);
        w.kv("check", f.check);
        w.kv("detail", f.detail);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

std::string Server::equivResultJson(const Job& job) {
    const JsonValue& p = job.req.params;
    const std::string circuit = strOr(p, "circuit", "s27");
    const auto random_pairs = static_cast<std::size_t>(boundedNum(p, "random_pairs", 8, 0, 1e9));
    const auto atpg_pairs = static_cast<std::size_t>(boundedNum(p, "atpg_pairs", 4, 0, 1e9));
    const auto seed = static_cast<std::uint64_t>(boundedNum(p, "seed", 3, 0, 1e15));

    Netlist nl = [&]() -> Netlist {
        try {
            return makeCircuit(circuit, serveLibrary());
        } catch (const std::exception& e) {
            throw BadRequest("equiv: " + std::string(e.what()));
        }
    }();
    insertScan(nl);
    const std::vector<TwoPattern> pairs = makeEquivalencePairs(nl, random_pairs, atpg_pairs, seed);
    const EquivalenceReport rep = checkDftEquivalence(nl, pairs);

    JsonWriter w;
    w.beginObject();
    w.kv("circuit", circuit);
    w.kv("pairs_checked", static_cast<std::uint64_t>(rep.pairs_checked));
    w.kv("comparisons", static_cast<std::uint64_t>(rep.comparisons));
    w.kv("equivalent", rep.ok());
    w.key("mismatches");
    w.beginArray();
    for (const EquivalenceMismatch& m : rep.mismatches) w.value(m.describe());
    w.endArray();
    w.endObject();
    return w.str();
}

std::string Server::metricsResultJson() {
    JsonWriter w;
    w.beginObject();
    // v2: adds uptime_s, the per-type "requests" breakdown, and "latency"
    // histogram summaries next to the v1 serve/cache/metrics sections.
    w.kv("schema", "flh.serve.metrics/2");
    w.kv("uptime_s", msSince(start_time_) / 1000.0);
    w.key("serve");
    stats().writeJson(w);
    w.key("requests");
    w.beginObject();
    for (std::size_t i = 0; i < kNumRequestTypes; ++i) {
        w.key(toString(static_cast<RequestType>(i)));
        w.beginObject();
        w.kv("ok", type_stats_[i].ok.load(relaxed));
        w.kv("error", type_stats_[i].error.load(relaxed));
        w.kv("coalesced", type_stats_[i].coalesced.load(relaxed));
        w.endObject();
    }
    w.endObject();
    w.key("latency");
    w.beginObject();
    for (std::size_t i = 0; i < kNumRequestTypes; ++i) {
        if (queue_hist_[i]->count() == 0 && service_hist_[i]->count() == 0) continue;
        w.key(toString(static_cast<RequestType>(i)));
        w.beginObject();
        w.key("queue_ms");
        writeLatencySummary(w, *queue_hist_[i]);
        w.key("service_ms");
        writeLatencySummary(w, *service_hist_[i]);
        w.endObject();
    }
    w.endObject();
    // Cache stats come straight from the service's shared FlowCache handle
    // (always-on, like the serve stats) rather than the obs gauges, which
    // only record when telemetry is enabled.
    if (const std::shared_ptr<FlowCache>& c = flow_.cache()) {
        w.key("cache");
        c->stats().writeJson(w);
    }
    w.key("metrics");
    w.rawValue(stripTrailingNewline(obs::metricsJson()));
    if (sampler_) {
        w.key("timeseries");
        w.rawValue(stripTrailingNewline(sampler_->timeseriesJson()));
    }
    w.endObject();
    return w.str();
}

// ---- response plumbing -------------------------------------------------

void Server::respondOk(const Job& job, std::string result, bool coalesced, double queue_ms,
                       double wall_ms) {
    stats_.completed.fetch_add(1, relaxed);
    stats_.ok.fetch_add(1, relaxed);
    static obs::Counter& c_ok = obs::counter("serve.ok");
    c_ok.add();
    const auto ti = static_cast<std::size_t>(job.req.type);
    type_stats_[ti].ok.fetch_add(1, relaxed);
    // Always-on observe(): the latency breakdown in the metrics response
    // works with telemetry off, like the rest of stats_.
    queue_hist_[ti]->observe(queue_ms);
    service_hist_[ti]->observe(wall_ms);
    if (coalesced) {
        stats_.coalesced.fetch_add(1, relaxed);
        static obs::Counter& c_coal = obs::counter("serve.coalesced");
        c_coal.add();
        type_stats_[ti].coalesced.fetch_add(1, relaxed);
    }
    Response r = Response::okFor(job.req.id, job.trace_id, std::move(result));
    r.queue_ms = queue_ms;
    r.wall_ms = wall_ms;
    r.coalesced = coalesced;
    sendResponse(*job.session, r);
    noteServiceTime(wall_ms);
}

void Server::rejectJob(const Job& job, const char* code, std::string message,
                       double retry_after_ms) {
    const std::string_view c{code};
    stats_.errors.fetch_add(1, relaxed);
    type_stats_[static_cast<std::size_t>(job.req.type)].error.fetch_add(1, relaxed);
    if (c == "overloaded") {
        stats_.rejected_overload.fetch_add(1, relaxed);
        obs::logEvent(obs::EventLevel::Warn, "serve", "overload_reject",
                      {{"type", std::string(toString(job.req.type))},
                       {"retry_after_ms", retry_after_ms},
                       {"trace", job.trace_id}});
    } else if (c == "deadline_exceeded") {
        stats_.rejected_deadline.fetch_add(1, relaxed);
        obs::logEvent(obs::EventLevel::Info, "serve", "deadline_reject",
                      {{"type", std::string(toString(job.req.type))},
                       {"deadline_ms", job.deadline_ms},
                       {"trace", job.trace_id}});
    } else if (c == "shutting_down") {
        stats_.rejected_shutdown.fetch_add(1, relaxed);
    } else if (c == "bad_request") {
        stats_.bad_requests.fetch_add(1, relaxed);
    } else if (c == "internal") {
        obs::logEvent(obs::EventLevel::Error, "serve", "internal_error",
                      {{"type", std::string(toString(job.req.type))},
                       {"trace", job.trace_id}});
    }
    static obs::Counter& c_err = obs::counter("serve.errors");
    c_err.add();
    sendResponse(*job.session, Response::errorFor(job.req.id, job.trace_id,
                                                  ErrorInfo{std::string(c), std::move(message),
                                                            retry_after_ms}));
}

void Server::sendResponse(Session& session, const Response& resp) {
    const std::string payload = resp.toJson();
    std::lock_guard<std::mutex> lock(session.write_mu);
    try {
        if (!net::writeFrame(session.sock, payload)) stats_.dropped_replies.fetch_add(1, relaxed);
    } catch (const std::exception&) {
        stats_.dropped_replies.fetch_add(1, relaxed);
    }
}

std::string Server::nextTraceId() {
    const std::uint64_t n = next_trace_.fetch_add(1, relaxed) + 1;
    std::string digits = std::to_string(n);
    if (digits.size() < 6) digits.insert(0, 6 - digits.size(), '0');
    return "r-" + digits;
}

double Server::retryAfterMs(std::size_t backlog) const {
    const double ema_ms = static_cast<double>(ema_service_us_.load(relaxed)) / 1000.0;
    const double workers = static_cast<double>(n_workers_ > 0 ? n_workers_ : 1);
    return std::max(10.0, ema_ms * (static_cast<double>(backlog + 1) / workers));
}

void Server::noteServiceTime(double wall_ms) {
    // EMA with alpha 0.2; the load/store race just blurs the estimate.
    const auto sample = static_cast<std::uint64_t>(std::max(0.0, wall_ms) * 1000.0);
    const std::uint64_t prev = ema_service_us_.load(relaxed);
    ema_service_us_.store(prev - prev / 5 + sample / 5, relaxed);
}

} // namespace flh::serve
