// flh_serve: the long-lived flow-engine service.
//
// One warm process owns a FlowService (shared design/graph memos, one
// `.flowcache/` cone) and serves the wire protocol of protocol.hpp over a
// local stream socket. Threading shape:
//
//   listener thread ── accept ──> session thread per connection
//                                   │ read frame, parse, validate
//                                   │ ping/metrics/shutdown: answer inline
//                                   └ flow/fuzz/equiv: admission queue
//   worker pool (ExecPolicy-sized) ── dequeue ──> handler ──> response
//
// Connection lifecycle: a session that disconnects retires itself — its
// fd closes immediately and the listener joins the thread between
// accepts — so a long-lived daemon under connection churn holds
// resources proportional to *live* connections, not total ever accepted.
// Accepted sockets carry a recv timeout (ServeOptions::io_timeout_ms);
// a peer that stalls mid-frame or idles at a frame boundary is dropped
// rather than pinning a session thread. Transient fd exhaustion in
// accept (EMFILE) backs off and retries instead of killing the listener.
//
// Admission control: the queue is bounded (ServeOptions::queue_limit);
// a full queue rejects with a structured "overloaded" error carrying
// retry_after_ms (estimated from a service-time EMA and the current
// backlog) instead of blocking the connection. Per-request deadlines
// bound queue wait — a job still queued past its deadline is rejected as
// "deadline_exceeded", never run.
//
// Coalescing: a worker that dequeues a flow job absorbs still-queued flow
// jobs with the same flow config into one merged cone (their responses
// are split back out of the shared RunReport, flagged `coalesced`), and
// identical concurrent fuzz/equiv/flow requests share one computation via
// SingleFlight. Either way, compatible concurrent requests converge on
// one cache cone.
//
// Observability: every request gets a server-assigned trace id, set as
// the thread-local obs trace id for the duration of its handler — all
// spans recorded below it (flow stages, fault-sim partitions) carry
// args.trace_id in the trace export. A request that carries a `trace`
// field continues the client's context instead: the id becomes
// "<client-trace>/r-NNNNNN", grouping client and server spans in a
// merged fleet trace. Request counters mirror into the obs registry
// (serve.* names) and into always-on internal atomics that the metrics
// request and stats() report regardless of telemetry state; queue-wait
// and service-time land in always-on per-request-type histograms
// (serve.latency.<type>.{queue_ms,service_ms}) surfaced by the metrics
// request. Decision points that produce no response detail — overload
// and deadline rejections, batch absorption, coalescing, session
// retirement — emit structured events (obs/eventlog.hpp).
//
// Graceful stop: new connections and admissions are refused, session
// sockets are shut down read-side only (in-flight responses still flush),
// queued-but-unstarted jobs are drained with "shutting_down" rejections,
// and every thread is joined.
#pragma once

#include "flow/service.hpp"
#include "serve/batcher.hpp"
#include "serve/protocol.hpp"
#include "util/socket.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace flh::obs {
class Histogram;
class Sampler;
} // namespace flh::obs

namespace flh::serve {

struct ServeOptions {
    /// Where to listen. Default: loopback TCP on an ephemeral port (read
    /// the resolved port back via boundEndpoint()).
    net::Endpoint endpoint = net::Endpoint::tcpAt(0);

    /// Worker pool width, ExecPolicy semantics: 0 = one per hardware
    /// thread, otherwise exact.
    unsigned workers = 0;

    /// Admission queue bound; a full queue rejects with "overloaded".
    std::size_t queue_limit = 64;

    /// Deadline applied to requests that do not carry their own (ms of
    /// queue wait); 0 = none.
    double default_deadline_ms = 0.0;

    /// Per-frame payload cap enforced at the transport.
    std::size_t max_frame_bytes = kMaxRequestFrame;

    /// SO_RCVTIMEO armed on every accepted socket: a peer that goes
    /// silent mid-frame (or idles at a frame boundary) for this long is
    /// dropped instead of pinning its session thread and fd forever.
    /// 0 disables.
    unsigned io_timeout_ms = 30000;

    /// The warm flow engine behind `flow` requests.
    FlowServiceOptions flow;

    // Per-request work bounds (validation rejects beyond these — the
    // admission-control story continues into the request content).
    unsigned max_flow_threads = 4;      ///< clamp on per-request cone width
    std::size_t max_flow_circuits = 16; ///< circuits per flow request
    std::size_t max_flow_batch = 8;     ///< jobs merged into one cone
    std::size_t max_fuzz_seeds = 256;   ///< seeds per fuzz request
    std::size_t max_equiv_pairs = 256;  ///< random+atpg pairs per equiv request

    /// > 0: run an obs::Sampler at this cadence for the process lifetime;
    /// the metrics request then includes its time-series.
    unsigned sampler_period_ms = 0;
};

/// Point-in-time server counters (always on, independent of telemetry).
struct StatsSnapshot {
    std::uint64_t connections = 0;
    std::uint64_t accepted = 0;  ///< requests admitted to the queue
    std::uint64_t completed = 0; ///< handler ran to completion (ok or error)
    std::uint64_t ok = 0;
    std::uint64_t errors = 0; ///< error responses of any code
    std::uint64_t bad_requests = 0;
    std::uint64_t rejected_overload = 0;
    std::uint64_t rejected_deadline = 0;
    std::uint64_t rejected_shutdown = 0;
    std::uint64_t coalesced = 0; ///< responses served from a shared computation
    std::uint64_t batched = 0;   ///< flow jobs absorbed into a merged cone
    std::uint64_t dropped_replies = 0; ///< peer gone before the response
    std::size_t queue_depth = 0;
    std::size_t open_sessions = 0; ///< live connections (retired ones pruned)
    double ema_service_ms = 0.0;

    void writeJson(JsonWriter& w) const;
};

class Server {
public:
    explicit Server(ServeOptions opts = {});
    ~Server(); ///< stop() + join everything

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Bind, listen, and spawn the listener + worker threads. Throws on
    /// bind failure (port in use, bad unix path).
    void start();

    /// Signal stop without waiting: refuse new work, unblock every
    /// blocked thread. Idempotent, safe from any thread (the shutdown
    /// request handler calls it from a session thread).
    void requestStop() noexcept;

    /// Block until every thread has exited (listener, sessions, workers).
    void waitUntilStopped();

    /// requestStop() + waitUntilStopped(). Idempotent.
    void stop();

    /// The endpoint actually bound (TCP port 0 resolved). Valid after
    /// start().
    [[nodiscard]] const net::Endpoint& boundEndpoint() const noexcept { return bound_; }

    [[nodiscard]] StatsSnapshot stats() const;

    [[nodiscard]] FlowService& flowService() noexcept { return flow_; }

private:
    struct Session {
        net::Socket sock;
        std::mutex write_mu; ///< responses to one connection serialize
        std::thread thread;
    };

    struct Job {
        ParsedRequest req;
        std::shared_ptr<Session> session;
        std::string trace_id;
        std::chrono::steady_clock::time_point enqueued;
        double deadline_ms = 0.0;
        // Flow jobs only — parsed at admission so the queue holds
        // ready-to-run specs and validation errors answer immediately.
        FlowJobSpec spec;
        std::string flow_cfg_key; ///< batch-compatibility key (config only)
        std::string canon_key;    ///< single-flight key (type + canonical params)
    };

    void listenLoop();
    void sessionLoop(const std::shared_ptr<Session>& session);
    void workerLoop(unsigned index);

    /// Session-thread exit path: close the socket (freeing the fd now,
    /// not at shutdown) and move the session from sessions_ to the
    /// finished list for the listener to join.
    void retireSession(const std::shared_ptr<Session>& session);
    /// Join and destroy retired sessions. Called on the listener thread
    /// between accepts and from waitUntilStopped — never concurrently.
    void reapFinishedSessions();

    void handleFrame(const std::shared_ptr<Session>& session, const std::string& frame);
    void validateJob(Job& job); ///< fills spec/keys; throws BadRequest (internal type)
    void admit(Job job);
    void process(Job job, std::vector<Job> absorbed);
    void runFlowBatch(const std::vector<Job*>& members,
                      std::chrono::steady_clock::time_point t0);

    [[nodiscard]] std::string fuzzResultJson(const Job& job);
    [[nodiscard]] std::string equivResultJson(const Job& job);
    [[nodiscard]] std::string metricsResultJson();

    void respondOk(const Job& job, std::string result, bool coalesced, double queue_ms,
                   double wall_ms);
    void rejectJob(const Job& job, const char* code, std::string message,
                   double retry_after_ms = 0.0);
    void sendResponse(Session& session, const Response& resp);
    [[nodiscard]] std::string nextTraceId();
    [[nodiscard]] double retryAfterMs(std::size_t backlog) const;
    void noteServiceTime(double wall_ms);

    ServeOptions opts_;
    FlowService flow_;
    SingleFlight flights_;
    std::unique_ptr<obs::Sampler> sampler_;

    net::Socket listener_;
    net::Endpoint bound_;
    std::thread listen_thread_;
    std::vector<std::thread> workers_;
    unsigned n_workers_ = 1;

    mutable std::mutex queue_mu_;
    std::condition_variable queue_cv_;
    std::deque<Job> queue_;

    mutable std::mutex sessions_mu_;
    std::vector<std::shared_ptr<Session>> sessions_;
    /// Sessions whose loop has exited: socket closed, thread unjoined.
    std::vector<std::shared_ptr<Session>> finished_sessions_;

    std::atomic<bool> stopping_{false};
    bool started_ = false;
    bool joined_ = false;
    std::mutex lifecycle_mu_;

    std::atomic<std::uint64_t> next_trace_{0};
    std::atomic<std::uint64_t> ema_service_us_{20000}; ///< seeded at 20 ms
    std::chrono::steady_clock::time_point start_time_{};

    struct Stats {
        std::atomic<std::uint64_t> connections{0}, accepted{0}, completed{0}, ok{0},
            errors{0}, bad_requests{0}, rejected_overload{0}, rejected_deadline{0},
            rejected_shutdown{0}, coalesced{0}, batched{0}, dropped_replies{0};
    } stats_;

    /// Always-on per-request-type breakdown behind the metrics response's
    /// "requests" section; indexed by RequestType.
    static constexpr std::size_t kNumRequestTypes = 6;
    struct TypeCounters {
        std::atomic<std::uint64_t> ok{0}, error{0}, coalesced{0};
    };
    std::array<TypeCounters, kNumRequestTypes> type_stats_;
    /// Registry-owned latency histograms, one queue-wait + one
    /// service-time per request type; recorded via the always-on
    /// observe() path (same double-booking rule as stats_).
    std::array<obs::Histogram*, kNumRequestTypes> queue_hist_{};
    std::array<obs::Histogram*, kNumRequestTypes> service_hist_{};
};

} // namespace flh::serve
