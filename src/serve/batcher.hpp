// Single-flight request coalescing.
//
// When several serve workers would compute the same canonical request at
// the same time, exactly one of them (the leader) should do the work; the
// others (followers) wait and share the leader's rendered result. Keyed on
// the canonical request content (protocol.hpp's canonicalJson, so key
// order and whitespace differences coalesce too), this is the concurrent
// half of the "compatible requests share one cache cone" rule — the
// queued half is the flow batch absorption in server.cpp, which merges
// still-queued compatible jobs into the leader's cone before it runs.
//
// A leader that throws propagates the same exception to every follower of
// that flight; the next request with the key starts a fresh flight.
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace flh::serve {

class SingleFlight {
public:
    struct Outcome {
        std::string value;     ///< the leader's produced value
        bool coalesced = false; ///< true when this caller was a follower
    };

    /// Run `fn` for the first caller holding `key`; concurrent callers
    /// with an equal key block until the leader finishes and receive the
    /// leader's value (or rethrow its exception).
    [[nodiscard]] Outcome run(const std::string& key, const std::function<std::string()>& fn);

    /// Flights currently in progress (metrics export).
    [[nodiscard]] std::size_t inflight() const;

private:
    struct Flight {
        bool done = false;
        std::string value;
        std::exception_ptr error;
    };

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::map<std::string, std::shared_ptr<Flight>> flights_;
};

} // namespace flh::serve
