#include "serve/protocol.hpp"

#include <cmath>
#include <stdexcept>

namespace flh::serve {

namespace {

[[noreturn]] void badFrame(const std::string& what) {
    throw std::runtime_error("protocol: " + what);
}

/// Require an object member of a given kind; throws a client-presentable
/// error naming the field.
const JsonValue& want(const JsonValue& obj, const std::string& key, JsonValue::Kind kind,
                      const char* kind_name) {
    if (!obj.has(key)) badFrame("missing field \"" + key + "\"");
    const JsonValue& v = obj.at(key);
    if (v.kind != kind) badFrame("field \"" + key + "\" must be " + kind_name);
    return v;
}

std::uint64_t idFrom(const JsonValue& obj) {
    const JsonValue& v = want(obj, "id", JsonValue::Kind::Num, "a number");
    // The value is an untrusted double off the wire: casting a NaN or a
    // number beyond the target range to uint64_t is undefined behavior,
    // so bound it to the exactly-representable integers first (the
    // negated comparison also rejects NaN).
    constexpr double kMaxExactInt = 9007199254740992.0; // 2^53
    if (!(v.num >= 0.0 && v.num < kMaxExactInt) || v.num != std::floor(v.num))
        badFrame("field \"id\" must be an integer in [0, 2^53)");
    return static_cast<std::uint64_t>(v.num);
}

void checkVersion(const JsonValue& obj) {
    if (!obj.has("v")) return; // tolerated: assume current version
    const JsonValue& v = obj.at("v");
    // Same cast hazard as idFrom: validate the double is a small integer
    // before static_cast<int> can run on it.
    if (v.kind != JsonValue::Kind::Num || !(v.num >= 0.0 && v.num <= 1e6) ||
        v.num != std::floor(v.num) || static_cast<int>(v.num) != kProtocolVersion)
        badFrame("unsupported protocol version");
}

} // namespace

std::string_view toString(RequestType t) noexcept {
    switch (t) {
    case RequestType::Ping: return "ping";
    case RequestType::Flow: return "flow";
    case RequestType::Fuzz: return "fuzz";
    case RequestType::Equiv: return "equiv";
    case RequestType::Metrics: return "metrics";
    case RequestType::Shutdown: return "shutdown";
    }
    return "?";
}

std::optional<RequestType> requestTypeFromString(std::string_view s) noexcept {
    if (s == "ping") return RequestType::Ping;
    if (s == "flow") return RequestType::Flow;
    if (s == "fuzz") return RequestType::Fuzz;
    if (s == "equiv") return RequestType::Equiv;
    if (s == "metrics") return RequestType::Metrics;
    if (s == "shutdown") return RequestType::Shutdown;
    return std::nullopt;
}

std::string Request::toJson() const {
    JsonWriter w;
    w.beginObject();
    w.kv("v", kProtocolVersion);
    w.kv("id", id);
    w.kv("type", toString(type));
    if (deadline_ms > 0.0) w.kv("deadline_ms", deadline_ms);
    if (!trace.empty()) w.kv("trace", trace);
    w.key("params");
    w.rawValue(params_json.empty() ? "{}" : params_json);
    w.endObject();
    return w.str();
}

ParsedRequest parseRequest(std::string_view frame) {
    const JsonValue doc = parseJson(frame, kWireLimits);
    if (doc.kind != JsonValue::Kind::Obj) badFrame("request must be a JSON object");
    checkVersion(doc);

    ParsedRequest req;
    req.id = idFrom(doc);

    const JsonValue& type = want(doc, "type", JsonValue::Kind::Str, "a string");
    const std::optional<RequestType> t = requestTypeFromString(type.str);
    if (!t) badFrame("unknown request type \"" + type.str + "\"");
    req.type = *t;

    if (doc.has("deadline_ms")) {
        const JsonValue& d = doc.at("deadline_ms");
        if (d.kind != JsonValue::Kind::Num || !(d.num >= 0) || !std::isfinite(d.num))
            badFrame("field \"deadline_ms\" must be a finite non-negative number");
        req.deadline_ms = d.num;
    }

    if (doc.has("trace")) {
        const JsonValue& tr = doc.at("trace");
        if (tr.kind != JsonValue::Kind::Str)
            badFrame("field \"trace\" must be a string");
        if (tr.str.size() > kMaxTraceBytes)
            badFrame("field \"trace\" must be at most " + std::to_string(kMaxTraceBytes) +
                     " bytes");
        req.trace = tr.str;
    }

    if (doc.has("params")) {
        const JsonValue& p = doc.at("params");
        if (p.kind != JsonValue::Kind::Obj && p.kind != JsonValue::Kind::Null)
            badFrame("field \"params\" must be an object");
        req.params = p;
    }
    return req;
}

std::string Response::toJson() const {
    JsonWriter w;
    w.beginObject();
    w.kv("v", kProtocolVersion);
    w.kv("id", id);
    w.kv("ok", ok);
    w.kv("trace_id", trace_id);
    if (ok) {
        w.kv("queue_ms", queue_ms);
        w.kv("wall_ms", wall_ms);
        w.kv("coalesced", coalesced);
        w.key("result");
        w.rawValue(result_json.empty() ? "{}" : result_json);
    } else {
        w.key("error");
        w.beginObject();
        w.kv("code", error.code);
        w.kv("message", error.message);
        if (error.retry_after_ms > 0.0) w.kv("retry_after_ms", error.retry_after_ms);
        w.endObject();
    }
    w.endObject();
    return w.str();
}

Response Response::okFor(std::uint64_t id, std::string trace_id, std::string result_json) {
    Response r;
    r.id = id;
    r.ok = true;
    r.trace_id = std::move(trace_id);
    r.result_json = std::move(result_json);
    return r;
}

Response Response::errorFor(std::uint64_t id, std::string trace_id, ErrorInfo err) {
    Response r;
    r.id = id;
    r.ok = false;
    r.trace_id = std::move(trace_id);
    r.error = std::move(err);
    return r;
}

ParsedResponse parseResponse(std::string_view frame) {
    const JsonValue doc = parseJson(frame, kWireLimits);
    if (doc.kind != JsonValue::Kind::Obj) badFrame("response must be a JSON object");
    checkVersion(doc);

    ParsedResponse resp;
    resp.id = idFrom(doc);
    resp.ok = want(doc, "ok", JsonValue::Kind::Bool, "a bool").b;
    resp.trace_id = strOr(doc, "trace_id", "");
    if (resp.ok) {
        resp.queue_ms = numOr(doc, "queue_ms", 0.0);
        resp.wall_ms = numOr(doc, "wall_ms", 0.0);
        if (doc.has("coalesced") && doc.at("coalesced").kind == JsonValue::Kind::Bool)
            resp.coalesced = doc.at("coalesced").b;
        if (doc.has("result")) resp.result = doc.at("result");
    } else {
        const JsonValue& e = want(doc, "error", JsonValue::Kind::Obj, "an object");
        resp.error.code = strOr(e, "code", "internal");
        resp.error.message = strOr(e, "message", "");
        resp.error.retry_after_ms = numOr(e, "retry_after_ms", 0.0);
    }
    return resp;
}

void writeValue(JsonWriter& w, const JsonValue& v) {
    switch (v.kind) {
    case JsonValue::Kind::Null:
        w.rawValue("null");
        return;
    case JsonValue::Kind::Bool:
        w.value(v.b);
        return;
    case JsonValue::Kind::Num:
        w.value(v.num);
        return;
    case JsonValue::Kind::Str:
        w.value(v.str);
        return;
    case JsonValue::Kind::Arr:
        w.beginArray();
        for (const JsonValue& e : v.arr) writeValue(w, e);
        w.endArray();
        return;
    case JsonValue::Kind::Obj:
        w.beginObject();
        // std::map iteration order == sorted keys == canonical order.
        for (const auto& [k, e] : v.obj) {
            w.key(k);
            writeValue(w, e);
        }
        w.endObject();
        return;
    }
}

std::string canonicalJson(const JsonValue& v) {
    JsonWriter w;
    writeValue(w, v);
    return w.str();
}

double numOr(const JsonValue& obj, const std::string& key, double fallback) {
    if (obj.kind != JsonValue::Kind::Obj || !obj.has(key)) return fallback;
    const JsonValue& v = obj.at(key);
    return v.kind == JsonValue::Kind::Num ? v.num : fallback;
}

std::string strOr(const JsonValue& obj, const std::string& key, const std::string& fallback) {
    if (obj.kind != JsonValue::Kind::Obj || !obj.has(key)) return fallback;
    const JsonValue& v = obj.at(key);
    return v.kind == JsonValue::Kind::Str ? v.str : fallback;
}

} // namespace flh::serve
