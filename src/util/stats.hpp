// Shared order-statistics helpers.
//
// One implementation of the percentile/median math used everywhere a
// tool reports latency or repetition statistics: flh_client's latency
// percentiles, obs::Histogram summaries, and benchio's RepStats
// quartiles. Keeping a single copy makes the rounding rules identical
// across reports, so a p95 printed by one tool is comparable
// digit-for-digit with a p95 printed by another.
#pragma once

#include <cstddef>
#include <vector>

namespace flh::stats {

/// Linear-interpolation percentile over an ascending-sorted range: the
/// fractional rank is p * (n - 1) and the result lerps between the two
/// bracketing samples (NumPy's "linear" convention). p is clamped to
/// [0, 1]; an empty range yields 0.
[[nodiscard]] double percentileSorted(const double* sorted, std::size_t n, double p) noexcept;

[[nodiscard]] inline double percentileSorted(const std::vector<double>& sorted,
                                             double p) noexcept {
    return percentileSorted(sorted.data(), sorted.size(), p);
}

/// Median of an ascending-sorted range. Exactly percentileSorted(.., 0.5):
/// the middle element for odd n, the mean of the middle two for even n —
/// which is also what the halves-method quartiles in RepStats need for
/// their half-range medians.
[[nodiscard]] inline double medianSorted(const double* sorted, std::size_t n) noexcept {
    return percentileSorted(sorted, n, 0.5);
}

[[nodiscard]] inline double medianSorted(const std::vector<double>& sorted) noexcept {
    return medianSorted(sorted.data(), sorted.size());
}

} // namespace flh::stats
