// Plain-text table rendering for experiment reports.
//
// Every bench binary in this repository reproduces one of the paper's tables
// or figures; TextTable renders them with aligned columns in the style of the
// paper's own tables, and writeCsv exports machine-readable copies.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace flh {

/// Column-aligned ASCII table.
///
/// Usage:
///   TextTable t({"Ckt", "# Flip-flops", "FLH %"});
///   t.addRow({"s838", "32", "4.1"});
///   std::cout << t.render();
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    void addRow(std::vector<std::string> cells);

    /// Append a horizontal separator line before the next row.
    void addRule();

    [[nodiscard]] std::string render() const;

    [[nodiscard]] std::size_t rowCount() const noexcept { return rows_.size(); }

private:
    struct Row {
        std::vector<std::string> cells;
        bool rule_before = false;
    };

    std::vector<std::string> header_;
    std::vector<Row> rows_;
    bool pending_rule_ = false;
};

/// Format a double with the given number of decimals (fixed notation).
[[nodiscard]] std::string fmt(double value, int decimals = 2);

/// Format a percentage such as "12.3" (no % sign, matching the paper tables).
[[nodiscard]] std::string fmtPct(double fraction, int decimals = 2);

/// Write rows as CSV (no quoting of embedded commas; callers control content).
void writeCsv(std::ostream& os, const std::vector<std::string>& header,
              const std::vector<std::vector<std::string>>& rows);

} // namespace flh
