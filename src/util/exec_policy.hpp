// Unified parallelism policy.
//
// Every engine in the repository that fans work out over a thread pool
// (fault-simulation partitioning, the flow stage scheduler, the bench
// thread sweeps) used to carry its own "threads" knob and its own
// resolution rules. ExecPolicy is the one shared vocabulary: a requested
// worker count (0 = one per hardware thread) plus a shrink floor that
// keeps the pool from out-numbering the work, and a single
// resolveThreads() implementation with all the edge cases handled in one
// place — n_items == 0, min_items_per_worker == 0, and platforms where
// std::thread::hardware_concurrency() reports 0. The resolved count is
// always >= 1.
#pragma once

#include <cstddef>

namespace flh {

struct ExecPolicy {
    /// Requested worker threads. 1 = run inline on the calling thread
    /// (no pool); 0 = one worker per hardware thread.
    unsigned threads = 1;

    /// Pool shrink floor: never resolve to more workers than
    /// n_items / min_items_per_worker — below that the per-worker setup
    /// cost dominates the work itself. 0 disables the floor.
    std::size_t min_items_per_worker = 1;

    /// Hardware thread count, never 0 (hardware_concurrency() may report
    /// 0 on platforms where it is unknowable; treat that as 1).
    [[nodiscard]] static unsigned hardwareThreads() noexcept;

    /// Effective worker count for an `n_items`-sized work list. Always
    /// >= 1 regardless of the knob values.
    [[nodiscard]] unsigned resolveThreads(std::size_t n_items) const noexcept;
};

} // namespace flh
