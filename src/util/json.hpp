// Minimal deterministic JSON writer for machine-readable reports.
//
// Every run report and benchmark export in this repository must be
// byte-identical for identical inputs (the flow engine's cache and CI
// compare them with cmp), so this writer makes the formatting rules
// explicit: two-space indentation, keys emitted in caller order, doubles
// printed via formatNumber (shortest round-trip-exact form), no locale
// dependence, trailing newline left to the caller.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace flh {

/// Escape a string for inclusion in a JSON document (adds no quotes).
[[nodiscard]] std::string jsonEscape(std::string_view s);

/// Deterministic textual form of a double: round-trip exact, no locale,
/// "0" for zero, integral values without a trailing ".0".
[[nodiscard]] std::string formatNumber(double v);

/// Streaming JSON writer with explicit structure calls.
///
///   JsonWriter w;
///   w.beginObject();
///   w.key("total"); w.value(3);
///   w.key("stages"); w.beginArray(); ... w.endArray();
///   w.endObject();
///   std::string doc = w.str();
class JsonWriter {
public:
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    void key(std::string_view k);

    void value(std::string_view s);
    void value(const char* s) { value(std::string_view(s)); }
    void value(double v);
    void value(std::int64_t v);
    void value(std::uint64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(bool v);

    /// Shorthand for key(k); value(v).
    template <typename T> void kv(std::string_view k, const T& v) {
        key(k);
        value(v);
    }

    /// Splice pre-rendered JSON as one value at the current position. The
    /// caller guarantees `json` is a complete, valid JSON value; it is
    /// inserted verbatim (its own indentation intact), which keeps nested
    /// legacy payloads byte-stable inside envelope documents.
    void rawValue(std::string_view json);

    [[nodiscard]] const std::string& str() const noexcept { return out_; }

private:
    void beforeValue();
    void newline();

    std::string out_;
    std::vector<bool> has_items_; ///< per open scope: an item was emitted
    bool pending_key_ = false;
};

/// Shared report convention: a result struct that is serialized anywhere
/// (CLI reports, bench exports, telemetry metrics) exposes
/// `void writeJson(JsonWriter&) const`, emitting itself as exactly one
/// JSON value into the writer's current position. DftEvaluation,
/// FaultSimResult, and the flow StageRecord all follow it, so every
/// emitter composes them instead of hand-rolling fields.
template <typename T>
concept JsonWritable = requires(const T& t, JsonWriter& w) {
    { t.writeJson(w) };
};

/// Wrap one JsonWritable value as a standalone document (trailing newline
/// included, matching every report file in the repo).
template <JsonWritable T> [[nodiscard]] std::string toJsonDocument(const T& v) {
    JsonWriter w;
    v.writeJson(w);
    return w.str() + "\n";
}

/// Parsed JSON value — the read side of the writer above. Deliberately
/// small: enough to load our own exports back (bench envelopes, telemetry
/// traces, diff reports) without an external dependency. Numbers are
/// doubles; \u escapes beyond control bytes are kept as raw "\uXXXX" text
/// (our writer only emits them for control characters).
struct JsonValue {
    enum class Kind { Null, Bool, Num, Str, Arr, Obj } kind = Kind::Null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    std::map<std::string, JsonValue> obj;

    /// Object member access; throws std::runtime_error on a missing key.
    [[nodiscard]] const JsonValue& at(const std::string& k) const;
    [[nodiscard]] bool has(const std::string& k) const { return obj.count(k) > 0; }
};

/// Resource bounds for parseJson. The defaults are generous enough for
/// every export this repository writes (bench envelopes, traces,
/// time-series); the serve wire protocol passes tighter limits because its
/// input is untrusted. A violated limit throws std::runtime_error with the
/// same byte/line/column positioning as a syntax error.
struct JsonLimits {
    std::size_t max_depth = 256;             ///< nesting depth (arrays + objects)
    std::size_t max_string_bytes = 1u << 26; ///< decoded bytes per string (64 MiB)
    std::size_t max_number_chars = 128;      ///< source chars per number token
};

/// Parse one JSON document (trailing whitespace allowed, nothing else).
/// Throws std::runtime_error naming the byte offset plus line:column on
/// malformed input, invalid UTF-8, raw control bytes inside strings, or a
/// violated limit. Safe on untrusted input: nesting depth is bounded (no
/// unbounded recursion) and numbers parse without locale or exceptions.
[[nodiscard]] JsonValue parseJson(std::string_view text, const JsonLimits& limits = {});

} // namespace flh
