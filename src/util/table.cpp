#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace flh {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::addRow(std::vector<std::string> cells) {
    cells.resize(header_.size());
    rows_.push_back(Row{std::move(cells), pending_rule_});
    pending_rule_ = false;
}

void TextTable::addRule() { pending_rule_ = true; }

std::string TextTable::render() const {
    std::vector<std::size_t> width(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const Row& r : rows_)
        for (std::size_t c = 0; c < r.cells.size(); ++c)
            width[c] = std::max(width[c], r.cells[c].size());

    const auto rule = [&] {
        std::string s = "+";
        for (std::size_t w : width) s += std::string(w + 2, '-') + "+";
        s += "\n";
        return s;
    }();

    const auto line = [&](const std::vector<std::string>& cells) {
        std::string s = "|";
        for (std::size_t c = 0; c < width.size(); ++c) {
            const std::string& v = c < cells.size() ? cells[c] : std::string{};
            s += " " + v + std::string(width[c] - v.size(), ' ') + " |";
        }
        s += "\n";
        return s;
    };

    std::string out = rule + line(header_) + rule;
    for (const Row& r : rows_) {
        if (r.rule_before) out += rule;
        out += line(r.cells);
    }
    out += rule;
    return out;
}

std::string fmt(double value, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
    return buf;
}

std::string fmtPct(double fraction, int decimals) {
    return fmt(fraction * 100.0, decimals);
}

void writeCsv(std::ostream& os, const std::vector<std::string>& header,
              const std::vector<std::vector<std::string>>& rows) {
    const auto emit = [&os](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i) os << ',';
            os << cells[i];
        }
        os << '\n';
    };
    emit(header);
    for (const auto& r : rows) emit(r);
}

} // namespace flh
