#include "util/strings.hpp"

#include <cctype>

namespace flh {

std::string_view trim(std::string_view s) noexcept {
    const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && is_space(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && is_space(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
}

std::vector<std::string> splitTrim(std::string_view s, char delim) {
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            const std::string_view piece = trim(s.substr(start, i - start));
            if (!piece.empty()) out.emplace_back(piece);
            start = i + 1;
        }
    }
    return out;
}

std::string toUpper(std::string_view s) {
    std::string out(s);
    for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return out;
}

bool startsWith(std::string_view s, std::string_view prefix) noexcept {
    return s.substr(0, prefix.size()) == prefix;
}

} // namespace flh
