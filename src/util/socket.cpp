#include "util/socket.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

namespace flh::net {

namespace {

[[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("net: " + what + ": " + std::strerror(errno));
}

} // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void Socket::close() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void Socket::shutdownBoth() noexcept {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::shutdownRead() noexcept {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

std::string Endpoint::describe() const {
    if (!unix_path.empty()) return "unix:" + unix_path;
    return "tcp:127.0.0.1:" + std::to_string(port);
}

Socket listenOn(const Endpoint& ep, int backlog) {
    if (!ep.unix_path.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (ep.unix_path.size() >= sizeof addr.sun_path)
            throw std::runtime_error("net: unix socket path too long: " + ep.unix_path);
        std::strncpy(addr.sun_path, ep.unix_path.c_str(), sizeof addr.sun_path - 1);

        Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
        if (!s.valid()) fail("socket(AF_UNIX)");
        ::unlink(ep.unix_path.c_str()); // stale file from a previous run
        if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0)
            fail("bind " + ep.unix_path);
        if (::listen(s.fd(), backlog) != 0) fail("listen " + ep.unix_path);
        return s;
    }

    Socket s(::socket(AF_INET, SOCK_STREAM, 0));
    if (!s.valid()) fail("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(ep.port);
    if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0)
        fail("bind 127.0.0.1:" + std::to_string(ep.port));
    if (::listen(s.fd(), backlog) != 0) fail("listen port " + std::to_string(ep.port));
    return s;
}

std::uint16_t boundPort(const Socket& listener) {
    sockaddr_in addr{};
    socklen_t len = sizeof addr;
    if (::getsockname(listener.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0)
        fail("getsockname");
    if (addr.sin_family != AF_INET)
        throw std::runtime_error("net: boundPort on a non-TCP listener");
    return ntohs(addr.sin_port);
}

std::optional<Socket> acceptOn(const Socket& listener) {
    for (;;) {
        const int fd = ::accept(listener.fd(), nullptr, nullptr);
        if (fd >= 0) return Socket(fd);
        if (errno == EINTR) continue;
        // The clean stop path: the listener was shut down or closed under
        // us. Anything else is a real error.
        if (errno == EINVAL || errno == EBADF || errno == ECONNABORTED) return std::nullopt;
        // Resource exhaustion (out of fds under connection churn, transient
        // kernel memory pressure) recovers once sessions retire — back off
        // and retry instead of tearing down the accept loop for good.
        if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            continue;
        }
        fail("accept");
    }
}

void setRecvTimeout(const Socket& s, unsigned timeout_ms) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
    if (::setsockopt(s.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0)
        fail("setsockopt(SO_RCVTIMEO)");
}

Socket connectTo(const Endpoint& ep) {
    if (!ep.unix_path.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (ep.unix_path.size() >= sizeof addr.sun_path)
            throw std::runtime_error("net: unix socket path too long: " + ep.unix_path);
        std::strncpy(addr.sun_path, ep.unix_path.c_str(), sizeof addr.sun_path - 1);
        Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
        if (!s.valid()) fail("socket(AF_UNIX)");
        if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0)
            fail("connect " + ep.unix_path);
        return s;
    }
    Socket s(::socket(AF_INET, SOCK_STREAM, 0));
    if (!s.valid()) fail("socket(AF_INET)");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(ep.port);
    if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0)
        fail("connect 127.0.0.1:" + std::to_string(ep.port));
    return s;
}

bool writeAll(const Socket& s, std::string_view bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::send(s.fd(), bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) return false;
        fail("send");
    }
    return true;
}

bool readExact(const Socket& s, std::string& out, std::size_t n) {
    out.resize(n);
    std::size_t off = 0;
    while (off < n) {
        const ssize_t got = ::recv(s.fd(), out.data() + off, n - off, 0);
        if (got > 0) {
            off += static_cast<std::size_t>(got);
            continue;
        }
        if (got < 0 && errno == EINTR) continue;
        if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            // SO_RCVTIMEO expired. Zero bytes in means an idle peer —
            // surface it like a clean disconnect; a partial read means a
            // stalled peer pinning us mid-frame, which is an error.
            if (off == 0) return false;
            throw std::runtime_error("net: read timed out mid-frame (" +
                                     std::to_string(off) + "/" + std::to_string(n) +
                                     " bytes)");
        }
        if (got == 0 || (got < 0 && errno == ECONNRESET)) {
            if (off == 0) return false; // clean EOF at a frame boundary
            throw std::runtime_error("net: peer closed mid-frame (" +
                                     std::to_string(off) + "/" + std::to_string(n) +
                                     " bytes)");
        }
        fail("recv");
    }
    return true;
}

bool writeFrame(const Socket& s, std::string_view payload) {
    if (payload.size() > kMaxFramePayload)
        throw std::runtime_error("net: frame payload exceeds " +
                                 std::to_string(kMaxFramePayload) + " bytes");
    char header[4];
    const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
    header[0] = static_cast<char>((len >> 24) & 0xff);
    header[1] = static_cast<char>((len >> 16) & 0xff);
    header[2] = static_cast<char>((len >> 8) & 0xff);
    header[3] = static_cast<char>(len & 0xff);
    // One send for header + payload keeps small frames in one packet.
    std::string buf;
    buf.reserve(4 + payload.size());
    buf.append(header, 4);
    buf.append(payload);
    return writeAll(s, buf);
}

std::optional<std::string> readFrame(const Socket& s, std::size_t max_payload) {
    std::string header;
    if (!readExact(s, header, 4)) return std::nullopt;
    const std::uint32_t len = (static_cast<std::uint32_t>(static_cast<unsigned char>(header[0])) << 24) |
                              (static_cast<std::uint32_t>(static_cast<unsigned char>(header[1])) << 16) |
                              (static_cast<std::uint32_t>(static_cast<unsigned char>(header[2])) << 8) |
                              static_cast<std::uint32_t>(static_cast<unsigned char>(header[3]));
    if (len > max_payload)
        throw std::runtime_error("net: frame length " + std::to_string(len) +
                                 " exceeds limit " + std::to_string(max_payload));
    std::string payload;
    if (len > 0 && !readExact(s, payload, len))
        throw std::runtime_error("net: peer closed or stalled before frame payload");
    return payload;
}

} // namespace flh::net
