#include "util/filelock.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

namespace fs = std::filesystem;

namespace flh {

namespace {

int openLockFile(const std::string& path) {
    return ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
}

} // namespace

FileLock FileLock::acquire(const std::string& path) {
    const int fd = openLockFile(path);
    if (fd < 0)
        throw std::runtime_error("FileLock: cannot open " + path + ": " +
                                 std::strerror(errno));
    // Retry on signal interruption; everything else is fatal.
    while (::flock(fd, LOCK_EX) != 0) {
        if (errno == EINTR) continue;
        const int e = errno;
        ::close(fd);
        throw std::runtime_error("FileLock: flock " + path + ": " + std::strerror(e));
    }
    return FileLock(fd);
}

std::optional<FileLock> FileLock::tryAcquire(const std::string& path) {
    const int fd = openLockFile(path);
    if (fd < 0) return std::nullopt;
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
        ::close(fd);
        return std::nullopt;
    }
    return FileLock(fd);
}

FileLock::FileLock(FileLock&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

FileLock& FileLock::operator=(FileLock&& other) noexcept {
    if (this != &other) {
        if (fd_ >= 0) ::close(fd_);
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

FileLock::~FileLock() {
    if (fd_ >= 0) ::close(fd_); // close releases the flock
}

bool appendLine(const std::string& path, std::string_view line) noexcept {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (fd < 0) return false;
    // One write call: O_APPEND makes the offset update + write atomic with
    // respect to other appenders on local filesystems.
    const ssize_t n = ::write(fd, line.data(), line.size());
    ::close(fd);
    return n == static_cast<ssize_t>(line.size());
}

void replaceFileAtomic(const std::string& path, std::string_view bytes) {
    const fs::path target(path);
    std::ostringstream tmp_name;
    tmp_name << target.filename().string() << ".tmp" << ::getpid() << "."
             << reinterpret_cast<std::uintptr_t>(&tmp_name); // unique per call
    const fs::path tmp = target.parent_path() / tmp_name.str();
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) throw std::runtime_error("replaceFileAtomic: cannot write " + tmp.string());
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
        if (!out) {
            out.close();
            std::error_code ec;
            fs::remove(tmp, ec);
            throw std::runtime_error("replaceFileAtomic: short write to " + tmp.string());
        }
    }
    std::error_code ec;
    fs::rename(tmp, target, ec);
    if (ec) {
        std::error_code ec2;
        fs::remove(tmp, ec2);
        throw std::runtime_error("replaceFileAtomic: rename " + tmp.string() + " -> " + path +
                                 ": " + ec.message());
    }
}

bool claimFile(const std::string& path, std::string_view contents) {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
    if (fd < 0) {
        if (errno == EEXIST) return false;
        throw std::runtime_error("claimFile: cannot create " + path + ": " +
                                 std::strerror(errno));
    }
    // Claim content is informational (who holds it); a short write is not
    // worth failing the claim over.
    (void)!::write(fd, contents.data(), contents.size());
    ::close(fd);
    return true;
}

std::optional<std::string> readFileIfExists(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

} // namespace flh
