#include "util/stats.hpp"

#include <algorithm>

namespace flh::stats {

double percentileSorted(const double* sorted, std::size_t n, double p) noexcept {
    if (n == 0) return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const double idx = p * static_cast<double>(n - 1);
    const std::size_t lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, n - 1);
    const double frac = idx - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

} // namespace flh::stats
