#include "util/cli.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

namespace flh::cli {

ArgScan::ArgScan(int argc, char** argv, std::string tool, std::string usage)
    : argc_(argc), argv_(argv), tool_(std::move(tool)), usage_(std::move(usage)) {}

bool ArgScan::next() {
    while (++i_ < argc_) {
        arg_ = argv_[i_];
        if (arg_ == "--help" || arg_ == "-h") {
            std::cout << usage_;
            std::exit(0);
        }
        return true;
    }
    return false;
}

std::string ArgScan::value() {
    if (i_ + 1 >= argc_) usageError("missing value after " + arg_);
    return argv_[++i_];
}

std::vector<std::string> ArgScan::list() {
    const std::string flag = arg_;
    std::vector<std::string> items = splitTrim(value(), ',');
    if (items.empty()) usageError("empty list for " + flag);
    return items;
}

void ArgScan::usageError(const std::string& msg) const {
    std::cerr << tool_ << ": " << msg << "\n" << usage_;
    std::exit(2);
}

bool CommonFlags::tryParse(ArgScan& scan) {
    if (parse_threads && scan.is("--threads")) {
        threads = scan.num<unsigned>();
        threads_set = true;
    } else if (scan.is("--trace")) trace_path = scan.value();
    else if (scan.is("--metrics")) metrics_path = scan.value();
    else if (scan.is("--out")) out_flag = scan.value();
    else if (scan.is("--heartbeat")) heartbeat_s = scan.num<double>();
    else if (scan.is("--quiet")) quiet = true;
    else return false;
    return true;
}

void writeFileOrDie(const std::string& tool, const std::string& path,
                    const std::string& bytes) {
    // Export paths routinely point into not-yet-created run directories
    // ("--bench-json runA/BENCH_x.json"); create them like the bench
    // writers do rather than dying on the first fresh checkout.
    const std::filesystem::path parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (out) out << bytes;
    if (!out) {
        std::cerr << tool << ": cannot write " << path << "\n";
        std::exit(1);
    }
}

} // namespace flh::cli
