#include "util/cli.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>

namespace flh::cli {

ArgScan::ArgScan(int argc, char** argv, std::string tool, std::string usage)
    : argc_(argc), argv_(argv), tool_(std::move(tool)), usage_(std::move(usage)) {}

bool ArgScan::next() {
    while (++i_ < argc_) {
        arg_ = argv_[i_];
        if (arg_ == "--help" || arg_ == "-h") {
            std::cout << usage_;
            std::exit(0);
        }
        return true;
    }
    return false;
}

std::string ArgScan::value() {
    if (i_ + 1 >= argc_) usageError("missing value after " + arg_);
    return argv_[++i_];
}

std::vector<std::string> ArgScan::list() {
    const std::string flag = arg_;
    std::vector<std::string> items = splitTrim(value(), ',');
    if (items.empty()) usageError("empty list for " + flag);
    return items;
}

void ArgScan::usageError(const std::string& msg) const {
    std::cerr << tool_ << ": " << msg << "\n" << usage_;
    std::exit(2);
}

bool CommonFlags::tryParse(ArgScan& scan) {
    if (parse_threads && scan.is("--threads")) {
        threads = scan.num<unsigned>();
        threads_set = true;
    } else if (scan.is("--trace")) trace_path = scan.value();
    else if (scan.is("--metrics")) metrics_path = scan.value();
    else if (scan.is("--events")) events_path = scan.value();
    else if (scan.is("--out")) out_flag = scan.value();
    else if (scan.is("--heartbeat")) heartbeat_s = scan.num<double>();
    else if (scan.is("--quiet")) quiet = true;
    else return false;
    return true;
}

bool CacheFlags::tryParse(ArgScan& scan) {
    if (scan.is("--cache-dir")) dir = scan.value();
    else if (scan.is("--cache-max-bytes")) {
        const std::string flag = scan.arg();
        max_bytes = parseByteSize(scan, flag, scan.value());
    }
    else if (scan.is("--cache-max-entries")) max_entries = scan.num<std::uint64_t>();
    else if (scan.is("--cache-max-age")) max_age_s = scan.num<double>();
    else if (scan.is("--cache-gc")) gc_on_open = true;
    else if (scan.is("--no-cache")) no_cache = true;
    else return false;
    return true;
}

std::uint64_t parseByteSize(const ArgScan& scan, const std::string& flag,
                            const std::string& s) {
    std::string digits = s;
    std::uint64_t mult = 1;
    if (!digits.empty()) {
        switch (digits.back()) {
        case 'k': case 'K': mult = 1ull << 10; digits.pop_back(); break;
        case 'm': case 'M': mult = 1ull << 20; digits.pop_back(); break;
        case 'g': case 'G': mult = 1ull << 30; digits.pop_back(); break;
        default: break;
        }
    }
    if (digits.empty()) scan.usageError("bad value for " + flag + ": '" + s + "'");
    const std::uint64_t n = scan.parse<std::uint64_t>(flag, digits);
    if (mult > 1 && n > std::numeric_limits<std::uint64_t>::max() / mult)
        scan.usageError("value overflows for " + flag + ": '" + s + "'");
    return n * mult;
}

void writeFileOrDie(const std::string& tool, const std::string& path,
                    const std::string& bytes) {
    // Export paths routinely point into not-yet-created run directories
    // ("--bench-json runA/BENCH_x.json"); create them like the bench
    // writers do rather than dying on the first fresh checkout.
    const std::filesystem::path parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (out) out << bytes;
    if (!out) {
        std::cerr << tool << ": cannot write " << path << "\n";
        std::exit(1);
    }
}

} // namespace flh::cli
