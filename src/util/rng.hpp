// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic parts of the library (synthetic circuit generation, random
// test vectors, random-fill in ATPG) draw from Rng so a given seed always
// reproduces the same circuits, vectors, and therefore the same tables.
#pragma once

#include <cstdint>
#include <vector>

namespace flh {

/// xoshiro256** PRNG seeded via SplitMix64.
///
/// Chosen over std::mt19937 because its output sequence is specified here,
/// in-repo, and therefore stable across standard library implementations.
class Rng {
public:
    explicit Rng(std::uint64_t seed) noexcept;

    /// Uniform 64-bit value.
    std::uint64_t next() noexcept;

    /// Uniform value in [0, bound). bound must be > 0.
    std::uint64_t below(std::uint64_t bound) noexcept;

    /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
    int range(int lo, int hi) noexcept;

    /// Uniform double in [0, 1).
    double uniform() noexcept;

    /// Bernoulli trial with probability p of returning true.
    bool chance(double p) noexcept;

    /// Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& v) noexcept {
        for (std::size_t i = v.size(); i > 1; --i) {
            const std::size_t j = static_cast<std::size_t>(below(i));
            using std::swap;
            swap(v[i - 1], v[j]);
        }
    }

    /// Pick an index in [0, weights.size()) with probability proportional to
    /// weights[i]. Requires at least one strictly positive weight.
    std::size_t weighted(const std::vector<double>& weights) noexcept;

private:
    std::uint64_t s_[4];
};

} // namespace flh
