// Cross-process file primitives for the sharded flow cache and the
// manifest drain protocol: advisory flock() locks, atomic appends, atomic
// whole-file replacement, and exclusive claim files.
//
// Everything here is POSIX-level on purpose. The cache's concurrency story
// is *multi-process* (N flh_flow drainers or serve workers sharing one
// directory tree), so in-process mutexes are not enough and fcntl record
// locks are too fragile (closing *any* fd on the file drops them). flock()
// is per-open-file-description, survives unrelated closes, and is released
// by the kernel when the holder dies — which is exactly the crash story the
// cache compaction protocol needs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace flh {

/// RAII advisory lock on a dedicated lock file (created on demand, never
/// deleted — unlinking a locked lock file races fresh openers onto a new
/// inode, silently splitting the lock domain).
class FileLock {
public:
    /// Block until the exclusive lock is held. Throws std::runtime_error
    /// if the lock file cannot be opened.
    static FileLock acquire(const std::string& path);

    /// Try once; nullopt if another process (or handle) holds the lock.
    static std::optional<FileLock> tryAcquire(const std::string& path);

    FileLock(FileLock&& other) noexcept;
    FileLock& operator=(FileLock&& other) noexcept;
    FileLock(const FileLock&) = delete;
    FileLock& operator=(const FileLock&) = delete;
    ~FileLock(); ///< releases the lock (flock drops with the close)

private:
    explicit FileLock(int fd) noexcept : fd_(fd) {}
    int fd_ = -1;
};

/// Append `line` to `path` with one O_APPEND write() call (creating the
/// file if needed). On local filesystems a single small append never
/// interleaves with another process's append, which is what makes the
/// cache's index logs safe to grow without a lock. Returns false (does not
/// throw) on failure — index appends are advisory, the artifact store is
/// the ground truth.
bool appendLine(const std::string& path, std::string_view line) noexcept;

/// Replace `path` atomically: write `bytes` to a uniquely-named sibling
/// temp file, fsync-free rename over the target. The temp file is removed
/// if any step fails. Throws std::runtime_error on failure.
void replaceFileAtomic(const std::string& path, std::string_view bytes);

/// Create `path` exclusively (O_CREAT|O_EXCL) with `contents`. Returns
/// true iff this call created the file — the atomic "claim" primitive the
/// manifest drain uses: exactly one of N racing processes wins each claim.
/// Throws std::runtime_error on errors other than "already exists".
bool claimFile(const std::string& path, std::string_view contents);

/// Read a whole file; nullopt if it cannot be opened (ENOENT and friends —
/// concurrent readers of files being renamed away want a miss, not an
/// error).
[[nodiscard]] std::optional<std::string> readFileIfExists(const std::string& path);

} // namespace flh
