// Minimal socket + frame transport for the serve protocol.
//
// The flh_serve daemon and its clients speak length-prefixed JSON over a
// local stream socket — a Unix domain socket by default (no port
// allocation, filesystem permissions for free) or loopback TCP when a
// port is asked for. This layer owns exactly the byte transport:
//
//   frame := u32 payload length (big-endian) ++ payload bytes
//
// Nothing here parses JSON; protocol.hpp builds on readFrame/writeFrame.
// All calls are blocking, EINTR-retried, and SIGPIPE-free (MSG_NOSIGNAL);
// a peer disconnect surfaces as a clean "closed" result, every other
// failure throws std::system_error-style std::runtime_error with errno
// text. readFrame enforces a caller-chosen maximum payload size so a
// hostile or corrupt length prefix cannot trigger an unbounded
// allocation — the admission-control story starts at the first byte.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace flh::net {

/// Move-only owned file descriptor. Closing is idempotent; the destructor
/// closes. shutdownBoth() unblocks a peer (or own) blocking read without
/// racing fd reuse the way close() would.
class Socket {
public:
    Socket() = default;
    explicit Socket(int fd) noexcept : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Socket& operator=(Socket&& other) noexcept;
    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;

    [[nodiscard]] int fd() const noexcept { return fd_; }
    [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

    void close() noexcept;
    void shutdownBoth() noexcept; ///< ::shutdown(SHUT_RDWR); ignores errors
    /// ::shutdown(SHUT_RD): unblock a pending read while keeping the write
    /// side open — the graceful server stop (in-flight responses still
    /// flush after new requests are cut off). Ignores errors.
    void shutdownRead() noexcept;

private:
    int fd_ = -1;
};

/// Listening endpoint description: a Unix socket path or a TCP port on
/// 127.0.0.1. Exactly one is active; port 0 asks the kernel for an
/// ephemeral port (read back via boundPort after listen).
struct Endpoint {
    std::string unix_path; ///< non-empty selects a Unix domain socket
    std::uint16_t port = 0; ///< used when unix_path is empty

    [[nodiscard]] static Endpoint unixAt(std::string path) {
        return Endpoint{std::move(path), 0};
    }
    [[nodiscard]] static Endpoint tcpAt(std::uint16_t port) { return Endpoint{{}, port}; }
    [[nodiscard]] std::string describe() const;
};

/// Bind + listen. For Unix endpoints a stale socket file from a previous
/// run is unlinked first. Throws on failure.
[[nodiscard]] Socket listenOn(const Endpoint& ep, int backlog = 64);

/// The port a TCP listener actually bound (resolves port 0). Throws for
/// Unix sockets.
[[nodiscard]] std::uint16_t boundPort(const Socket& listener);

/// Accept one connection; nullopt when the listener was shut down or
/// closed (the clean server-stop path). Transient resource exhaustion
/// (EMFILE/ENFILE/ENOBUFS/ENOMEM) is retried after a short backoff — a
/// long-lived daemon must not stop accepting forever because fds were
/// briefly exhausted. Throws on unexpected errors.
[[nodiscard]] std::optional<Socket> acceptOn(const Socket& listener);

/// Arm SO_RCVTIMEO on `s`: a blocking read that sees no bytes for
/// `timeout_ms` fails with EAGAIN, which readExact maps to "clean EOF" at
/// a frame-boundary start and to an error mid-frame. 0 clears the
/// timeout. Servers set this on accepted sockets so a stalled or silent
/// peer cannot pin a session thread forever.
void setRecvTimeout(const Socket& s, unsigned timeout_ms);

/// Connect to a serve endpoint. Throws on failure (including refusal).
[[nodiscard]] Socket connectTo(const Endpoint& ep);

/// Write all of `bytes`; false if the peer closed mid-write.
[[nodiscard]] bool writeAll(const Socket& s, std::string_view bytes);

/// Read exactly `n` bytes into `out` (resized). False on clean EOF (or a
/// recv-timeout with zero bytes read — an idle peer) at a frame boundary
/// start; throws if EOF or a timeout interrupts a partial read.
[[nodiscard]] bool readExact(const Socket& s, std::string& out, std::size_t n);

/// Frame transport. writeFrame refuses payloads above kMaxFramePayload.
/// readFrame returns nullopt on clean EOF; a length prefix above
/// `max_payload` throws (protocol violation, not a transport condition).
inline constexpr std::size_t kMaxFramePayload = 64u << 20; ///< 64 MiB hard cap

[[nodiscard]] bool writeFrame(const Socket& s, std::string_view payload);
[[nodiscard]] std::optional<std::string> readFrame(const Socket& s,
                                                   std::size_t max_payload = kMaxFramePayload);

} // namespace flh::net
