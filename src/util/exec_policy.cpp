#include "util/exec_policy.hpp"

#include <algorithm>
#include <thread>

namespace flh {

unsigned ExecPolicy::hardwareThreads() noexcept {
    return std::max(1u, std::thread::hardware_concurrency());
}

unsigned ExecPolicy::resolveThreads(std::size_t n_items) const noexcept {
    std::size_t t = threads ? threads : hardwareThreads();
    if (min_items_per_worker > 0)
        t = std::min<std::size_t>(t,
                                  std::max<std::size_t>(1, n_items / min_items_per_worker));
    return static_cast<unsigned>(std::max<std::size_t>(1, t));
}

} // namespace flh
