// Small string utilities shared across parsers and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace flh {

/// Remove leading and trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Split on a delimiter character; elements are trimmed, empties dropped.
[[nodiscard]] std::vector<std::string> splitTrim(std::string_view s, char delim);

/// ASCII upper-case copy.
[[nodiscard]] std::string toUpper(std::string_view s);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool startsWith(std::string_view s, std::string_view prefix) noexcept;

} // namespace flh
