#include "util/json.hpp"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <stdexcept>

namespace flh {

std::string jsonEscape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    static const char* hex = "0123456789abcdef";
                    out += "\\u00";
                    out += hex[(c >> 4) & 0xf];
                    out += hex[c & 0xf];
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string formatNumber(double v) {
    if (v == 0.0) return "0"; // collapses -0.0 as well
    if (!std::isfinite(v)) return "null";
    char buf[64];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
    assert(ec == std::errc());
    return std::string(buf, end);
}

void JsonWriter::beforeValue() {
    if (pending_key_) {
        pending_key_ = false;
        return;
    }
    if (!has_items_.empty()) {
        if (has_items_.back()) out_ += ',';
        newline();
    }
    if (!has_items_.empty()) has_items_.back() = true;
}

void JsonWriter::newline() {
    out_ += '\n';
    out_.append(2 * has_items_.size(), ' ');
}

void JsonWriter::beginObject() {
    beforeValue();
    out_ += '{';
    has_items_.push_back(false);
}

void JsonWriter::endObject() {
    const bool had = has_items_.back();
    has_items_.pop_back();
    if (had) newline();
    out_ += '}';
}

void JsonWriter::beginArray() {
    beforeValue();
    out_ += '[';
    has_items_.push_back(false);
}

void JsonWriter::endArray() {
    const bool had = has_items_.back();
    has_items_.pop_back();
    if (had) newline();
    out_ += ']';
}

void JsonWriter::key(std::string_view k) {
    if (has_items_.back()) out_ += ',';
    newline();
    has_items_.back() = true;
    out_ += '"';
    out_ += jsonEscape(k);
    out_ += "\": ";
    pending_key_ = true;
}

void JsonWriter::value(std::string_view s) {
    beforeValue();
    out_ += '"';
    out_ += jsonEscape(s);
    out_ += '"';
}

void JsonWriter::value(double v) {
    beforeValue();
    out_ += formatNumber(v);
}

void JsonWriter::value(std::int64_t v) {
    beforeValue();
    out_ += std::to_string(v);
}

void JsonWriter::value(std::uint64_t v) {
    beforeValue();
    out_ += std::to_string(v);
}

void JsonWriter::value(bool v) {
    beforeValue();
    out_ += v ? "true" : "false";
}

void JsonWriter::rawValue(std::string_view json) {
    beforeValue();
    out_ += json;
}

const JsonValue& JsonValue::at(const std::string& k) const {
    const auto it = obj.find(k);
    if (it == obj.end()) throw std::runtime_error("json: missing key: " + k);
    return it->second;
}

namespace {

/// Recursive-descent reader over the subset our writer emits (which is
/// plain JSON, so arbitrary conforming documents parse too).
class JsonReader {
public:
    explicit JsonReader(std::string_view text) : s_(text) {}

    JsonValue parseDocument() {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != s_.size()) fail("trailing bytes after document");
        return v;
    }

private:
    std::string_view s_;
    std::size_t pos_ = 0;

    [[noreturn]] void fail(const std::string& why) const {
        throw std::runtime_error("json parse error at byte " + std::to_string(pos_) +
                                 ": " + why);
    }
    void skipWs() {
        while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }
    char peek() {
        if (pos_ >= s_.size()) fail("unexpected end");
        return s_[pos_];
    }
    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }
    bool consume(char c) {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    JsonValue parseValue() {
        skipWs();
        const char c = peek();
        if (c == '{') return parseObject();
        if (c == '[') return parseArray();
        if (c == '"') {
            JsonValue v;
            v.kind = JsonValue::Kind::Str;
            v.str = parseString();
            return v;
        }
        if (c == 't' || c == 'f') return parseLiteralBool();
        if (c == 'n') {
            parseLiteral("null");
            return JsonValue{};
        }
        return parseNumber();
    }

    void parseLiteral(std::string_view lit) {
        if (s_.substr(pos_, lit.size()) != lit) fail("bad literal");
        pos_ += lit.size();
    }
    JsonValue parseLiteralBool() {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (peek() == 't') {
            parseLiteral("true");
            v.b = true;
        } else {
            parseLiteral("false");
        }
        return v;
    }

    std::string parseString() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= s_.size()) fail("unterminated string");
            const char c = s_[pos_++];
            if (c == '"') break;
            if (c == '\\') {
                if (pos_ >= s_.size()) fail("unterminated escape");
                const char e = s_[pos_++];
                switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > s_.size()) fail("short \\u escape");
                    // Our writer only \u-escapes control bytes; keep raw hex.
                    out += "\\u";
                    out += s_.substr(pos_, 4);
                    pos_ += 4;
                    break;
                }
                default: fail("bad escape");
                }
            } else {
                out += c;
            }
        }
        return out;
    }

    JsonValue parseNumber() {
        const std::size_t start = pos_;
        if (consume('-')) {
        }
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        if (pos_ == start) fail("bad number");
        JsonValue v;
        v.kind = JsonValue::Kind::Num;
        v.num = std::stod(std::string(s_.substr(start, pos_ - start)));
        return v;
    }

    JsonValue parseArray() {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Arr;
        skipWs();
        if (consume(']')) return v;
        while (true) {
            v.arr.push_back(parseValue());
            skipWs();
            if (consume(']')) break;
            expect(',');
        }
        return v;
    }

    JsonValue parseObject() {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Obj;
        skipWs();
        if (consume('}')) return v;
        while (true) {
            skipWs();
            std::string k = parseString();
            skipWs();
            expect(':');
            v.obj.emplace(std::move(k), parseValue());
            skipWs();
            if (consume('}')) break;
            expect(',');
        }
        return v;
    }
};

} // namespace

JsonValue parseJson(std::string_view text) { return JsonReader(text).parseDocument(); }

} // namespace flh
