#include "util/json.hpp"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <stdexcept>

namespace flh {

std::string jsonEscape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    static const char* hex = "0123456789abcdef";
                    out += "\\u00";
                    out += hex[(c >> 4) & 0xf];
                    out += hex[c & 0xf];
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string formatNumber(double v) {
    if (v == 0.0) return "0"; // collapses -0.0 as well
    if (!std::isfinite(v)) return "null";
    char buf[64];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
    assert(ec == std::errc());
    return std::string(buf, end);
}

void JsonWriter::beforeValue() {
    if (pending_key_) {
        pending_key_ = false;
        return;
    }
    if (!has_items_.empty()) {
        if (has_items_.back()) out_ += ',';
        newline();
    }
    if (!has_items_.empty()) has_items_.back() = true;
}

void JsonWriter::newline() {
    out_ += '\n';
    out_.append(2 * has_items_.size(), ' ');
}

void JsonWriter::beginObject() {
    beforeValue();
    out_ += '{';
    has_items_.push_back(false);
}

void JsonWriter::endObject() {
    const bool had = has_items_.back();
    has_items_.pop_back();
    if (had) newline();
    out_ += '}';
}

void JsonWriter::beginArray() {
    beforeValue();
    out_ += '[';
    has_items_.push_back(false);
}

void JsonWriter::endArray() {
    const bool had = has_items_.back();
    has_items_.pop_back();
    if (had) newline();
    out_ += ']';
}

void JsonWriter::key(std::string_view k) {
    if (has_items_.back()) out_ += ',';
    newline();
    has_items_.back() = true;
    out_ += '"';
    out_ += jsonEscape(k);
    out_ += "\": ";
    pending_key_ = true;
}

void JsonWriter::value(std::string_view s) {
    beforeValue();
    out_ += '"';
    out_ += jsonEscape(s);
    out_ += '"';
}

void JsonWriter::value(double v) {
    beforeValue();
    out_ += formatNumber(v);
}

void JsonWriter::value(std::int64_t v) {
    beforeValue();
    out_ += std::to_string(v);
}

void JsonWriter::value(std::uint64_t v) {
    beforeValue();
    out_ += std::to_string(v);
}

void JsonWriter::value(bool v) {
    beforeValue();
    out_ += v ? "true" : "false";
}

void JsonWriter::rawValue(std::string_view json) {
    beforeValue();
    out_ += json;
}

const JsonValue& JsonValue::at(const std::string& k) const {
    const auto it = obj.find(k);
    if (it == obj.end()) throw std::runtime_error("json: missing key: " + k);
    return it->second;
}

namespace {

/// Recursive-descent reader over the subset our writer emits (which is
/// plain JSON, so arbitrary conforming documents parse too). Hardened for
/// untrusted input (the serve wire protocol feeds it raw client bytes):
/// nesting depth, string length, and number length are bounded by
/// JsonLimits, strings must be valid UTF-8 with no raw control bytes, and
/// numbers follow the strict JSON grammar through std::from_chars — no
/// locale, no exceptions other than the positioned std::runtime_error.
class JsonReader {
public:
    JsonReader(std::string_view text, const JsonLimits& limits)
        : s_(text), limits_(limits) {}

    JsonValue parseDocument() {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != s_.size()) fail("trailing bytes after document");
        return v;
    }

private:
    std::string_view s_;
    JsonLimits limits_;
    std::size_t pos_ = 0;
    std::size_t depth_ = 0;

    [[noreturn]] void fail(const std::string& why) const {
        // Positioning: byte offset plus 1-based line:column, computed only
        // on the failure path so the happy path never pays for it.
        std::size_t line = 1;
        std::size_t col = 1;
        for (std::size_t i = 0; i < pos_ && i < s_.size(); ++i) {
            if (s_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        throw std::runtime_error("json parse error at byte " + std::to_string(pos_) +
                                 " (line " + std::to_string(line) + ", col " +
                                 std::to_string(col) + "): " + why);
    }

    /// RAII nesting guard: every container level checks the depth budget.
    struct DepthGuard {
        JsonReader& r;
        explicit DepthGuard(JsonReader& reader) : r(reader) {
            if (++r.depth_ > r.limits_.max_depth)
                r.fail("nesting deeper than " + std::to_string(r.limits_.max_depth));
        }
        ~DepthGuard() { --r.depth_; }
    };
    void skipWs() {
        while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }
    char peek() {
        if (pos_ >= s_.size()) fail("unexpected end");
        return s_[pos_];
    }
    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }
    bool consume(char c) {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    JsonValue parseValue() {
        skipWs();
        const char c = peek();
        if (c == '{') return parseObject();
        if (c == '[') return parseArray();
        if (c == '"') {
            JsonValue v;
            v.kind = JsonValue::Kind::Str;
            v.str = parseString();
            return v;
        }
        if (c == 't' || c == 'f') return parseLiteralBool();
        if (c == 'n') {
            parseLiteral("null");
            return JsonValue{};
        }
        return parseNumber();
    }

    void parseLiteral(std::string_view lit) {
        if (s_.substr(pos_, lit.size()) != lit) fail("bad literal");
        pos_ += lit.size();
    }
    JsonValue parseLiteralBool() {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (peek() == 't') {
            parseLiteral("true");
            v.b = true;
        } else {
            parseLiteral("false");
        }
        return v;
    }

    /// Continuation-byte check for the UTF-8 validator below.
    [[nodiscard]] bool continuation(std::size_t i) const noexcept {
        return i < s_.size() && (static_cast<unsigned char>(s_[i]) & 0xc0) == 0x80;
    }

    /// Validate (and copy) one non-ASCII UTF-8 sequence starting at the
    /// current byte. Rejects truncated sequences, bare continuation bytes,
    /// overlong forms' lead bytes (0xc0/0xc1), and anything past U+10FFFF
    /// (lead bytes above 0xf4) — enough to keep the serve protocol from
    /// echoing malformed bytes back into otherwise-valid JSON responses.
    void consumeUtf8Tail(std::string& out, unsigned char lead) {
        std::size_t extra = 0;
        if (lead >= 0xc2 && lead <= 0xdf) extra = 1;
        else if (lead >= 0xe0 && lead <= 0xef) extra = 2;
        else if (lead >= 0xf0 && lead <= 0xf4) extra = 3;
        else {
            --pos_; // point the error at the offending byte
            fail("invalid UTF-8 byte in string");
        }
        for (std::size_t i = 0; i < extra; ++i) {
            if (!continuation(pos_ + i)) {
                pos_ += i;
                fail("truncated UTF-8 sequence in string");
            }
        }
        out.append(s_.substr(pos_ - 1, extra + 1));
        pos_ += extra;
    }

    std::string parseString() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= s_.size()) fail("unterminated string");
            const char c = s_[pos_++];
            if (c == '"') break;
            if (out.size() >= limits_.max_string_bytes)
                fail("string longer than " + std::to_string(limits_.max_string_bytes) +
                     " bytes");
            if (c == '\\') {
                if (pos_ >= s_.size()) fail("unterminated escape");
                const char e = s_[pos_++];
                switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > s_.size()) fail("short \\u escape");
                    for (std::size_t i = 0; i < 4; ++i)
                        if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
                            pos_ += i;
                            fail("non-hex digit in \\u escape");
                        }
                    // Our writer only \u-escapes control bytes; keep raw hex.
                    out += "\\u";
                    out += s_.substr(pos_, 4);
                    pos_ += 4;
                    break;
                }
                default: fail("bad escape");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                --pos_;
                fail("raw control byte in string (must be escaped)");
            } else if (static_cast<unsigned char>(c) < 0x80) {
                out += c;
            } else {
                consumeUtf8Tail(out, static_cast<unsigned char>(c));
            }
        }
        return out;
    }

    JsonValue parseNumber() {
        // Strict JSON grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
        const std::size_t start = pos_;
        consume('-');
        const auto digits = [&]() -> std::size_t {
            std::size_t n = 0;
            while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
                ++pos_;
                ++n;
            }
            return n;
        };
        if (pos_ < s_.size() && s_[pos_] == '0') ++pos_; // no leading zeros
        else if (digits() == 0) fail("bad number");
        if (consume('.') && digits() == 0) fail("bad number: digits required after '.'");
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
            if (digits() == 0) fail("bad number: digits required in exponent");
        }
        if (pos_ - start > limits_.max_number_chars)
            fail("number longer than " + std::to_string(limits_.max_number_chars) +
                 " chars");
        JsonValue v;
        v.kind = JsonValue::Kind::Num;
        const auto [p, ec] = std::from_chars(s_.data() + start, s_.data() + pos_, v.num);
        if (ec == std::errc::result_out_of_range)
            fail("number out of double range");
        if (ec != std::errc() || p != s_.data() + pos_) fail("bad number");
        return v;
    }

    JsonValue parseArray() {
        DepthGuard depth(*this);
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Arr;
        skipWs();
        if (consume(']')) return v;
        while (true) {
            v.arr.push_back(parseValue());
            skipWs();
            if (consume(']')) break;
            expect(',');
        }
        return v;
    }

    JsonValue parseObject() {
        DepthGuard depth(*this);
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Obj;
        skipWs();
        if (consume('}')) return v;
        while (true) {
            skipWs();
            std::string k = parseString();
            skipWs();
            expect(':');
            v.obj.emplace(std::move(k), parseValue());
            skipWs();
            if (consume('}')) break;
            expect(',');
        }
        return v;
    }
};

} // namespace

JsonValue parseJson(std::string_view text, const JsonLimits& limits) {
    return JsonReader(text, limits).parseDocument();
}

} // namespace flh
