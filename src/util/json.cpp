#include "util/json.hpp"

#include <cassert>
#include <charconv>
#include <cmath>

namespace flh {

std::string jsonEscape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    static const char* hex = "0123456789abcdef";
                    out += "\\u00";
                    out += hex[(c >> 4) & 0xf];
                    out += hex[c & 0xf];
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string formatNumber(double v) {
    if (v == 0.0) return "0"; // collapses -0.0 as well
    if (!std::isfinite(v)) return "null";
    char buf[64];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
    assert(ec == std::errc());
    return std::string(buf, end);
}

void JsonWriter::beforeValue() {
    if (pending_key_) {
        pending_key_ = false;
        return;
    }
    if (!has_items_.empty()) {
        if (has_items_.back()) out_ += ',';
        newline();
    }
    if (!has_items_.empty()) has_items_.back() = true;
}

void JsonWriter::newline() {
    out_ += '\n';
    out_.append(2 * has_items_.size(), ' ');
}

void JsonWriter::beginObject() {
    beforeValue();
    out_ += '{';
    has_items_.push_back(false);
}

void JsonWriter::endObject() {
    const bool had = has_items_.back();
    has_items_.pop_back();
    if (had) newline();
    out_ += '}';
}

void JsonWriter::beginArray() {
    beforeValue();
    out_ += '[';
    has_items_.push_back(false);
}

void JsonWriter::endArray() {
    const bool had = has_items_.back();
    has_items_.pop_back();
    if (had) newline();
    out_ += ']';
}

void JsonWriter::key(std::string_view k) {
    if (has_items_.back()) out_ += ',';
    newline();
    has_items_.back() = true;
    out_ += '"';
    out_ += jsonEscape(k);
    out_ += "\": ";
    pending_key_ = true;
}

void JsonWriter::value(std::string_view s) {
    beforeValue();
    out_ += '"';
    out_ += jsonEscape(s);
    out_ += '"';
}

void JsonWriter::value(double v) {
    beforeValue();
    out_ += formatNumber(v);
}

void JsonWriter::value(std::int64_t v) {
    beforeValue();
    out_ += std::to_string(v);
}

void JsonWriter::value(std::uint64_t v) {
    beforeValue();
    out_ += std::to_string(v);
}

void JsonWriter::value(bool v) {
    beforeValue();
    out_ += v ? "true" : "false";
}

} // namespace flh
