// Shared command-line machinery for the flh_* CLIs.
//
// Every driver binary (flh_flow, flh_fuzz, flh_benchdiff, flh_serve,
// flh_client) used to hand-roll the same loop: a `next()` lambda guarding
// missing values, a from_chars parseNum with a usage error, `--help`
// handling, and the common --threads/--trace/--metrics/--out/--heartbeat/
// --quiet flag block. ArgScan + CommonFlags are that loop extracted once.
// This layer is pure argument parsing — it knows nothing about telemetry;
// callers hand CommonFlags::trace_path etc. to the obs layer themselves
// (flh_util sits below flh_obs in the link order).
//
//   ArgScan scan(argc, argv, "flh_serve", kUsage);
//   CommonFlags common;
//   while (scan.next()) {
//       if (common.tryParse(scan)) continue;
//       if (scan.is("--socket")) socket_path = scan.value();
//       else if (scan.is("--port")) port = scan.num<unsigned>();
//       else scan.unknownOption();
//   }
#pragma once

#include "util/strings.hpp"

#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace flh::cli {

/// One pass over argv with the repo's established conventions: `--help`/
/// `-h` prints the usage text and exits 0, a flag missing its value or
/// failing to parse exits 2 with a "tool: message\nusage..." diagnostic.
class ArgScan {
public:
    ArgScan(int argc, char** argv, std::string tool, std::string usage);

    /// Advance to the next argument; false once argv is exhausted.
    /// Consumes --help/-h itself (prints usage, exits 0).
    [[nodiscard]] bool next();

    /// The current argument (valid after a true next()).
    [[nodiscard]] const std::string& arg() const noexcept { return arg_; }
    [[nodiscard]] bool is(std::string_view flag) const noexcept { return arg_ == flag; }

    /// The value following the current flag; usageError if argv ends first.
    [[nodiscard]] std::string value();

    /// Typed value parsing for the current flag (whole-string from_chars).
    template <typename T> [[nodiscard]] T num() { return parse<T>(arg_, value()); }

    /// Comma-separated list value, trimmed, empties dropped; usageError on
    /// an empty result (a bare "--flag ,," is always a mistake).
    [[nodiscard]] std::vector<std::string> list();
    template <typename T> [[nodiscard]] std::vector<T> numList() {
        const std::string flag = arg_;
        std::vector<T> out;
        for (const std::string& s : list()) out.push_back(parse<T>(flag, s));
        return out;
    }

    [[noreturn]] void usageError(const std::string& msg) const;
    [[noreturn]] void unknownOption() const { usageError("unknown option '" + arg_ + "'"); }

    [[nodiscard]] const std::string& tool() const noexcept { return tool_; }

    /// The shared parseNum: accepts exactly one whole number token.
    template <typename T> [[nodiscard]] T parse(const std::string& flag, const std::string& s) const {
        T v{};
        const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
        if (ec != std::errc() || p != s.data() + s.size())
            usageError("bad value for " + flag + ": '" + s + "'");
        return v;
    }

private:
    int argc_;
    char** argv_;
    int i_ = 0; ///< index of the current argument
    std::string tool_;
    std::string usage_;
    std::string arg_;
};

/// The flag block shared by every long-running driver:
///   --threads N   worker threads (0 = one per hardware thread)
///   --trace FILE  Chrome trace_event export path
///   --metrics FILE telemetry metrics export path
///   --events FILE structured JSONL event-log sink path
///   --out DIR     bench-export directory (overrides FLH_BENCH_OUT)
///   --heartbeat S rate-limited stderr progress line cadence
///   --quiet       suppress console output
/// tryParse() consumes a matching flag and returns true, so driver loops
/// keep one `if (common.tryParse(scan)) continue;` line. Drivers whose
/// --threads has different semantics (flh_fuzz takes a list) set
/// parse_threads = false and handle it themselves.
struct CommonFlags {
    unsigned threads = 1;
    bool threads_set = false; ///< --threads appeared (for override defaults)
    std::string trace_path;
    std::string metrics_path;
    std::string events_path;
    std::string out_flag;
    double heartbeat_s = 0.0;
    bool quiet = false;
    bool parse_threads = true;

    bool tryParse(ArgScan& scan);

    /// True when any telemetry export was requested (the established cue
    /// for obs::setEnabled(true)).
    [[nodiscard]] bool wantsTelemetry() const noexcept {
        return !trace_path.empty() || !metrics_path.empty() || heartbeat_s > 0.0;
    }
};

/// The cache flag block shared by flh_flow and flh_serve (mapped onto the
/// flow layer's CacheConfig by flh::makeCacheConfig — this struct stays
/// plain so flh_util keeps sitting below flh_flow in the link order):
///   --cache-dir DIR        result cache directory
///   --cache-max-bytes N    GC byte budget (suffixes k/m/g, binary)
///   --cache-max-entries N  GC entry budget
///   --cache-max-age SEC    GC age bound (seconds)
///   --cache-gc             run a GC pass when the cache opens
///   --no-cache             disable the cache entirely
struct CacheFlags {
    std::string dir = ".flowcache";
    std::uint64_t max_bytes = 0;
    std::uint64_t max_entries = 0;
    double max_age_s = 0.0;
    bool gc_on_open = false;
    bool no_cache = false;

    /// Consume a matching flag; false if the current flag is not ours.
    bool tryParse(ArgScan& scan);
};

/// Parse a byte size with an optional binary suffix: "512", "64k", "8M",
/// "2g" (case-insensitive). usageError via `scan` on anything else.
[[nodiscard]] std::uint64_t parseByteSize(const ArgScan& scan, const std::string& flag,
                                          const std::string& s);

/// Write `bytes` to `path`, exiting 1 with a "tool: cannot write" line on
/// failure — the shared writeFile every CLI duplicated.
void writeFileOrDie(const std::string& tool, const std::string& path,
                    const std::string& bytes);

} // namespace flh::cli
