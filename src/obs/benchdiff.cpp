#include "obs/benchdiff.hpp"

#include "util/json.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <tuple>

namespace flh::obs {

namespace {

namespace fs = std::filesystem;

RepStats statsFrom(const JsonValue& stats, int reps) {
    RepStats s;
    s.reps = reps;
    s.median = stats.at("median").num;
    s.min = stats.at("min").num;
    s.max = stats.at("max").num;
    s.q1 = stats.at("q1").num;
    s.q3 = stats.at("q3").num;
    return s;
}

/// Regression margin for single-rep baselines (which have no IQR).
constexpr double kSingleRepMargin = 0.25;

/// Matching identity of a point across runs.
using PointKey = std::tuple<std::string, std::string, unsigned>;

PointKey keyOf(const BenchPoint& p) { return {p.payload_schema, p.name, p.threads}; }

/// "1.23ms"-style compact time for the console table.
std::string fmtNs(double ns) {
    std::ostringstream os;
    os.precision(3);
    if (ns >= 1e9)
        os << ns / 1e9 << "s";
    else if (ns >= 1e6)
        os << ns / 1e6 << "ms";
    else if (ns >= 1e3)
        os << ns / 1e3 << "us";
    else
        os << ns << "ns";
    return os.str();
}

} // namespace

std::vector<BenchPoint> loadBenchDir(const std::string& dir) {
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        throw std::runtime_error("not a directory: " + dir);

    // Deterministic file order regardless of directory enumeration order.
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(dir)) {
        if (entry.is_regular_file() && entry.path().extension() == ".json")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());

    std::vector<BenchPoint> points;
    for (const fs::path& path : files) {
        std::ifstream in(path);
        std::stringstream buf;
        buf << in.rdbuf();
        JsonValue doc;
        try {
            doc = parseJson(buf.str());
        } catch (const std::exception& e) {
            std::cerr << "flh_benchdiff: skipping " << path.string() << ": " << e.what()
                      << "\n";
            continue;
        }
        if (!doc.has("schema") || doc.at("schema").str != kBenchEnvelopeSchema) {
            std::cerr << "flh_benchdiff: skipping " << path.string()
                      << ": not a bench envelope\n";
            continue;
        }
        const std::string payload_schema =
            doc.has("payload_schema") ? doc.at("payload_schema").str : "";
        std::string git_sha;
        std::string build_type;
        if (doc.has("provenance")) {
            const JsonValue& prov = doc.at("provenance");
            if (prov.has("git_sha")) git_sha = prov.at("git_sha").str;
            if (prov.has("build_type")) build_type = prov.at("build_type").str;
        }
        for (const JsonValue& b : doc.at("benchmarks").arr) {
            BenchPoint p;
            p.payload_schema = payload_schema;
            p.name = b.at("name").str;
            p.threads = static_cast<unsigned>(b.at("threads").num);
            p.real_time = statsFrom(b.at("real_time_ns"),
                                    static_cast<int>(b.at("reps").num));
            if (b.has("items_per_second"))
                p.ips_median = b.at("items_per_second").at("median").num;
            p.file = path.string();
            p.git_sha = git_sha;
            p.build_type = build_type;
            points.push_back(std::move(p));
        }
    }
    return points;
}

const char* verdictName(Verdict v) {
    switch (v) {
    case Verdict::Ok: return "ok";
    case Verdict::Regression: return "regression";
    case Verdict::Improvement: return "improvement";
    case Verdict::New: return "new";
    case Verdict::Missing: return "missing";
    case Verdict::Skipped: return "skipped";
    }
    return "?";
}

void DiffRow::writeJson(JsonWriter& w) const {
    w.beginObject();
    w.kv("payload_schema", payload_schema);
    w.kv("name", name);
    w.kv("threads", static_cast<std::uint64_t>(threads));
    w.kv("verdict", verdictName(verdict));
    w.kv("hard_fail", hard_fail);
    if (base_median > 0) {
        w.kv("base_median_ns", base_median);
        w.kv("base_q1_ns", base_q1);
        w.kv("base_q3_ns", base_q3);
    }
    if (cand_median > 0) w.kv("cand_median_ns", cand_median);
    if (ratio > 0) w.kv("ratio", ratio);
    w.endObject();
}

std::size_t DiffReport::count(Verdict v) const {
    std::size_t n = 0;
    for (const DiffRow& r : rows)
        if (r.verdict == v) ++n;
    return n;
}

bool DiffReport::hardFailures() const {
    return std::any_of(rows.begin(), rows.end(),
                       [](const DiffRow& r) { return r.hard_fail; });
}

std::string DiffReport::json() const {
    JsonWriter w;
    w.beginObject();
    w.kv("schema", "flh.bench.diff/1");
    w.key("provenance");
    RunProvenance::collect().writeJson(w);
    w.key("options");
    w.beginObject();
    w.kv("ratio", opts.ratio);
    w.kv("fail_above", opts.fail_above);
    w.kv("min_time_ns", opts.min_time_ns);
    w.endObject();
    w.key("summary");
    w.beginObject();
    w.kv("compared", rows.size());
    w.kv("regressions", regressions());
    w.kv("improvements", improvements());
    w.kv("new", added());
    w.kv("missing", missing());
    w.kv("skipped", count(Verdict::Skipped));
    w.kv("hard_failures", hardFailures());
    w.endObject();
    w.key("rows");
    w.beginArray();
    for (const DiffRow& r : rows) r.writeJson(w);
    w.endArray();
    w.endObject();
    return w.str() + "\n";
}

TextTable DiffReport::table() const {
    TextTable t({"Benchmark", "Thr", "Base med", "Cand med", "Ratio", "Base IQR",
                 "Verdict"});
    for (const DiffRow& r : rows) {
        // Upper-case the verdicts a human should not scroll past.
        std::string verdict = verdictName(r.verdict);
        if (r.verdict == Verdict::Regression || r.verdict == Verdict::Missing)
            for (char& c : verdict) c = static_cast<char>(std::toupper(c));
        if (r.hard_fail) verdict += " (HARD)";
        t.addRow({r.name, std::to_string(r.threads),
                  r.base_median > 0 ? fmtNs(r.base_median) : "-",
                  r.cand_median > 0 ? fmtNs(r.cand_median) : "-",
                  r.ratio > 0 ? fmt(r.ratio, 3) : "-",
                  r.base_median > 0
                      ? "[" + fmtNs(r.base_q1) + ", " + fmtNs(r.base_q3) + "]"
                      : "-",
                  verdict});
    }
    return t;
}

DiffReport diffBench(const std::vector<BenchPoint>& baseline,
                     const std::vector<BenchPoint>& candidate,
                     const DiffOptions& opts) {
    DiffReport rep;
    rep.opts = opts;

    std::map<PointKey, const BenchPoint*> cand_by_key;
    for (const BenchPoint& p : candidate) cand_by_key[keyOf(p)] = &p;
    std::map<PointKey, bool> matched;

    for (const BenchPoint& base : baseline) {
        DiffRow row;
        row.payload_schema = base.payload_schema;
        row.name = base.name;
        row.threads = base.threads;
        row.base_median = base.real_time.median;
        row.base_q1 = base.real_time.q1;
        row.base_q3 = base.real_time.q3;

        const auto it = cand_by_key.find(keyOf(base));
        if (it == cand_by_key.end()) {
            row.verdict = Verdict::Missing;
            rep.rows.push_back(std::move(row));
            continue;
        }
        matched[keyOf(base)] = true;
        const BenchPoint& cand = *it->second;
        row.cand_median = cand.real_time.median;
        if (base.real_time.median > 0)
            row.ratio = cand.real_time.median / base.real_time.median;

        // A single-sample baseline (e.g. one flow-stage execution) carries
        // no spread information, so the IQR test degenerates to the bare
        // ratio. Compensate: such entries need 10x the time floor to
        // participate at all, and a wider margin (scheduler jitter on a
        // one-shot measurement routinely exceeds 10%).
        const bool single = base.real_time.reps < 2;
        const double floor_ns = single ? 10.0 * opts.min_time_ns : opts.min_time_ns;
        const double margin = single ? std::max(opts.ratio, kSingleRepMargin)
                                     : opts.ratio;
        if (base.real_time.median < floor_ns) {
            row.verdict = Verdict::Skipped;
        } else if (row.cand_median > base.real_time.q3 &&
                   row.ratio > 1.0 + margin) {
            row.verdict = Verdict::Regression;
        } else if (row.cand_median < base.real_time.q1 &&
                   row.ratio > 0 && row.ratio < 1.0 - margin) {
            row.verdict = Verdict::Improvement;
        } else {
            row.verdict = Verdict::Ok;
        }
        row.hard_fail = opts.fail_above > 0 && row.verdict != Verdict::Skipped &&
                        row.ratio > opts.fail_above;
        rep.rows.push_back(std::move(row));
    }

    for (const BenchPoint& cand : candidate) {
        if (matched.count(keyOf(cand))) continue;
        DiffRow row;
        row.payload_schema = cand.payload_schema;
        row.name = cand.name;
        row.threads = cand.threads;
        row.cand_median = cand.real_time.median;
        row.verdict = Verdict::New;
        rep.rows.push_back(std::move(row));
    }
    return rep;
}

} // namespace flh::obs
