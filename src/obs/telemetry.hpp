// Low-overhead telemetry: scoped spans, counters, gauges.
//
// This is the observability substrate for the flow engine and the
// fault-simulation workers. Design constraints, in order:
//
//  1. Near-zero cost when disabled. Telemetry stays compiled into
//     production builds; every hook first checks one process-global
//     relaxed atomic flag through an inlined function, so the disabled
//     path is a single predictable load-and-branch (measured <= 2%
//     faults/sec impact on the grading kernels). A compile-time kill
//     switch (-DFLH_OBS_COMPILED_IN=0) additionally turns every hook
//     into an empty inline body for builds that want literally nothing.
//
//  2. Thread-safe without hot-path contention. Spans land in per-thread
//     lane buffers (one lane per OS thread, registered on first use);
//     only the owning thread appends, under a per-lane mutex that is
//     uncontended except during export. Counters are single atomics.
//
//  3. Determinism firewall. Telemetry never feeds flow_report.json or
//     any artifact/cache key — it exports only through the explicitly
//     non-deterministic side (trace/metrics files, flow_profile.json's
//     sibling outputs). Enabling or disabling telemetry must not change
//     any deterministic output byte.
//
// Export formats live in the same module: traceJson() emits Chrome
// trace_event JSON (chrome://tracing / Perfetto loadable, one lane per
// worker thread) and metricsJson() a flat counter/gauge dump. Snapshot
// the trace only after worker pools have joined; live foreign threads
// may still be appending to their own lanes.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#ifndef FLH_OBS_COMPILED_IN
#define FLH_OBS_COMPILED_IN 1
#endif

namespace flh::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
} // namespace detail

/// True while telemetry is recording. Inline relaxed load: this is the
/// only cost a disabled hook pays.
[[nodiscard]] inline bool enabled() noexcept {
#if FLH_OBS_COMPILED_IN
    return detail::g_enabled.load(std::memory_order_relaxed);
#else
    return false;
#endif
}

/// Turn recording on/off. Off is the default; flipping the flag never
/// discards already-recorded data (use reset() for that).
void setEnabled(bool on) noexcept;

/// Drop every recorded span, zero every counter/gauge, and forget lane
/// labels. Registered counter addresses stay valid (tests and long-lived
/// `static Counter&` caches keep working).
void reset();

/// Monotonic counter, aggregated across all threads that add to it.
/// Obtain one from counter() — the registry owns it and its address is
/// stable for the process lifetime, so hot paths cache the reference.
class Counter {
public:
    void add(std::uint64_t n = 1) noexcept {
        if (enabled()) v_.fetch_add(n, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t value() const noexcept {
        return v_.load(std::memory_order_relaxed);
    }

private:
    friend void reset();
    std::atomic<std::uint64_t> v_{0};
};

/// Last-value gauge that also tracks the high-water mark (e.g. ready-queue
/// depth). Same registry/lifetime rules as Counter.
class Gauge {
public:
    void set(std::int64_t v) noexcept {
        if (!enabled()) return;
        v_.store(v, std::memory_order_relaxed);
        std::int64_t prev = peak_.load(std::memory_order_relaxed);
        while (v > prev && !peak_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
        }
    }
    [[nodiscard]] std::int64_t value() const noexcept {
        return v_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t peak() const noexcept {
        return peak_.load(std::memory_order_relaxed);
    }

private:
    friend void reset();
    std::atomic<std::int64_t> v_{0};
    std::atomic<std::int64_t> peak_{0};
};

/// Log-bucketed latency/size histogram. Buckets are powers of two
/// subdivided into 16 linear sub-buckets (~2 significant digits: a
/// bucket midpoint is within ~3% of any sample it absorbs), 1024 fixed
/// slots covering roughly [5e-7, 9e12] — microseconds through hours in
/// either ms or us units. All state is relaxed atomics, so concurrent
/// recorders never lose updates and never take a lock.
///
/// record() follows the same near-zero disabled path as Counter/Gauge
/// (one inlined relaxed load, no allocation); observe() is the
/// always-on variant for stats that are double-booked next to gated
/// telemetry, like serve's request-latency breakdown.
class Histogram {
public:
    static constexpr std::size_t kBucketCount = 1024;

    void record(double v) noexcept {
        if (enabled()) observe(v);
    }
    void observe(double v) noexcept;

    /// Point-in-time rollup. Percentiles use the same fractional-rank
    /// rule as stats::percentileSorted (rank p*(count-1)), interpolated
    /// within the hit bucket and clamped to the observed [min, max].
    struct Summary {
        std::uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
        double p50 = 0.0;
        double p95 = 0.0;
        double p99 = 0.0;
    };
    [[nodiscard]] Summary summarize() const;

    [[nodiscard]] std::uint64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

    /// Dense bucket snapshot (index -> count). Snapshot after recorders
    /// quiesce for exact totals; a concurrent snapshot may lag count().
    [[nodiscard]] std::vector<std::uint64_t> bucketCounts() const;

private:
    friend void reset();
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{std::numeric_limits<double>::infinity()};
    std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
    std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
};

/// Bucket math, exposed so mergers (flh_obsmerge) and tests share the
/// exact boundary rules. Buckets partition [0, inf): index 0 absorbs
/// zero/negative/underflow, the last bucket absorbs overflow.
[[nodiscard]] std::size_t histogramBucketIndex(double v) noexcept;
/// Inclusive lower edge of bucket idx (0 for idx 0).
[[nodiscard]] double histogramBucketLo(std::size_t idx) noexcept;
/// Exclusive upper edge (== histogramBucketLo(idx+1); +inf for the last).
[[nodiscard]] double histogramBucketHi(std::size_t idx) noexcept;

/// Percentile estimate from bucket counts alone — what a merger computes
/// after adding N processes' buckets element-wise. Same fractional-rank
/// rule as the in-process Summary; the result is clamped to
/// [min_v, max_v] when min_v <= max_v.
[[nodiscard]] double percentileFromBuckets(const std::vector<std::uint64_t>& buckets, double p,
                                           double min_v, double max_v) noexcept;

/// Registry lookup (creates on first use). Slow path — cache the
/// reference: `static obs::Counter& c = obs::counter("fault_sim.graded");`
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Gauge& gauge(std::string_view name);
[[nodiscard]] Histogram& histogram(std::string_view name);

/// One registered metric's current value, snapshotted by name. The export
/// and sampler paths read these; hot paths never do.
struct MetricSnapshot {
    std::string name;
    double value = 0.0;
};

/// Snapshot every registered counter / gauge (current value, not peak),
/// sorted by name. Slow path — takes the registry lock.
[[nodiscard]] std::vector<MetricSnapshot> snapshotCounters();
[[nodiscard]] std::vector<MetricSnapshot> snapshotGauges();

/// Append a Chrome-trace counter sample ("C" phase) to the calling
/// thread's lane: traceJson() renders these as a value-over-time track
/// (category "obs.sample"), which is how the sampler draws throughput
/// curves inside the existing trace. No-op while disabled.
void recordCounterSample(std::string name, double value);

/// Label the calling thread's trace lane ("flow-worker-2"). Unlabeled
/// lanes export as "thread-<lane>". No-op while disabled.
void setThreadLabel(std::string label);

/// Thread-local request trace id. While set, every span the calling
/// thread records carries it into the trace export as args.trace_id —
/// which is how flh_serve threads one request's identity through the
/// shared worker lanes (a lane interleaves many requests; the trace id is
/// what groups one request's spans back together). Empty clears. Unlike
/// the recording hooks this is NOT gated on enabled(): trace context is
/// identity propagation, and the event log (its own flag) must see
/// request ids while full span tracing is off. The consumers are gated.
void setTraceId(std::string id);

/// The calling thread's current trace id ("" when none is set).
[[nodiscard]] const std::string& currentTraceId() noexcept;

/// RAII trace-id scope: sets on construction, restores the previous id on
/// destruction — the per-request bracket for serve worker threads.
class ScopedTraceId {
public:
    explicit ScopedTraceId(std::string id);
    ~ScopedTraceId();

    ScopedTraceId(const ScopedTraceId&) = delete;
    ScopedTraceId& operator=(const ScopedTraceId&) = delete;

private:
#if FLH_OBS_COMPILED_IN
    std::string prev_;
    bool active_ = false;
#endif
};

/// RAII span: construction stamps the start, destruction records the
/// completed interval into the calling thread's lane. A span constructed
/// while telemetry is disabled records nothing even if telemetry is
/// enabled before it closes (and vice versa it still records, keeping
/// enable/disable races harmless).
class ScopedSpan {
public:
    explicit ScopedSpan(std::string name, std::string category = "");
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

private:
#if FLH_OBS_COMPILED_IN
    std::string name_;
    std::string cat_;
    std::string trace_id_; ///< captured from the thread at construction
    double start_us_ = -1.0; ///< < 0: inactive (telemetry was disabled)
#endif
};

/// Microseconds since the process-wide telemetry epoch (first use).
[[nodiscard]] double nowUs() noexcept;

/// Wall clock (system_clock, microseconds since the Unix epoch) captured
/// at the same instant the steady-clock epoch behind nowUs() was pinned.
/// Cross-process mergers use it to shift each process's relative
/// timestamps onto one shared timeline; traceJson(), the sampler's
/// timeseries, and the event-log sink all embed it as wall_epoch_us.
[[nodiscard]] double wallEpochUs() noexcept;

/// Number of span ("X") events currently recorded across all lanes
/// (counter samples are excluded).
[[nodiscard]] std::size_t spanCount();

/// Number of lanes (threads) that recorded at least one event or label.
[[nodiscard]] std::size_t laneCount();

/// Chrome trace_event export: {"traceEvents":[...]} with one "M"
/// thread_name metadata record per lane, one complete ("X") event per
/// span, and one counter ("C") event per recorded sample, pid 1,
/// tid = lane id (registration order, main-ish first). Ends with a
/// newline.
[[nodiscard]] std::string traceJson();

/// Flat metrics export (schema flh.obs.metrics/1): counters and gauges
/// sorted by name, plus span/lane totals. Ends with a newline.
[[nodiscard]] std::string metricsJson();

} // namespace flh::obs
