#include "obs/telemetry.hpp"

#include "util/json.hpp"

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace flh::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

/// One recorded event: a completed interval ("X") or a counter sample
/// ("C", value in `value`). Timestamps are wall-clock and therefore live
/// strictly on the non-deterministic export side.
struct SpanEvent {
    std::string name;
    std::string cat;
    std::string trace_id; ///< request attribution (args.trace_id); may be empty
    double ts_us = 0.0;
    double dur_us = 0.0;
    char ph = 'X';
    double value = 0.0;
};

/// One thread's span storage. Owned by the registry for the process
/// lifetime; only the owning thread appends, so the mutex is uncontended
/// except while an exporter snapshots.
struct Lane {
    std::size_t id = 0;
    std::mutex mu;
    std::string label;
    std::vector<SpanEvent> events;
};

struct Registry {
    std::mutex mu;
    std::vector<std::unique_ptr<Lane>> lanes;
    // Ordered maps: export iterates them directly in sorted-name order.
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
};

Registry& registry() {
    static Registry* r = new Registry; // intentionally leaked: threads may
    return *r;                         // outlive static destruction order
}

Clock::time_point processEpoch() {
    static const Clock::time_point t0 = Clock::now();
    return t0;
}

/// The calling thread's lane, registered on first use.
Lane& myLane() {
    thread_local Lane* lane = [] {
        Registry& r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        r.lanes.push_back(std::make_unique<Lane>());
        r.lanes.back()->id = r.lanes.size() - 1;
        return r.lanes.back().get();
    }();
    return *lane;
}

} // namespace

void setEnabled(bool on) noexcept {
    detail::g_enabled.store(on, std::memory_order_relaxed);
    if (on) (void)processEpoch(); // pin the epoch before the first span
}

void reset() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (auto& lane : r.lanes) {
        std::lock_guard<std::mutex> ll(lane->mu);
        lane->events.clear();
        lane->label.clear();
    }
    for (auto& [name, c] : r.counters) c->v_.store(0, std::memory_order_relaxed);
    for (auto& [name, g] : r.gauges) {
        g->v_.store(0, std::memory_order_relaxed);
        g->peak_.store(0, std::memory_order_relaxed);
    }
}

Counter& counter(std::string_view name) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.counters.find(name);
    if (it == r.counters.end())
        it = r.counters.emplace(std::string(name), std::make_unique<Counter>()).first;
    return *it->second;
}

Gauge& gauge(std::string_view name) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.gauges.find(name);
    if (it == r.gauges.end())
        it = r.gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
    return *it->second;
}

std::vector<MetricSnapshot> snapshotCounters() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<MetricSnapshot> out;
    out.reserve(r.counters.size());
    for (const auto& [name, c] : r.counters)
        out.push_back({name, static_cast<double>(c->value())});
    return out;
}

std::vector<MetricSnapshot> snapshotGauges() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<MetricSnapshot> out;
    out.reserve(r.gauges.size());
    for (const auto& [name, g] : r.gauges)
        out.push_back({name, static_cast<double>(g->value())});
    return out;
}

void recordCounterSample(std::string name, double value) {
    if (!enabled()) return;
    Lane& lane = myLane();
    std::lock_guard<std::mutex> lock(lane.mu);
    SpanEvent e;
    e.name = std::move(name);
    e.cat = "obs.sample";
    e.ts_us = nowUs();
    e.ph = 'C';
    e.value = value;
    lane.events.push_back(std::move(e));
}

void setThreadLabel(std::string label) {
    if (!enabled()) return;
    Lane& lane = myLane();
    std::lock_guard<std::mutex> lock(lane.mu);
    lane.label = std::move(label);
}

namespace {
thread_local std::string t_trace_id;
} // namespace

void setTraceId(std::string id) {
#if FLH_OBS_COMPILED_IN
    // Setting is gated on enabled() like every hook; clearing always works
    // so a request scope never leaks its id past a mid-request disable.
    if (!id.empty() && !enabled()) return;
    t_trace_id = std::move(id);
#else
    (void)id;
#endif
}

const std::string& currentTraceId() noexcept { return t_trace_id; }

double nowUs() noexcept {
    return std::chrono::duration<double, std::micro>(Clock::now() - processEpoch()).count();
}

#if FLH_OBS_COMPILED_IN

ScopedSpan::ScopedSpan(std::string name, std::string category) {
    if (!enabled()) return;
    name_ = std::move(name);
    cat_ = std::move(category);
    trace_id_ = t_trace_id; // request attribution travels with the span
    start_us_ = nowUs();
}

ScopedSpan::~ScopedSpan() {
    if (start_us_ < 0.0) return;
    const double end_us = nowUs();
    Lane& lane = myLane();
    std::lock_guard<std::mutex> lock(lane.mu);
    lane.events.push_back(SpanEvent{std::move(name_), std::move(cat_), std::move(trace_id_),
                                    start_us_, end_us - start_us_});
}

ScopedTraceId::ScopedTraceId(std::string id) {
    if (!enabled()) return;
    prev_ = t_trace_id;
    active_ = true;
    t_trace_id = std::move(id);
}

ScopedTraceId::~ScopedTraceId() {
    if (active_) t_trace_id = std::move(prev_);
}

#else

ScopedSpan::ScopedSpan(std::string, std::string) {}
ScopedSpan::~ScopedSpan() = default;
ScopedTraceId::ScopedTraceId(std::string) {}
ScopedTraceId::~ScopedTraceId() = default;

#endif

std::size_t spanCount() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::size_t n = 0;
    for (auto& lane : r.lanes) {
        std::lock_guard<std::mutex> ll(lane->mu);
        for (const SpanEvent& e : lane->events)
            if (e.ph == 'X') ++n;
    }
    return n;
}

std::size_t laneCount() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::size_t n = 0;
    for (auto& lane : r.lanes) {
        std::lock_guard<std::mutex> ll(lane->mu);
        if (!lane->events.empty() || !lane->label.empty()) ++n;
    }
    return n;
}

std::string traceJson() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);

    JsonWriter w;
    w.beginObject();
    w.kv("displayTimeUnit", "ms");
    w.key("traceEvents");
    w.beginArray();
    w.beginObject();
    w.kv("name", "process_name");
    w.kv("ph", "M");
    w.kv("pid", 1);
    w.key("args");
    w.beginObject();
    w.kv("name", "flh");
    w.endObject();
    w.endObject();
    for (auto& lane : r.lanes) {
        std::lock_guard<std::mutex> ll(lane->mu);
        if (lane->events.empty() && lane->label.empty()) continue;
        w.beginObject();
        w.kv("name", "thread_name");
        w.kv("ph", "M");
        w.kv("pid", 1);
        w.kv("tid", static_cast<std::int64_t>(lane->id));
        w.key("args");
        w.beginObject();
        w.kv("name", lane->label.empty() ? "thread-" + std::to_string(lane->id)
                                         : lane->label);
        w.endObject();
        w.endObject();
        for (const SpanEvent& e : lane->events) {
            w.beginObject();
            w.kv("name", e.name);
            w.kv("cat", e.cat.empty() ? "flh" : e.cat);
            if (e.ph == 'C') {
                w.kv("ph", "C");
                w.kv("ts", e.ts_us);
                w.kv("pid", 1);
                w.kv("tid", static_cast<std::int64_t>(lane->id));
                w.key("args");
                w.beginObject();
                w.kv("value", e.value);
                w.endObject();
            } else {
                w.kv("ph", "X");
                w.kv("ts", e.ts_us);
                w.kv("dur", e.dur_us);
                w.kv("pid", 1);
                w.kv("tid", static_cast<std::int64_t>(lane->id));
                if (!e.trace_id.empty()) {
                    w.key("args");
                    w.beginObject();
                    w.kv("trace_id", e.trace_id);
                    w.endObject();
                }
            }
            w.endObject();
        }
    }
    w.endArray();
    w.endObject();
    return w.str() + "\n";
}

std::string metricsJson() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);

    std::size_t spans = 0;
    std::size_t lanes = 0;
    for (auto& lane : r.lanes) {
        std::lock_guard<std::mutex> ll(lane->mu);
        for (const SpanEvent& e : lane->events)
            if (e.ph == 'X') ++spans;
        if (!lane->events.empty() || !lane->label.empty()) ++lanes;
    }

    JsonWriter w;
    w.beginObject();
    w.kv("schema", "flh.obs.metrics/1");
    w.kv("spans", spans);
    w.kv("lanes", lanes);
    w.key("counters");
    w.beginObject();
    for (const auto& [name, c] : r.counters) w.kv(name, c->value());
    w.endObject();
    w.key("gauges");
    w.beginObject();
    for (const auto& [name, g] : r.gauges) {
        w.key(name);
        w.beginObject();
        w.kv("value", g->value());
        w.kv("peak", g->peak());
        w.endObject();
    }
    w.endObject();
    w.endObject();
    return w.str() + "\n";
}

} // namespace flh::obs
