#include "obs/telemetry.hpp"

#include "util/json.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace flh::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

/// One recorded event: a completed interval ("X") or a counter sample
/// ("C", value in `value`). Timestamps are wall-clock and therefore live
/// strictly on the non-deterministic export side.
struct SpanEvent {
    std::string name;
    std::string cat;
    std::string trace_id; ///< request attribution (args.trace_id); may be empty
    double ts_us = 0.0;
    double dur_us = 0.0;
    char ph = 'X';
    double value = 0.0;
};

/// One thread's span storage. Owned by the registry for the process
/// lifetime; only the owning thread appends, so the mutex is uncontended
/// except while an exporter snapshots.
struct Lane {
    std::size_t id = 0;
    std::mutex mu;
    std::string label;
    std::vector<SpanEvent> events;
};

struct Registry {
    std::mutex mu;
    std::vector<std::unique_ptr<Lane>> lanes;
    // Ordered maps: export iterates them directly in sorted-name order.
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registry& registry() {
    static Registry* r = new Registry; // intentionally leaked: threads may
    return *r;                         // outlive static destruction order
}

/// The steady-clock zero that nowUs() measures from, plus the wall clock
/// captured at the same instant — the pair is the cross-process alignment
/// anchor flh_obsmerge uses to put N traces on one timeline.
struct Epochs {
    Clock::time_point steady;
    double wall_us = 0.0;
};

const Epochs& epochs() {
    static const Epochs e = [] {
        Epochs x;
        x.steady = Clock::now();
        x.wall_us = std::chrono::duration<double, std::micro>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count();
        return x;
    }();
    return e;
}

Clock::time_point processEpoch() { return epochs().steady; }

/// The calling thread's lane, registered on first use.
Lane& myLane() {
    thread_local Lane* lane = [] {
        Registry& r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        r.lanes.push_back(std::make_unique<Lane>());
        r.lanes.back()->id = r.lanes.size() - 1;
        return r.lanes.back().get();
    }();
    return *lane;
}

} // namespace

void setEnabled(bool on) noexcept {
    detail::g_enabled.store(on, std::memory_order_relaxed);
    if (on) (void)processEpoch(); // pin the epoch before the first span
}

void reset() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (auto& lane : r.lanes) {
        std::lock_guard<std::mutex> ll(lane->mu);
        lane->events.clear();
        lane->label.clear();
    }
    for (auto& [name, c] : r.counters) c->v_.store(0, std::memory_order_relaxed);
    for (auto& [name, g] : r.gauges) {
        g->v_.store(0, std::memory_order_relaxed);
        g->peak_.store(0, std::memory_order_relaxed);
    }
    for (auto& [name, h] : r.histograms) {
        h->count_.store(0, std::memory_order_relaxed);
        h->sum_.store(0.0, std::memory_order_relaxed);
        h->min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
        h->max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
        for (auto& b : h->buckets_) b.store(0, std::memory_order_relaxed);
    }
}

Counter& counter(std::string_view name) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.counters.find(name);
    if (it == r.counters.end())
        it = r.counters.emplace(std::string(name), std::make_unique<Counter>()).first;
    return *it->second;
}

Gauge& gauge(std::string_view name) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.gauges.find(name);
    if (it == r.gauges.end())
        it = r.gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
    return *it->second;
}

Histogram& histogram(std::string_view name) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.histograms.find(name);
    if (it == r.histograms.end())
        it = r.histograms.emplace(std::string(name), std::make_unique<Histogram>()).first;
    return *it->second;
}

// ---- histogram bucket math ---------------------------------------------
//
// Powers of two subdivided into 16 linear sub-buckets. frexp() gives
// v = frac * 2^exp with frac in [0.5, 1); the sub-bucket is the linear
// position of frac within that binade. Exponents below kMinExp underflow
// into bucket 0; anything past the top clamps into the last bucket.

namespace {
constexpr int kSubBuckets = 16;
constexpr int kMinExp = -20; // bucket 0 spans [0, 2^-21 * 17/16)
} // namespace

std::size_t histogramBucketIndex(double v) noexcept {
    if (!(v > 0.0)) return 0; // zero, negatives, NaN
    int exp = 0;
    const double frac = std::frexp(v, &exp);
    int sub = static_cast<int>((frac - 0.5) * 2.0 * kSubBuckets);
    sub = std::min(sub, kSubBuckets - 1);
    const int e = exp - kMinExp;
    if (e < 0) return 0;
    const std::size_t idx =
        static_cast<std::size_t>(e) * kSubBuckets + static_cast<std::size_t>(sub);
    return std::min(idx, Histogram::kBucketCount - 1);
}

double histogramBucketLo(std::size_t idx) noexcept {
    if (idx == 0) return 0.0;
    if (idx >= Histogram::kBucketCount) idx = Histogram::kBucketCount - 1;
    const int e = kMinExp + static_cast<int>(idx) / kSubBuckets;
    const int sub = static_cast<int>(idx) % kSubBuckets;
    // Lower edge: frac = 0.5 + sub/32 at exponent e, i.e. (1 + sub/16) * 2^(e-1).
    return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, e - 1);
}

double histogramBucketHi(std::size_t idx) noexcept {
    if (idx + 1 >= Histogram::kBucketCount) return std::numeric_limits<double>::infinity();
    return histogramBucketLo(idx + 1);
}

double percentileFromBuckets(const std::vector<std::uint64_t>& buckets, double p,
                             double min_v, double max_v) noexcept {
    std::uint64_t count = 0;
    for (const std::uint64_t b : buckets) count += b;
    if (count == 0) return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const double rank = p * static_cast<double>(count - 1);
    double value = 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        const double bc = static_cast<double>(buckets[i]);
        if (bc == 0.0) continue;
        if (rank < acc + bc) {
            const double lo = histogramBucketLo(i);
            const double hi = histogramBucketHi(i);
            // Samples assumed uniform within the bucket; rank - acc is the
            // fractional position among this bucket's bc samples.
            value = std::isfinite(hi) ? lo + (hi - lo) * ((rank - acc + 0.5) / bc) : lo;
            break;
        }
        acc += bc;
    }
    if (min_v <= max_v) value = std::clamp(value, min_v, max_v);
    return value;
}

void Histogram::observe(double v) noexcept {
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
    cur = min_.load(std::memory_order_relaxed);
    while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    buckets_[histogramBucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucketCounts() const {
    std::vector<std::uint64_t> out(kBucketCount, 0);
    for (std::size_t i = 0; i < kBucketCount; ++i)
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    return out;
}

Histogram::Summary Histogram::summarize() const {
    Summary s;
    s.count = count_.load(std::memory_order_relaxed);
    if (s.count == 0) return s;
    s.sum = sum_.load(std::memory_order_relaxed);
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    const std::vector<std::uint64_t> b = bucketCounts();
    s.p50 = percentileFromBuckets(b, 0.50, s.min, s.max);
    s.p95 = percentileFromBuckets(b, 0.95, s.min, s.max);
    s.p99 = percentileFromBuckets(b, 0.99, s.min, s.max);
    return s;
}

std::vector<MetricSnapshot> snapshotCounters() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<MetricSnapshot> out;
    out.reserve(r.counters.size());
    for (const auto& [name, c] : r.counters)
        out.push_back({name, static_cast<double>(c->value())});
    return out;
}

std::vector<MetricSnapshot> snapshotGauges() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<MetricSnapshot> out;
    out.reserve(r.gauges.size());
    for (const auto& [name, g] : r.gauges)
        out.push_back({name, static_cast<double>(g->value())});
    return out;
}

void recordCounterSample(std::string name, double value) {
    if (!enabled()) return;
    Lane& lane = myLane();
    std::lock_guard<std::mutex> lock(lane.mu);
    SpanEvent e;
    e.name = std::move(name);
    e.cat = "obs.sample";
    e.ts_us = nowUs();
    e.ph = 'C';
    e.value = value;
    lane.events.push_back(std::move(e));
}

void setThreadLabel(std::string label) {
    if (!enabled()) return;
    Lane& lane = myLane();
    std::lock_guard<std::mutex> lock(lane.mu);
    lane.label = std::move(label);
}

namespace {
thread_local std::string t_trace_id;
} // namespace

void setTraceId(std::string id) {
#if FLH_OBS_COMPILED_IN
    // Deliberately ungated: trace context is identity propagation, not
    // recording. The consumers (span record, logEvent) carry their own
    // enable checks, and the event log's separate flag must still see
    // request ids while full span tracing is off.
    t_trace_id = std::move(id);
#else
    (void)id;
#endif
}

const std::string& currentTraceId() noexcept { return t_trace_id; }

double nowUs() noexcept {
    return std::chrono::duration<double, std::micro>(Clock::now() - processEpoch()).count();
}

double wallEpochUs() noexcept { return epochs().wall_us; }

#if FLH_OBS_COMPILED_IN

ScopedSpan::ScopedSpan(std::string name, std::string category) {
    if (!enabled()) return;
    name_ = std::move(name);
    cat_ = std::move(category);
    trace_id_ = t_trace_id; // request attribution travels with the span
    start_us_ = nowUs();
}

ScopedSpan::~ScopedSpan() {
    if (start_us_ < 0.0) return;
    const double end_us = nowUs();
    Lane& lane = myLane();
    std::lock_guard<std::mutex> lock(lane.mu);
    lane.events.push_back(SpanEvent{std::move(name_), std::move(cat_), std::move(trace_id_),
                                    start_us_, end_us - start_us_});
}

ScopedTraceId::ScopedTraceId(std::string id) {
    prev_ = t_trace_id;
    active_ = true;
    t_trace_id = std::move(id);
}

ScopedTraceId::~ScopedTraceId() {
    if (active_) t_trace_id = std::move(prev_);
}

#else

ScopedSpan::ScopedSpan(std::string, std::string) {}
ScopedSpan::~ScopedSpan() = default;
ScopedTraceId::ScopedTraceId(std::string) {}
ScopedTraceId::~ScopedTraceId() = default;

#endif

std::size_t spanCount() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::size_t n = 0;
    for (auto& lane : r.lanes) {
        std::lock_guard<std::mutex> ll(lane->mu);
        for (const SpanEvent& e : lane->events)
            if (e.ph == 'X') ++n;
    }
    return n;
}

std::size_t laneCount() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::size_t n = 0;
    for (auto& lane : r.lanes) {
        std::lock_guard<std::mutex> ll(lane->mu);
        if (!lane->events.empty() || !lane->label.empty()) ++n;
    }
    return n;
}

std::string traceJson() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);

    JsonWriter w;
    w.beginObject();
    w.kv("displayTimeUnit", "ms");
    // Extra top-level key (Chrome's viewer ignores unknown keys): the
    // wall-clock anchor flh_obsmerge aligns multi-process traces with.
    w.kv("wall_epoch_us", wallEpochUs());
    w.key("traceEvents");
    w.beginArray();
    w.beginObject();
    w.kv("name", "process_name");
    w.kv("ph", "M");
    w.kv("pid", 1);
    w.key("args");
    w.beginObject();
    w.kv("name", "flh");
    w.endObject();
    w.endObject();
    for (auto& lane : r.lanes) {
        std::lock_guard<std::mutex> ll(lane->mu);
        if (lane->events.empty() && lane->label.empty()) continue;
        w.beginObject();
        w.kv("name", "thread_name");
        w.kv("ph", "M");
        w.kv("pid", 1);
        w.kv("tid", static_cast<std::int64_t>(lane->id));
        w.key("args");
        w.beginObject();
        w.kv("name", lane->label.empty() ? "thread-" + std::to_string(lane->id)
                                         : lane->label);
        w.endObject();
        w.endObject();
        for (const SpanEvent& e : lane->events) {
            w.beginObject();
            w.kv("name", e.name);
            w.kv("cat", e.cat.empty() ? "flh" : e.cat);
            if (e.ph == 'C') {
                w.kv("ph", "C");
                w.kv("ts", e.ts_us);
                w.kv("pid", 1);
                w.kv("tid", static_cast<std::int64_t>(lane->id));
                w.key("args");
                w.beginObject();
                w.kv("value", e.value);
                w.endObject();
            } else {
                w.kv("ph", "X");
                w.kv("ts", e.ts_us);
                w.kv("dur", e.dur_us);
                w.kv("pid", 1);
                w.kv("tid", static_cast<std::int64_t>(lane->id));
                if (!e.trace_id.empty()) {
                    w.key("args");
                    w.beginObject();
                    w.kv("trace_id", e.trace_id);
                    w.endObject();
                }
            }
            w.endObject();
        }
    }
    w.endArray();
    w.endObject();
    return w.str() + "\n";
}

std::string metricsJson() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);

    std::size_t spans = 0;
    std::size_t lanes = 0;
    for (auto& lane : r.lanes) {
        std::lock_guard<std::mutex> ll(lane->mu);
        for (const SpanEvent& e : lane->events)
            if (e.ph == 'X') ++spans;
        if (!lane->events.empty() || !lane->label.empty()) ++lanes;
    }

    JsonWriter w;
    w.beginObject();
    w.kv("schema", "flh.obs.metrics/1");
    w.kv("spans", spans);
    w.kv("lanes", lanes);
    w.key("counters");
    w.beginObject();
    for (const auto& [name, c] : r.counters) w.kv(name, c->value());
    w.endObject();
    w.key("gauges");
    w.beginObject();
    for (const auto& [name, g] : r.gauges) {
        w.key(name);
        w.beginObject();
        w.kv("value", g->value());
        w.kv("peak", g->peak());
        w.endObject();
    }
    w.endObject();
    w.key("histograms");
    w.beginObject();
    for (const auto& [name, h] : r.histograms) {
        const Histogram::Summary s = h->summarize();
        w.key(name);
        w.beginObject();
        w.kv("count", s.count);
        w.kv("sum", s.sum);
        w.kv("min", s.min);
        w.kv("max", s.max);
        w.kv("p50", s.p50);
        w.kv("p95", s.p95);
        w.kv("p99", s.p99);
        // Sparse [index, count] pairs: enough for a merger to rebuild the
        // full distribution by bucket addition.
        w.key("buckets");
        w.beginArray();
        const std::vector<std::uint64_t> b = h->bucketCounts();
        for (std::size_t i = 0; i < b.size(); ++i) {
            if (b[i] == 0) continue;
            w.beginArray();
            w.value(static_cast<std::uint64_t>(i));
            w.value(b[i]);
            w.endArray();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();
    w.endObject();
    return w.str() + "\n";
}

} // namespace flh::obs
