#include "obs/eventlog.hpp"

#include "util/json.hpp"

#include <algorithm>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace flh::obs {

namespace detail {
std::atomic<bool> g_events_enabled{false};
} // namespace detail

const char* eventLevelName(EventLevel level) noexcept {
    switch (level) {
    case EventLevel::Debug: return "debug";
    case EventLevel::Info: return "info";
    case EventLevel::Warn: return "warn";
    case EventLevel::Error: return "error";
    }
    return "info";
}

namespace {

struct EventRecord {
    double ts_us = 0.0;
    EventLevel level = EventLevel::Info;
    std::string component;
    std::string event;
    std::string trace_id;
    std::vector<EventKv> fields;
};

/// Classic token bucket; time base is the telemetry clock (nowUs), so
/// refill works identically in tests that record bursts back-to-back.
struct TokenBucket {
    double tokens = 0.0;
    double last_us = 0.0;
};

struct EventLog {
    std::mutex mu;
    EventLogConfig cfg;
    std::deque<EventRecord> ring;
    std::map<std::pair<std::string, int>, TokenBucket> buckets;
    std::ofstream sink;
    bool sink_open = false;
    std::uint64_t emitted = 0;
    std::uint64_t dropped_rate_limited = 0;
    std::uint64_t evicted_ring = 0;
};

EventLog& eventLog() {
    static EventLog* e = new EventLog; // leaked, same lifetime rule as the
    return *e;                         // telemetry registry
}

/// One event as a single-line JSON object (no trailing newline).
void writeEventJson(JsonWriter& w, const EventRecord& rec) {
    w.beginObject();
    w.kv("ts_us", rec.ts_us);
    w.kv("level", eventLevelName(rec.level));
    w.kv("component", rec.component);
    w.kv("event", rec.event);
    if (!rec.trace_id.empty()) w.kv("trace_id", rec.trace_id);
    if (!rec.fields.empty()) {
        w.key("fields");
        w.beginObject();
        for (const EventKv& f : rec.fields) {
            if (f.is_num)
                w.kv(f.key, f.num);
            else
                w.kv(f.key, f.str);
        }
        w.endObject();
    }
    w.endObject();
}

/// JsonWriter pretty-prints with raw newlines + indent; the sink needs
/// one record per line. Embedded newlines inside string values are
/// escaped by the writer, so every raw '\n' (and the indent spaces right
/// after it) is formatter whitespace and safe to strip.
std::string compactLine(const std::string& pretty) {
    std::string out;
    out.reserve(pretty.size());
    for (std::size_t i = 0; i < pretty.size(); ++i) {
        if (pretty[i] == '\n') {
            while (i + 1 < pretty.size() && pretty[i + 1] == ' ') ++i;
            continue;
        }
        out += pretty[i];
    }
    return out;
}

/// Appends one fully formed record under the lock: rate limit, sink, ring.
void commitLocked(EventLog& el, EventRecord rec) {
    if (el.sink_open) {
        JsonWriter w;
        writeEventJson(w, rec);
        el.sink << compactLine(w.str()) << '\n';
    }
    if (el.cfg.ring_capacity == 0) return;
    while (el.ring.size() >= el.cfg.ring_capacity) {
        el.ring.pop_front();
        ++el.evicted_ring;
    }
    el.ring.push_back(std::move(rec));
}

} // namespace

void setEventLogEnabled(bool on) noexcept {
    detail::g_events_enabled.store(on, std::memory_order_relaxed);
    if (on) (void)nowUs(); // pin the shared epoch before the first event
}

void logEvent(EventLevel level, std::string_view component, std::string_view event,
              std::initializer_list<EventKv> fields) {
    if (!eventLogEnabled()) return;
    const double ts = nowUs();
    EventLog& el = eventLog();
    std::lock_guard<std::mutex> lock(el.mu);

    auto [it, fresh] = el.buckets.try_emplace(
        std::make_pair(std::string(component), static_cast<int>(level)));
    TokenBucket& tb = it->second;
    if (fresh) {
        tb.tokens = el.cfg.burst;
        tb.last_us = ts;
    } else {
        tb.tokens = std::min(el.cfg.burst,
                             tb.tokens + (ts - tb.last_us) * el.cfg.tokens_per_sec / 1e6);
        tb.last_us = ts;
    }
    if (tb.tokens < 1.0) {
        ++el.dropped_rate_limited;
        return;
    }
    tb.tokens -= 1.0;

    EventRecord rec;
    rec.ts_us = ts;
    rec.level = level;
    rec.component = std::string(component);
    rec.event = std::string(event);
    rec.trace_id = currentTraceId();
    rec.fields.assign(fields.begin(), fields.end());
    commitLocked(el, std::move(rec));
    ++el.emitted;
}

void configureEventLog(const EventLogConfig& cfg) {
    EventLog& el = eventLog();
    std::lock_guard<std::mutex> lock(el.mu);
    el.cfg = cfg;
    el.ring.clear();
    el.buckets.clear();
}

bool openEventSink(const std::string& path) {
    EventLog& el = eventLog();
    std::lock_guard<std::mutex> lock(el.mu);
    if (el.sink_open) el.sink.close();
    el.sink.open(path, std::ios::trunc);
    el.sink_open = static_cast<bool>(el.sink);
    if (!el.sink_open) return false;
    JsonWriter w;
    w.beginObject();
    w.kv("schema", "flh.obs.events/1");
    w.kv("wall_epoch_us", wallEpochUs());
    w.endObject();
    el.sink << compactLine(w.str()) << '\n';
    return true;
}

void closeEventSink() {
    EventLog& el = eventLog();
    std::lock_guard<std::mutex> lock(el.mu);
    if (!el.sink_open) return;
    // Trailer: the sink records its own truncation so a merged view can
    // show "N events were dropped here" instead of silently missing them.
    EventRecord rec;
    rec.ts_us = nowUs();
    rec.component = "obs";
    rec.event = "sink_close";
    rec.fields.push_back(EventKv("emitted", el.emitted));
    rec.fields.push_back(EventKv("dropped_rate_limited", el.dropped_rate_limited));
    rec.fields.push_back(EventKv("evicted_ring", el.evicted_ring));
    JsonWriter w;
    writeEventJson(w, rec);
    el.sink << compactLine(w.str()) << '\n';
    el.sink.close();
    el.sink_open = false;
}

EventLogStats eventLogStats() {
    EventLog& el = eventLog();
    std::lock_guard<std::mutex> lock(el.mu);
    return EventLogStats{el.emitted, el.dropped_rate_limited, el.evicted_ring};
}

std::string eventsJson() {
    EventLog& el = eventLog();
    std::lock_guard<std::mutex> lock(el.mu);
    JsonWriter w;
    w.beginObject();
    w.kv("schema", "flh.obs.events/1");
    w.kv("wall_epoch_us", wallEpochUs());
    w.kv("emitted", el.emitted);
    w.kv("dropped_rate_limited", el.dropped_rate_limited);
    w.kv("evicted_ring", el.evicted_ring);
    w.key("events");
    w.beginArray();
    for (const EventRecord& rec : el.ring) writeEventJson(w, rec);
    w.endArray();
    w.endObject();
    return w.str() + "\n";
}

void resetEventLog() {
    EventLog& el = eventLog();
    std::lock_guard<std::mutex> lock(el.mu);
    el.ring.clear();
    el.buckets.clear();
    el.emitted = 0;
    el.dropped_rate_limited = 0;
    el.evicted_ring = 0;
}

} // namespace flh::obs
