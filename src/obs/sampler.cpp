#include "obs/sampler.hpp"

#include "obs/telemetry.hpp"
#include "util/json.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace flh::obs {

std::uint64_t processRssBytes() {
#if defined(__linux__)
    std::ifstream statm("/proc/self/statm");
    std::uint64_t total = 0;
    std::uint64_t rss_pages = 0;
    if (statm >> total >> rss_pages) {
        const long page = ::sysconf(_SC_PAGESIZE);
        return rss_pages * static_cast<std::uint64_t>(page > 0 ? page : 4096);
    }
#endif
    return 0;
}

unsigned processThreadCount() {
#if defined(__linux__)
    std::error_code ec;
    std::filesystem::directory_iterator it("/proc/self/task", ec);
    if (!ec) {
        unsigned n = 0;
        for (const auto& entry : it) {
            (void)entry;
            ++n;
        }
        return n;
    }
#endif
    return 0;
}

namespace {

/// "1.23M"-style humanized rate for the heartbeat line.
std::string fmtRate(double v) {
    char buf[32];
    if (v >= 1e6)
        std::snprintf(buf, sizeof buf, "%.2fM", v / 1e6);
    else if (v >= 1e3)
        std::snprintf(buf, sizeof buf, "%.1fk", v / 1e3);
    else
        std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
}

double valueOr0(const MetricsSample& s, const std::string& name) {
    const auto it = s.values.find(name);
    return it == s.values.end() ? 0.0 : it->second;
}

} // namespace

Sampler::Sampler(SamplerOptions opts) : opts_(std::move(opts)) {
    if (opts_.period_ms == 0) opts_.period_ms = 1;
}

Sampler::~Sampler() {
    stop();
    {
        std::unique_lock<std::mutex> lock(mu_);
        shutdown_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
}

void Sampler::start() {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) return;
    if (running_ && !stop_requested_) return; // already sampling
    // A restart racing a still-completing stop() (final sample in flight)
    // waits it out, then re-arms with a clean series: replaying the
    // previous activation's samples — its final sample in particular —
    // into the new series would double-count the boundary.
    cv_.wait(lock, [this] { return !running_; });
    samples_.clear();
    heartbeats_ = 0;
    stop_requested_ = false;
    start_us_ = nowUs();
    last_heartbeat_us_ = start_us_;
    hb_prev_ = MetricsSample{};
    hb_prev_.ts_us = start_us_;
    running_ = true;
    if (!thread_.joinable()) thread_ = std::thread([this] { run(); });
    cv_.notify_all();
}

void Sampler::stop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
    cv_.notify_all();
    // The sampler thread takes the final sample, then clears running_.
    cv_.wait(lock, [this] { return !running_; });
}

void Sampler::run() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        cv_.wait(lock, [this] { return shutdown_ || running_; });
        if (shutdown_) return;
        // One activation. The lane label is re-asserted each time because
        // telemetry may have been enabled between activations (no-op when
        // disabled, idempotent on the persistent thread's single lane).
        lock.unlock();
        setThreadLabel("obs-sampler");
        lock.lock();
        while (!stop_requested_ && !shutdown_) {
            cv_.wait_for(lock, std::chrono::milliseconds(opts_.period_ms),
                         [this] { return stop_requested_ || shutdown_; });
            if (stop_requested_ || shutdown_) break;
            lock.unlock();
            sampleOnce();
            lock.lock();
        }
        lock.unlock();
        // Exactly one final sample per activation, so the series closes on
        // the run's last counter values.
        sampleOnce();
        lock.lock();
        running_ = false;
        stop_requested_ = false;
        cv_.notify_all();
        if (shutdown_) return;
    }
}

void Sampler::sampleOnce() {
    MetricsSample s;
    s.ts_us = nowUs();
    s.rss_bytes = processRssBytes();
    s.threads = processThreadCount();
    for (const MetricSnapshot& m : snapshotCounters()) s.values[m.name] = m.value;
    for (const MetricSnapshot& m : snapshotGauges()) s.values[m.name] = m.value;

    if (opts_.trace_events) {
        for (const auto& [name, value] : s.values) recordCounterSample(name, value);
        recordCounterSample("process.rss_mb",
                            static_cast<double>(s.rss_bytes) / 1e6);
        recordCounterSample("process.threads", static_cast<double>(s.threads));
    }

    std::unique_lock<std::mutex> lock(mu_);
    maybeHeartbeat(s);
    samples_.push_back(std::move(s));
}

void Sampler::maybeHeartbeat(const MetricsSample& s) {
    if (opts_.heartbeat_every_s <= 0.0) return;
    if (s.ts_us - last_heartbeat_us_ < opts_.heartbeat_every_s * 1e6) return;

    const double dt_s = std::max((s.ts_us - hb_prev_.ts_us) / 1e6, 1e-9);
    char head[96];
    std::snprintf(head, sizeof head, "[flh] t=%.1fs rss=%.1fMB threads=%u",
                  (s.ts_us - start_us_) / 1e6,
                  static_cast<double>(s.rss_bytes) / 1e6, s.threads);
    std::string line = head;

    const double graded = valueOr0(s, "fault_sim.faults_graded");
    const double d_graded = graded - valueOr0(hb_prev_, "fault_sim.faults_graded");
    if (d_graded > 0) line += " faults/s=" + fmtRate(d_graded / dt_s);

    const double hits = valueOr0(s, "flow.cache_hits");
    const double misses = valueOr0(s, "flow.cache_misses");
    if (hits + misses > 0) {
        char pct[32];
        std::snprintf(pct, sizeof pct, " cache-hit=%.1f%%",
                      100.0 * hits / (hits + misses));
        line += pct;
    }

    const double checks = valueOr0(s, "verify.fuzz.checks");
    const double d_checks = checks - valueOr0(hb_prev_, "verify.fuzz.checks");
    if (d_checks > 0) line += " checks/s=" + fmtRate(d_checks / dt_s);

    std::ostream& out = opts_.heartbeat_out != nullptr ? *opts_.heartbeat_out : std::cerr;
    out << line << "\n";
    ++heartbeats_;
    last_heartbeat_us_ = s.ts_us;
    hb_prev_ = s;
}

bool Sampler::running() const {
    std::unique_lock<std::mutex> lock(mu_);
    return running_;
}

std::size_t Sampler::sampleCount() const {
    std::unique_lock<std::mutex> lock(mu_);
    return samples_.size();
}

std::size_t Sampler::heartbeatCount() const {
    std::unique_lock<std::mutex> lock(mu_);
    return heartbeats_;
}

std::vector<MetricsSample> Sampler::samples() const {
    std::unique_lock<std::mutex> lock(mu_);
    return samples_;
}

std::string Sampler::timeseriesJson() const {
    std::unique_lock<std::mutex> lock(mu_);

    // Column union: the registry can grow while sampling, so early samples
    // may miss late-registered metrics (they export as 0).
    std::set<std::string> names;
    for (const MetricsSample& s : samples_)
        for (const auto& [name, value] : s.values) names.insert(name);

    JsonWriter w;
    w.beginObject();
    w.kv("schema", "flh.obs.timeseries/1");
    // Cross-process alignment anchor, same convention as traceJson().
    w.kv("wall_epoch_us", wallEpochUs());
    w.kv("period_ms", static_cast<std::uint64_t>(opts_.period_ms));
    w.kv("samples", samples_.size());
    w.key("columns");
    w.beginArray();
    w.value("ts_us");
    w.value("rss_bytes");
    w.value("threads");
    for (const std::string& n : names) w.value(n);
    w.endArray();
    w.key("rows");
    w.beginArray();
    for (const MetricsSample& s : samples_) {
        w.beginArray();
        w.value(s.ts_us);
        w.value(s.rss_bytes);
        w.value(static_cast<std::uint64_t>(s.threads));
        for (const std::string& n : names) {
            const auto it = s.values.find(n);
            w.value(it == s.values.end() ? 0.0 : it->second);
        }
        w.endArray();
    }
    w.endArray();
    w.endObject();
    return w.str() + "\n";
}

} // namespace flh::obs
