// Run-over-run benchmark comparison: the analysis half of the perf gate.
//
// loadBenchDir() collects every envelope-format BENCH_*.json under a
// directory into flat BenchPoints; diffBench() matches baseline against
// candidate by (payload_schema, name, threads) and classifies each pair
// with noise-aware thresholds: a candidate median is a regression only
// when it leaves the baseline's inter-quartile range AND exceeds the
// baseline median by a configurable ratio (default 10%) — so run-to-run
// jitter inside the measured spread never fires the gate. Sub-`min_time`
// baselines are skipped outright (timer noise dominates micro-entries).
// Single-rep baselines (one flow-stage execution) have no spread at all,
// so they participate only above 10x the time floor and with a widened
// 25% margin.
// An optional `fail_above` ratio marks catastrophic slowdowns as hard
// failures that survive even --warn-only CI modes.
//
// flh_benchdiff (examples/) is the CLI: human table to stdout, machine
// BENCH_diff.json (schema flh.bench.diff/1), exit 1 on regression.
#pragma once

#include "obs/benchio.hpp"
#include "util/table.hpp"

#include <string>
#include <vector>

namespace flh {
class JsonWriter;
} // namespace flh

namespace flh::obs {

/// One benchmark's statistics, flattened out of an envelope file.
struct BenchPoint {
    std::string payload_schema;
    std::string name;
    unsigned threads = 0;
    RepStats real_time; ///< ns
    double ips_median = 0.0;
    std::string file;     ///< envelope the point came from
    std::string git_sha;  ///< provenance of that envelope
    std::string build_type;
};

/// Parse every envelope-schema *.json directly under `dir` (files that are
/// not bench envelopes are skipped with a stderr note). Throws
/// std::runtime_error if `dir` is not a readable directory.
[[nodiscard]] std::vector<BenchPoint> loadBenchDir(const std::string& dir);

enum class Verdict { Ok, Regression, Improvement, New, Missing, Skipped };
[[nodiscard]] const char* verdictName(Verdict v);

struct DiffOptions {
    /// Ratio the candidate median must exceed the baseline median by —
    /// in addition to leaving the baseline IQR — to count as a
    /// regression (and symmetrically for improvements).
    double ratio = 0.10;
    /// Hard-failure ratio (candidate/baseline median); 0 disables. Hard
    /// failures are reported separately so CI can warn on `ratio` but
    /// still fail the build on, say, 2x slowdowns.
    double fail_above = 0.0;
    /// Baselines with a median below this many ns are Skipped — timer
    /// noise dominates and any ratio would be meaningless. Single-rep
    /// baselines use 10x this floor and at least a 25% margin in place
    /// of `ratio` (they carry no IQR to separate jitter from signal).
    double min_time_ns = 50e3;
};

struct DiffRow {
    std::string payload_schema;
    std::string name;
    unsigned threads = 0;
    double base_median = 0.0;
    double cand_median = 0.0;
    double ratio = 0.0; ///< cand/base (0 when either side is absent)
    double base_q1 = 0.0;
    double base_q3 = 0.0;
    Verdict verdict = Verdict::Ok;
    bool hard_fail = false;

    void writeJson(JsonWriter& w) const;
};

struct DiffReport {
    DiffOptions opts;
    std::vector<DiffRow> rows; ///< baseline order, then candidate-only rows

    [[nodiscard]] std::size_t count(Verdict v) const;
    [[nodiscard]] std::size_t regressions() const { return count(Verdict::Regression); }
    [[nodiscard]] std::size_t improvements() const { return count(Verdict::Improvement); }
    [[nodiscard]] std::size_t added() const { return count(Verdict::New); }
    [[nodiscard]] std::size_t missing() const { return count(Verdict::Missing); }
    [[nodiscard]] bool hardFailures() const;

    /// Machine report (schema flh.bench.diff/1, provenance of the diffing
    /// run included). Ends with a newline.
    [[nodiscard]] std::string json() const;

    /// Console comparison table.
    [[nodiscard]] TextTable table() const;
};

[[nodiscard]] DiffReport diffBench(const std::vector<BenchPoint>& baseline,
                                   const std::vector<BenchPoint>& candidate,
                                   const DiffOptions& opts = {});

} // namespace flh::obs
