#include "obs/provenance.hpp"

#include "flh_build_info.hpp"
#include "util/exec_policy.hpp"
#include "util/json.hpp"

#include <chrono>
#include <cstdlib>
#include <ctime>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace flh::obs {

RunProvenance RunProvenance::collect(unsigned resolved_threads) {
    RunProvenance p;
    p.git_sha = FLH_BUILD_GIT_SHA;
    p.git_dirty = FLH_BUILD_GIT_DIRTY != 0;
    p.build_type = FLH_BUILD_TYPE;
    p.compiler = FLH_BUILD_COMPILER;

#if defined(__unix__) || defined(__APPLE__)
    char host[256] = {};
    if (::gethostname(host, sizeof host - 1) == 0) p.hostname = host;
#endif
    if (p.hostname.empty()) {
        const char* env = std::getenv("HOSTNAME");
        p.hostname = env != nullptr ? env : "unknown";
    }

    p.hw_concurrency = ExecPolicy::hardwareThreads();
    p.threads = resolved_threads;

    const std::time_t now =
        std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
    std::tm tm{};
#if defined(_WIN32)
    gmtime_s(&tm, &now);
#else
    gmtime_r(&now, &tm);
#endif
    char buf[32] = {};
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
    p.timestamp_utc = buf;
    return p;
}

void RunProvenance::writeJson(JsonWriter& w) const {
    w.beginObject();
    w.kv("schema", "flh.provenance/1");
    w.kv("git_sha", git_sha);
    w.kv("git_dirty", git_dirty);
    w.kv("build_type", build_type);
    w.kv("compiler", compiler);
    w.kv("hostname", hostname);
    w.kv("hw_concurrency", static_cast<std::uint64_t>(hw_concurrency));
    w.kv("threads", static_cast<std::uint64_t>(threads));
    w.kv("timestamp_utc", timestamp_utc);
    w.endObject();
}

} // namespace flh::obs
