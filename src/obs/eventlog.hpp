// Structured, leveled JSONL event log.
//
// Spans and counters answer "how long / how many"; the event log answers
// "what happened and why" at the decision points that otherwise vanish:
// overload rejections, GC evictions, manifest claim races, coalesced
// batches, session drops. Design rules, mirroring telemetry.hpp:
//
//  1. Near-zero cost when disabled: every logEvent() call first checks
//     one process-global relaxed atomic through an inlined function and
//     allocates nothing on the disabled path. The event log has its own
//     flag — a drainer can keep events on while full span tracing stays
//     off.
//
//  2. Bounded everywhere. Events land in a fixed-capacity ring (oldest
//     overwritten) and optionally stream to a JSONL file sink. A
//     per-(component, level) token bucket rate-limits bursty emitters
//     (e.g. one event per GC eviction) instead of letting them flood the
//     sink; drops are counted, never silent.
//
//  3. Determinism firewall, same as telemetry: events never feed any
//     deterministic report byte.
//
// File sink format: first line is a header record
// {"schema":"flh.obs.events/1","wall_epoch_us":...}, then one event
// object per line. ts_us is relative to the telemetry epoch (nowUs()),
// so the header's wall anchor aligns event timelines across processes
// exactly like trace files.
#pragma once

#include "obs/telemetry.hpp" // FLH_OBS_COMPILED_IN, nowUs(), currentTraceId()

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>

namespace flh::obs {

enum class EventLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3 };

[[nodiscard]] const char* eventLevelName(EventLevel level) noexcept;

namespace detail {
extern std::atomic<bool> g_events_enabled;
} // namespace detail

/// True while the event log is recording. Inline relaxed load — the only
/// cost a disabled logEvent() pays.
[[nodiscard]] inline bool eventLogEnabled() noexcept {
#if FLH_OBS_COMPILED_IN
    return detail::g_events_enabled.load(std::memory_order_relaxed);
#else
    return false;
#endif
}

void setEventLogEnabled(bool on) noexcept;

/// One key/value field. Accepts strings and numbers; numbers export as
/// JSON numbers, everything else as strings.
struct EventKv {
    EventKv(std::string k, std::string v) : key(std::move(k)), str(std::move(v)) {}
    EventKv(std::string k, const char* v) : key(std::move(k)), str(v) {}
    EventKv(std::string k, double v) : key(std::move(k)), num(v), is_num(true) {}
    EventKv(std::string k, std::uint64_t v)
        : key(std::move(k)), num(static_cast<double>(v)), is_num(true) {}
    EventKv(std::string k, std::int64_t v)
        : key(std::move(k)), num(static_cast<double>(v)), is_num(true) {}
    EventKv(std::string k, int v) : key(std::move(k)), num(v), is_num(true) {}

    std::string key;
    std::string str;
    double num = 0.0;
    bool is_num = false;
};

/// Record one event. The calling thread's current trace id (if any) is
/// attached automatically, so events correlate with spans in a merged
/// view. Rate-limited per (component, level); limited events are counted
/// in dropped_rate_limited and otherwise discarded.
void logEvent(EventLevel level, std::string_view component, std::string_view event,
              std::initializer_list<EventKv> fields = {});

/// Tuning knobs, applied by configureEventLog(). Defaults are generous
/// for decision-point events and tight enough that a pathological emitter
/// (per-entry GC evictions on a huge cache) cannot flood a sink.
struct EventLogConfig {
    std::size_t ring_capacity = 4096;
    double tokens_per_sec = 200.0; ///< refill rate per (component, level)
    double burst = 64.0;           ///< bucket capacity per (component, level)
};

/// Reconfigure ring size and rate limits. Clears the ring.
void configureEventLog(const EventLogConfig& cfg);

/// Open (truncate) a JSONL file sink and write the header line. Returns
/// false (and logs nothing) if the file cannot be opened. Event recording
/// must still be enabled separately via setEventLogEnabled().
[[nodiscard]] bool openEventSink(const std::string& path);

/// Flush and close the file sink, appending a trailer event with drop
/// counts so truncated observability is visible in the artifact itself.
void closeEventSink();

struct EventLogStats {
    std::uint64_t emitted = 0;             ///< accepted into the ring (and sink)
    std::uint64_t dropped_rate_limited = 0;///< discarded by the token bucket
    std::uint64_t evicted_ring = 0;        ///< overwritten in the ring (still in sink)
};
[[nodiscard]] EventLogStats eventLogStats();

/// Snapshot the ring as {"schema":"flh.obs.events/1","events":[...]}.
/// Oldest first; ends with a newline.
[[nodiscard]] std::string eventsJson();

/// Drop ring contents and zero drop counters (for tests). Leaves the
/// enabled flag and any open sink alone.
void resetEventLog();

} // namespace flh::obs
