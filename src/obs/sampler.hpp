// Metrics time-series sampler: an opt-in background thread that turns the
// telemetry registry's point-in-time counters into curves.
//
// Every `period_ms` the sampler snapshots all registered counters and
// gauges plus process RSS and thread count, keeps the sample in memory
// (timeseriesJson() export), and — when telemetry is enabled — records
// one Chrome-trace counter ("C") event per metric onto its own lane, so
// throughput-over-time shows up directly inside the existing trace
// alongside the span lanes. An optional rate-limited heartbeat prints a
// one-line progress summary (elapsed, RSS, faults/sec, cache hit rate,
// checks/sec) to stderr for long fault-sim and fuzz runs.
//
// The sampler never touches hot paths: it only reads the same atomics the
// exporters read, on its own thread, at human cadence. Like every obs
// export it lives strictly on the non-deterministic side.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace flh::obs {

/// Resident set size of the calling process in bytes (0 if unknowable on
/// this platform).
[[nodiscard]] std::uint64_t processRssBytes();

/// Live thread count of the calling process (0 if unknowable).
[[nodiscard]] unsigned processThreadCount();

struct SamplerOptions {
    unsigned period_ms = 200;       ///< snapshot cadence
    double heartbeat_every_s = 0.0; ///< 0 disables the stderr heartbeat
    std::ostream* heartbeat_out = nullptr; ///< nullptr = std::cerr
    bool trace_events = true; ///< also record "C" events onto the trace
};

/// One snapshot: timestamp, process stats, and every registered metric.
struct MetricsSample {
    double ts_us = 0.0;
    std::uint64_t rss_bytes = 0;
    unsigned threads = 0;
    std::map<std::string, double> values; ///< counters + gauges by name
};

/// Start/stop is reusable: one Sampler may bracket several runs. The
/// background thread is persistent across restarts (spawned on the first
/// start(), joined in the destructor), so every activation records onto
/// the same "obs-sampler" trace lane instead of leaking one stale lane per
/// restart, and each start() begins a fresh sample series — the previous
/// activation's final sample is not replayed into the new one.
class Sampler {
public:
    explicit Sampler(SamplerOptions opts = {});
    ~Sampler(); ///< stops (final sample included) and joins

    Sampler(const Sampler&) = delete;
    Sampler& operator=(const Sampler&) = delete;

    /// Begin a sampling activation on the persistent background thread
    /// (spawned on first use). No-op if already running; a start racing a
    /// still-completing stop() waits for that stop to finish first.
    void start();

    /// Stop sampling and wait until the thread has taken exactly one final
    /// sample, so the series always ends with the run's closing counter
    /// values. The thread stays parked for a future start().
    void stop();

    [[nodiscard]] bool running() const;
    [[nodiscard]] std::size_t sampleCount() const;
    [[nodiscard]] std::size_t heartbeatCount() const;
    [[nodiscard]] std::vector<MetricsSample> samples() const;

    /// Column-oriented export (schema flh.obs.timeseries/1): fixed columns
    /// ts_us / rss_bytes / threads followed by the sorted union of metric
    /// names; metrics not yet registered at a sample's time read as 0.
    /// Ends with a newline.
    [[nodiscard]] std::string timeseriesJson() const;

private:
    void run();
    void sampleOnce();
    void maybeHeartbeat(const MetricsSample& s);

    SamplerOptions opts_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::thread thread_; ///< persistent; parked between activations
    bool running_ = false;
    bool stop_requested_ = false;
    bool shutdown_ = false; ///< destructor: thread exits for good
    std::vector<MetricsSample> samples_;
    std::size_t heartbeats_ = 0;
    double start_us_ = 0.0;
    double last_heartbeat_us_ = 0.0;
    MetricsSample hb_prev_; ///< baseline for heartbeat rate deltas
};

} // namespace flh::obs
