#include "obs/benchio.hpp"

#include "util/json.hpp"
#include "util/stats.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

namespace flh::obs {

RepStats RepStats::of(std::vector<double> samples) {
    RepStats s;
    s.reps = static_cast<int>(samples.size());
    if (samples.empty()) return s;
    std::sort(samples.begin(), samples.end());
    s.min = samples.front();
    s.max = samples.back();
    const std::size_t n = samples.size();
    s.median = stats::medianSorted(samples.data(), n);
    if (n == 1) {
        s.q1 = s.q3 = s.median;
    } else {
        // Halves-method quartiles: medians of the lower/upper halves,
        // excluding the middle element for odd n.
        s.q1 = stats::medianSorted(samples.data(), n / 2);
        s.q3 = stats::medianSorted(samples.data() + (n + 1) / 2, n - (n + 1) / 2);
    }
    return s;
}

void BenchEntry::writeJson(JsonWriter& w) const {
    const RepStats time = RepStats::of(time_samples);
    w.beginObject();
    w.kv("name", name);
    w.kv("threads", static_cast<std::uint64_t>(threads));
    w.kv("reps", static_cast<std::int64_t>(time.reps));
    w.kv("warmup", static_cast<std::int64_t>(warmup));
    w.key("real_time_ns");
    w.beginObject();
    w.kv("median", time.median);
    w.kv("min", time.min);
    w.kv("max", time.max);
    w.kv("q1", time.q1);
    w.kv("q3", time.q3);
    w.endObject();
    if (!ips_samples.empty()) {
        const RepStats ips = RepStats::of(ips_samples);
        w.key("items_per_second");
        w.beginObject();
        w.kv("median", ips.median);
        w.kv("min", ips.min);
        w.kv("max", ips.max);
        w.kv("q1", ips.q1);
        w.kv("q3", ips.q3);
        w.endObject();
    }
    w.key("time_samples");
    w.beginArray();
    for (const double v : time_samples) w.value(v);
    w.endArray();
    if (!ips_samples.empty()) {
        w.key("ips_samples");
        w.beginArray();
        for (const double v : ips_samples) w.value(v);
        w.endArray();
    }
    w.endObject();
}

BenchWriter::BenchWriter(std::string payload_schema, unsigned resolved_threads)
    : payload_schema_(std::move(payload_schema)),
      prov_(RunProvenance::collect(resolved_threads)) {}

void BenchWriter::setResults(std::string legacy_json) {
    while (!legacy_json.empty() &&
           (legacy_json.back() == '\n' || legacy_json.back() == '\r' ||
            legacy_json.back() == ' '))
        legacy_json.pop_back();
    results_ = std::move(legacy_json);
}

std::string BenchWriter::json() const {
    JsonWriter w;
    w.beginObject();
    w.kv("schema", kBenchEnvelopeSchema);
    w.kv("payload_schema", payload_schema_);
    w.key("provenance");
    prov_.writeJson(w);
    w.key("benchmarks");
    w.beginArray();
    for (const BenchEntry& e : entries_) e.writeJson(w);
    w.endArray();
    if (!results_.empty()) {
        w.key("results");
        w.rawValue(results_);
    }
    w.endObject();
    return w.str() + "\n";
}

std::string BenchWriter::writeFile(const std::string& filename,
                                   const std::string& out_flag) const {
    const std::string path = benchOutPath(filename, out_flag);
    const std::filesystem::path parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
    }
    std::ofstream out(path, std::ios::trunc);
    out << json();
    if (!out) {
        std::cerr << "failed to write " << path << "\n";
        return "";
    }
    std::cerr << "wrote " << path << " (" << entries_.size() << " benchmarks)\n";
    return path;
}

std::string benchOutDir(const std::string& out_flag) {
    if (!out_flag.empty()) return out_flag;
    if (const char* env = std::getenv("FLH_BENCH_OUT"); env != nullptr && *env != '\0')
        return env;
    return ".";
}

std::string benchOutPath(const std::string& filename, const std::string& out_flag) {
    if (!std::filesystem::path(filename).parent_path().empty()) return filename;
    const std::string dir = benchOutDir(out_flag);
    if (dir == ".") return filename;
    return (std::filesystem::path(dir) / filename).string();
}

std::string parseBenchOutFlag(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        const std::string_view a = argv[i];
        if (a == "--out" && i + 1 < argc) return argv[i + 1];
        if (a.rfind("--out=", 0) == 0) return std::string(a.substr(6));
    }
    return "";
}

} // namespace flh::obs
