// Bench envelope IO: the one format every BENCH_*.json export converges on.
//
// Before this layer each bench binary hand-rolled its own top-level JSON
// (different schemas, no provenance, single wall-clock samples) and wrote
// into the CWD unconditionally. BenchWriter fixes all three at once:
//
//   {
//     "schema": "flh.bench.envelope/1",
//     "payload_schema": "<the binary's legacy schema id>",
//     "provenance": { git sha, dirty, build type, compiler, host, ... },
//     "benchmarks": [ { name, threads, reps, warmup, order statistics
//                       (median/min/max/q1/q3) over the measured samples,
//                       plus the raw samples } ],
//     "results": <the binary's legacy payload, verbatim>
//   }
//
// flh_benchdiff consumes the "benchmarks" list; anything that only ever
// read the legacy payload keeps working through "results". Output paths
// resolve through benchOutDir(): an explicit --out flag wins, then the
// FLH_BENCH_OUT environment variable, then the current directory — so CI
// collects artifacts from a clean directory without per-binary plumbing.
#pragma once

#include "obs/provenance.hpp"

#include <string>
#include <vector>

namespace flh {
class JsonWriter;
} // namespace flh

namespace flh::obs {

inline constexpr const char* kBenchEnvelopeSchema = "flh.bench.envelope/1";

/// Order statistics over a sample set. Quartiles use the halves method:
/// q1/q3 are medians of the lower/upper half (median excluded for odd n),
/// so for {10,20,30,40,50}: median 30, q1 15, q3 45. With n == 1 every
/// statistic collapses to the single sample and the IQR is 0.
struct RepStats {
    int reps = 0;
    double median = 0.0;
    double min = 0.0;
    double max = 0.0;
    double q1 = 0.0;
    double q3 = 0.0;

    [[nodiscard]] static RepStats of(std::vector<double> samples);
    [[nodiscard]] double iqr() const noexcept { return q3 - q1; }
};

/// One benchmark's repetition record inside an envelope. `time_samples`
/// are post-warmup real times (ns); `ips_samples` (items/sec, optional)
/// parallel them. Matching key for diffs: (payload_schema, name, threads).
struct BenchEntry {
    std::string name;
    unsigned threads = 0; ///< requested worker knob (0 = per-hardware-thread)
    int warmup = 0;       ///< reps dropped before the recorded samples
    std::vector<double> time_samples;
    std::vector<double> ips_samples;

    void writeJson(JsonWriter& w) const;
};

/// Assembles and writes one envelope document.
class BenchWriter {
public:
    /// `payload_schema` is the binary's legacy schema id (kept as the
    /// diff matching key); `resolved_threads` lands in provenance.
    explicit BenchWriter(std::string payload_schema, unsigned resolved_threads = 0);

    void add(BenchEntry e) { entries_.push_back(std::move(e)); }

    /// Nest the legacy export verbatim under "results". Pass the complete
    /// legacy document (trailing newline tolerated).
    void setResults(std::string legacy_json);

    [[nodiscard]] const RunProvenance& provenance() const noexcept { return prov_; }
    [[nodiscard]] const std::vector<BenchEntry>& entries() const noexcept { return entries_; }

    /// The full envelope document (trailing newline included).
    [[nodiscard]] std::string json() const;

    /// Write under benchOutDir(out_flag)/filename (directories created on
    /// demand), logging the outcome to stderr in the established "wrote
    /// PATH" style. Returns the resolved path, or "" on failure.
    std::string writeFile(const std::string& filename, const std::string& out_flag = "") const;

private:
    std::string payload_schema_;
    RunProvenance prov_;
    std::vector<BenchEntry> entries_;
    std::string results_;
};

/// Bench output directory: `out_flag` (--out) > FLH_BENCH_OUT > ".".
[[nodiscard]] std::string benchOutDir(const std::string& out_flag = "");

/// `filename` resolved against benchOutDir — unless it already carries a
/// directory component, which is honored as-is (explicit paths win).
[[nodiscard]] std::string benchOutPath(const std::string& filename,
                                       const std::string& out_flag = "");

/// Extract the shared `--out DIR` / `--out=DIR` bench flag from argv
/// (empty string when absent). Leaves argv untouched.
[[nodiscard]] std::string parseBenchOutFlag(int argc, char** argv);

} // namespace flh::obs
