// Run provenance: the "who/where/when" header every benchmark export
// carries so a number can be trusted (or discarded) later. A faults/sec
// figure without the git sha, build type, and host that produced it is
// noise in a trend line; with them, flh_benchdiff can refuse to compare
// Debug against Release or flag a dirty-tree measurement.
//
// Build identity (sha, dirty flag, build type, compiler) is baked in at
// CMake configure time (src/obs/build_info.hpp.in); host identity
// (hostname, hardware threads) and the UTC timestamp are read at run
// time. Provenance is deliberately non-deterministic — it lives only in
// bench/telemetry exports, never in flow reports or cache keys.
#pragma once

#include <string>

namespace flh {
class JsonWriter;
} // namespace flh

namespace flh::obs {

struct RunProvenance {
    std::string git_sha;    ///< full sha, or "unknown" outside a git tree
    bool git_dirty = false; ///< uncommitted tracked changes at configure
    std::string build_type; ///< CMAKE_BUILD_TYPE ("Release", ...)
    std::string compiler;   ///< "GNU 13.2.0"-style id + version
    std::string hostname;
    unsigned hw_concurrency = 0; ///< ExecPolicy::hardwareThreads()
    unsigned threads = 0;        ///< resolved worker count (0 = not applicable)
    std::string timestamp_utc;   ///< ISO-8601 "2026-08-07T12:34:56Z"

    /// Snapshot the current process/build. `resolved_threads` is the
    /// ExecPolicy-resolved worker count of the run being described.
    [[nodiscard]] static RunProvenance collect(unsigned resolved_threads = 0);

    /// Emits one object (schema flh.provenance/1) — the shared
    /// writeJson(JsonWriter&) convention (util/json.hpp).
    void writeJson(JsonWriter& w) const;
};

} // namespace flh::obs
