// Stage artifact: the serializable result every flow stage produces.
//
// An artifact is two ordered string maps: `meta` for small scalar metrics
// (counts, percentages — everything that lands in the run report) and
// `blobs` for bulk payloads passed between stages (netlist text, serialized
// test sets). Ordering is by key (std::map), and doubles are formatted
// through formatNumber, so serialization is canonical: equal artifacts
// serialize to identical bytes, which is what makes the content-addressed
// cache and the bit-identical-report guarantee work.
#pragma once

#include "flow/hash.hpp"

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace flh {

class Artifact {
public:
    // ---- writing -------------------------------------------------------
    void setStr(const std::string& key, std::string value) { meta_[key] = std::move(value); }
    void setNum(const std::string& key, double value);
    void setInt(const std::string& key, std::int64_t value);
    void setBlob(const std::string& name, std::string bytes) { blobs_[name] = std::move(bytes); }

    // ---- reading (throws std::out_of_range on missing keys) ------------
    [[nodiscard]] const std::string& str(const std::string& key) const { return meta_.at(key); }
    [[nodiscard]] double num(const std::string& key) const;
    [[nodiscard]] std::int64_t integer(const std::string& key) const;
    [[nodiscard]] const std::string& blob(const std::string& name) const {
        return blobs_.at(name);
    }
    [[nodiscard]] bool hasMeta(const std::string& key) const { return meta_.contains(key); }
    [[nodiscard]] bool hasBlob(const std::string& name) const { return blobs_.contains(name); }

    [[nodiscard]] const std::map<std::string, std::string>& meta() const noexcept {
        return meta_;
    }
    [[nodiscard]] const std::map<std::string, std::string>& blobs() const noexcept {
        return blobs_;
    }

    [[nodiscard]] bool operator==(const Artifact&) const noexcept = default;

    // ---- canonical serialization ---------------------------------------
    /// Length-prefixed text format (see cache.hpp for the on-disk layout).
    [[nodiscard]] std::string serialize() const;

    /// Inverse of serialize(). Throws std::runtime_error on malformed input.
    [[nodiscard]] static Artifact deserialize(std::string_view bytes);

    /// Content digest of the canonical serialization.
    [[nodiscard]] Hash128 digest() const { return contentHash(serialize()); }

private:
    std::map<std::string, std::string> meta_;
    std::map<std::string, std::string> blobs_;
};

} // namespace flh
