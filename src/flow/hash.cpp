#include "flow/hash.hpp"

namespace flh {

namespace {

constexpr std::uint64_t kFnvPrimeA = 0x100000001b3ULL;
constexpr std::uint64_t kFnvPrimeB = 0x00000100000001b5ULL; // distinct odd multiplier

std::uint64_t splitmix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

std::string Hash128::hex() const {
    static const char* digits = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 16; ++i) out[15 - i] = digits[(hi >> (4 * i)) & 0xf];
    for (int i = 0; i < 16; ++i) out[31 - i] = digits[(lo >> (4 * i)) & 0xf];
    return out;
}

ContentHasher& ContentHasher::update(std::string_view bytes) noexcept {
    for (const char c : bytes) {
        const auto u = static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        a_ = (a_ ^ u) * kFnvPrimeA;
        b_ = (b_ ^ u) * kFnvPrimeB;
    }
    return *this;
}

ContentHasher& ContentHasher::field(std::string_view bytes) noexcept {
    std::uint64_t len = bytes.size();
    char prefix[8];
    for (int i = 0; i < 8; ++i) {
        prefix[i] = static_cast<char>(len & 0xff);
        len >>= 8;
    }
    update(std::string_view(prefix, sizeof prefix));
    return update(bytes);
}

Hash128 ContentHasher::digest() const noexcept {
    // Cross-mix the lanes so each output word depends on both accumulators.
    Hash128 h;
    h.lo = splitmix64(a_ ^ splitmix64(b_));
    h.hi = splitmix64(b_ ^ splitmix64(a_ + 0x632be59bd9b4e019ULL));
    return h;
}

Hash128 contentHash(std::string_view bytes) noexcept {
    return ContentHasher().update(bytes).digest();
}

} // namespace flh
