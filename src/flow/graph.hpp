// Typed DAG pipeline model.
//
// A FlowGraph is a set of named stages; each stage declares the stages it
// consumes (`deps`), a config string that enters its cache key, and a run
// function. The engine (engine.hpp) instantiates the graph once per design
// and schedules (design, stage) tasks across a bounded worker pool; within
// one design the dependency edges order execution, across designs every
// task is independent.
#pragma once

#include "flow/artifact.hpp"

#include <functional>
#include <string>
#include <vector>

namespace flh {

/// Everything a stage's run function may look at. Stage functions must be
/// pure in this context (plus their config): the cache replays their
/// artifact without re-running them.
class StageContext {
public:
    StageContext(std::string design, const std::string& source, const std::string& attrs,
                 unsigned sim_threads)
        : design_(std::move(design)), source_(source), attrs_(attrs),
          sim_threads_(sim_threads) {}

    /// Design (circuit) name — identification only; never cache-relevant.
    [[nodiscard]] const std::string& design() const noexcept { return design_; }

    /// The design's source netlist text (.bench).
    [[nodiscard]] const std::string& source() const noexcept { return source_; }

    /// Free-form design attributes ("k=v;..."), part of the cache key.
    [[nodiscard]] const std::string& attrs() const noexcept { return attrs_; }

    /// Inner parallelism budget (feeds FaultSimOptions::threads). Never
    /// cache-relevant: results are deterministic across thread counts.
    [[nodiscard]] unsigned simThreads() const noexcept { return sim_threads_; }

    /// Artifact of a declared dependency; throws if `stage` was not declared.
    [[nodiscard]] const Artifact& input(const std::string& stage) const;

    /// Numeric attribute lookup ("ff_hold_prob") with a default.
    [[nodiscard]] double attrNum(const std::string& key, double fallback) const;

    void addInput(const std::string& stage, const Artifact* art) {
        inputs_.emplace_back(stage, art);
    }

private:
    std::string design_;
    const std::string& source_;
    const std::string& attrs_;
    unsigned sim_threads_;
    std::vector<std::pair<std::string, const Artifact*>> inputs_;
};

using StageFn = std::function<Artifact(const StageContext&)>;

struct StageDef {
    std::string name;
    std::string config;            ///< serialized stage config (cache-key component)
    std::vector<std::string> deps; ///< names of consumed stages
    StageFn run;
};

class FlowGraph {
public:
    /// Register a stage. Throws on duplicate names, self-deps, or a dep that
    /// is not yet registered (which also forces the graph to be declared in
    /// topological order and therefore acyclic by construction).
    FlowGraph& addStage(StageDef def);

    [[nodiscard]] const std::vector<StageDef>& stages() const noexcept { return stages_; }
    [[nodiscard]] std::size_t size() const noexcept { return stages_.size(); }

    /// Index of a stage by name; throws std::out_of_range if unknown.
    [[nodiscard]] std::size_t indexOf(const std::string& name) const;
    [[nodiscard]] bool hasStage(const std::string& name) const;

private:
    std::vector<StageDef> stages_;
};

} // namespace flh
