#include "flow/graph.hpp"

#include <charconv>
#include <stdexcept>

namespace flh {

const Artifact& StageContext::input(const std::string& stage) const {
    for (const auto& [name, art] : inputs_)
        if (name == stage) return *art;
    throw std::out_of_range("stage '" + stage + "' is not a declared dependency");
}

double StageContext::attrNum(const std::string& key, double fallback) const {
    // attrs are "k=v;k=v;..." — small enough that a linear scan is fine.
    std::size_t pos = 0;
    while (pos < attrs_.size()) {
        std::size_t end = attrs_.find(';', pos);
        if (end == std::string::npos) end = attrs_.size();
        const std::string_view entry{attrs_.data() + pos, end - pos};
        const std::size_t eq = entry.find('=');
        if (eq != std::string_view::npos && entry.substr(0, eq) == key) {
            const std::string_view val = entry.substr(eq + 1);
            double v = fallback;
            const auto [p, ec] = std::from_chars(val.data(), val.data() + val.size(), v);
            if (ec == std::errc() && p == val.data() + val.size()) return v;
            return fallback;
        }
        pos = end + 1;
    }
    return fallback;
}

FlowGraph& FlowGraph::addStage(StageDef def) {
    if (def.name.empty()) throw std::invalid_argument("stage name must not be empty");
    if (!def.run) throw std::invalid_argument("stage '" + def.name + "' has no run function");
    if (hasStage(def.name)) throw std::invalid_argument("duplicate stage '" + def.name + "'");
    for (const std::string& d : def.deps) {
        if (d == def.name) throw std::invalid_argument("stage '" + def.name + "' depends on itself");
        if (!hasStage(d))
            throw std::invalid_argument("stage '" + def.name + "' depends on unknown stage '" + d +
                                        "' (stages must be added in dependency order)");
    }
    stages_.push_back(std::move(def));
    return *this;
}

std::size_t FlowGraph::indexOf(const std::string& name) const {
    for (std::size_t i = 0; i < stages_.size(); ++i)
        if (stages_[i].name == name) return i;
    throw std::out_of_range("unknown stage '" + name + "'");
}

bool FlowGraph::hasStage(const std::string& name) const {
    for (const StageDef& s : stages_)
        if (s.name == name) return true;
    return false;
}

} // namespace flh
