#include "flow/artifact.hpp"

#include "util/json.hpp"

#include <charconv>
#include <stdexcept>

namespace flh {

namespace {

constexpr std::string_view kMagic = "FLHART1\n";

void appendEntry(std::string& out, char tag, const std::string& key, const std::string& value) {
    out += tag;
    out += ' ';
    out += key; // keys are identifiers chosen by stage code: no spaces/newlines
    out += ' ';
    out += std::to_string(value.size());
    out += '\n';
    out += value;
    out += '\n';
}

[[noreturn]] void malformed(const char* what) {
    throw std::runtime_error(std::string("malformed artifact: ") + what);
}

} // namespace

void Artifact::setNum(const std::string& key, double value) { meta_[key] = formatNumber(value); }

void Artifact::setInt(const std::string& key, std::int64_t value) {
    meta_[key] = std::to_string(value);
}

double Artifact::num(const std::string& key) const {
    const std::string& s = meta_.at(key);
    double v = 0;
    const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc() || p != s.data() + s.size())
        throw std::runtime_error("artifact meta '" + key + "' is not numeric: " + s);
    return v;
}

std::int64_t Artifact::integer(const std::string& key) const {
    const std::string& s = meta_.at(key);
    std::int64_t v = 0;
    const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc() || p != s.data() + s.size())
        throw std::runtime_error("artifact meta '" + key + "' is not an integer: " + s);
    return v;
}

std::string Artifact::serialize() const {
    std::string out{kMagic};
    for (const auto& [k, v] : meta_) appendEntry(out, 'M', k, v);
    for (const auto& [k, v] : blobs_) appendEntry(out, 'B', k, v);
    return out;
}

Artifact Artifact::deserialize(std::string_view bytes) {
    if (!bytes.starts_with(kMagic)) malformed("bad magic");
    std::size_t pos = kMagic.size();
    Artifact art;
    while (pos < bytes.size()) {
        const char tag = bytes[pos];
        if ((tag != 'M' && tag != 'B') || pos + 1 >= bytes.size() || bytes[pos + 1] != ' ')
            malformed("bad entry tag");
        pos += 2;
        const std::size_t key_end = bytes.find(' ', pos);
        if (key_end == std::string_view::npos) malformed("unterminated key");
        const std::string key{bytes.substr(pos, key_end - pos)};
        pos = key_end + 1;
        const std::size_t len_end = bytes.find('\n', pos);
        if (len_end == std::string_view::npos) malformed("unterminated length");
        std::size_t len = 0;
        const std::string_view len_sv = bytes.substr(pos, len_end - pos);
        const auto [p, ec] = std::from_chars(len_sv.data(), len_sv.data() + len_sv.size(), len);
        if (ec != std::errc() || p != len_sv.data() + len_sv.size()) malformed("bad length");
        pos = len_end + 1;
        if (pos + len + 1 > bytes.size() || bytes[pos + len] != '\n')
            malformed("truncated value");
        std::string value{bytes.substr(pos, len)};
        pos += len + 1;
        auto& dest = (tag == 'M') ? art.meta_ : art.blobs_;
        if (!dest.emplace(key, std::move(value)).second) malformed("duplicate key");
    }
    return art;
}

} // namespace flh
