// Sharded, multi-process, content-addressed flow cache.
//
// Key scheme (see DESIGN.md Section 9): a stage's cache key is the 128-bit
// content hash of
//
//   code version ++ stage name ++ stage config ++ design source text
//                ++ design attributes ++ cache keys of every dependency
//
// each component length-prefixed. Dependency keys chain, so editing a
// stage's config (or the netlist text) re-keys exactly that stage and its
// downstream cone — everything else is served from cache.
//
// On-disk layout (version 2, sharded):
//
//   <dir>/<hh>/<key>.art     artifact, one file per key; hh = first two
//                            hex chars of the key (256-way fan-out)
//   <dir>/<hh>/index.log     append-only touch/put log for that shard
//   <dir>/<hh>/index.lock    flock() file guarding compaction + eviction
//
// Artifacts are written to a uniquely-named temp file and atomically
// renamed, so a killed run never leaves a half-written (and thus poisoned)
// entry; that rename is also what makes interrupted sweeps resumable, and
// it is the whole multi-process write story: the last rename wins and
// readers see either a complete artifact or a miss.
//
// The index log is advisory LRU metadata, not ground truth: `P <key>
// <bytes> <ts>` on store, `T <key> <ts>` on hit, `D <key> <ts>` on
// eviction, each appended with a single O_APPEND write (no lock — small
// same-fd appends do not interleave on local filesystems). Readers never
// lock either: they fold the log and ignore a torn trailing line.
// Compaction (triggered by log growth, and by every GC pass) rewrites the
// folded log via temp-file + rename under the shard's flock, so a crash
// mid-compaction leaves the old log intact plus a swept-later temp file.
// A lost append costs only LRU precision — GC rediscovers untracked
// artifacts by directory scan and falls back to their file mtime.
//
// GC evicts least-recently-touched entries until the configured byte /
// entry budgets hold (age-based eviction runs first), skipping keys this
// process has pinned (every key this handle stored or hit — "referenced
// by the live run"), and sweeps stale `*.tmp` droppings left by crashed
// writers. Eviction re-checks freshness under the shard lock, so an entry
// another process touched after the GC scan is spared.
#pragma once

#include "flow/artifact.hpp"
#include "util/json.hpp"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

namespace flh {

namespace cli {
struct CacheFlags;
} // namespace cli

/// Bump when stage semantics change in a way that must invalidate all
/// previously cached artifacts (part of every cache key). v2: sharded
/// cache layout + index logs — old flat-cache entries are cold misses,
/// never misread (the artifact format itself is unchanged).
inline constexpr std::string_view kFlowCodeVersion = "flh-flow-2";

/// Shard fan-out: first byte of the key, i.e. the first two hex chars.
inline constexpr unsigned kCacheShards = 256;

/// Validated 128-bit cache key. Construction is the only place validation
/// happens — a CacheKey in hand is always well-formed, so the path/shard
/// helpers cannot fail at use-time (the old ResultCache::pathFor threw on
/// short strings deep inside the engine instead).
class CacheKey {
public:
    CacheKey() = default; ///< null key (all zeros); valid but never produced by hashing

    [[nodiscard]] static CacheKey fromHash(Hash128 h) noexcept { return CacheKey(h); }

    /// Parse 32 hex chars (the report/wire rendering). Throws
    /// std::invalid_argument on anything else.
    [[nodiscard]] static CacheKey parse(std::string_view hex);

    /// 32 lowercase hex chars (hi then lo) — matches Hash128::hex().
    [[nodiscard]] std::string hex() const { return h_.hex(); }

    /// Shard index in [0, kCacheShards): the key's leading byte, so the
    /// shard directory name is exactly the first two hex chars.
    [[nodiscard]] unsigned shard() const noexcept {
        return static_cast<unsigned>(h_.hi >> 56);
    }

    [[nodiscard]] Hash128 hash() const noexcept { return h_; }
    [[nodiscard]] bool operator==(const CacheKey&) const noexcept = default;

private:
    explicit CacheKey(Hash128 h) noexcept : h_(h) {}
    Hash128 h_;
};

/// The one cache configuration struct, threaded engine -> service -> serve
/// (it used to be a cache_dir string duplicated across FlowOptions,
/// FlowServiceOptions, and the serve CLI).
struct CacheConfig {
    std::string dir = ".flowcache";
    bool enabled = true; ///< false: every stage recomputes, nothing is touched

    // ---- GC policy (0 = unbounded / disabled) --------------------------
    std::uint64_t max_bytes = 0;   ///< evict LRU until total artifact bytes <= this
    std::uint64_t max_entries = 0; ///< evict LRU until entry count <= this
    double max_age_s = 0.0;        ///< evict entries untouched for longer than this
    bool gc_on_open = false;       ///< run one GC pass in the constructor

    /// GC removes `*.tmp` files older than this (crashed writers); 0 sweeps
    /// every temp it sees (tests). Live writers hold temps for milliseconds.
    double temp_sweep_age_s = 3600.0;

    /// Test seam: wall-clock milliseconds used for touch records and age
    /// decisions. Null = system clock.
    std::function<std::uint64_t()> clock;
};

/// Point-in-time cache statistics: the handle-local counters plus (when
/// scanned) the on-disk totals. Exported through `flh_flow --metrics` /
/// --gc-json and the serve `metrics` response.
struct CacheStats {
    // Handle-local (this process, this handle).
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t evictions = 0;
    std::uint64_t gc_runs = 0;
    std::uint64_t compactions = 0;

    // On-disk, from the most recent scan (stats(true) / gc()).
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
    std::uint64_t shards_used = 0;
    std::uint64_t max_shard_entries = 0;
    /// max_shard_entries / mean entries per used shard (1.0 = perfectly
    /// even); 0 while the cache is empty.
    double shard_skew = 0.0;

    void writeJson(JsonWriter& w) const;
};

/// Outcome of one GC pass.
struct GcResult {
    std::uint64_t scanned_entries = 0;
    std::uint64_t scanned_bytes = 0;
    std::uint64_t evicted_entries = 0;
    std::uint64_t evicted_bytes = 0;
    std::uint64_t swept_temps = 0;
    std::uint64_t live_entries = 0; ///< after eviction
    std::uint64_t live_bytes = 0;   ///< after eviction

    void writeJson(JsonWriter& w) const;
};

/// The cache handle. Thread-safe; any number of FlowCache handles in any
/// number of processes may share one directory tree (see the layout notes
/// above for the protocol).
class FlowCache {
public:
    /// Opens (and lazily creates) the cache rooted at `cfg.dir`; runs one
    /// GC pass first if `cfg.gc_on_open`. Throws on an empty directory.
    explicit FlowCache(CacheConfig cfg);

    [[nodiscard]] const CacheConfig& config() const noexcept { return cfg_; }
    [[nodiscard]] const std::string& dir() const noexcept { return cfg_.dir; }

    /// Single-probe load: the artifact stored under `key`, or nullopt on a
    /// miss. A corrupt entry is a miss (a store will replace it). A hit
    /// appends an LRU touch record and pins the key for this process.
    /// There is deliberately no contains(): check-then-load was a TOCTOU
    /// hole once other processes could evict between the two calls.
    [[nodiscard]] std::optional<Artifact> get(const CacheKey& key);

    /// Store `art` under `key`: temp file + atomic rename (a failed rename
    /// removes the temp before rethrowing), then an index put record.
    /// Pins the key for this process.
    void put(const CacheKey& key, const Artifact& art);

    /// One GC pass under the configured budgets: scan every shard, sweep
    /// stale temps, evict by age then LRU to the byte/entry budgets
    /// (skipping this handle's pinned keys), and compact every shard index.
    GcResult gc();

    /// Current statistics. scan_disk = true walks the shard directories
    /// for entry/byte/skew totals (and refreshes the cache.entries/bytes
    /// obs gauges); false reports only the handle-local counters plus the
    /// totals from the last scan.
    [[nodiscard]] CacheStats stats(bool scan_disk = true) const;

    /// Keys this handle has stored or hit — GC never evicts them.
    [[nodiscard]] std::size_t pinnedCount() const;

private:
    [[nodiscard]] std::string shardDir(unsigned shard) const;
    [[nodiscard]] std::string artifactPath(const CacheKey& key) const;
    void appendIndex(unsigned shard, char tag, const std::string& key_hex,
                     std::uint64_t bytes) const;
    void maybeCompact(unsigned shard);
    [[nodiscard]] std::uint64_t nowMs() const;

    CacheConfig cfg_;

    mutable std::mutex pins_mu_;
    std::unordered_set<std::string> pins_; ///< key hex this handle stored or hit

    mutable std::atomic<std::uint64_t> hits_{0}, misses_{0}, stores_{0}, evictions_{0},
        gc_runs_{0}, compactions_{0};
    mutable std::atomic<std::uint64_t> scanned_entries_{0}, scanned_bytes_{0},
        shards_used_{0}, max_shard_entries_{0};
};

/// Map the shared CLI flag block (util/cli.hpp) onto a CacheConfig — the
/// one place flag semantics (e.g. --no-cache) become config fields.
[[nodiscard]] CacheConfig makeCacheConfig(const cli::CacheFlags& flags);

} // namespace flh
