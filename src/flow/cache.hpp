// Persistent content-addressed result cache.
//
// Key scheme (see DESIGN.md Section 9): a stage's cache key is the 128-bit
// content hash of
//
//   code version ++ stage name ++ stage config ++ design source text
//                ++ design attributes ++ cache keys of every dependency
//
// each component length-prefixed. Dependency keys chain, so editing a
// stage's config (or the netlist text) re-keys exactly that stage and its
// downstream cone — everything else is served from cache. Artifacts are
// stored one file per key under `<dir>/<first 2 hex>/<key>.art`, written to
// a temp file and atomically renamed so a killed run never leaves a
// half-written (and thus poisoned) entry; that rename is also what makes
// interrupted sweeps resumable.
#pragma once

#include "flow/artifact.hpp"

#include <optional>
#include <string>

namespace flh {

/// Bump when stage semantics change in a way that must invalidate all
/// previously cached artifacts (part of every cache key).
inline constexpr std::string_view kFlowCodeVersion = "flh-flow-1";

class ResultCache {
public:
    /// Opens (and lazily creates) the cache rooted at `dir`.
    explicit ResultCache(std::string dir);

    [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

    /// Load the artifact stored under `key` (32 hex chars), or nullopt on
    /// miss. A corrupt entry is treated as a miss (it will be overwritten).
    [[nodiscard]] std::optional<Artifact> load(const std::string& key) const;

    /// Store `art` under `key` (atomic: temp file + rename).
    void store(const std::string& key, const Artifact& art) const;

    /// True if an entry exists for `key`.
    [[nodiscard]] bool contains(const std::string& key) const;

private:
    [[nodiscard]] std::string pathFor(const std::string& key) const;

    std::string dir_;
};

} // namespace flh
