// The paper's full evaluation flow as one FlowGraph.
//
// Stage DAG per design (Tables refer to the source paper):
//
//   netlist ── scan ──┬── dft_enh     (Tables I-III, enhanced-scan column)
//                     ├── dft_mux     (Tables I-III, MUX-hold column)
//                     ├── dft_flh     (Tables I-III, FLH column)
//                     ├── fanout_opt  (Table IV / Section V)
//                     └── atpg ────── fault_sim   (Section IV coverage)
//
// The three dft_* stages, fanout_opt and atpg are mutually independent, so
// the engine overlaps them (and all designs) on its worker pool.
#pragma once

#include "flow/engine.hpp"
#include "fault/fault_sim.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace flh {

struct PaperFlowConfig {
    /// Transition-ATPG budget (TransitionAtpgConfig::random_pairs).
    int random_pairs = 64;
    std::uint64_t atpg_seed = 11;
    /// Normal-mode power vectors (PowerConfig::n_vectors).
    int power_vectors = 40;
    std::uint64_t power_seed = 1234;
};

/// Build the paper flow graph (stages above) for a config.
[[nodiscard]] FlowGraph buildPaperFlow(const PaperFlowConfig& cfg = {});

/// Resolve a circuit argument into a DesignInput: a registered ISCAS name
/// ("s27", "s298", ...) uses the statistics-matched registry netlist and its
/// workload attributes; anything ending in ".bench" is read from disk.
[[nodiscard]] DesignInput designInputFor(const std::string& name_or_path);

// ---- test-set wire format (atpg -> fault_sim blob) ---------------------
// One test per line: "<v1 pis>|<v1 state>|<v2 pis>|<v2 state>" over 0/1/X.

[[nodiscard]] std::string serializeTests(const std::vector<TwoPattern>& tests);
[[nodiscard]] std::vector<TwoPattern> parseTests(const std::string& text);

} // namespace flh
