#include "flow/manifest.hpp"

#include "obs/eventlog.hpp"
#include "obs/telemetry.hpp"
#include "util/filelock.hpp"
#include "util/json.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include <unistd.h>

namespace fs = std::filesystem;

namespace flh {

namespace {

/// Claim/done files are named by the content hash of the design name:
/// collision-free, filesystem-safe regardless of what the name contains.
std::string claimStem(const std::string& design_name) {
    return contentHash(design_name).hex();
}

std::string hostName() {
    char buf[256] = {};
    if (::gethostname(buf, sizeof buf - 1) != 0) return "unknown";
    return buf;
}

std::int64_t intField(const JsonValue& v, const char* key, std::int64_t fallback) {
    if (!v.has(key)) return fallback;
    const JsonValue& f = v.at(key);
    if (f.kind != JsonValue::Kind::Num)
        throw std::runtime_error(std::string("manifest: \"") + key + "\" must be a number");
    return static_cast<std::int64_t>(f.num);
}

} // namespace

Manifest parseManifest(const std::string& json_text) {
    const JsonValue v = parseJson(json_text);
    if (v.kind != JsonValue::Kind::Obj)
        throw std::runtime_error("manifest: top level must be an object");
    if (v.has("schema") && v.at("schema").str != "flh.flow.manifest/1")
        throw std::runtime_error("manifest: unsupported schema '" + v.at("schema").str + "'");

    Manifest m;
    m.cfg.random_pairs = static_cast<int>(intField(v, "pairs", m.cfg.random_pairs));
    m.cfg.atpg_seed = static_cast<std::uint64_t>(intField(
        v, "seed", static_cast<std::int64_t>(m.cfg.atpg_seed)));
    m.cfg.power_vectors = static_cast<int>(intField(v, "power_vectors", m.cfg.power_vectors));
    m.cfg.power_seed = static_cast<std::uint64_t>(intField(
        v, "power_seed", static_cast<std::int64_t>(m.cfg.power_seed)));

    if (!v.has("designs") || v.at("designs").kind != JsonValue::Kind::Arr ||
        v.at("designs").arr.empty())
        throw std::runtime_error("manifest: \"designs\" must be a non-empty array");

    std::set<std::string> seen;
    for (const JsonValue& d : v.at("designs").arr) {
        ManifestEntry e;
        if (d.kind == JsonValue::Kind::Str) {
            e.circuit = d.str;
        } else if (d.kind == JsonValue::Kind::Obj) {
            if (!d.has("circuit") || d.at("circuit").kind != JsonValue::Kind::Str)
                throw std::runtime_error("manifest: design entries need a \"circuit\" string");
            e.circuit = d.at("circuit").str;
            if (d.has("name")) {
                if (d.at("name").kind != JsonValue::Kind::Str)
                    throw std::runtime_error("manifest: design \"name\" must be a string");
                e.name = d.at("name").str;
            }
            // A non-string attrs (e.g. a nested object) would silently coerce
            // to "" and collapse every variant onto one cache cone — reject.
            if (d.has("attrs")) {
                if (d.at("attrs").kind != JsonValue::Kind::Str)
                    throw std::runtime_error(
                        "manifest: design \"attrs\" must be a \"k=v;k=v\" string");
                e.attrs = d.at("attrs").str;
            }
        } else {
            throw std::runtime_error("manifest: design entries must be strings or objects");
        }
        if (e.circuit.empty()) throw std::runtime_error("manifest: empty circuit name");
        if (e.name.empty()) e.name = e.circuit;
        if (!seen.insert(e.name).second)
            throw std::runtime_error("manifest: duplicate design name '" + e.name + "'");
        m.designs.push_back(std::move(e));
    }
    return m;
}

Manifest loadManifest(const std::string& path) {
    const std::optional<std::string> text = readFileIfExists(path);
    if (!text) throw std::runtime_error("manifest: cannot read " + path);
    return parseManifest(*text);
}

DesignInput resolveManifestEntry(const ManifestEntry& entry) {
    DesignInput d = designInputFor(entry.circuit);
    d.name = entry.name.empty() ? entry.circuit : entry.name;
    if (!entry.attrs.empty())
        d.attrs = d.attrs.empty() ? entry.attrs : d.attrs + ";" + entry.attrs;
    return d;
}

std::string DrainReport::summaryJson(const CacheStats& cache_stats) const {
    // Per-design drain-time distribution, in the shared obs::Histogram
    // bucket layout so N drainers' summaries merge by bucket addition.
    obs::Histogram drain_hist;
    for (const DrainedDesign& d : drained) drain_hist.observe(d.wall_ms);
    const obs::Histogram::Summary hs = drain_hist.summarize();

    JsonWriter w;
    w.beginObject();
    w.kv("schema", "flh.flow.drain/2");
    w.kv("designs_total", static_cast<std::uint64_t>(total));
    w.kv("claimed", static_cast<std::uint64_t>(claimed));
    w.kv("already_claimed", static_cast<std::uint64_t>(already_claimed));
    w.kv("stages", static_cast<std::uint64_t>(report.records().size()));
    w.kv("cache_hits", static_cast<std::uint64_t>(report.hits()));
    w.kv("cache_misses", static_cast<std::uint64_t>(report.misses()));
    w.kv("failures", static_cast<std::uint64_t>(report.failures()));
    w.kv("hit_rate", report.hitRate());
    w.kv("drain_wall_ms", drain_wall_ms);
    w.key("designs");
    w.beginArray();
    for (const DrainedDesign& d : drained) {
        w.beginObject();
        w.kv("name", d.name);
        w.kv("wall_ms", d.wall_ms);
        w.kv("failed", d.failed);
        w.endObject();
    }
    w.endArray();
    w.key("drain_ms");
    w.beginObject();
    w.kv("count", hs.count);
    w.kv("sum", hs.sum);
    w.kv("min", hs.min);
    w.kv("max", hs.max);
    w.kv("p50", hs.p50);
    w.kv("p95", hs.p95);
    w.kv("p99", hs.p99);
    w.key("buckets");
    w.beginArray();
    const std::vector<std::uint64_t> buckets = drain_hist.bucketCounts();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0) continue;
        w.beginArray();
        w.value(static_cast<std::uint64_t>(i));
        w.value(buckets[i]);
        w.endArray();
    }
    w.endArray();
    w.endObject();
    w.key("cache");
    cache_stats.writeJson(w);
    w.endObject();
    return w.str() + "\n";
}

DrainReport drainManifest(const Manifest& manifest, const std::string& claims_dir,
                          const FlowOptions& opts) {
    fs::create_directories(claims_dir);

    // Resolve every design before claiming any: an unresolvable manifest
    // must fail fast, not strand half-claimed designs behind a throw.
    std::vector<DesignInput> resolved;
    resolved.reserve(manifest.designs.size());
    for (const ManifestEntry& e : manifest.designs) resolved.push_back(resolveManifestEntry(e));

    const FlowGraph graph = buildPaperFlow(manifest.cfg);
    FlowOptions run_opts = opts;
    if (!run_opts.cache_handle && run_opts.cache.enabled)
        run_opts.cache_handle = std::make_shared<FlowCache>(run_opts.cache);

    const std::string claim_body = "pid=" + std::to_string(::getpid()) +
                                   " host=" + hostName() + "\n";

    DrainReport out;
    out.total = manifest.designs.size();
    std::vector<StageRecord> records;
    using Clock = std::chrono::steady_clock;
    const Clock::time_point pass_start = Clock::now();
    for (std::size_t i = 0; i < manifest.designs.size(); ++i) {
        const std::string stem = claims_dir + "/" + claimStem(resolved[i].name);
        if (!claimFile(stem + ".claim", claim_body + "design=" + resolved[i].name + "\n")) {
            ++out.already_claimed;
            obs::logEvent(obs::EventLevel::Debug, "drain", "claim_race",
                          {{"design", resolved[i].name}});
            continue;
        }
        ++out.claimed;
        const std::vector<DesignInput> one = {resolved[i]};
        const Clock::time_point t0 = Clock::now();
        const RunReport rep = runFlow(graph, one, run_opts);
        const double design_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
        out.drained.push_back(DrainedDesign{resolved[i].name, design_ms, rep.failures() > 0});
        if (obs::enabled()) obs::histogram("flow.drain.design_ms").record(design_ms);
        for (const StageRecord& r : rep.records()) records.push_back(r);
        // The done marker lands atomically after the stage artifacts are
        // all persisted — a crash in between leaves a claim without a
        // marker, the signal that the design needs a re-drain.
        replaceFileAtomic(stem + ".done", rep.failures() > 0 ? "failed\n" : "ok\n");
    }
    out.drain_wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - pass_start).count();
    out.report = RunReport(std::string(kFlowCodeVersion), std::move(records), opts.threads,
                           opts.sim_threads);
    return out;
}

} // namespace flh
