#include "flow/engine.hpp"

#include "obs/telemetry.hpp"
#include "util/json.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

namespace flh {

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Per-(design, stage) scheduling state shared by the workers.
struct TaskTable {
    const FlowGraph& graph;
    std::span<const DesignInput> designs;
    std::vector<std::vector<std::size_t>> dep_idx;       ///< stage -> dep stage indices
    std::vector<std::vector<std::size_t>> dependents;    ///< stage -> dependent stage indices
    std::vector<int> pending;                            ///< per task: unfinished deps
    std::vector<StageRecord> records;                    ///< per task

    [[nodiscard]] std::size_t taskId(std::size_t design, std::size_t stage) const noexcept {
        return design * graph.size() + stage;
    }
};

/// Shared counters/gauges (stable addresses, one registry lookup per
/// process).
struct FlowTelemetry {
    obs::Counter& tasks = obs::counter("flow.tasks");
    obs::Counter& hits = obs::counter("flow.cache_hits");
    obs::Counter& misses = obs::counter("flow.cache_misses");
    obs::Counter& failures = obs::counter("flow.stage_failures");
    obs::Gauge& queue_depth = obs::gauge("flow.ready_queue_depth");

    static const FlowTelemetry& get() {
        static const FlowTelemetry t;
        return t;
    }
};

void runTask(TaskTable& tt, std::size_t design, std::size_t stage, FlowCache* cache,
             const FlowOptions& opts) {
    const StageDef& def = tt.graph.stages()[stage];
    const DesignInput& input = tt.designs[design];
    StageRecord& rec = tt.records[tt.taskId(design, stage)];
    rec.design = input.name;
    rec.stage = def.name;

    const FlowTelemetry& tel = FlowTelemetry::get();
    tel.tasks.add(1);
    obs::ScopedSpan task_span(
        obs::enabled() ? input.name + "/" + def.name : std::string(), "flow.stage");

    // Upstream failure poisons the cone without running anything.
    for (const std::size_t d : tt.dep_idx[stage]) {
        const StageRecord& dep = tt.records[tt.taskId(design, d)];
        if (dep.failed) {
            rec.failed = true;
            rec.error = "skipped: upstream stage '" + dep.stage + "' failed";
            tel.failures.add(1);
            return;
        }
    }

    // Cache key: code version + stage identity + design content + dep keys,
    // all length-prefixed (see cache.hpp).
    ContentHasher h;
    h.field(kFlowCodeVersion).field(def.name).field(def.config);
    h.field(input.source).field(input.attrs);
    for (const std::size_t d : tt.dep_idx[stage]) h.field(tt.records[tt.taskId(design, d)].key);
    const CacheKey key = CacheKey::fromHash(h.digest());
    rec.key = key.hex();

    const auto start = Clock::now();
    try {
        if (cache) {
            // Single probe: get() returns the artifact or a miss — no
            // contains()-then-load window for another process to evict in.
            obs::ScopedSpan probe_span(
                obs::enabled() ? "cache-probe:" + input.name + "/" + def.name
                               : std::string(),
                "flow.cache");
            if (auto hit = cache->get(key)) {
                rec.artifact = std::move(*hit);
                rec.cache_hit = true;
            }
        }
        if (!rec.cache_hit) {
            obs::ScopedSpan run_span(
                obs::enabled() ? "run:" + input.name + "/" + def.name : std::string(),
                "flow.run");
            StageContext ctx(input.name, input.source, input.attrs, opts.sim_threads);
            for (const std::size_t d : tt.dep_idx[stage])
                ctx.addInput(tt.graph.stages()[d].name,
                             &tt.records[tt.taskId(design, d)].artifact);
            rec.artifact = def.run(ctx);
            if (cache) cache->put(key, rec.artifact);
        }
        rec.digest = rec.artifact.digest().hex();
        // Throughput is only meaningful when the work actually ran; a cache
        // replay would otherwise report absurd faults/sec.
        if (!rec.cache_hit && rec.artifact.hasMeta("work_items"))
            rec.work_items = rec.artifact.num("work_items");
        (rec.cache_hit ? tel.hits : tel.misses).add(1);
    } catch (const std::exception& e) {
        rec.failed = true;
        rec.error = e.what();
        tel.failures.add(1);
    }
    rec.wall_ms = msSince(start);
    // Per-stage latency distribution (registry lookup only when recording;
    // stage names are few, so the map stays tiny).
    if (obs::enabled())
        obs::histogram("flow.stage." + def.name + ".wall_ms").record(rec.wall_ms);
}

} // namespace

RunReport runFlow(const FlowGraph& graph, std::span<const DesignInput> designs,
                  const FlowOptions& opts) {
    if (graph.size() == 0) throw std::invalid_argument("runFlow: empty graph");

    TaskTable tt{graph, designs, {}, {}, {}, {}};
    const std::size_t n_stages = graph.size();
    tt.dep_idx.resize(n_stages);
    tt.dependents.resize(n_stages);
    for (std::size_t s = 0; s < n_stages; ++s) {
        for (const std::string& dep : graph.stages()[s].deps) {
            const std::size_t d = graph.indexOf(dep);
            tt.dep_idx[s].push_back(d);
            tt.dependents[d].push_back(s);
        }
    }
    const std::size_t n_tasks = designs.size() * n_stages;
    tt.pending.resize(n_tasks);
    tt.records.resize(n_tasks);

    std::shared_ptr<FlowCache> cache = opts.cache_handle;
    if (!cache && opts.cache.enabled) cache = std::make_shared<FlowCache>(opts.cache);
    FlowCache* cache_ptr = cache.get();

    // Seed the ready queue with all dependency-free tasks, design-major so a
    // small pool starts pipelining early stages of many designs at once.
    std::deque<std::size_t> ready;
    for (std::size_t dsn = 0; dsn < designs.size(); ++dsn) {
        for (std::size_t s = 0; s < n_stages; ++s) {
            const std::size_t t = tt.taskId(dsn, s);
            tt.pending[t] = static_cast<int>(tt.dep_idx[s].size());
            if (tt.pending[t] == 0) ready.push_back(t);
        }
    }

    // Scheduler width through the unified policy: min_items_per_worker = 1
    // clamps the pool to the task count, threads = 0 resolves to hardware.
    const unsigned n_workers = opts.schedExec().resolveThreads(n_tasks);
    const FlowTelemetry& tel = FlowTelemetry::get();
    tel.queue_depth.set(static_cast<std::int64_t>(ready.size()));

    if (n_workers <= 1) {
        // Inline path: no pool, plain FIFO over the ready queue.
        obs::ScopedSpan sched_span(
            obs::enabled() ? "schedule:inline" : std::string(), "flow.sched");
        while (!ready.empty()) {
            const std::size_t t = ready.front();
            ready.pop_front();
            const std::size_t dsn = t / n_stages;
            const std::size_t s = t % n_stages;
            runTask(tt, dsn, s, cache_ptr, opts);
            for (const std::size_t dep_s : tt.dependents[s])
                if (--tt.pending[tt.taskId(dsn, dep_s)] == 0) ready.push_back(tt.taskId(dsn, dep_s));
            tel.queue_depth.set(static_cast<std::int64_t>(ready.size()));
        }
    } else {
        std::mutex mu;
        std::condition_variable cv;
        std::size_t done = 0;

        const auto worker = [&](unsigned worker_id) {
            if (obs::enabled())
                obs::setThreadLabel("flow-worker-" + std::to_string(worker_id));
            obs::ScopedSpan sched_span(
                obs::enabled() ? "schedule:worker-" + std::to_string(worker_id)
                               : std::string(),
                "flow.sched");
            std::unique_lock<std::mutex> lock(mu);
            for (;;) {
                if (done == n_tasks) return;
                if (ready.empty()) {
                    obs::ScopedSpan wait_span(
                        obs::enabled() ? "wait:worker-" + std::to_string(worker_id)
                                       : std::string(),
                        "flow.sched");
                    cv.wait(lock, [&] { return !ready.empty() || done == n_tasks; });
                    continue;
                }
                const std::size_t t = ready.front();
                ready.pop_front();
                tel.queue_depth.set(static_cast<std::int64_t>(ready.size()));
                const std::size_t dsn = t / n_stages;
                const std::size_t s = t % n_stages;
                lock.unlock();
                runTask(tt, dsn, s, cache_ptr, opts);
                lock.lock();
                ++done;
                bool woke_any = false;
                for (const std::size_t dep_s : tt.dependents[s]) {
                    if (--tt.pending[tt.taskId(dsn, dep_s)] == 0) {
                        ready.push_back(tt.taskId(dsn, dep_s));
                        woke_any = true;
                    }
                }
                tel.queue_depth.set(static_cast<std::int64_t>(ready.size()));
                if (done == n_tasks || woke_any) cv.notify_all();
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(n_workers);
        for (unsigned i = 0; i < n_workers; ++i) pool.emplace_back(worker, i);
        for (std::thread& th : pool) th.join();
    }

    return RunReport(std::string(kFlowCodeVersion), std::move(tt.records), n_workers,
                     opts.sim_threads);
}

// ---- StageRecord -------------------------------------------------------

void StageRecord::writeJson(JsonWriter& w) const {
    w.beginObject();
    w.kv("design", design);
    w.kv("stage", stage);
    w.kv("key", key);
    if (failed) {
        w.kv("error", error);
    } else {
        w.kv("artifact", digest);
        w.key("metrics");
        w.beginObject();
        for (const auto& [k, v] : artifact.meta()) w.kv(k, v);
        w.endObject();
    }
    w.endObject();
}

void StageRecord::writeProfileJson(JsonWriter& w) const {
    w.beginObject();
    w.kv("design", design);
    w.kv("stage", stage);
    w.kv("cache", failed ? "failed" : (cache_hit ? "hit" : "miss"));
    w.kv("wall_ms", wall_ms);
    if (itemsPerSecond() > 0) w.kv("items_per_second", itemsPerSecond());
    w.endObject();
}

// ---- RunReport ---------------------------------------------------------

RunReport::RunReport(std::string code_version, std::vector<StageRecord> records,
                     unsigned threads, unsigned sim_threads)
    : code_version_(std::move(code_version)), records_(std::move(records)), threads_(threads),
      sim_threads_(sim_threads) {
    // Records arrive design-major in input order with stages in graph order;
    // sort by design *name* so the report does not depend on CLI list order.
    std::stable_sort(records_.begin(), records_.end(),
                     [](const StageRecord& a, const StageRecord& b) { return a.design < b.design; });
}

std::size_t RunReport::hits() const noexcept {
    std::size_t n = 0;
    for (const StageRecord& r : records_) n += r.cache_hit ? 1 : 0;
    return n;
}

std::size_t RunReport::misses() const noexcept {
    std::size_t n = 0;
    for (const StageRecord& r : records_) n += (!r.cache_hit && !r.failed) ? 1 : 0;
    return n;
}

std::size_t RunReport::failures() const noexcept {
    std::size_t n = 0;
    for (const StageRecord& r : records_) n += r.failed ? 1 : 0;
    return n;
}

double RunReport::hitRate() const noexcept {
    const std::size_t graded = hits() + misses();
    return graded ? static_cast<double>(hits()) / static_cast<double>(graded) : 0.0;
}

double RunReport::totalWallMs() const noexcept {
    double ms = 0;
    for (const StageRecord& r : records_) ms += r.wall_ms;
    return ms;
}

std::int64_t RunReport::peakTests() const noexcept {
    std::int64_t peak = 0;
    for (const StageRecord& r : records_)
        if (r.artifact.hasMeta("n_tests"))
            peak = std::max<std::int64_t>(peak, r.artifact.integer("n_tests"));
    return peak;
}

std::string RunReport::reportJson() const {
    JsonWriter w;
    w.beginObject();
    w.kv("schema", "flh.flow.report/1");
    w.kv("code_version", code_version_);
    w.key("stages");
    w.beginArray();
    for (const StageRecord& r : records_) r.writeJson(w);
    w.endArray();
    w.endObject();
    return w.str() + "\n";
}

std::string RunReport::profileJson() const {
    JsonWriter w;
    w.beginObject();
    w.kv("schema", "flh.flow.profile/1");
    w.kv("threads", static_cast<std::int64_t>(threads_));
    w.kv("sim_threads", static_cast<std::int64_t>(sim_threads_));
    w.kv("tasks", records_.size());
    w.kv("cache_hits", hits());
    w.kv("cache_misses", misses());
    w.kv("failures", failures());
    w.kv("hit_rate", hitRate());
    w.kv("total_wall_ms", totalWallMs());
    w.kv("peak_tests", peakTests());
    w.key("stages");
    w.beginArray();
    for (const StageRecord& r : records_) r.writeProfileJson(w);
    w.endArray();
    w.endObject();
    return w.str() + "\n";
}

std::string RunReport::benchJson() const {
    double worked_ms = 0.0;
    double work_items = 0.0;
    for (const StageRecord& r : records_) {
        if (r.work_items > 0 && r.wall_ms > 0) {
            worked_ms += r.wall_ms;
            work_items += r.work_items;
        }
    }
    JsonWriter w;
    w.beginObject();
    w.kv("schema", "flh.bench.flow/1");
    w.kv("threads", static_cast<std::int64_t>(threads_));
    w.kv("sim_threads", static_cast<std::int64_t>(sim_threads_));
    w.kv("tasks", records_.size());
    w.kv("cache_hits", hits());
    w.kv("cache_misses", misses());
    w.kv("total_wall_ms", totalWallMs());
    w.kv("work_items", work_items);
    if (worked_ms > 0) w.kv("items_per_second", work_items / (worked_ms / 1000.0));
    w.key("stages");
    w.beginArray();
    for (const StageRecord& r : records_) r.writeProfileJson(w);
    w.endArray();
    w.endObject();
    return w.str() + "\n";
}

TextTable RunReport::table() const {
    TextTable t({"Design", "Stage", "Cache", "Wall ms", "Items/s", "Key"});
    std::string last_design;
    for (const StageRecord& r : records_) {
        if (!last_design.empty() && r.design != last_design) t.addRule();
        last_design = r.design;
        const double ips = r.itemsPerSecond();
        t.addRow({r.design, r.stage, r.failed ? "FAILED" : (r.cache_hit ? "hit" : "miss"),
                  fmt(r.wall_ms, 2), ips > 0 ? fmt(ips, 0) : "-", r.key.substr(0, 12)});
    }
    return t;
}

} // namespace flh
