#include "flow/paper_flow.hpp"

#include "atpg/transition_atpg.hpp"
#include "dft/design.hpp"
#include "dft/fanout_opt.hpp"
#include "dft/scan.hpp"
#include "fault/parallel_sim.hpp"
#include "iscas/circuits.hpp"
#include "netlist/bench_io.hpp"
#include "util/json.hpp"

#include <array>
#include <stdexcept>

namespace flh {

namespace {

const Library& sharedLib() {
    static const Library lib = makeDefaultLibrary();
    return lib;
}

Logic charToLogic(char c) {
    switch (c) {
        case '0': return Logic::Zero;
        case '1': return Logic::One;
        case 'X': return Logic::X;
        default: throw std::runtime_error(std::string("bad logic char '") + c + "'");
    }
}

void appendBits(std::string& out, const std::vector<Logic>& bits) {
    for (const Logic b : bits) out += toChar(b);
}

std::vector<Logic> parseBits(std::string_view s) {
    std::vector<Logic> out;
    out.reserve(s.size());
    for (const char c : s) out.push_back(charToLogic(c));
    return out;
}

/// Rebuild the scanned netlist a downstream stage operates on.
Netlist scannedFrom(const StageContext& ctx) {
    return readBenchString(ctx.input("scan").blob("bench"), ctx.design(), sharedLib());
}

PowerConfig powerConfigFrom(const StageContext& ctx, const PaperFlowConfig& cfg) {
    PowerConfig pc;
    pc.n_vectors = cfg.power_vectors;
    pc.seed = cfg.power_seed;
    pc.ff_hold_prob = ctx.attrNum("ff_hold_prob", 0.0);
    pc.pi_toggle_prob = ctx.attrNum("pi_toggle_prob", pc.pi_toggle_prob);
    return pc;
}

StageDef dftStage(const std::string& name, HoldStyle style, const PaperFlowConfig& cfg,
                  const std::string& config) {
    return StageDef{
        name, config, {"scan"}, [style, cfg](const StageContext& ctx) {
            const Netlist nl = scannedFrom(ctx);
            const DftDesign plan = planDft(nl, style);
            const DftEvaluation ev = evaluateDft(nl, plan, powerConfigFrom(ctx, cfg));
            Artifact art;
            art.setStr("style", toString(style));
            art.setInt("gated_gates", static_cast<std::int64_t>(plan.gated_gates.size()));
            art.setNum("base_area_um2", ev.base_area_um2);
            art.setNum("dft_area_um2", ev.dft_area_um2);
            art.setNum("area_increase_pct", ev.area_increase_pct);
            art.setNum("delay_increase_pct", ev.delay_increase_pct);
            art.setNum("power_increase_pct", ev.power_increase_pct);
            return art;
        }};
}

} // namespace

FlowGraph buildPaperFlow(const PaperFlowConfig& cfg) {
    // Stage configs are serialized with the JSON writer so every knob that
    // can change a stage's output is spelled into its cache key.
    const auto atpgConfig = [&] {
        JsonWriter w;
        w.beginObject();
        w.kv("random_pairs", cfg.random_pairs);
        w.kv("seed", cfg.atpg_seed);
        w.endObject();
        return w.str();
    }();
    const auto powerConfig = [&] {
        JsonWriter w;
        w.beginObject();
        w.kv("power_vectors", cfg.power_vectors);
        w.kv("power_seed", cfg.power_seed);
        w.endObject();
        return w.str();
    }();

    FlowGraph g;

    g.addStage({"netlist", "", {}, [](const StageContext& ctx) {
                    const Netlist nl = readBenchString(ctx.source(), ctx.design(), sharedLib());
                    const NetlistStats st = computeStats(nl);
                    Artifact art;
                    art.setInt("n_pis", static_cast<std::int64_t>(st.n_pis));
                    art.setInt("n_pos", static_cast<std::int64_t>(st.n_pos));
                    art.setInt("n_ffs", static_cast<std::int64_t>(st.n_ffs));
                    art.setInt("n_comb_gates", static_cast<std::int64_t>(st.n_comb_gates));
                    art.setInt("logic_depth", st.logic_depth);
                    art.setInt("total_ff_fanout", static_cast<std::int64_t>(st.total_ff_fanout));
                    art.setInt("unique_first_level",
                               static_cast<std::int64_t>(st.unique_first_level));
                    art.setNum("area_um2", st.area_um2);
                    // Canonical text: downstream keys chain off this blob.
                    art.setBlob("bench", writeBenchString(nl));
                    return art;
                }});

    g.addStage({"scan", "", {"netlist"}, [](const StageContext& ctx) {
                    Netlist nl = readBenchString(ctx.input("netlist").blob("bench"),
                                                 ctx.design(), sharedLib());
                    const ScanInfo si = insertScan(nl);
                    Artifact art;
                    art.setInt("chain_length", static_cast<std::int64_t>(si.chain_length));
                    art.setInt("unique_first_level",
                               static_cast<std::int64_t>(nl.uniqueFirstLevelGates().size()));
                    art.setBlob("bench", writeBenchString(nl));
                    return art;
                }});

    g.addStage(dftStage("dft_enh", HoldStyle::EnhancedScan, cfg, powerConfig));
    g.addStage(dftStage("dft_mux", HoldStyle::MuxHold, cfg, powerConfig));
    g.addStage(dftStage("dft_flh", HoldStyle::Flh, cfg, powerConfig));

    g.addStage({"fanout_opt", "", {"scan"}, [](const StageContext& ctx) {
                    Netlist nl = scannedFrom(ctx);
                    const FanoutOptResult r = optimizeFanout(nl);
                    Artifact art;
                    art.setInt("ffs_optimized", static_cast<std::int64_t>(r.ffs_optimized));
                    art.setInt("inverters_added", static_cast<std::int64_t>(r.inverters_added));
                    art.setInt("first_level_before",
                               static_cast<std::int64_t>(r.first_level_before));
                    art.setInt("first_level_after",
                               static_cast<std::int64_t>(r.first_level_after));
                    art.setNum("delay_before_ps", r.delay_before_ps);
                    art.setNum("delay_after_ps", r.delay_after_ps);
                    art.setBlob("bench", writeBenchString(nl));
                    return art;
                }});

    g.addStage({"atpg", atpgConfig, {"scan"}, [cfg](const StageContext& ctx) {
                    const Netlist nl = scannedFrom(ctx);
                    const auto faults = allTransitionFaults(nl);
                    TransitionAtpgConfig acfg;
                    acfg.random_pairs = cfg.random_pairs;
                    acfg.seed = cfg.atpg_seed;
                    const TransitionAtpgResult r = generateTransitionTests(
                        nl, TestApplication::EnhancedScan, faults, acfg);
                    Artifact art;
                    art.setInt("n_tests", static_cast<std::int64_t>(r.tests.size()));
                    art.setInt("n_faults", static_cast<std::int64_t>(faults.size()));
                    art.setNum("atpg_coverage_pct", r.coverage.coveragePct());
                    art.setInt("untestable", static_cast<std::int64_t>(r.untestable));
                    art.setInt("aborted", static_cast<std::int64_t>(r.aborted));
                    art.setBlob("tests", serializeTests(r.tests));
                    return art;
                }});

    g.addStage({"fault_sim", "", {"scan", "atpg"}, [](const StageContext& ctx) {
                    const Netlist nl = scannedFrom(ctx);
                    const auto tests = parseTests(ctx.input("atpg").blob("tests"));
                    const auto faults = allTransitionFaults(nl);
                    FaultSimOptions opts;
                    opts.threads = ctx.simThreads();
                    const FaultSimResult r = runTransitionFaultSim(nl, tests, faults, opts);
                    Artifact art;
                    art.setInt("n_tests", static_cast<std::int64_t>(tests.size()));
                    art.setInt("total_faults", static_cast<std::int64_t>(r.total));
                    art.setInt("detected", static_cast<std::int64_t>(r.detected));
                    art.setNum("coverage_pct", r.coveragePct());
                    // Throughput denominator for the engine's faults/sec view.
                    art.setInt("work_items", static_cast<std::int64_t>(r.total));
                    return art;
                }});

    return g;
}

DesignInput designInputFor(const std::string& name_or_path) {
    DesignInput d;
    if (name_or_path.size() > 6 &&
        name_or_path.rfind(".bench") == name_or_path.size() - 6) {
        const Netlist nl = readBenchFile(name_or_path, sharedLib());
        d.name = nl.name();
        d.source = writeBenchString(nl);
        return d;
    }
    const Netlist nl = makeCircuit(name_or_path, sharedLib());
    d.name = name_or_path;
    d.source = writeBenchString(nl);
    if (name_or_path != "s27") {
        // Workload attributes mirror bench_util's powerConfigFor.
        const double hold = findCircuit(name_or_path).ff_hold_prob;
        d.attrs = "ff_hold_prob=" + formatNumber(hold) +
                  ";pi_toggle_prob=" + formatNumber(0.3 * (1.0 - 0.8 * hold));
    }
    return d;
}

std::string serializeTests(const std::vector<TwoPattern>& tests) {
    std::string out;
    for (const TwoPattern& tp : tests) {
        appendBits(out, tp.v1.pis);
        out += '|';
        appendBits(out, tp.v1.state);
        out += '|';
        appendBits(out, tp.v2.pis);
        out += '|';
        appendBits(out, tp.v2.state);
        out += '\n';
    }
    return out;
}

std::vector<TwoPattern> parseTests(const std::string& text) {
    std::vector<TwoPattern> tests;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t end = text.find('\n', pos);
        if (end == std::string::npos) end = text.size();
        const std::string_view line{text.data() + pos, end - pos};
        pos = end + 1;
        if (line.empty()) continue;
        std::array<std::string_view, 4> parts;
        std::size_t start = 0, part = 0;
        for (std::size_t i = 0; i <= line.size(); ++i) {
            if (i == line.size() || line[i] == '|') {
                if (part >= parts.size()) throw std::runtime_error("bad test line");
                parts[part++] = line.substr(start, i - start);
                start = i + 1;
            }
        }
        if (part != parts.size()) throw std::runtime_error("bad test line");
        TwoPattern tp;
        tp.v1.pis = parseBits(parts[0]);
        tp.v1.state = parseBits(parts[1]);
        tp.v2.pis = parseBits(parts[2]);
        tp.v2.state = parseBits(parts[3]);
        tests.push_back(std::move(tp));
    }
    return tests;
}

} // namespace flh
