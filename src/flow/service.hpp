// FlowService: the warm, re-entrant front door to the flow engine.
//
// Every `flh_flow` invocation pays the full cold start — design
// resolution (registry generation or .bench parse), graph construction,
// and a fresh FlowCache handle — once per process. A long-lived server
// cannot afford that per request, and it needs one entry point that many
// worker threads can call at once. FlowService keeps the reusable assets
// warm across calls:
//
//   * a design memo: circuit name -> resolved DesignInput (the synthetic
//     ISCAS reconstruction is generated once, .bench files are read once
//     per process — server semantics, documented);
//   * a graph memo: one immutable FlowGraph per distinct PaperFlowConfig,
//     shared by reference (stage functions are pure, so concurrent
//     runFlow calls over one graph are safe);
//   * one persistent FlowCache handle shared by every cone (atomic-rename
//     stores make concurrent writers safe, and the shared handle keeps one
//     pin set for the whole process — see cache.hpp).
//
// run() is thread-safe and re-entrant: N serve workers each running a
// cone concurrently is the intended shape — the serve worker pool *is*
// the shared scheduler, so cones default to threads = 1 (inline) and the
// cross-request parallelism comes from the pool above.
#pragma once

#include "flow/paper_flow.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace flh {

struct FlowServiceOptions {
    /// The one cache configuration (directory, GC budgets, enabled flag),
    /// shared verbatim with the engine below and the serve CLI above.
    CacheConfig cache;
    /// Inner fault-sim budget per stage (FaultSimOptions::threads).
    unsigned sim_threads = 1;
};

/// One cone request: which designs through which config, at what
/// scheduler width.
struct FlowJobSpec {
    std::vector<std::string> circuits;
    PaperFlowConfig cfg;
    /// Scheduler width for this cone; 1 = inline on the calling worker
    /// (the serve default — the worker pool above provides parallelism).
    unsigned threads = 1;

    /// Canonical content key of the cone this job computes: code version,
    /// config, and the ordered circuit list. Two requests with equal
    /// coneKey() resolve to the same stage keys, which is exactly the
    /// "compatible requests coalesce into one cache cone" rule the serve
    /// batcher enforces.
    [[nodiscard]] std::string coneKey() const;
};

class FlowService {
public:
    explicit FlowService(FlowServiceOptions opts = {});

    /// Run one cone. Safe for any number of concurrent callers; throws on
    /// unresolvable circuits (stage failures are reported per record, as
    /// in runFlow).
    [[nodiscard]] RunReport run(const FlowJobSpec& spec);

    [[nodiscard]] const FlowServiceOptions& options() const noexcept { return opts_; }

    /// The warm cache handle every run() shares (null when the cache is
    /// disabled). The serve metrics request exports its stats; a serve
    /// admin GC goes through it so eviction respects the live pins.
    [[nodiscard]] const std::shared_ptr<FlowCache>& cache() const noexcept { return cache_; }

    /// The DesignInput display name a circuit argument resolves to — the
    /// key RunReport records carry. The serve batcher uses this to split a
    /// merged cone's records back into per-request responses. Memoized
    /// like run()'s own resolution; throws on unresolvable circuits.
    [[nodiscard]] std::string designName(const std::string& circuit);

    /// Memo inspection (serve metrics export).
    [[nodiscard]] std::size_t designMemoSize() const;
    [[nodiscard]] std::size_t graphMemoSize() const;

private:
    [[nodiscard]] std::shared_ptr<const FlowGraph> graphFor(const PaperFlowConfig& cfg);
    [[nodiscard]] DesignInput designFor(const std::string& circuit);

    FlowServiceOptions opts_;
    std::shared_ptr<FlowCache> cache_; ///< one handle for every cone
    mutable std::mutex mu_;
    std::map<std::string, DesignInput> designs_;
    std::map<std::string, std::shared_ptr<const FlowGraph>> graphs_;
};

} // namespace flh
