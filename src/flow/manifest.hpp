// Fleet-scale manifest draining: N independent flh_flow processes (or
// serve workers) cooperatively consume one many-design manifest against a
// shared sharded cache.
//
// The work-distribution protocol is deliberately file-level, matching the
// cache's multi-process story: every design in the manifest has a claim
// file under the claims directory, created with O_CREAT|O_EXCL — exactly
// one of N racing drainers wins each design, no coordinator process. The
// winner runs the full paper flow for that design and then writes a done
// marker recording the outcome. A drainer makes one pass over the
// manifest: claim what is unclaimed, skip what is not, exit when the list
// is exhausted — so the fleet finishes when the slowest claimed design
// finishes, and a crashed drainer loses only its claimed-but-unfinished
// designs (visible as claims without done markers; re-drain with a fresh
// claims directory to recompute them from the warm cache).
//
// Manifest format (schema flh.flow.manifest/1):
//
//   { "schema": "flh.flow.manifest/1",
//     "pairs": 16, "seed": 11,            // optional PaperFlowConfig knobs
//     "designs": [
//        "s27",                           // registry name or .bench path
//        { "circuit": "s298",             // same resolution rules
//          "name":    "s298.f3",          // display/claim name (default: circuit)
//          "attrs":   "fleet=3" } ] }     // extra cache-relevant attrs
//
// Distinct `attrs` values give distinct cache cones for the same netlist,
// which is how CI synthesizes a 30-design corpus from a handful of
// registry circuits.
#pragma once

#include "flow/paper_flow.hpp"

#include <string>
#include <vector>

namespace flh {

struct ManifestEntry {
    std::string circuit; ///< registry name or .bench path (designInputFor rules)
    std::string name;    ///< display + claim identity (defaults to circuit)
    std::string attrs;   ///< extra "k=v;k=v" attributes, appended to the design's
};

struct Manifest {
    PaperFlowConfig cfg;
    std::vector<ManifestEntry> designs;
};

/// Parse a manifest document. Throws std::runtime_error on malformed JSON,
/// a wrong schema, duplicate design names, or an empty design list.
[[nodiscard]] Manifest parseManifest(const std::string& json_text);

/// parseManifest over a file. Throws if the file cannot be read.
[[nodiscard]] Manifest loadManifest(const std::string& path);

/// Resolve one entry to the engine's DesignInput: circuit resolution via
/// designInputFor, name override, attrs appended (';'-joined).
[[nodiscard]] DesignInput resolveManifestEntry(const ManifestEntry& entry);

/// One claimed design's drain outcome — the per-design timing feedstock
/// for straggler analysis in merged fleet reports.
struct DrainedDesign {
    std::string name;
    double wall_ms = 0.0;
    bool failed = false;
};

/// Outcome of one drainer's pass over a manifest.
struct DrainReport {
    std::size_t total = 0;           ///< designs in the manifest
    std::size_t claimed = 0;         ///< designs this process won and ran
    std::size_t already_claimed = 0; ///< designs another process holds
    std::vector<DrainedDesign> drained; ///< claimed designs, in claim order
    double drain_wall_ms = 0.0;         ///< the whole pass, claim races included
    RunReport report;                ///< stage records of the claimed designs

    /// Per-process drain summary (schema flh.flow.drain/2): claim counts,
    /// cache hit/miss/failure totals, the cache stats snapshot, per-design
    /// wall times, and a per-design drain-time histogram (summary +
    /// buckets, obs::Histogram bucket rules) that flh_obsmerge merges
    /// fleet-wide by bucket addition. The fleet CI job sums these across
    /// drainers for consistency checks.
    [[nodiscard]] std::string summaryJson(const CacheStats& cache_stats) const;
};

/// Drain `manifest` cooperatively: claim-by-claim over the claims
/// directory (created on demand), running the paper flow for each won
/// design with `opts` (a shared cache handle is opened once if the config
/// enables caching and none was passed). Throws on unresolvable designs or
/// an unusable claims directory; stage failures are recorded per design,
/// as in runFlow.
[[nodiscard]] DrainReport drainManifest(const Manifest& manifest,
                                        const std::string& claims_dir,
                                        const FlowOptions& opts);

} // namespace flh
