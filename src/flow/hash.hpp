// Content hashing for the flow engine's result cache.
//
// Cache keys are 128-bit digests rendered as 32 hex characters. The digest
// is two independently-seeded 64-bit FNV-1a lanes mixed through a
// splitmix64 finalizer — not cryptographic, but with 128 bits the collision
// probability over any realistic number of cached artifacts is negligible,
// and the implementation is dependency-free and byte-order stable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace flh {

struct Hash128 {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    [[nodiscard]] bool operator==(const Hash128&) const noexcept = default;

    /// 32 lowercase hex characters (hi then lo).
    [[nodiscard]] std::string hex() const;
};

/// Incremental hasher; feed byte ranges, then finalize.
class ContentHasher {
public:
    ContentHasher() = default;

    ContentHasher& update(std::string_view bytes) noexcept;

    /// Feed a length-prefixed field: update(s) alone cannot distinguish
    /// ("ab","c") from ("a","bc"); field() can.
    ContentHasher& field(std::string_view bytes) noexcept;

    [[nodiscard]] Hash128 digest() const noexcept;

private:
    std::uint64_t a_ = 0xcbf29ce484222325ULL; ///< FNV-1a offset basis
    std::uint64_t b_ = 0x6c62272e07bb0142ULL; ///< distinct second-lane basis
};

/// One-shot convenience.
[[nodiscard]] Hash128 contentHash(std::string_view bytes) noexcept;

} // namespace flh
