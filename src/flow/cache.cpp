#include "flow/cache.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <unistd.h>

namespace fs = std::filesystem;

namespace flh {

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
    if (dir_.empty()) throw std::runtime_error("ResultCache: empty directory");
}

std::string ResultCache::pathFor(const std::string& key) const {
    if (key.size() < 3) throw std::runtime_error("ResultCache: bad key '" + key + "'");
    return dir_ + "/" + key.substr(0, 2) + "/" + key + ".art";
}

std::optional<Artifact> ResultCache::load(const std::string& key) const {
    std::ifstream in(pathFor(key), std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
        return Artifact::deserialize(buf.str());
    } catch (const std::exception&) {
        return std::nullopt; // corrupt entry == miss; store() will replace it
    }
}

bool ResultCache::contains(const std::string& key) const {
    return fs::exists(pathFor(key));
}

void ResultCache::store(const std::string& key, const Artifact& art) const {
    const fs::path path = pathFor(key);
    fs::create_directories(path.parent_path());

    // Unique temp name per store call: concurrent workers (or concurrent
    // flh_flow processes sharing one cache) must not clobber each other's
    // in-flight writes. The final rename is atomic either way.
    static std::atomic<std::uint64_t> counter{0};
    const fs::path tmp =
        path.parent_path() / (key + ".tmp" + std::to_string(counter.fetch_add(1)) + "." +
                              std::to_string(static_cast<std::uint64_t>(::getpid())));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) throw std::runtime_error("ResultCache: cannot write " + tmp.string());
        const std::string bytes = art.serialize();
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
        if (!out) throw std::runtime_error("ResultCache: short write to " + tmp.string());
    }
    fs::rename(tmp, path);
}

} // namespace flh
