#include "flow/cache.hpp"

#include "obs/eventlog.hpp"
#include "obs/telemetry.hpp"
#include "util/cli.hpp"
#include "util/filelock.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string_view>

#include <sys/stat.h>
#include <unistd.h>

namespace fs = std::filesystem;

namespace flh {

namespace {

/// Compact a shard's index log once it outgrows this (appends are cheap;
/// folding a huge log on every GC is not).
constexpr std::uintmax_t kCompactThresholdBytes = 256 * 1024;

constexpr std::string_view kArtSuffix = ".art";
constexpr std::string_view kIndexLog = "index.log";
constexpr std::string_view kIndexLock = "index.lock";

std::uint64_t wallMs() {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                          std::chrono::system_clock::now().time_since_epoch())
                                          .count());
}

int hexVal(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}

/// True for a 32-hex-char artifact file stem.
bool isKeyHex(std::string_view s) {
    if (s.size() != 32) return false;
    for (const char c : s)
        if (hexVal(c) < 0) return false;
    return true;
}

struct StatInfo {
    std::uint64_t bytes = 0;
    std::uint64_t mtime_ms = 0;
};

std::optional<StatInfo> statFile(const std::string& path) {
    struct ::stat st{};
    if (::stat(path.c_str(), &st) != 0) return std::nullopt;
    StatInfo info;
    info.bytes = static_cast<std::uint64_t>(st.st_size);
    info.mtime_ms = static_cast<std::uint64_t>(st.st_mtim.tv_sec) * 1000 +
                    static_cast<std::uint64_t>(st.st_mtim.tv_nsec) / 1000000;
    return info;
}

struct IndexInfo {
    std::uint64_t touch_ms = 0; ///< newest P/T timestamp seen
};

/// Fold an index log: newest touch per key. Lock-free by design — a torn
/// trailing line (a writer mid-append) parses as malformed and is skipped.
std::unordered_map<std::string, IndexInfo> foldIndexLog(const std::string& path) {
    std::unordered_map<std::string, IndexInfo> out;
    const std::optional<std::string> text = readFileIfExists(path);
    if (!text) return out;
    std::size_t pos = 0;
    while (pos < text->size()) {
        std::size_t eol = text->find('\n', pos);
        if (eol == std::string::npos) break; // torn tail: ignore
        const std::string_view line(text->data() + pos, eol - pos);
        pos = eol + 1;
        // "P <key> <bytes> <ts>" or "T <key> <ts>"
        if (line.size() < 36 || (line[0] != 'P' && line[0] != 'T') || line[1] != ' ')
            continue;
        const std::string_view key = line.substr(2, 32);
        if (!isKeyHex(key) || line.size() < 35 || line[34] != ' ') continue;
        const std::string_view rest = line.substr(35);
        // Timestamp is the last space-separated token.
        const std::size_t sp = rest.rfind(' ');
        const std::string_view ts_tok = sp == std::string_view::npos ? rest : rest.substr(sp + 1);
        std::uint64_t ts = 0;
        bool ok = !ts_tok.empty();
        for (const char c : ts_tok) {
            if (c < '0' || c > '9') {
                ok = false;
                break;
            }
            ts = ts * 10 + static_cast<std::uint64_t>(c - '0');
        }
        if (!ok) continue;
        IndexInfo& info = out[std::string(key)];
        info.touch_ms = std::max(info.touch_ms, ts);
    }
    return out;
}

/// One on-disk entry as seen by a shard scan.
struct DiskEntry {
    std::string key_hex;
    unsigned shard = 0;
    std::uint64_t bytes = 0;
    std::uint64_t touch_ms = 0; ///< index touch if tracked, else file mtime
};

struct ShardScan {
    std::vector<DiskEntry> entries;
    std::vector<std::string> temp_paths; ///< every *.tmp* file (with mtime filter applied)
};

/// Scan one shard directory: artifacts (with LRU touch times) and stale
/// temp files. `temp_age_ms` < 0 skips temp collection entirely.
ShardScan scanShard(const std::string& shard_dir, unsigned shard,
                    const std::unordered_map<std::string, IndexInfo>& index,
                    double temp_age_s, std::uint64_t real_now_ms) {
    ShardScan scan;
    std::error_code ec;
    for (fs::directory_iterator it(shard_dir, ec), end; !ec && it != end; it.increment(ec)) {
        const fs::path& p = it->path();
        const std::string name = p.filename().string();
        if (name.size() > kArtSuffix.size() &&
            name.compare(name.size() - kArtSuffix.size(), kArtSuffix.size(), kArtSuffix) == 0) {
            const std::string stem = name.substr(0, name.size() - kArtSuffix.size());
            if (!isKeyHex(stem)) continue;
            const std::optional<StatInfo> st = statFile(p.string());
            if (!st) continue; // raced with an eviction
            DiskEntry e;
            e.key_hex = stem;
            e.shard = shard;
            e.bytes = st->bytes;
            const auto idx = index.find(stem);
            e.touch_ms = idx != index.end() ? idx->second.touch_ms : st->mtime_ms;
            scan.entries.push_back(std::move(e));
        } else if (name.find(".tmp") != std::string::npos && temp_age_s >= 0.0) {
            const std::optional<StatInfo> st = statFile(p.string());
            if (!st) continue;
            if (real_now_ms >= st->mtime_ms &&
                static_cast<double>(real_now_ms - st->mtime_ms) >= temp_age_s * 1000.0)
                scan.temp_paths.push_back(p.string());
        }
    }
    return scan;
}

/// Rewrite a shard's index log as the fold of (current log, directory
/// contents). Caller holds the shard flock. Artifact files are the ground
/// truth for existence; the log contributes touch times.
void compactShardLocked(const std::string& shard_dir) {
    const std::string log_path = shard_dir + "/" + std::string(kIndexLog);
    const auto index = foldIndexLog(log_path);
    std::vector<std::string> lines;
    std::error_code ec;
    for (fs::directory_iterator it(shard_dir, ec), end; !ec && it != end; it.increment(ec)) {
        const std::string name = it->path().filename().string();
        if (name.size() <= kArtSuffix.size() ||
            name.compare(name.size() - kArtSuffix.size(), kArtSuffix.size(), kArtSuffix) != 0)
            continue;
        const std::string stem = name.substr(0, name.size() - kArtSuffix.size());
        if (!isKeyHex(stem)) continue;
        const std::optional<StatInfo> st = statFile(it->path().string());
        if (!st) continue;
        const auto idx = index.find(stem);
        const std::uint64_t ts = idx != index.end() ? idx->second.touch_ms : st->mtime_ms;
        lines.push_back("P " + stem + " " + std::to_string(st->bytes) + " " +
                        std::to_string(ts) + "\n");
    }
    std::sort(lines.begin(), lines.end());
    std::string joined;
    for (const std::string& l : lines) joined += l;
    replaceFileAtomic(log_path, joined);
}

struct CacheTelemetry {
    obs::Counter& hits = obs::counter("cache.hits");
    obs::Counter& misses = obs::counter("cache.misses");
    obs::Counter& stores = obs::counter("cache.stores");
    obs::Counter& evictions = obs::counter("cache.evictions");
    obs::Gauge& entries = obs::gauge("cache.entries");
    obs::Gauge& bytes = obs::gauge("cache.bytes");

    static const CacheTelemetry& get() {
        static const CacheTelemetry t;
        return t;
    }
};

} // namespace

// ---- CacheKey ----------------------------------------------------------

CacheKey CacheKey::parse(std::string_view hex) {
    if (hex.size() != 32)
        throw std::invalid_argument("CacheKey: expected 32 hex chars, got '" +
                                    std::string(hex) + "'");
    Hash128 h;
    for (std::size_t i = 0; i < 32; ++i) {
        const int v = hexVal(hex[i]);
        if (v < 0)
            throw std::invalid_argument("CacheKey: non-hex char in '" + std::string(hex) + "'");
        if (i < 16)
            h.hi = (h.hi << 4) | static_cast<std::uint64_t>(v);
        else
            h.lo = (h.lo << 4) | static_cast<std::uint64_t>(v);
    }
    return CacheKey(h);
}

// ---- FlowCache ---------------------------------------------------------

FlowCache::FlowCache(CacheConfig cfg) : cfg_(std::move(cfg)) {
    if (cfg_.dir.empty()) throw std::runtime_error("FlowCache: empty directory");
    if (cfg_.gc_on_open) (void)gc();
}

std::uint64_t FlowCache::nowMs() const { return cfg_.clock ? cfg_.clock() : wallMs(); }

std::string FlowCache::shardDir(unsigned shard) const {
    static const char* hexd = "0123456789abcdef";
    std::string d = cfg_.dir;
    d += '/';
    d += hexd[(shard >> 4) & 0xf];
    d += hexd[shard & 0xf];
    return d;
}

std::string FlowCache::artifactPath(const CacheKey& key) const {
    return shardDir(key.shard()) + "/" + key.hex() + std::string(kArtSuffix);
}

void FlowCache::appendIndex(unsigned shard, char tag, const std::string& key_hex,
                            std::uint64_t bytes) const {
    std::string line;
    line += tag;
    line += ' ';
    line += key_hex;
    line += ' ';
    if (tag == 'P') {
        line += std::to_string(bytes);
        line += ' ';
    }
    line += std::to_string(nowMs());
    line += '\n';
    // Advisory: a failed append only costs LRU precision (GC rediscovers
    // the artifact from the directory scan).
    (void)appendLine(shardDir(shard) + "/" + std::string(kIndexLog), line);
}

std::optional<Artifact> FlowCache::get(const CacheKey& key) {
    const std::optional<std::string> bytes = readFileIfExists(artifactPath(key));
    if (bytes) {
        try {
            Artifact art = Artifact::deserialize(*bytes);
            hits_.fetch_add(1, std::memory_order_relaxed);
            CacheTelemetry::get().hits.add(1);
            appendIndex(key.shard(), 'T', key.hex(), 0);
            {
                std::lock_guard<std::mutex> lock(pins_mu_);
                pins_.insert(key.hex());
            }
            return art;
        } catch (const std::exception&) {
            // corrupt entry == miss; put() will replace it
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    CacheTelemetry::get().misses.add(1);
    return std::nullopt;
}

void FlowCache::put(const CacheKey& key, const Artifact& art) {
    const unsigned shard = key.shard();
    const std::string dir = shardDir(shard);
    fs::create_directories(dir);

    // Unique temp name per store call: concurrent workers (and concurrent
    // processes sharing one cache) must not clobber each other's in-flight
    // writes. The final rename is atomic either way.
    static std::atomic<std::uint64_t> counter{0};
    const std::string hex = key.hex();
    const fs::path path = fs::path(dir) / (hex + std::string(kArtSuffix));
    const fs::path tmp =
        fs::path(dir) / (hex + ".tmp" + std::to_string(counter.fetch_add(1)) + "." +
                         std::to_string(static_cast<std::uint64_t>(::getpid())));
    const std::string bytes = art.serialize();
    // One retry: a collector configured with a very low temp_sweep_age_s can
    // sweep our in-flight temp between the write and the rename, surfacing
    // as ENOENT on the rename. The write is idempotent, so redo it once.
    for (int attempt = 0;; ++attempt) {
        try {
            {
                std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
                if (!out) throw std::runtime_error("FlowCache: cannot write " + tmp.string());
                out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
                if (!out) throw std::runtime_error("FlowCache: short write to " + tmp.string());
            }
            fs::rename(tmp, path);
            break;
        } catch (const fs::filesystem_error& e) {
            std::error_code ec;
            fs::remove(tmp, ec);
            if (attempt == 0 && e.code() == std::errc::no_such_file_or_directory) continue;
            throw;
        } catch (...) {
            // Never leave an orphaned temp behind a failed store (ENOSPC,
            // cross-device rename, target occupied by a directory, ...).
            std::error_code ec;
            fs::remove(tmp, ec);
            throw;
        }
    }
    stores_.fetch_add(1, std::memory_order_relaxed);
    CacheTelemetry::get().stores.add(1);
    appendIndex(shard, 'P', hex, bytes.size());
    {
        std::lock_guard<std::mutex> lock(pins_mu_);
        pins_.insert(hex);
    }
    maybeCompact(shard);
}

void FlowCache::maybeCompact(unsigned shard) {
    const std::string dir = shardDir(shard);
    const std::optional<StatInfo> st = statFile(dir + "/" + std::string(kIndexLog));
    if (!st || st->bytes < kCompactThresholdBytes) return;
    // Best effort: if another process is compacting or evicting, skip —
    // the log shrinks either way.
    std::optional<FileLock> lock = FileLock::tryAcquire(dir + "/" + std::string(kIndexLock));
    if (!lock) return;
    compactShardLocked(dir);
    compactions_.fetch_add(1, std::memory_order_relaxed);
}

GcResult FlowCache::gc() {
    GcResult res;
    gc_runs_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t now = nowMs();
    const std::uint64_t real_now = wallMs();

    // Phase 1: lock-free scan of every shard (index fold + directory walk).
    std::vector<DiskEntry> all;
    std::vector<unsigned> shards_present;
    for (unsigned s = 0; s < kCacheShards; ++s) {
        const std::string dir = shardDir(s);
        std::error_code ec;
        if (!fs::is_directory(dir, ec)) continue;
        shards_present.push_back(s);
        const auto index = foldIndexLog(dir + "/" + std::string(kIndexLog));
        ShardScan scan = scanShard(dir, s, index, cfg_.temp_sweep_age_s, real_now);
        for (const std::string& tmp : scan.temp_paths) {
            std::error_code rec;
            if (fs::remove(tmp, rec)) ++res.swept_temps;
        }
        for (DiskEntry& e : scan.entries) all.push_back(std::move(e));
    }
    for (const DiskEntry& e : all) {
        ++res.scanned_entries;
        res.scanned_bytes += e.bytes;
    }

    // Phase 2: pick victims — age first, then LRU down to the budgets.
    // Pinned keys (stored or hit by this handle: the live run's working
    // set) are never victims.
    std::unordered_set<std::string> pinned;
    {
        std::lock_guard<std::mutex> lock(pins_mu_);
        pinned = pins_;
    }
    std::sort(all.begin(), all.end(), [](const DiskEntry& a, const DiskEntry& b) {
        return a.touch_ms != b.touch_ms ? a.touch_ms < b.touch_ms : a.key_hex < b.key_hex;
    });
    std::uint64_t live_bytes = res.scanned_bytes;
    std::uint64_t live_entries = res.scanned_entries;
    std::vector<const DiskEntry*> victims;
    std::vector<bool> victim_flag(all.size(), false);
    const std::uint64_t age_cutoff =
        cfg_.max_age_s > 0.0 && static_cast<double>(now) > cfg_.max_age_s * 1000.0
            ? now - static_cast<std::uint64_t>(cfg_.max_age_s * 1000.0)
            : 0;
    for (std::size_t i = 0; i < all.size(); ++i) {
        if (age_cutoff == 0 || all[i].touch_ms >= age_cutoff) continue;
        if (pinned.count(all[i].key_hex)) continue;
        victim_flag[i] = true;
        victims.push_back(&all[i]);
        live_bytes -= all[i].bytes;
        --live_entries;
    }
    for (std::size_t i = 0; i < all.size(); ++i) {
        const bool over_bytes = cfg_.max_bytes > 0 && live_bytes > cfg_.max_bytes;
        const bool over_entries = cfg_.max_entries > 0 && live_entries > cfg_.max_entries;
        if (!over_bytes && !over_entries) break;
        if (victim_flag[i] || pinned.count(all[i].key_hex)) continue;
        victim_flag[i] = true;
        victims.push_back(&all[i]);
        live_bytes -= all[i].bytes;
        --live_entries;
    }

    // Phase 3: per-shard eviction under the shard flock, with a freshness
    // re-check — an entry another process touched after our scan is spared
    // this round. Every present shard is compacted while we are here
    // (crash-tolerant: the rewrite is temp-file + rename).
    std::vector<std::vector<const DiskEntry*>> by_shard(kCacheShards);
    for (const DiskEntry* v : victims) by_shard[v->shard].push_back(v);
    for (const unsigned s : shards_present) {
        const std::string dir = shardDir(s);
        FileLock lock = FileLock::acquire(dir + "/" + std::string(kIndexLock));
        if (!by_shard[s].empty()) {
            const auto fresh = foldIndexLog(dir + "/" + std::string(kIndexLog));
            for (const DiskEntry* v : by_shard[s]) {
                const auto it = fresh.find(v->key_hex);
                if (it != fresh.end() && it->second.touch_ms > v->touch_ms) {
                    live_bytes += v->bytes; // touched since the scan: spare it
                    ++live_entries;
                    continue;
                }
                std::error_code ec;
                if (fs::remove(dir + "/" + v->key_hex + std::string(kArtSuffix), ec)) {
                    ++res.evicted_entries;
                    res.evicted_bytes += v->bytes;
                    evictions_.fetch_add(1, std::memory_order_relaxed);
                    CacheTelemetry::get().evictions.add(1);
                    // Per-entry Debug events; the event log's token bucket
                    // bounds a mass eviction, and the gc_done summary below
                    // always carries the exact totals.
                    obs::logEvent(obs::EventLevel::Debug, "cache", "gc_evict",
                                  {{"key", v->key_hex.substr(0, 16)},
                                   {"bytes", v->bytes},
                                   {"idle_ms", now > v->touch_ms ? now - v->touch_ms
                                                                 : std::uint64_t{0}}});
                } else {
                    live_bytes += v->bytes; // already gone elsewhere
                    ++live_entries;
                }
            }
        }
        compactShardLocked(dir);
        compactions_.fetch_add(1, std::memory_order_relaxed);
    }

    res.live_entries = res.scanned_entries - res.evicted_entries;
    res.live_bytes = res.scanned_bytes - res.evicted_bytes;
    scanned_entries_.store(res.live_entries, std::memory_order_relaxed);
    scanned_bytes_.store(res.live_bytes, std::memory_order_relaxed);
    CacheTelemetry::get().entries.set(static_cast<std::int64_t>(res.live_entries));
    CacheTelemetry::get().bytes.set(static_cast<std::int64_t>(res.live_bytes));
    obs::logEvent(obs::EventLevel::Info, "cache", "gc_done",
                  {{"scanned", res.scanned_entries},
                   {"evicted", res.evicted_entries},
                   {"evicted_bytes", res.evicted_bytes},
                   {"swept_temps", res.swept_temps},
                   {"live_entries", res.live_entries},
                   {"live_bytes", res.live_bytes}});
    return res;
}

CacheStats FlowCache::stats(bool scan_disk) const {
    CacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.stores = stores_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.gc_runs = gc_runs_.load(std::memory_order_relaxed);
    s.compactions = compactions_.load(std::memory_order_relaxed);
    if (scan_disk) {
        std::uint64_t entries = 0, bytes = 0, shards_used = 0, max_shard = 0;
        static const std::unordered_map<std::string, IndexInfo> no_index;
        for (unsigned sh = 0; sh < kCacheShards; ++sh) {
            const std::string dir = shardDir(sh);
            std::error_code ec;
            if (!fs::is_directory(dir, ec)) continue;
            // temp_age_s < 0: stats never touches temp files.
            const ShardScan scan = scanShard(dir, sh, no_index, -1.0, 0);
            if (scan.entries.empty()) continue;
            ++shards_used;
            max_shard = std::max<std::uint64_t>(max_shard, scan.entries.size());
            entries += scan.entries.size();
            for (const DiskEntry& e : scan.entries) bytes += e.bytes;
        }
        scanned_entries_.store(entries, std::memory_order_relaxed);
        scanned_bytes_.store(bytes, std::memory_order_relaxed);
        shards_used_.store(shards_used, std::memory_order_relaxed);
        max_shard_entries_.store(max_shard, std::memory_order_relaxed);
        CacheTelemetry::get().entries.set(static_cast<std::int64_t>(entries));
        CacheTelemetry::get().bytes.set(static_cast<std::int64_t>(bytes));
    }
    s.entries = scanned_entries_.load(std::memory_order_relaxed);
    s.bytes = scanned_bytes_.load(std::memory_order_relaxed);
    s.shards_used = shards_used_.load(std::memory_order_relaxed);
    s.max_shard_entries = max_shard_entries_.load(std::memory_order_relaxed);
    s.shard_skew = s.shards_used > 0 && s.entries > 0
                       ? static_cast<double>(s.max_shard_entries) /
                             (static_cast<double>(s.entries) / static_cast<double>(s.shards_used))
                       : 0.0;
    return s;
}

std::size_t FlowCache::pinnedCount() const {
    std::lock_guard<std::mutex> lock(pins_mu_);
    return pins_.size();
}

// ---- JSON exports ------------------------------------------------------

void CacheStats::writeJson(JsonWriter& w) const {
    w.beginObject();
    w.kv("hits", hits);
    w.kv("misses", misses);
    w.kv("stores", stores);
    w.kv("evictions", evictions);
    w.kv("gc_runs", gc_runs);
    w.kv("compactions", compactions);
    w.kv("entries", entries);
    w.kv("bytes", bytes);
    w.kv("shards_used", shards_used);
    w.kv("max_shard_entries", max_shard_entries);
    w.kv("shard_skew", shard_skew);
    w.endObject();
}

void GcResult::writeJson(JsonWriter& w) const {
    w.beginObject();
    w.kv("scanned_entries", scanned_entries);
    w.kv("scanned_bytes", scanned_bytes);
    w.kv("evicted_entries", evicted_entries);
    w.kv("evicted_bytes", evicted_bytes);
    w.kv("swept_temps", swept_temps);
    w.kv("live_entries", live_entries);
    w.kv("live_bytes", live_bytes);
    w.endObject();
}

CacheConfig makeCacheConfig(const cli::CacheFlags& flags) {
    CacheConfig cfg;
    cfg.dir = flags.dir;
    cfg.enabled = !flags.no_cache;
    cfg.max_bytes = flags.max_bytes;
    cfg.max_entries = flags.max_entries;
    cfg.max_age_s = flags.max_age_s;
    cfg.gc_on_open = flags.gc_on_open;
    return cfg;
}

} // namespace flh
