#include "flow/service.hpp"

#include "flow/cache.hpp"
#include "flow/hash.hpp"
#include "util/json.hpp"

namespace flh {

namespace {

/// Canonical config serialization — every cache-relevant PaperFlowConfig
/// field, in declaration order.
std::string configKey(const PaperFlowConfig& cfg) {
    return "pairs=" + std::to_string(cfg.random_pairs) +
           ";atpg_seed=" + std::to_string(cfg.atpg_seed) +
           ";power_vectors=" + std::to_string(cfg.power_vectors) +
           ";power_seed=" + std::to_string(cfg.power_seed);
}

} // namespace

std::string FlowJobSpec::coneKey() const {
    ContentHasher h;
    h.field(kFlowCodeVersion).field(configKey(cfg));
    for (const std::string& c : circuits) h.field(c);
    return h.digest().hex();
}

FlowService::FlowService(FlowServiceOptions opts) : opts_(std::move(opts)) {
    if (opts_.cache.enabled) cache_ = std::make_shared<FlowCache>(opts_.cache);
}

std::shared_ptr<const FlowGraph> FlowService::graphFor(const PaperFlowConfig& cfg) {
    const std::string key = configKey(cfg);
    std::lock_guard<std::mutex> lock(mu_);
    auto it = graphs_.find(key);
    if (it == graphs_.end())
        it = graphs_.emplace(key, std::make_shared<FlowGraph>(buildPaperFlow(cfg))).first;
    return it->second;
}

DesignInput FlowService::designFor(const std::string& circuit) {
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = designs_.find(circuit);
        if (it != designs_.end()) return it->second;
    }
    // Resolve outside the lock: registry circuits synthesize a netlist and
    // .bench paths hit the disk — neither belongs under a shared mutex.
    // A racing resolver for the same circuit does redundant work once;
    // both arrive at the identical DesignInput (resolution is pure).
    DesignInput d = designInputFor(circuit);
    std::lock_guard<std::mutex> lock(mu_);
    designs_.emplace(circuit, d);
    return d;
}

RunReport FlowService::run(const FlowJobSpec& spec) {
    std::vector<DesignInput> designs;
    designs.reserve(spec.circuits.size());
    for (const std::string& c : spec.circuits) designs.push_back(designFor(c));

    const std::shared_ptr<const FlowGraph> graph = graphFor(spec.cfg);

    FlowOptions fopts;
    fopts.threads = spec.threads;
    fopts.sim_threads = opts_.sim_threads;
    fopts.cache = opts_.cache;
    fopts.cache_handle = cache_; // one warm handle across all cones
    return runFlow(*graph, designs, fopts);
}

std::string FlowService::designName(const std::string& circuit) {
    return designFor(circuit).name;
}

std::size_t FlowService::designMemoSize() const {
    std::lock_guard<std::mutex> lock(mu_);
    return designs_.size();
}

std::size_t FlowService::graphMemoSize() const {
    std::lock_guard<std::mutex> lock(mu_);
    return graphs_.size();
}

} // namespace flh
