// Flow engine: schedules a FlowGraph over a list of designs on a bounded
// worker pool, with a persistent content-addressed result cache and
// per-stage observability.
//
// Scheduling model: every (design, stage) pair is one task; edges are the
// stage dependencies within a design (designs never depend on each other).
// Workers pull ready tasks from a shared queue, so independent stages of
// one design and all stages of different designs overlap freely up to
// `threads`. Stage functions receive `sim_threads` as their inner
// FaultSimOptions budget.
//
// Determinism: the report is assembled from the (design, stage)-indexed
// record table after the pool drains, artifacts are canonical (see
// artifact.hpp), and every stage function is required to be deterministic —
// so reportJson() is bit-identical across scheduler thread counts, across
// cold/warm runs, and across repeated runs. All wall-clock observability
// (stage timing, cache hit/miss, throughput) lives in profileJson(), which
// is explicitly non-deterministic.
//
// Interruption: artifacts are persisted as each stage finishes, so a killed
// sweep resumes where it stopped — the next run replays finished stages
// from the cache and recomputes only the remainder (checkpoint/resume for
// free).
#pragma once

#include "flow/cache.hpp"
#include "flow/graph.hpp"
#include "util/exec_policy.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace flh {

/// One design to push through the graph.
struct DesignInput {
    std::string name;   ///< display name (not cache-relevant)
    std::string source; ///< netlist text (.bench) — cache-relevant
    std::string attrs;  ///< "k=v;k=v" design attributes — cache-relevant
};

struct FlowOptions {
    /// Scheduler workers. 1 = run inline on the calling thread;
    /// 0 = one per hardware thread. Deprecated alias of
    /// ExecPolicy::threads — resolution goes through schedExec().
    unsigned threads = 1;
    /// Inner fault-simulation budget handed to each stage (FaultSimOptions).
    unsigned sim_threads = 1;
    /// Result-cache configuration (directory, GC budgets, enabled flag) —
    /// the single CacheConfig threaded engine -> service -> serve.
    CacheConfig cache;
    /// A warm, shared cache handle. When set it is used as-is (`cache` is
    /// ignored); long-lived callers (FlowService, the drain loop) pass one
    /// handle across many runFlow calls so pins and stats accumulate.
    std::shared_ptr<FlowCache> cache_handle;

    /// Unified policy view of the scheduler width. Floor of one task per
    /// worker: resolveThreads(n_tasks) clamps the pool to the task count.
    [[nodiscard]] ExecPolicy schedExec() const noexcept { return ExecPolicy{threads, 1}; }
};

/// Outcome of one (design, stage) task.
struct StageRecord {
    std::string design;
    std::string stage;
    std::string key;    ///< content-addressed cache key (32 hex chars)
    std::string digest; ///< artifact content digest (32 hex chars)
    Artifact artifact;
    bool cache_hit = false;
    bool failed = false;
    std::string error;
    double wall_ms = 0.0;      ///< profile only — excluded from reportJson
    double work_items = 0.0;   ///< from meta "work_items" (e.g. faults graded)

    /// Deterministic report entry (design, stage, key, digest, metrics) —
    /// the shared writeJson(JsonWriter&) convention (see util/json.hpp).
    void writeJson(JsonWriter& w) const;

    /// Non-deterministic profile entry (cache verdict, wall time,
    /// items/sec). Kept separate so the determinism split stays explicit.
    void writeProfileJson(JsonWriter& w) const;

    /// Items/sec when the stage actually ran, else 0.
    [[nodiscard]] double itemsPerSecond() const noexcept {
        return (work_items > 0 && wall_ms > 0) ? work_items / (wall_ms / 1000.0) : 0.0;
    }
};

class RunReport {
public:
    RunReport() = default; ///< empty report (drain aggregation seeds one)
    RunReport(std::string code_version, std::vector<StageRecord> records, unsigned threads,
              unsigned sim_threads);

    [[nodiscard]] const std::vector<StageRecord>& records() const noexcept { return records_; }

    [[nodiscard]] std::size_t hits() const noexcept;
    [[nodiscard]] std::size_t misses() const noexcept;
    [[nodiscard]] std::size_t failures() const noexcept;
    [[nodiscard]] double hitRate() const noexcept; ///< hits / (hits + misses)
    [[nodiscard]] double totalWallMs() const noexcept;

    /// Largest "n_tests" meta across stages (the sweep's peak test count).
    [[nodiscard]] std::int64_t peakTests() const noexcept;

    /// Deterministic run report: per design/stage the cache key, artifact
    /// digest, and metrics. Bit-identical across thread counts and cache
    /// states. Ends with a newline.
    [[nodiscard]] std::string reportJson() const;

    /// Non-deterministic observability: wall time, cache hit/miss,
    /// items/sec per stage plus run totals. Ends with a newline.
    [[nodiscard]] std::string profileJson() const;

    /// Bench-trajectory export (schema flh.bench.flow/1): per-stage wall
    /// time and items/sec plus aggregate faults/sec over the stages that
    /// actually ran — the root-level BENCH_flow.json contract consumed by
    /// CI. Non-deterministic (timing). Ends with a newline.
    [[nodiscard]] std::string benchJson() const;

    /// Console view of the profile.
    [[nodiscard]] TextTable table() const;

private:
    std::string code_version_;
    std::vector<StageRecord> records_; ///< sorted by (design, stage order)
    unsigned threads_ = 1;
    unsigned sim_threads_ = 1;
};

/// Run `graph` over `designs`. Throws only on engine-level misuse (empty
/// graph); stage failures are recorded per task and poison exactly their
/// downstream cone.
[[nodiscard]] RunReport runFlow(const FlowGraph& graph, std::span<const DesignInput> designs,
                                const FlowOptions& opts = {});

} // namespace flh
