// Three-valued (0/1/X) logic, scalar and 64-way bit-parallel.
//
// The packed representation carries two planes: `v` (value bits) and `x`
// (unknown mask). A slot with x=1 is unknown regardless of its v bit; packed
// operators implement Kleene semantics (a controlling value dominates X).
// The same evaluation routines serve the event-driven simulator, the
// parallel-pattern fault simulator (64 patterns per word), and ATPG
// implication (1 pattern per word).
#pragma once

#include "cell/cells.hpp"

#include <cassert>
#include <cstdint>
#include <span>

namespace flh {

/// Scalar three-valued logic value.
enum class Logic : std::uint8_t { Zero = 0, One = 1, X = 2 };

[[nodiscard]] inline char toChar(Logic v) noexcept {
    switch (v) {
        case Logic::Zero: return '0';
        case Logic::One: return '1';
        case Logic::X: return 'X';
    }
    return '?';
}

[[nodiscard]] inline Logic negate(Logic v) noexcept {
    if (v == Logic::X) return Logic::X;
    return v == Logic::Zero ? Logic::One : Logic::Zero;
}

/// 64 packed three-valued slots.
struct PV {
    std::uint64_t v = 0; ///< value plane (meaningful where x = 0)
    std::uint64_t x = 0; ///< unknown plane

    [[nodiscard]] bool operator==(const PV&) const noexcept = default;

    [[nodiscard]] static PV all(Logic l) noexcept {
        switch (l) {
            case Logic::Zero: return {0, 0};
            case Logic::One: return {~0ULL, 0};
            case Logic::X: return {0, ~0ULL};
        }
        return {0, ~0ULL};
    }

    /// Value of slot `i` as scalar logic. `i` must be < 64: the shift is
    /// undefined behaviour beyond the word, so wider packed blocks address
    /// slots as (word, slot) pairs (PackedSim) and never reach here with a
    /// global slot index.
    [[nodiscard]] Logic get(unsigned i) const noexcept {
        assert(i < 64 && "PV slot index out of range; use (word, slot) addressing");
        const std::uint64_t bit = 1ULL << i;
        if (x & bit) return Logic::X;
        return (v & bit) ? Logic::One : Logic::Zero;
    }

    void set(unsigned i, Logic l) noexcept {
        assert(i < 64 && "PV slot index out of range; use (word, slot) addressing");
        const std::uint64_t bit = 1ULL << i;
        switch (l) {
            case Logic::Zero: v &= ~bit; x &= ~bit; break;
            case Logic::One: v |= bit; x &= ~bit; break;
            case Logic::X: v &= ~bit; x |= bit; break;
        }
    }
};

[[nodiscard]] PV pvNot(PV a) noexcept;
[[nodiscard]] PV pvAnd(PV a, PV b) noexcept;
[[nodiscard]] PV pvOr(PV a, PV b) noexcept;
[[nodiscard]] PV pvXor(PV a, PV b) noexcept;
[[nodiscard]] PV pvMux(PV a, PV b, PV s) noexcept; ///< s ? b : a

/// Evaluate a combinational cell function over packed inputs.
/// `ins` must have the cell's arity. Dff/Sdff are not combinational and
/// must not be passed here.
[[nodiscard]] PV evalCell(CellFn fn, std::span<const PV> ins) noexcept;

/// Scalar convenience wrapper around evalCell.
[[nodiscard]] Logic evalCellScalar(CellFn fn, std::span<const Logic> ins) noexcept;

/// Two-valued fast path: evaluate with plain 64-bit planes (no X tracking).
[[nodiscard]] std::uint64_t evalCell2(CellFn fn, std::span<const std::uint64_t> ins) noexcept;

} // namespace flh
