// AVX2 build of the packed gate-evaluation kernel: 4 plane words (256
// pattern slots) per vector op. This translation unit is compiled with
// -mavx2 (see src/cell/CMakeLists.txt) and only ever *called* after the
// runtime cpuid check in logic_block.cpp, so the rest of the library keeps
// the baseline ISA.
#include "cell/logic_block_impl.hpp"

#include <immintrin.h>

namespace flh::detail {

namespace {

struct Avx2Batch {
    static constexpr unsigned kWords = 4;
    __m256i r;

    static Avx2Batch load(const std::uint64_t* p) noexcept {
        return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
    }
    void store(std::uint64_t* p) const noexcept {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), r);
    }
    static Avx2Batch ones() noexcept { return {_mm256_set1_epi64x(-1)}; }
    static Avx2Batch zeros() noexcept { return {_mm256_setzero_si256()}; }

    friend Avx2Batch operator&(Avx2Batch a, Avx2Batch b) noexcept {
        return {_mm256_and_si256(a.r, b.r)};
    }
    friend Avx2Batch operator|(Avx2Batch a, Avx2Batch b) noexcept {
        return {_mm256_or_si256(a.r, b.r)};
    }
    friend Avx2Batch operator^(Avx2Batch a, Avx2Batch b) noexcept {
        return {_mm256_xor_si256(a.r, b.r)};
    }
    friend Avx2Batch operator~(Avx2Batch a) noexcept {
        return {_mm256_xor_si256(a.r, _mm256_set1_epi64x(-1))};
    }
};

} // namespace

void evalCellBlockAvx2(CellFn fn, const std::uint64_t* const* in_v,
                       const std::uint64_t* const* in_x, std::size_t n_ins,
                       std::uint64_t* out_v, std::uint64_t* out_x,
                       unsigned words) noexcept {
    const unsigned main = words & ~(Avx2Batch::kWords - 1);
    if (main) evalBlockT<Avx2Batch>(fn, in_v, in_x, n_ins, out_v, out_x, 0, main);
    if (words != main)
        evalBlockT<ScalarBatch>(fn, in_v, in_x, n_ins, out_v, out_x, main, words);
}

} // namespace flh::detail
