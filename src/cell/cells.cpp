#include "cell/cells.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace flh {

const char* toString(CellFn fn) noexcept {
    switch (fn) {
        case CellFn::Buf: return "BUF";
        case CellFn::Inv: return "NOT";
        case CellFn::And: return "AND";
        case CellFn::Nand: return "NAND";
        case CellFn::Or: return "OR";
        case CellFn::Nor: return "NOR";
        case CellFn::Xor: return "XOR";
        case CellFn::Xnor: return "XNOR";
        case CellFn::Aoi21: return "AOI21";
        case CellFn::Aoi22: return "AOI22";
        case CellFn::Oai21: return "OAI21";
        case CellFn::Oai22: return "OAI22";
        case CellFn::Mux2: return "MUX2";
        case CellFn::Dff: return "DFF";
        case CellFn::Sdff: return "SDFF";
    }
    return "?";
}

bool isSequential(CellFn fn) noexcept {
    return fn == CellFn::Dff || fn == CellFn::Sdff;
}

double Cell::areaUm2(const Tech& t) const noexcept {
    double units = 0.0;
    for (const Xtor& x : xtors) units += x.w_units;
    return units * t.minDeviceAreaUm2();
}

double Cell::pinCapFf(const Tech& t, int pin) const noexcept {
    double w = 0.0;
    for (const Xtor& x : xtors)
        if (x.input_pin == pin) w += x.w_units;
    return t.gateCapFf(w);
}

double Cell::outputParasiticFf(const Tech& t) const noexcept {
    double w = 0.0;
    for (const Xtor& x : xtors)
        if (x.at_output) w += x.w_units;
    return t.diffCapFf(w);
}

double Cell::leakageNw(const Tech& t) const noexcept {
    return t.offCurrentNa(leak_w_eff) * t.vdd;
}

Library::Library(Tech tech) : tech_(tech) {}

CellId Library::add(Cell cell) {
    for (const Cell& c : cells_) {
        if (c.name == cell.name) throw std::invalid_argument("duplicate cell name: " + cell.name);
    }
    cells_.push_back(std::move(cell));
    return static_cast<CellId>(cells_.size() - 1);
}

CellId Library::find(CellFn fn, int n_inputs) const {
    for (CellId i = 0; i < cells_.size(); ++i) {
        if (cells_[i].fn == fn && cells_[i].n_inputs == n_inputs) return i;
    }
    throw std::out_of_range(std::string("no cell for fn ") + toString(fn) + "/" +
                            std::to_string(n_inputs));
}

bool Library::has(CellFn fn, int n_inputs) const noexcept {
    for (const Cell& c : cells_) {
        if (c.fn == fn && c.n_inputs == n_inputs) return true;
    }
    return false;
}

CellId Library::findByName(const std::string& name) const {
    for (CellId i = 0; i < cells_.size(); ++i) {
        if (cells_[i].name == name) return i;
    }
    throw std::out_of_range("no cell named " + name);
}

namespace {

// Helpers to assemble transistor lists. Widths in minimum-width units.

void addPair(std::vector<Xtor>& v, double wp, double wn, int pin, bool at_output) {
    v.push_back(Xtor{true, wp, pin, at_output});
    v.push_back(Xtor{false, wn, pin, at_output});
}

// Simple inverter: PMOS sized mobility_ratio x NMOS.
Cell makeInv(const Tech& t, const std::string& name, double drive) {
    Cell c;
    c.name = name;
    c.fn = CellFn::Inv;
    c.n_inputs = 1;
    const double wn = drive;
    const double wp = drive * t.mobility_ratio;
    addPair(c.xtors, wp, wn, 0, true);
    c.r_out_kohm = t.r_on_n_kohm / wn; // pull-up matches via mobility sizing
    c.leak_w_eff = 0.5 * (wp + wn);
    return c;
}

Cell makeBuf(const Tech& t, const std::string& name, double drive) {
    Cell c;
    c.name = name;
    c.fn = CellFn::Buf;
    c.n_inputs = 1;
    // First (input) inverter is half-size; second provides the drive.
    addPair(c.xtors, t.mobility_ratio * drive / 2.0, drive / 2.0, 0, false);
    addPair(c.xtors, t.mobility_ratio * drive, drive, -1, true);
    c.r_out_kohm = t.r_on_n_kohm / drive;
    c.leak_w_eff = 0.5 * (t.mobility_ratio + 1.0) * 1.5 * drive;
    c.c_internal_ff = t.gateCapFf((t.mobility_ratio + 1.0) * drive) +
                      t.diffCapFf((t.mobility_ratio + 1.0) * drive / 2.0);
    return c;
}

// NANDn: n parallel PMOS (wp each), n series NMOS (wn each, upsized n-fold to
// keep pull-down drive).
Cell makeNand(const Tech& t, int n) {
    Cell c;
    c.name = "NAND" + std::to_string(n);
    c.fn = CellFn::Nand;
    c.n_inputs = n;
    const double wp = t.mobility_ratio;
    const double wn = static_cast<double>(n);
    for (int i = 0; i < n; ++i) {
        c.xtors.push_back(Xtor{true, wp, i, true});
        // Only the top NMOS of the stack sits on the output node.
        c.xtors.push_back(Xtor{false, wn, i, i == 0});
    }
    c.r_out_kohm = t.r_on_n_kohm / t.mobility_ratio * t.mobility_ratio; // = r_on_n (worst: single PMOS up / full stack down)
    // Series NMOS stack leaks ~stack_factor; parallel PMOS leak fully.
    c.leak_w_eff = 0.5 * (n * wp + t.stack_factor_off * wn);
    return c;
}

// NORn: n series PMOS (upsized), n parallel NMOS.
Cell makeNor(const Tech& t, int n) {
    Cell c;
    c.name = "NOR" + std::to_string(n);
    c.fn = CellFn::Nor;
    c.n_inputs = n;
    const double wp = t.mobility_ratio * static_cast<double>(n);
    const double wn = 1.0;
    for (int i = 0; i < n; ++i) {
        c.xtors.push_back(Xtor{true, wp, i, i == 0});
        c.xtors.push_back(Xtor{false, wn, i, true});
    }
    c.r_out_kohm = t.r_on_n_kohm; // single min NMOS pull-down is the weak edge
    c.leak_w_eff = 0.5 * (t.stack_factor_off * wp + n * wn);
    return c;
}

// ANDn / ORn: NANDn/NORn followed by an inverter (the usual mapped form).
Cell makeAndOr(const Tech& t, CellFn fn, int n) {
    Cell inner = (fn == CellFn::And) ? makeNand(t, n) : makeNor(t, n);
    Cell c;
    c.name = std::string(fn == CellFn::And ? "AND" : "OR") + std::to_string(n);
    c.fn = fn;
    c.n_inputs = n;
    c.xtors = inner.xtors;
    for (Xtor& x : c.xtors) x.at_output = false; // inner node is internal now
    const double drive = 2.0;
    addPair(c.xtors, t.mobility_ratio * drive, drive, -1, true);
    c.r_out_kohm = t.r_on_n_kohm / drive;
    c.leak_w_eff = inner.leak_w_eff + 0.5 * (t.mobility_ratio + 1.0) * drive;
    // Internal node: inner gate output drives the output inverter.
    c.c_internal_ff = t.gateCapFf((t.mobility_ratio + 1.0) * drive) +
                      t.diffCapFf(3.0);
    return c;
}

// Static CMOS XOR2/XNOR2 (12T mapped cell).
Cell makeXor(const Tech& t, CellFn fn) {
    Cell c;
    c.name = (fn == CellFn::Xor) ? "XOR2" : "XNOR2";
    c.fn = fn;
    c.n_inputs = 2;
    // Two input inverters + 2x2 complementary branches; modelled as 12
    // devices with both inputs loading 3 device gates each.
    for (int pin = 0; pin < 2; ++pin) {
        addPair(c.xtors, t.mobility_ratio, 1.0, pin, false);       // input inverter
        c.xtors.push_back(Xtor{true, 2.0 * t.mobility_ratio, pin, true});
        c.xtors.push_back(Xtor{false, 2.0, pin, true});
    }
    c.r_out_kohm = t.r_on_n_kohm / 1.0; // 2-series stacks, upsized 2x
    c.leak_w_eff = 0.5 * (2.0 * (t.mobility_ratio + 1.0)) +
                   0.5 * t.stack_factor_off * 2.0 * (t.mobility_ratio + 1.0) * 2.0;
    c.c_internal_ff = t.gateCapFf(t.mobility_ratio + 1.0);
    return c;
}

// AOI21 = !((a&b)|c): PMOS c in series with (a||b); NMOS (a series b) || c.
Cell makeAoi21(const Tech& t) {
    Cell c;
    c.name = "AOI21";
    c.fn = CellFn::Aoi21;
    c.n_inputs = 3;
    const double wp = 2.0 * t.mobility_ratio; // 2-series PMOS upsized
    c.xtors.push_back(Xtor{true, wp, 0, false});
    c.xtors.push_back(Xtor{true, wp, 1, false});
    c.xtors.push_back(Xtor{true, wp, 2, true});
    c.xtors.push_back(Xtor{false, 2.0, 0, true});
    c.xtors.push_back(Xtor{false, 2.0, 1, false});
    c.xtors.push_back(Xtor{false, 1.0, 2, true});
    c.r_out_kohm = t.r_on_n_kohm;
    c.leak_w_eff = 0.5 * (t.stack_factor_off * 3.0 * wp + 2.0 * t.stack_factor_off + 1.0);
    return c;
}

Cell makeAoi22(const Tech& t) {
    Cell c = makeAoi21(t);
    c.name = "AOI22";
    c.fn = CellFn::Aoi22;
    c.n_inputs = 4;
    c.xtors.clear();
    const double wp = 2.0 * t.mobility_ratio;
    for (int pin = 0; pin < 4; ++pin) {
        c.xtors.push_back(Xtor{true, wp, pin, pin >= 2});
        c.xtors.push_back(Xtor{false, 2.0, pin, pin == 0 || pin == 2});
    }
    c.r_out_kohm = t.r_on_n_kohm;
    c.leak_w_eff = 0.5 * (t.stack_factor_off * 4.0 * wp + 2.0 * t.stack_factor_off * 4.0);
    return c;
}

Cell makeOai21(const Tech& t) {
    Cell c;
    c.name = "OAI21";
    c.fn = CellFn::Oai21;
    c.n_inputs = 3;
    const double wp = 2.0 * t.mobility_ratio;
    c.xtors.push_back(Xtor{true, wp, 0, true});
    c.xtors.push_back(Xtor{true, wp, 1, true});
    c.xtors.push_back(Xtor{true, wp, 2, false});
    c.xtors.push_back(Xtor{false, 2.0, 0, true});
    c.xtors.push_back(Xtor{false, 2.0, 1, true});
    c.xtors.push_back(Xtor{false, 2.0, 2, false});
    c.r_out_kohm = t.r_on_n_kohm;
    c.leak_w_eff = 0.5 * (t.stack_factor_off * 3.0 * wp + t.stack_factor_off * 6.0);
    return c;
}

Cell makeOai22(const Tech& t) {
    Cell c = makeOai21(t);
    c.name = "OAI22";
    c.fn = CellFn::Oai22;
    c.n_inputs = 4;
    c.xtors.clear();
    const double wp = 2.0 * t.mobility_ratio;
    for (int pin = 0; pin < 4; ++pin) {
        c.xtors.push_back(Xtor{true, wp, pin, pin < 2});
        c.xtors.push_back(Xtor{false, 2.0, pin, pin == 0 || pin == 2});
    }
    c.r_out_kohm = t.r_on_n_kohm;
    c.leak_w_eff = 0.5 * (t.stack_factor_off * 4.0 * wp + t.stack_factor_off * 8.0);
    return c;
}

// Restoring transmission-gate MUX2 (select inverter + 2 TGs + output inverter).
Cell makeMux2(const Tech& t) {
    Cell c;
    c.name = "MUX2";
    c.fn = CellFn::Mux2;
    c.n_inputs = 3; // a, b, s
    addPair(c.xtors, 1.5, 1.5, 0, false); // TG for a (gate caps modelled on data pins)
    addPair(c.xtors, 1.5, 1.5, 1, false); // TG for b
    addPair(c.xtors, t.mobility_ratio, 1.0, 2, false); // select inverter
    addPair(c.xtors, 2.0 * t.mobility_ratio, 2.0, -1, true); // output inverter
    c.r_out_kohm = t.r_on_n_kohm / 2.0;
    c.leak_w_eff = 0.5 * (3.0 + t.mobility_ratio + 1.0 + 2.0 * (t.mobility_ratio + 1.0));
    c.c_internal_ff = t.gateCapFf(2.0 * (t.mobility_ratio + 1.0)) + t.diffCapFf(6.0);
    return c;
}

// Master-slave DFF: 2 latches (TG + cross-coupled inverters each) + local
// clock inverter + output drive. ~24 devices.
Cell makeDff(const Tech& t, bool scan) {
    Cell c;
    c.name = scan ? "SDFF" : "DFF";
    c.fn = scan ? CellFn::Sdff : CellFn::Dff;
    c.n_inputs = scan ? 3 : 1; // D (+ SI, SE for scan)
    const double tg = 1.5;
    // Master latch.
    addPair(c.xtors, tg, tg, 0, false);              // input TG (D pin load)
    addPair(c.xtors, t.mobility_ratio, 1.0, -1, false); // fwd inv
    addPair(c.xtors, 1.0, 1.0, -1, false);           // keeper inv
    addPair(c.xtors, 1.0, 1.0, -1, false);           // keeper TG
    // Slave latch.
    addPair(c.xtors, tg, tg, -1, false);
    addPair(c.xtors, t.mobility_ratio, 1.0, -1, false);
    addPair(c.xtors, 1.0, 1.0, -1, false);
    addPair(c.xtors, 1.0, 1.0, -1, false);
    // Clock inverters (local CKB generation).
    addPair(c.xtors, t.mobility_ratio, 1.0, -1, false);
    addPair(c.xtors, t.mobility_ratio, 1.0, -1, false);
    // Output drive inverter.
    addPair(c.xtors, 2.0 * t.mobility_ratio, 2.0, -1, true);
    if (scan) {
        // Scan-input mux: 2 TGs + select inverter (SI = pin 1, SE = pin 2).
        addPair(c.xtors, tg, tg, 1, false);
        addPair(c.xtors, tg, tg, 2, false);
        addPair(c.xtors, t.mobility_ratio, 1.0, 2, false);
    }
    c.r_out_kohm = t.r_on_n_kohm / 2.0;
    double total = 0.0;
    for (const Xtor& x : c.xtors) total += x.w_units;
    c.leak_w_eff = 0.35 * total; // internal stacks reduce average leakage
    // Internal nodes that toggle on a clocked capture: master+slave+clock.
    c.c_internal_ff = t.gateCapFf(4.0 * (t.mobility_ratio + 1.0)) + t.diffCapFf(8.0);
    return c;
}

} // namespace

Library makeDefaultLibrary(const Tech& tech) {
    Library lib(tech);
    lib.add(makeInv(tech, "NOT1", 1.0));
    lib.add(makeBuf(tech, "BUF1", 2.0));
    for (int n = 2; n <= 4; ++n) lib.add(makeNand(tech, n));
    for (int n = 2; n <= 4; ++n) lib.add(makeNor(tech, n));
    for (int n = 2; n <= 4; ++n) lib.add(makeAndOr(tech, CellFn::And, n));
    for (int n = 2; n <= 4; ++n) lib.add(makeAndOr(tech, CellFn::Or, n));
    lib.add(makeXor(tech, CellFn::Xor));
    lib.add(makeXor(tech, CellFn::Xnor));
    lib.add(makeAoi21(tech));
    lib.add(makeAoi22(tech));
    lib.add(makeOai21(tech));
    lib.add(makeOai22(tech));
    lib.add(makeMux2(tech));
    lib.add(makeDff(tech, false));
    lib.add(makeDff(tech, true));
    return lib;
}

} // namespace flh
