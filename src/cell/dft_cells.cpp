#include "cell/dft_cells.hpp"

namespace flh {

namespace {
// Width of a complementary inverter of NMOS width w (PMOS mobility-sized).
double invWidth(const Tech& t, double w) noexcept { return w * (1.0 + t.mobility_ratio); }
} // namespace

// ----------------------------------------------------------------- HoldLatch

double HoldLatchSpec::totalWidthUnits(const Tech& t) const noexcept {
    return 2.0 * tg_w                 // input TG
           + invWidth(t, fwd_drive)   // forward inverter
           + invWidth(t, keeper_w)    // feedback inverter
           + 2.0 * keeper_w           // feedback TG
           + 2.0 * invWidth(t, clkbuf_w); // HOLD / HOLD_B local buffers
}

double HoldLatchSpec::areaUm2(const Tech& t) const noexcept {
    return totalWidthUnits(t) * t.minDeviceAreaUm2();
}

double HoldLatchSpec::inputCapFf(const Tech& t) const noexcept {
    // The scan-FF output sees the input TG diffusion (source side).
    return t.diffCapFf(2.0 * tg_w);
}

double HoldLatchSpec::seriesDelayPs(const Tech& t, double load_ff) const noexcept {
    // TG pass + forward inverter drive.
    const double r_tg = t.r_on_n_kohm / tg_w;
    const double c_mid = t.gateCapFf(invWidth(t, fwd_drive)) + t.diffCapFf(2.0 * tg_w + keeper_w);
    const double r_inv = t.r_on_n_kohm / fwd_drive;
    const double c_out = load_ff + t.diffCapFf(invWidth(t, fwd_drive));
    return r_tg * c_mid + r_inv * c_out;
}

double HoldLatchSpec::switchedCapFf(const Tech& t) const noexcept {
    // Per input toggle (transparent mode) the internal latch node and the
    // feedback inverter input both swing; the output node itself is counted
    // by the caller as net capacitance. The input TG additionally has to
    // overpower the enabled feedback keeper on every transition — a ratioed
    // fight whose crowbar charge is modelled as an equivalent switched cap.
    return t.gateCapFf(invWidth(t, fwd_drive) + invWidth(t, keeper_w)) +
           t.diffCapFf(2.0 * tg_w + 2.0 * keeper_w) +
           2.0 * t.gateCapFf(invWidth(t, keeper_w));
}

double HoldLatchSpec::leakageNw(const Tech& t) const noexcept {
    return t.offCurrentNa(0.5 * totalWidthUnits(t)) * t.vdd * t.hvt_leak_factor;
}

// ------------------------------------------------------------------- MuxHold

double MuxHoldSpec::totalWidthUnits(const Tech& t) const noexcept {
    return 2.0 * 2.0 * tg_w            // two TGs
           + invWidth(t, sel_inv_w)    // select inverter
           + invWidth(t, out_drive)    // restoring inverter
           + invWidth(t, out_drive)    // output drive inverter
           + invWidth(t, fb_buf_w);    // feedback buffer
}

double MuxHoldSpec::areaUm2(const Tech& t) const noexcept {
    return totalWidthUnits(t) * t.minDeviceAreaUm2();
}

double MuxHoldSpec::inputCapFf(const Tech& t) const noexcept {
    return t.diffCapFf(2.0 * tg_w);
}

double MuxHoldSpec::seriesDelayPs(const Tech& t, double load_ff) const noexcept {
    // TG pass + restoring inverter + output drive inverter: one stage more
    // than the hold latch, hence the paper's "MUX-based method shows the
    // largest increase" in delay.
    const double r_tg = t.r_on_n_kohm / tg_w;
    const double c_mid1 = t.gateCapFf(invWidth(t, out_drive)) + t.diffCapFf(4.0 * tg_w);
    const double r_inv = t.r_on_n_kohm / out_drive;
    const double c_mid2 = t.gateCapFf(invWidth(t, out_drive)) + t.diffCapFf(invWidth(t, out_drive));
    const double c_out = load_ff + t.diffCapFf(invWidth(t, out_drive));
    return r_tg * c_mid1 + r_inv * c_mid2 + r_inv * c_out;
}

double MuxHoldSpec::switchedCapFf(const Tech& t) const noexcept {
    return t.gateCapFf(invWidth(t, out_drive) * 2.0) + t.diffCapFf(4.0 * tg_w + invWidth(t, fb_buf_w));
}

double MuxHoldSpec::leakageNw(const Tech& t) const noexcept {
    return t.offCurrentNa(0.5 * totalWidthUnits(t)) * t.vdd * t.hvt_leak_factor;
}

// ----------------------------------------------------------------- FlhGating

double FlhGatingSpec::totalWidthUnits(const Tech& t, double drive_units) const noexcept {
    return sleep_w * drive_units * (1.0 + t.mobility_ratio) // PMOS header + NMOS footer
           + 2.0 * invWidth(t, keeper_w)                    // INV1, INV2
           + 2.0 * tg_w;                                    // keeper TG
}

double FlhGatingSpec::areaUm2(const Tech& t, double drive_units) const noexcept {
    return totalWidthUnits(t, drive_units) * t.minDeviceAreaUm2();
}

double FlhGatingSpec::seriesResistanceKohm(double r_out_kohm) const noexcept {
    return r_out_kohm / sleep_w;
}

double FlhGatingSpec::addedDelayPs(const Tech& t, double r_out_kohm,
                                   double load_ff) const noexcept {
    return t.virtual_rail_factor * seriesResistanceKohm(r_out_kohm) *
           (load_ff + outputLoadFf(t));
}

double FlhGatingSpec::outputLoadFf(const Tech& t) const noexcept {
    return t.gateCapFf(invWidth(t, keeper_w)) + t.diffCapFf(2.0 * tg_w);
}

double FlhGatingSpec::switchedCapFf(const Tech& t) const noexcept {
    return t.gateCapFf(invWidth(t, keeper_w)) + t.diffCapFf(invWidth(t, keeper_w));
}

double FlhGatingSpec::addedLeakageNw(const Tech& t) const noexcept {
    // Only the keeper devices add leakage paths of their own; the sleep pair
    // is ON in normal mode (its effect is the activeLeakFactor applied to
    // the gated gate), and the keeper is built high-Vt.
    const double keeper_units = 2.0 * invWidth(t, keeper_w) + 2.0 * tg_w;
    return t.offCurrentNa(0.5 * keeper_units) * t.vdd * t.hvt_leak_factor;
}

double FlhGatingSpec::activeLeakFactor(const Tech& t) const noexcept {
    return t.stack_factor_active;
}

double FlhGatingSpec::sleepLeakFactor(const Tech& t) const noexcept {
    return t.stack_factor_off / 2.0;
}

} // namespace flh
