// DFT holding hardware: the three alternatives the paper compares.
//
//  * HoldLatchSpec  — enhanced scan's hold latch (paper Fig. 1b / Fig. 6a):
//                     a transmission-gate latch inserted between every scan
//                     flip-flop and the combinational logic. Transparent in
//                     normal mode but always in the stimulus path.
//  * MuxHoldSpec    — the MUX-based holding logic (Fig. 1b / Fig. 6b, after
//                     Zhang et al. [13]): a 2:1 MUX per scan flip-flop that
//                     recirculates the held value.
//  * FlhGatingSpec  — the paper's contribution (Fig. 3): per *first-level
//                     gate*, a PMOS/NMOS sleep pair gating VDD/GND plus a
//                     keeper (two minimum inverters joined by a transmission
//                     gate) that holds the gate output in sleep mode.
//
// Each spec exposes exactly the quantities the evaluation needs: active area
// (sum W*L), capacitive loading, series delay or drive degradation, switched
// capacitance in normal mode, and leakage. All derive from transistor-level
// sizing so the ablation bench can sweep them.
#pragma once

#include "cell/tech.hpp"

namespace flh {

/// Enhanced-scan hold latch (inserted at a scan-FF output).
struct HoldLatchSpec {
    // Sizing in minimum-width units.
    double tg_w = 2.0;       ///< input transmission gate
    double fwd_drive = 3.0;  ///< forward inverter (drives the comb fanout)
    double keeper_w = 1.5;   ///< feedback inverter + feedback TG
    double clkbuf_w = 2.25;  ///< local HOLD/HOLD_B buffering

    [[nodiscard]] double totalWidthUnits(const Tech& t) const noexcept;
    [[nodiscard]] double areaUm2(const Tech& t) const noexcept;

    /// Capacitance the latch presents at the scan-FF output (fF).
    [[nodiscard]] double inputCapFf(const Tech& t) const noexcept;

    /// Series delay added in the stimulus path in normal mode (ps),
    /// given the downstream load it must drive (fF).
    [[nodiscard]] double seriesDelayPs(const Tech& t, double load_ff) const noexcept;

    /// Internal capacitance switched per input toggle in normal mode (fF).
    [[nodiscard]] double switchedCapFf(const Tech& t) const noexcept;

    /// Idle subthreshold leakage (nW).
    [[nodiscard]] double leakageNw(const Tech& t) const noexcept;
};

/// MUX-based holding logic (inserted at a scan-FF output).
struct MuxHoldSpec {
    double tg_w = 2.0;       ///< two transmission gates
    double out_drive = 2.67; ///< output inverter pair (restores + drives fanout)
    double sel_inv_w = 1.0;  ///< select inverter
    double fb_buf_w = 0.67;  ///< feedback buffer for the recirculation path

    [[nodiscard]] double totalWidthUnits(const Tech& t) const noexcept;
    [[nodiscard]] double areaUm2(const Tech& t) const noexcept;
    [[nodiscard]] double inputCapFf(const Tech& t) const noexcept;

    /// Series delay in normal mode (ps). The MUX path is TG + 2 restoring
    /// inverters, which is why the paper finds it slower than the latch.
    [[nodiscard]] double seriesDelayPs(const Tech& t, double load_ff) const noexcept;

    [[nodiscard]] double switchedCapFf(const Tech& t) const noexcept;
    [[nodiscard]] double leakageNw(const Tech& t) const noexcept;
};

/// FLH gating hardware (inserted in each unique first-level gate).
///
/// The sleep pair is sized *relative to the gated gate's drive strength*
/// ("the size of the supply gating transistors can be optimized for delay
/// under the given area constraint", Section II): a gate with drive D gets
/// sleep devices of width sleep_w * D, so the relative drive degradation is
/// uniform. The drive-1 methods below give the nominal (minimum-drive)
/// values; callers with a concrete gated cell pass its drive_units
/// (= r_on_n / cell r_out).
struct FlhGatingSpec {
    double sleep_w = 1.75;  ///< per unit of gated-gate drive, each device
    double keeper_w = 0.75; ///< the two keeper inverters (INV1, INV2)
    double tg_w = 0.5;      ///< keeper transmission gate

    [[nodiscard]] double totalWidthUnits(const Tech& t, double drive_units = 1.0) const noexcept;
    [[nodiscard]] double areaUm2(const Tech& t, double drive_units = 1.0) const noexcept;

    /// Extra series resistance the ON sleep pair adds to a gated gate of
    /// output resistance `r_out_kohm` (kOhm). Proportional sizing makes the
    /// relative degradation uniform: R_sleep = r_out / sleep_w.
    [[nodiscard]] double seriesResistanceKohm(double r_out_kohm) const noexcept;

    /// Delay added to a gated gate of output resistance `r_out_kohm`
    /// driving `load_ff` (ps), including the virtual-rail mitigation factor
    /// and the keeper's extra load.
    [[nodiscard]] double addedDelayPs(const Tech& t, double r_out_kohm,
                                      double load_ff) const noexcept;

    /// Extra load on the gated gate's output: keeper INV1 gate cap + TG
    /// diffusion (fF). This is the paper's "only source of power overhead".
    [[nodiscard]] double outputLoadFf(const Tech& t) const noexcept;

    /// Capacitance switched inside the keeper per output toggle (fF):
    /// INV1 output follows the gate output in normal mode (TG open, loop
    /// broken), so only INV1's output node switches.
    [[nodiscard]] double switchedCapFf(const Tech& t) const noexcept;

    /// Leakage of the added devices themselves (nW), normal mode.
    [[nodiscard]] double addedLeakageNw(const Tech& t) const noexcept;

    /// Multiplier (< 1) on the gated gate's own leakage in normal mode:
    /// the ON sleep devices act as a stack (active leakage reduction,
    /// Section III's explanation for s13207).
    [[nodiscard]] double activeLeakFactor(const Tech& t) const noexcept;

    /// Multiplier (<< 1) on the gated gate's leakage in sleep mode.
    [[nodiscard]] double sleepLeakFactor(const Tech& t) const noexcept;
};

} // namespace flh
