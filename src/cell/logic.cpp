#include "cell/logic.hpp"

#include <cassert>

namespace flh {

PV pvNot(PV a) noexcept { return {~a.v & ~a.x, a.x}; }

PV pvAnd(PV a, PV b) noexcept {
    // Definite 0 if either side is definite 0; definite 1 if both definite 1.
    const std::uint64_t zero = (~a.v & ~a.x) | (~b.v & ~b.x);
    const std::uint64_t one = (a.v & ~a.x) & (b.v & ~b.x);
    return {one, ~zero & ~one};
}

PV pvOr(PV a, PV b) noexcept {
    const std::uint64_t one = (a.v & ~a.x) | (b.v & ~b.x);
    const std::uint64_t zero = (~a.v & ~a.x) & (~b.v & ~b.x);
    return {one, ~zero & ~one};
}

PV pvXor(PV a, PV b) noexcept {
    const std::uint64_t x = a.x | b.x;
    return {(a.v ^ b.v) & ~x, x};
}

PV pvMux(PV a, PV b, PV s) noexcept {
    // Known select picks a side; unknown select is known only where a == b
    // and both are known.
    const PV pick = pvOr(pvAnd(pvNot(s), a), pvAnd(s, b));
    const std::uint64_t agree = ~a.x & ~b.x & ~(a.v ^ b.v);
    const std::uint64_t v = (pick.v & ~pick.x) | (s.x & agree & a.v);
    const std::uint64_t x = pick.x & ~(s.x & agree);
    return {v & ~x, x};
}

PV evalCell(CellFn fn, std::span<const PV> ins) noexcept {
    switch (fn) {
        case CellFn::Buf:
            assert(ins.size() == 1);
            return ins[0];
        case CellFn::Inv:
            assert(ins.size() == 1);
            return pvNot(ins[0]);
        case CellFn::And:
        case CellFn::Nand: {
            PV r = PV::all(Logic::One);
            for (const PV& in : ins) r = pvAnd(r, in);
            return fn == CellFn::And ? r : pvNot(r);
        }
        case CellFn::Or:
        case CellFn::Nor: {
            PV r = PV::all(Logic::Zero);
            for (const PV& in : ins) r = pvOr(r, in);
            return fn == CellFn::Or ? r : pvNot(r);
        }
        case CellFn::Xor:
        case CellFn::Xnor: {
            PV r = PV::all(Logic::Zero);
            for (const PV& in : ins) r = pvXor(r, in);
            return fn == CellFn::Xor ? r : pvNot(r);
        }
        case CellFn::Aoi21:
            assert(ins.size() == 3);
            return pvNot(pvOr(pvAnd(ins[0], ins[1]), ins[2]));
        case CellFn::Aoi22:
            assert(ins.size() == 4);
            return pvNot(pvOr(pvAnd(ins[0], ins[1]), pvAnd(ins[2], ins[3])));
        case CellFn::Oai21:
            assert(ins.size() == 3);
            return pvNot(pvAnd(pvOr(ins[0], ins[1]), ins[2]));
        case CellFn::Oai22:
            assert(ins.size() == 4);
            return pvNot(pvAnd(pvOr(ins[0], ins[1]), pvOr(ins[2], ins[3])));
        case CellFn::Mux2:
            assert(ins.size() == 3);
            return pvMux(ins[0], ins[1], ins[2]);
        case CellFn::Dff:
        case CellFn::Sdff:
            assert(false && "sequential cell in combinational eval");
            return PV::all(Logic::X);
    }
    return PV::all(Logic::X);
}

Logic evalCellScalar(CellFn fn, std::span<const Logic> ins) noexcept {
    PV packed[8];
    assert(ins.size() <= 8);
    for (std::size_t i = 0; i < ins.size(); ++i) packed[i] = PV::all(ins[i]);
    const PV r = evalCell(fn, std::span<const PV>(packed, ins.size()));
    return r.get(0);
}

std::uint64_t evalCell2(CellFn fn, std::span<const std::uint64_t> ins) noexcept {
    switch (fn) {
        case CellFn::Buf:
            return ins[0];
        case CellFn::Inv:
            return ~ins[0];
        case CellFn::And:
        case CellFn::Nand: {
            std::uint64_t r = ~0ULL;
            for (std::uint64_t in : ins) r &= in;
            return fn == CellFn::And ? r : ~r;
        }
        case CellFn::Or:
        case CellFn::Nor: {
            std::uint64_t r = 0;
            for (std::uint64_t in : ins) r |= in;
            return fn == CellFn::Or ? r : ~r;
        }
        case CellFn::Xor:
        case CellFn::Xnor: {
            std::uint64_t r = 0;
            for (std::uint64_t in : ins) r ^= in;
            return fn == CellFn::Xor ? r : ~r;
        }
        case CellFn::Aoi21:
            return ~((ins[0] & ins[1]) | ins[2]);
        case CellFn::Aoi22:
            return ~((ins[0] & ins[1]) | (ins[2] & ins[3]));
        case CellFn::Oai21:
            return ~((ins[0] | ins[1]) & ins[2]);
        case CellFn::Oai22:
            return ~((ins[0] | ins[1]) & (ins[2] | ins[3]));
        case CellFn::Mux2:
            return (~ins[2] & ins[0]) | (ins[2] & ins[1]);
        case CellFn::Dff:
        case CellFn::Sdff:
            assert(false && "sequential cell in combinational eval");
            return 0;
    }
    return 0;
}

} // namespace flh
