// Standard-cell library: logic functions, transistor-level composition,
// area / capacitance / drive data for every cell used by the netlists.
//
// The library mirrors what the paper gets from the LEDA 0.25 um library after
// technology mapping ("the library contains complex gate types e.g. aoi
// (and-or-invert) and mux"), scaled to the 70 nm Tech. Each cell carries its
// transistor list so active area (sum of W*L) and pin capacitances are derived
// from one consistent description rather than free-floating constants.
#pragma once

#include "cell/tech.hpp"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace flh {

/// Logic function of a combinational cell (or the sequential DFF/SDFF).
enum class CellFn : std::uint8_t {
    Buf,
    Inv,
    And,
    Nand,
    Or,
    Nor,
    Xor,
    Xnor,
    Aoi21, // !((a & b) | c)
    Aoi22, // !((a & b) | (c & d))
    Oai21, // !((a | b) & c)
    Oai22, // !((a | b) & (c | d))
    Mux2,  // s ? b : a   (inputs ordered a, b, s)
    Dff,   // D flip-flop (sequential; handled outside combinational eval)
    Sdff,  // scan D flip-flop (DFF + scan input mux)
};

[[nodiscard]] const char* toString(CellFn fn) noexcept;

/// True for the sequential elements (Dff / Sdff).
[[nodiscard]] bool isSequential(CellFn fn) noexcept;

/// Hard ceiling on combinational gate arity. The simulators evaluate gates
/// into fixed-size input buffers of this many entries, so the netlist layer
/// rejects wider combinational gates at construction time and the `.bench`
/// reader tree-decomposes them instead (bench_io.cpp).
inline constexpr std::size_t kMaxGateArity = 8;

/// A transistor inside a cell. Width is in units of Tech::w_min_um.
/// `input_pin` is the index of the input pin driving its gate terminal, or
/// -1 for devices driven by internal nodes (their gate cap is internal).
/// `at_output` marks devices whose drain sits on the cell output (their
/// diffusion loads the output node).
struct Xtor {
    bool is_pmos = false;
    double w_units = 1.0;
    int input_pin = -1;
    bool at_output = false;
};

/// One library cell.
struct Cell {
    std::string name;
    CellFn fn = CellFn::Inv;
    int n_inputs = 1;
    std::vector<Xtor> xtors;

    // Output drive resistance (kOhm): worst-case of pull-up / pull-down
    // through the cell's series stacks.
    double r_out_kohm = 0.0;

    // Effective leaking width (units) after accounting for series stacks:
    // expected off-current of the cell is i_off * leak_w_eff (averaged over
    // input states).
    double leak_w_eff = 0.0;

    // Internal switched capacitance (fF): cap of nodes inside the cell that
    // toggle when the output toggles (e.g. the internal inverter of a BUF or
    // the master stage of a DFF). Output-node and input-pin caps are
    // accounted separately from the transistor list.
    double c_internal_ff = 0.0;

    /// Active area in um^2 (paper's measure: total transistor W*L).
    [[nodiscard]] double areaUm2(const Tech& t) const noexcept;

    /// Input capacitance of pin `pin` (fF): gate caps of devices on that pin.
    [[nodiscard]] double pinCapFf(const Tech& t, int pin) const noexcept;

    /// Diffusion capacitance the cell itself contributes at its output (fF).
    [[nodiscard]] double outputParasiticFf(const Tech& t) const noexcept;

    /// Average subthreshold leakage power (nW) of the idle cell.
    [[nodiscard]] double leakageNw(const Tech& t) const noexcept;
};

using CellId = std::uint32_t;

/// Immutable library of cells, indexed by id; lookup by function/arity.
class Library {
public:
    explicit Library(Tech tech);

    [[nodiscard]] const Tech& tech() const noexcept { return tech_; }

    /// Add a cell; returns its id. Names must be unique.
    CellId add(Cell cell);

    [[nodiscard]] const Cell& cell(CellId id) const { return cells_.at(id); }
    [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }

    /// Cell implementing `fn` with `n_inputs` inputs; throws if absent.
    [[nodiscard]] CellId find(CellFn fn, int n_inputs) const;
    [[nodiscard]] bool has(CellFn fn, int n_inputs) const noexcept;

    /// Cell by name; throws if absent.
    [[nodiscard]] CellId findByName(const std::string& name) const;

private:
    Tech tech_;
    std::vector<Cell> cells_;
};

/// Build the default 70 nm-like library with INV/BUF, NAND2-4, NOR2-4,
/// AND2-4, OR2-4, XOR2/XNOR2, AOI21/22, OAI21/22, MUX2, DFF, SDFF.
[[nodiscard]] Library makeDefaultLibrary(const Tech& tech = defaultTech());

} // namespace flh
