// Word-packed (W x 64 slot) three-valued gate evaluation with runtime SIMD
// dispatch.
//
// This is the cell-level kernel under the PPSFP fault-simulation engine
// (sim/packed_sim.hpp): every net carries W 64-bit words per plane (value
// and unknown), so one gate evaluation grades W*64 patterns. The Kleene
// formulas are identical to the 1-word ops in logic.hpp; only the word
// count differs. Three kernel builds exist — portable scalar, AVX2
// (4 words / 256 bits per step), and AVX-512 (8 words / 512 bits) — and the
// best one the build *and* the CPU support is selected once at startup.
// Tests and benchmarks can pin a lower level with setSimdLevel to compare
// kernels on the same machine.
#pragma once

#include "cell/logic.hpp"

namespace flh {

/// Maximum words per packed block: 8 words = 512 patterns per pass, one full
/// AVX-512 register per plane. PackedSim and FaultSimOptions::words are
/// clamped to this.
inline constexpr unsigned kMaxPackedWords = 8;

/// Kernel instruction sets, in increasing width.
enum class SimdLevel : std::uint8_t { Scalar = 0, Avx2 = 1, Avx512 = 2 };

[[nodiscard]] const char* toString(SimdLevel l) noexcept;

/// Best level this binary was built with *and* the running CPU supports.
[[nodiscard]] SimdLevel detectedSimdLevel() noexcept;

/// The level evalCellBlock currently dispatches to (defaults to
/// detectedSimdLevel()).
[[nodiscard]] SimdLevel activeSimdLevel() noexcept;

/// Pin the dispatch level (clamped to detectedSimdLevel()); returns the
/// level actually installed. Not safe concurrently with evalCellBlock —
/// intended for tests and benchmark setup only.
SimdLevel setSimdLevel(SimdLevel l) noexcept;

/// Evaluate a combinational cell over packed planes, `words` 64-bit words
/// per plane. in_v[i] / in_x[i] point at input i's value / unknown planes;
/// the result is written to out_v / out_x. The output planes must not alias
/// any input plane. `n_ins` must be the cell's arity (<= kMaxGateArity) and
/// `words` in [1, kMaxPackedWords]. Dff/Sdff must not be passed here.
///
/// Slot semantics are bit-identical to evalCell on each word:
///   evalCellBlock(fn, ..., W)[w] == evalCell(fn, ins[w]) for every w.
void evalCellBlock(CellFn fn, const std::uint64_t* const* in_v,
                   const std::uint64_t* const* in_x, std::size_t n_ins,
                   std::uint64_t* out_v, std::uint64_t* out_x, unsigned words) noexcept;

/// Signature shared by every packed kernel (same contract as evalCellBlock).
using BlockKernelFn = void (*)(CellFn, const std::uint64_t* const*,
                               const std::uint64_t* const*, std::size_t, std::uint64_t*,
                               std::uint64_t*, unsigned) noexcept;

/// The kernel evalCellBlock currently dispatches to. Hot loops
/// (PackedSim::propagate) resolve this once per pass so each gate
/// evaluation is a call through a loop-invariant pointer instead of
/// re-reading the dispatch table per gate.
[[nodiscard]] BlockKernelFn activeBlockKernel() noexcept;

namespace detail {

/// One kernel per SimdLevel, same contract as evalCellBlock. The scalar
/// kernel always exists; the wider ones exist when the toolchain could
/// build them (FLH_HAVE_AVX2 / FLH_HAVE_AVX512 from CMake) and are only
/// dispatched to after a cpuid check.
void evalCellBlockScalar(CellFn fn, const std::uint64_t* const* in_v,
                         const std::uint64_t* const* in_x, std::size_t n_ins,
                         std::uint64_t* out_v, std::uint64_t* out_x,
                         unsigned words) noexcept;
#if FLH_HAVE_AVX2
void evalCellBlockAvx2(CellFn fn, const std::uint64_t* const* in_v,
                       const std::uint64_t* const* in_x, std::size_t n_ins,
                       std::uint64_t* out_v, std::uint64_t* out_x,
                       unsigned words) noexcept;
#endif
#if FLH_HAVE_AVX512
void evalCellBlockAvx512(CellFn fn, const std::uint64_t* const* in_v,
                         const std::uint64_t* const* in_x, std::size_t n_ins,
                         std::uint64_t* out_v, std::uint64_t* out_x,
                         unsigned words) noexcept;
#endif

} // namespace detail

} // namespace flh
