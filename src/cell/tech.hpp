// Technology parameters for the 70 nm-like process used throughout.
//
// The paper maps ISCAS89 netlists to the LEDA 0.25 um cell library and scales
// the transistors to 70 nm (Berkeley Predictive Technology Model). We have no
// BPTM decks, so this struct is the single source of truth for an internally
// consistent 70 nm-like process: all area, delay, power, and leakage numbers
// in the library and in the analog simulator derive from it.
//
// Area is accounted exactly as in the paper: "the measure used for area is
// the total transistor active area (W x L for a transistor)" (Section III).
#pragma once

namespace flh {

struct Tech {
    // Supply and thresholds (volts).
    double vdd = 1.0;
    double vth_n = 0.20;
    double vth_p = 0.22;

    // Geometry (micrometres). Widths elsewhere are expressed in units of
    // w_min_um; "area units" are (w_min_um * l_min_um) = one minimum device.
    double l_min_um = 0.07;
    double w_min_um = 0.14;

    // Capacitance. c_gate_ff_per_um applies to transistor gates, c_diff to
    // drain/source diffusion at a cell output, c_wire per fanout pin models
    // local interconnect.
    double c_gate_ff_per_um = 1.5;
    double c_diff_ff_per_um = 0.9;
    double c_wire_ff_per_fanout = 0.25;

    // Drive: on-resistance of a minimum NMOS (kOhm); PMOS is weaker by
    // the mobility ratio. A device of width w units has R = r / w.
    double r_on_n_kohm = 15.0;
    double mobility_ratio = 2.0; // un/up

    // Subthreshold off-current per um of width (nA) at Vgs = 0, and the
    // reduction factor when two off devices are stacked (Section III cites
    // Roy et al. on stacking). An ON sleep transistor in series with an
    // active gate still reduces its leakage (active-leakage stacking).
    double i_off_na_per_um = 180.0;
    double stack_factor_off = 0.12;   // 2 series OFF devices
    double stack_factor_active = 0.75; // sleep device ON in series

    // Inserted DFT hardware (hold latches, MUXes, FLH keepers) is built from
    // high-Vt devices — it is never speed-critical in normal mode — so its
    // own subthreshold leakage is this fraction of a standard-Vt device's.
    double hvt_leak_factor = 0.1;

    // Evaluation clock for normal-mode power (MHz), as a NanoSim-style
    // vector application rate; 100 random vectors are applied at this rate.
    double freq_mhz = 200.0;

    // Fraction of the sleep-transistor RC that appears as extra delay on a
    // supply-gated gate. The virtual rail's distributed diffusion
    // capacitance supplies the initial switching transient, so the sleep
    // device degrades the gate drive by less than its full series
    // resistance ("the size of the supply gating transistors can be
    // optimized for delay", Section II). Calibrated against the analog
    // simulator's gated-inverter experiments.
    double virtual_rail_factor = 0.15;

    /// Gate capacitance of a device of `w_units` minimum widths (fF).
    [[nodiscard]] double gateCapFf(double w_units) const noexcept {
        return c_gate_ff_per_um * w_min_um * w_units;
    }

    /// Diffusion capacitance contributed at a node by `w_units` of width (fF).
    [[nodiscard]] double diffCapFf(double w_units) const noexcept {
        return c_diff_ff_per_um * w_min_um * w_units;
    }

    /// Active area of a minimum device (um^2).
    [[nodiscard]] double minDeviceAreaUm2() const noexcept {
        return w_min_um * l_min_um;
    }

    /// Subthreshold off current for a device of `w_units` widths (nA).
    [[nodiscard]] double offCurrentNa(double w_units) const noexcept {
        return i_off_na_per_um * w_min_um * w_units;
    }
};

/// The default process used by all experiments.
[[nodiscard]] const Tech& defaultTech() noexcept;

} // namespace flh
