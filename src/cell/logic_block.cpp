#include "cell/logic_block.hpp"

#include "cell/logic_block_impl.hpp"

#include <cassert>

namespace flh {

namespace detail {

void evalCellBlockScalar(CellFn fn, const std::uint64_t* const* in_v,
                         const std::uint64_t* const* in_x, std::size_t n_ins,
                         std::uint64_t* out_v, std::uint64_t* out_x,
                         unsigned words) noexcept {
    evalBlockT<ScalarBatch>(fn, in_v, in_x, n_ins, out_v, out_x, 0, words);
}

} // namespace detail

namespace {

using Kernel = BlockKernelFn;

/// True when the running CPU can execute `l` (build support is checked
/// separately via the FLH_HAVE_* macros).
bool cpuSupports(SimdLevel l) noexcept {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
    switch (l) {
        case SimdLevel::Scalar: return true;
        case SimdLevel::Avx2: return __builtin_cpu_supports("avx2") != 0;
        case SimdLevel::Avx512:
            // The kernel only needs the foundation subset (512-bit logic ops).
            return __builtin_cpu_supports("avx512f") != 0;
    }
    return false;
#else
    return l == SimdLevel::Scalar;
#endif
}

bool builtWith(SimdLevel l) noexcept {
    switch (l) {
        case SimdLevel::Scalar: return true;
        case SimdLevel::Avx2:
#if defined(FLH_HAVE_AVX2)
            return true;
#else
            return false;
#endif
        case SimdLevel::Avx512:
#if defined(FLH_HAVE_AVX512)
            return true;
#else
            return false;
#endif
    }
    return false;
}

Kernel kernelFor(SimdLevel l) noexcept {
    switch (l) {
#if defined(FLH_HAVE_AVX512)
        case SimdLevel::Avx512: return &detail::evalCellBlockAvx512;
#endif
#if defined(FLH_HAVE_AVX2)
        case SimdLevel::Avx2: return &detail::evalCellBlockAvx2;
#endif
        default: return &detail::evalCellBlockScalar;
    }
}

struct Dispatch {
    SimdLevel level;
    Kernel kernel;
};

Dispatch& dispatch() noexcept {
    static Dispatch d = [] {
        const SimdLevel l = detectedSimdLevel();
        return Dispatch{l, kernelFor(l)};
    }();
    return d;
}

} // namespace

const char* toString(SimdLevel l) noexcept {
    switch (l) {
        case SimdLevel::Scalar: return "scalar";
        case SimdLevel::Avx2: return "avx2";
        case SimdLevel::Avx512: return "avx512";
    }
    return "?";
}

SimdLevel detectedSimdLevel() noexcept {
    for (const SimdLevel l : {SimdLevel::Avx512, SimdLevel::Avx2})
        if (builtWith(l) && cpuSupports(l)) return l;
    return SimdLevel::Scalar;
}

SimdLevel activeSimdLevel() noexcept { return dispatch().level; }

BlockKernelFn activeBlockKernel() noexcept { return dispatch().kernel; }

SimdLevel setSimdLevel(SimdLevel l) noexcept {
    if (static_cast<int>(l) > static_cast<int>(detectedSimdLevel())) l = detectedSimdLevel();
    dispatch() = Dispatch{l, kernelFor(l)};
    return l;
}

void evalCellBlock(CellFn fn, const std::uint64_t* const* in_v,
                   const std::uint64_t* const* in_x, std::size_t n_ins,
                   std::uint64_t* out_v, std::uint64_t* out_x, unsigned words) noexcept {
    assert(words >= 1 && words <= kMaxPackedWords);
    assert(n_ins <= kMaxGateArity);
    dispatch().kernel(fn, in_v, in_x, n_ins, out_v, out_x, words);
}

} // namespace flh
