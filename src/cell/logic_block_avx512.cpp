// AVX-512 build of the packed gate-evaluation kernel: 8 plane words (512
// pattern slots, the full kMaxPackedWords block) per vector op. Compiled
// with -mavx512f and dispatched to only after the runtime cpuid check in
// logic_block.cpp. Only the foundation subset (512-bit logic ops) is used —
// ternlog fusion is left to the compiler.
#include "cell/logic_block_impl.hpp"

#include <immintrin.h>

namespace flh::detail {

namespace {

struct Avx512Batch {
    static constexpr unsigned kWords = 8;
    __m512i r;

    static Avx512Batch load(const std::uint64_t* p) noexcept {
        return {_mm512_loadu_si512(p)};
    }
    void store(std::uint64_t* p) const noexcept { _mm512_storeu_si512(p, r); }
    static Avx512Batch ones() noexcept { return {_mm512_set1_epi64(-1)}; }
    static Avx512Batch zeros() noexcept { return {_mm512_setzero_si512()}; }

    friend Avx512Batch operator&(Avx512Batch a, Avx512Batch b) noexcept {
        return {_mm512_and_si512(a.r, b.r)};
    }
    friend Avx512Batch operator|(Avx512Batch a, Avx512Batch b) noexcept {
        return {_mm512_or_si512(a.r, b.r)};
    }
    friend Avx512Batch operator^(Avx512Batch a, Avx512Batch b) noexcept {
        return {_mm512_xor_si512(a.r, b.r)};
    }
    friend Avx512Batch operator~(Avx512Batch a) noexcept {
        return {_mm512_xor_si512(a.r, _mm512_set1_epi64(-1))};
    }
};

} // namespace

void evalCellBlockAvx512(CellFn fn, const std::uint64_t* const* in_v,
                         const std::uint64_t* const* in_x, std::size_t n_ins,
                         std::uint64_t* out_v, std::uint64_t* out_x,
                         unsigned words) noexcept {
    const unsigned main = words & ~(Avx512Batch::kWords - 1);
    if (main) evalBlockT<Avx512Batch>(fn, in_v, in_x, n_ins, out_v, out_x, 0, main);
    if (words != main)
        evalBlockT<ScalarBatch>(fn, in_v, in_x, n_ins, out_v, out_x, main, words);
}

} // namespace flh::detail
