#include "cell/tech.hpp"

namespace flh {

const Tech& defaultTech() noexcept {
    static const Tech tech{};
    return tech;
}

} // namespace flh
