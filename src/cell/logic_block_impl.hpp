// Shared implementation of the word-packed gate-evaluation kernels.
//
// Included by logic_block.cpp (scalar), logic_block_avx2.cpp (-mavx2) and
// logic_block_avx512.cpp (-mavx512f); each translation unit instantiates
// evalBlockT with its own Batch type so all three kernels share one set of
// Kleene formulas — the exact formulas of the 1-word ops in logic.cpp, which
// is what makes the packed engine bit-identical to the scalar oracle.
//
// A Batch wraps `kWords` consecutive 64-bit plane words and provides the
// bitwise ops; PVB<Batch> pairs a value batch with an unknown batch.
#pragma once

#include "cell/logic_block.hpp"

namespace flh::detail {

/// Portable 1-word batch; also the tail handler for the SIMD kernels.
struct ScalarBatch {
    static constexpr unsigned kWords = 1;
    std::uint64_t r;

    static ScalarBatch load(const std::uint64_t* p) noexcept { return {*p}; }
    void store(std::uint64_t* p) const noexcept { *p = r; }
    static ScalarBatch ones() noexcept { return {~0ULL}; }
    static ScalarBatch zeros() noexcept { return {0}; }

    friend ScalarBatch operator&(ScalarBatch a, ScalarBatch b) noexcept { return {a.r & b.r}; }
    friend ScalarBatch operator|(ScalarBatch a, ScalarBatch b) noexcept { return {a.r | b.r}; }
    friend ScalarBatch operator^(ScalarBatch a, ScalarBatch b) noexcept { return {a.r ^ b.r}; }
    friend ScalarBatch operator~(ScalarBatch a) noexcept { return {~a.r}; }
};

/// Packed three-valued batch: value plane + unknown plane (Kleene).
template <class B>
struct PVB {
    B v, x;
};

template <class B>
[[nodiscard]] inline PVB<B> bNot(PVB<B> a) noexcept {
    return {~a.v & ~a.x, a.x};
}

template <class B>
[[nodiscard]] inline PVB<B> bAnd(PVB<B> a, PVB<B> b) noexcept {
    const B zero = (~a.v & ~a.x) | (~b.v & ~b.x);
    const B one = (a.v & ~a.x) & (b.v & ~b.x);
    return {one, ~zero & ~one};
}

template <class B>
[[nodiscard]] inline PVB<B> bOr(PVB<B> a, PVB<B> b) noexcept {
    const B one = (a.v & ~a.x) | (b.v & ~b.x);
    const B zero = (~a.v & ~a.x) & (~b.v & ~b.x);
    return {one, ~zero & ~one};
}

template <class B>
[[nodiscard]] inline PVB<B> bXor(PVB<B> a, PVB<B> b) noexcept {
    const B x = a.x | b.x;
    return {(a.v ^ b.v) & ~x, x};
}

template <class B>
[[nodiscard]] inline PVB<B> bMux(PVB<B> a, PVB<B> b, PVB<B> s) noexcept {
    // Same derivation as pvMux: known select picks a side; unknown select is
    // known only where both sides are known and agree.
    const PVB<B> pick = bOr(bAnd(bNot(s), a), bAnd(s, b));
    const B agree = ~a.x & ~b.x & ~(a.v ^ b.v);
    const B v = (pick.v & ~pick.x) | (s.x & agree & a.v);
    const B x = pick.x & ~(s.x & agree);
    return {v & ~x, x};
}

/// Evaluate `fn` over plane words [begin, end) in steps of B::kWords.
/// (end - begin) must be a multiple of B::kWords; the per-level kernel
/// drivers peel the remainder off into a ScalarBatch tail.
template <class B>
void evalBlockT(CellFn fn, const std::uint64_t* const* in_v,
                const std::uint64_t* const* in_x, std::size_t n_ins,
                std::uint64_t* out_v, std::uint64_t* out_x, unsigned begin,
                unsigned end) noexcept {
    const auto in = [&](std::size_t i, unsigned w) noexcept -> PVB<B> {
        return {B::load(in_v[i] + w), B::load(in_x[i] + w)};
    };
    for (unsigned w = begin; w < end; w += B::kWords) {
        PVB<B> r{B::zeros(), B::zeros()};
        switch (fn) {
            case CellFn::Buf:
                r = in(0, w);
                break;
            case CellFn::Inv:
                r = bNot(in(0, w));
                break;
            case CellFn::And:
            case CellFn::Nand: {
                // N-ary closed form of the pvAnd accumulation: a slot is
                // definite 1 iff every input is definite 1, definite 0 iff
                // any input is definite 0 (controlling value dominates X).
                B one = B::ones();
                B zero = B::zeros();
                for (std::size_t i = 0; i < n_ins; ++i) {
                    const PVB<B> a = in(i, w);
                    const B known = ~a.x;
                    one = one & a.v & known;
                    zero = zero | (~a.v & known);
                }
                const B x = ~zero & ~one;
                r = (fn == CellFn::And) ? PVB<B>{one, x} : PVB<B>{zero, x};
                break;
            }
            case CellFn::Or:
            case CellFn::Nor: {
                B one = B::zeros();
                B zero = B::ones();
                for (std::size_t i = 0; i < n_ins; ++i) {
                    const PVB<B> a = in(i, w);
                    const B known = ~a.x;
                    one = one | (a.v & known);
                    zero = zero & ~a.v & known;
                }
                const B x = ~zero & ~one;
                r = (fn == CellFn::Or) ? PVB<B>{one, x} : PVB<B>{zero, x};
                break;
            }
            case CellFn::Xor:
            case CellFn::Xnor: {
                B v = B::zeros();
                B x = B::zeros();
                for (std::size_t i = 0; i < n_ins; ++i) {
                    const PVB<B> a = in(i, w);
                    v = v ^ a.v;
                    x = x | a.x;
                }
                r.x = x;
                r.v = (fn == CellFn::Xor ? v : ~v) & ~x;
                break;
            }
            case CellFn::Aoi21:
                r = bNot(bOr(bAnd(in(0, w), in(1, w)), in(2, w)));
                break;
            case CellFn::Aoi22:
                r = bNot(bOr(bAnd(in(0, w), in(1, w)), bAnd(in(2, w), in(3, w))));
                break;
            case CellFn::Oai21:
                r = bNot(bAnd(bOr(in(0, w), in(1, w)), in(2, w)));
                break;
            case CellFn::Oai22:
                r = bNot(bAnd(bOr(in(0, w), in(1, w)), bOr(in(2, w), in(3, w))));
                break;
            case CellFn::Mux2:
                r = bMux(in(0, w), in(1, w), in(2, w));
                break;
            case CellFn::Dff:
            case CellFn::Sdff:
                // Sequential cells never reach the combinational kernel;
                // X output mirrors evalCell's Release behaviour.
                r = PVB<B>{B::zeros(), B::ones()};
                break;
        }
        r.v.store(out_v + w);
        r.x.store(out_x + w);
    }
}

} // namespace flh::detail
