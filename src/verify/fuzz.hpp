// Cross-engine differential fuzzing.
//
// A seeded loop over random circuit specs; each seed cross-checks every
// independent computation of the same fact the repository offers:
//
//  1. per-net values — a naive scalar topological evaluator (written here,
//     sharing no code with the event-driven engine) vs PatternSim::evalAll,
//     on several pattern slots including X-laden ones;
//  2. packed per-net values — the word-packed PackedSim (SIMD kernel) vs the
//     same scalar reference at every requested word width, including an
//     all-X pattern and the padded tail slots;
//  3. sequential capture — SequentialSim::clock vs the nextState oracle;
//  4. detection bitmaps — the scalar serial stuck-at / transition engine
//     (words = 0) vs the engine at every requested thread count x word
//     width (threads forced into a real pool via min_items_per_worker = 1),
//     mask bit for mask bit, with stuck-at sites on PI and PO nets always
//     present in the fault list;
//  5. n-detect counts — countTransitionDetections across thread counts and
//     word widths;
//  6. DFT equivalence — the Fig. 5b protocol under enhanced scan, MUX-hold,
//     and FLH vs direct evaluation (verify/equivalence.hpp), on random and
//     ATPG-generated pairs.
//
// Any mismatch becomes a FuzzFinding; with a corpus directory configured it
// is greedily shrunk (verify/shrink.hpp) and written out as a standalone
// .bench + .pairs reproducer. Per-seed work is wrapped in telemetry spans
// (category "verify.seed") with verify.* counters, so `flh_fuzz --trace`
// shows where a budget went.
#pragma once

#include "iscas/circuits.hpp"
#include "verify/equivalence.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace flh {

struct FuzzOptions {
    std::uint64_t start_seed = 1;
    std::size_t seeds = 100;

    std::size_t random_pairs = 12; ///< arbitrary (V1, V2) pairs per seed
    std::size_t atpg_pairs = 6;    ///< ATPG-generated pairs per seed
    std::size_t stuck_patterns = 16;
    std::size_t max_faults = 96; ///< fault-list cap per seed (cost control)
    std::vector<unsigned> thread_counts{1, 4};

    /// Packed word widths to cross-check against the scalar (words = 0)
    /// oracle; each bitmap/n-detect check runs every width at every thread
    /// count, plus words = 0 itself (pure thread-determinism of the oracle).
    std::vector<unsigned> word_widths{1, 4, 8};

    bool shrink = true;
    std::size_t shrink_rounds = 6;
    std::string corpus_dir; ///< non-empty: write shrunk reproducers here

    /// Non-zero: corrupt the FLH variant with injectMutant(seed ^ this) —
    /// the mutation-testing mode where a finding is the *expected* outcome.
    std::uint64_t mutant_seed = 0;

    bool stop_on_first = true;
};

struct FuzzFinding {
    std::uint64_t seed = 0;
    std::string check; ///< "per-net", "packed-pernet", "seq-capture",
                       ///< "stuck-bitmap", "transition-bitmap", "n-detect",
                       ///< "dft-equivalence"
    std::string detail;
    std::string bench_path; ///< written reproducer (empty when not shrunk)
    std::string pairs_path;
    std::size_t shrunk_gates = 0;
};

struct FuzzReport {
    std::size_t seeds_run = 0;
    std::size_t checks_run = 0;
    std::vector<FuzzFinding> findings;

    [[nodiscard]] bool ok() const noexcept { return findings.empty(); }
};

/// The deterministic spec fuzzed for a seed (exported so tests and the CLI
/// can rebuild the exact circuit behind a finding).
[[nodiscard]] CircuitSpec fuzzSpec(std::uint64_t seed);

[[nodiscard]] FuzzReport runFuzz(const FuzzOptions& opts = {});

} // namespace flh
