#include "verify/shrink.hpp"

#include "obs/telemetry.hpp"

#include <stdexcept>
#include <unordered_map>

namespace flh {

namespace {

/// Settled value of `net` under pattern `p`, slot 0.
Logic settledValue(const Netlist& nl, const Pattern& p, NetId net) {
    PatternSim sim(nl);
    for (std::size_t k = 0; k < p.pis.size(); ++k) sim.setNet(nl.pis()[k], PV::all(p.pis[k]));
    for (std::size_t k = 0; k < p.state.size(); ++k)
        sim.setNet(nl.gate(nl.flipFlops()[k]).output, PV::all(p.state[k]));
    sim.evalAll();
    return sim.get(net).get(0);
}

} // namespace

std::pair<Netlist, std::vector<TwoPattern>> removeGate(const Netlist& nl, GateId victim,
                                                       const std::vector<TwoPattern>& pairs) {
    const Gate& vg = nl.gate(victim);
    const bool victim_is_ff = isSequential(vg.fn);
    std::size_t ff_index = 0;
    if (victim_is_ff) {
        while (nl.flipFlops().at(ff_index) != victim) ++ff_index;
    }

    Netlist out(nl.name(), nl.library());
    std::unordered_map<NetId, NetId> remap;
    remap.reserve(nl.netCount());

    // Original primary inputs keep their order; the orphaned output net
    // becomes one more input at the end.
    for (const NetId pi : nl.pis()) remap.emplace(pi, out.addPi(nl.net(pi).name));
    remap.emplace(vg.output, out.addPi(nl.net(vg.output).name));
    for (GateId g = 0; g < nl.gateCount(); ++g) {
        if (g == victim) continue;
        const NetId o = nl.gate(g).output;
        remap.emplace(o, out.addNet(nl.net(o).name));
    }

    // Gates in original order (flip-flop order, and therefore state-vector
    // indexing, survives minus the victim).
    for (GateId g = 0; g < nl.gateCount(); ++g) {
        if (g == victim) continue;
        const Gate& gate = nl.gate(g);
        std::vector<NetId> ins;
        ins.reserve(gate.inputs.size());
        for (const NetId in : gate.inputs) ins.push_back(remap.at(in));
        out.addGate(gate.fn, ins, remap.at(gate.output));
    }
    for (const NetId po : nl.pos()) out.markPo(remap.at(po));
    out.check();

    std::vector<TwoPattern> new_pairs;
    new_pairs.reserve(pairs.size());
    for (const TwoPattern& tp : pairs) {
        const auto remapPattern = [&](const Pattern& p) {
            Pattern np;
            np.pis = p.pis;
            np.pis.push_back(victim_is_ff ? p.state.at(ff_index)
                                          : settledValue(nl, p, vg.output));
            np.state = p.state;
            if (victim_is_ff)
                np.state.erase(np.state.begin() + static_cast<std::ptrdiff_t>(ff_index));
            return np;
        };
        new_pairs.push_back(TwoPattern{remapPattern(tp.v1), remapPattern(tp.v2)});
    }
    return {std::move(out), std::move(new_pairs)};
}

ShrinkResult shrinkReproducer(Netlist nl, std::vector<TwoPattern> pairs,
                              const FailurePredicate& still_fails, const ShrinkOptions& opts) {
    if (!still_fails(nl, pairs))
        throw std::invalid_argument("shrinkReproducer: inputs do not exhibit the failure");

    static obs::Counter& c_gates = obs::counter("verify.shrink.gates_removed");
    static obs::Counter& c_pairs = obs::counter("verify.shrink.pairs_removed");
    obs::ScopedSpan span("shrink-" + nl.name(), "verify.shrink");

    const std::size_t gates_before = nl.gateCount();
    const std::size_t pairs_before = pairs.size();
    std::size_t rounds = 0;

    for (std::size_t round = 0; round < opts.max_rounds; ++round) {
        bool changed = false;

        // Drop pairs (keep at least one: a reproducer needs a stimulus).
        for (std::size_t i = pairs.size(); i-- > 0 && pairs.size() > 1;) {
            std::vector<TwoPattern> candidate = pairs;
            candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
            if (still_fails(nl, candidate)) {
                pairs = std::move(candidate);
                changed = true;
                c_pairs.add(1);
            }
        }

        // Drop gates. Gate order is preserved by removeGate, so after a
        // successful removal index g already names the next candidate.
        for (GateId g = 0; g < nl.gateCount();) {
            auto [cand_nl, cand_pairs] = removeGate(nl, g, pairs);
            if (still_fails(cand_nl, cand_pairs)) {
                nl = std::move(cand_nl);
                pairs = std::move(cand_pairs);
                changed = true;
                c_gates.add(1);
            } else {
                ++g;
            }
        }

        ++rounds;
        if (!changed) break;
    }

    const std::size_t gates_after = nl.gateCount();
    const std::size_t pairs_after = pairs.size();
    return ShrinkResult{std::move(nl), std::move(pairs), rounds,
                        gates_before, gates_after, pairs_before, pairs_after};
}

} // namespace flh
