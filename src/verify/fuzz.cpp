#include "verify/fuzz.hpp"

#include "dft/scan.hpp"
#include "fault/parallel_sim.hpp"
#include "obs/telemetry.hpp"
#include "sim/packed_sim.hpp"
#include "util/rng.hpp"
#include "verify/corpus.hpp"
#include "verify/shrink.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

namespace flh {

namespace {

constexpr std::uint64_t kPairSeedMix = 0xD1B54A32D192ED03ULL;
constexpr std::uint64_t kEngineSeedMix = 0x8CB92BA72F3D8DD7ULL;

/// Naive scalar reference evaluation: one pattern, gate by gate in topo
/// order through evalCellScalar. Shares nothing with the event-driven
/// engine beyond the cell truth tables.
std::vector<Logic> refEval(const Netlist& nl, const Pattern& p) {
    std::vector<Logic> val(nl.netCount(), Logic::X);
    for (std::size_t k = 0; k < p.pis.size(); ++k) val[nl.pis()[k]] = p.pis[k];
    for (std::size_t k = 0; k < p.state.size(); ++k)
        val[nl.gate(nl.flipFlops()[k]).output] = p.state[k];
    std::vector<Logic> ins;
    for (const GateId g : nl.topoOrder()) {
        const Gate& gate = nl.gate(g);
        ins.clear();
        for (const NetId in : gate.inputs) ins.push_back(val[in]);
        val[gate.output] = evalCellScalar(gate.fn, ins);
    }
    return val;
}

/// Pack the V1 halves of up to 64 pairs into one PatternSim pass and compare
/// every net of every slot against the scalar reference.
bool perNetMismatch(const Netlist& nl, const std::vector<TwoPattern>& pairs,
                    std::string* detail) {
    const std::size_t n = std::min<std::size_t>(pairs.size(), 64);
    if (n == 0) return false;
    PatternSim sim(nl);
    for (std::size_t k = 0; k < nl.pis().size(); ++k) {
        PV v;
        for (unsigned i = 0; i < n; ++i) v.set(i, pairs[i].v1.pis[k]);
        sim.setNet(nl.pis()[k], v);
    }
    for (std::size_t k = 0; k < nl.flipFlops().size(); ++k) {
        PV v;
        for (unsigned i = 0; i < n; ++i) v.set(i, pairs[i].v1.state[k]);
        sim.setNet(nl.gate(nl.flipFlops()[k]).output, v);
    }
    sim.evalAll();
    for (unsigned i = 0; i < n; ++i) {
        const std::vector<Logic> ref = refEval(nl, pairs[i].v1);
        for (NetId net = 0; net < nl.netCount(); ++net) {
            if (sim.get(net).get(i) == ref[net]) continue;
            if (detail) {
                std::ostringstream os;
                os << "net " << nl.net(net).name << " slot " << i << ": reference "
                   << toChar(ref[net]) << ", PatternSim " << toChar(sim.get(net).get(i));
                *detail = os.str();
            }
            return true;
        }
    }
    return false;
}

/// PackedSim (word-packed SIMD engine) vs the scalar reference, at every
/// requested word width. The first pattern is replaced by an all-X vector so
/// the widest Kleene case is always present, the list is padded by
/// repeating the last pattern (as the fault-sim loaders do), and the padded
/// tail slot of the last word is checked too.
bool packedPerNetMismatch(const Netlist& nl, const std::vector<TwoPattern>& pairs,
                          const FuzzOptions& opts, std::string* detail) {
    if (pairs.empty()) return false;
    std::vector<Pattern> pats;
    pats.reserve(pairs.size());
    for (const TwoPattern& tp : pairs) pats.push_back(tp.v1);
    for (Logic& b : pats[0].pis) b = Logic::X;
    for (Logic& b : pats[0].state) b = Logic::X;
    std::vector<std::vector<Logic>> refs;
    refs.reserve(pats.size());
    for (const Pattern& p : pats) refs.push_back(refEval(nl, p));

    for (const unsigned W : opts.word_widths) {
        if (W < 1 || W > kMaxPackedWords) continue;
        PackedSim sim(nl, W);
        const auto loadSource = [&](NetId net, auto&& bit) {
            for (unsigned w = 0; w < W; ++w) {
                PV v;
                for (unsigned slot = 0; slot < 64; ++slot) {
                    const std::size_t i = std::min<std::size_t>(64ULL * w + slot, pats.size() - 1);
                    v.set(slot, bit(pats[i]));
                }
                sim.setNet(net, w, v);
            }
        };
        for (std::size_t k = 0; k < nl.pis().size(); ++k)
            loadSource(nl.pis()[k], [k](const Pattern& p) { return p.pis[k]; });
        for (std::size_t k = 0; k < nl.flipFlops().size(); ++k)
            loadSource(nl.gate(nl.flipFlops()[k]).output,
                       [k](const Pattern& p) { return p.state[k]; });
        sim.evalAll();

        const auto mismatchAt = [&](std::size_t pat, unsigned w, unsigned slot) {
            for (NetId net = 0; net < nl.netCount(); ++net) {
                if (sim.get(net, w, slot) == refs[pat][net]) continue;
                if (detail) {
                    std::ostringstream os;
                    os << "words=" << W << " net " << nl.net(net).name << " word " << w
                       << " slot " << slot << ": reference " << toChar(refs[pat][net])
                       << ", PackedSim " << toChar(sim.get(net, w, slot));
                    *detail = os.str();
                }
                return true;
            }
            return false;
        };
        for (std::size_t i = 0; i < pats.size() && i < 64ULL * W; ++i)
            if (mismatchAt(i, static_cast<unsigned>(i / 64), static_cast<unsigned>(i % 64)))
                return true;
        if (mismatchAt(pats.size() - 1, W - 1, 63)) return true; // padded tail
    }
    return false;
}

bool seqCaptureMismatch(const Netlist& nl, const std::vector<TwoPattern>& pairs,
                        std::string* detail) {
    for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
        const Pattern& p = pairs[pi].v1;
        SequentialSim seq(nl, HoldStyle::None);
        std::vector<PV> st(p.state.size());
        for (std::size_t k = 0; k < st.size(); ++k) st[k] = PV::all(p.state[k]);
        seq.setState(st);
        std::vector<PV> pis(p.pis.size());
        for (std::size_t k = 0; k < pis.size(); ++k) pis[k] = PV::all(p.pis[k]);
        seq.setPis(pis);
        seq.settle();
        seq.clock();
        const std::vector<Logic> oracle = nextState(nl, p);
        for (std::size_t k = 0; k < oracle.size(); ++k) {
            if (seq.state()[k].get(0) == oracle[k]) continue;
            if (detail) {
                std::ostringstream os;
                os << "pair " << pi << " FF " << k << ": nextState " << toChar(oracle[k])
                   << ", SequentialSim::clock " << toChar(seq.state()[k].get(0));
                *detail = os.str();
            }
            return true;
        }
    }
    return false;
}

bool masksDiffer(const std::vector<bool>& a, const std::vector<bool>& b, std::size_t* where) {
    if (a.size() != b.size()) {
        if (where) *where = 0;
        return true;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i]) {
            if (where) *where = i;
            return true;
        }
    }
    return false;
}

/// Output faults on a PI and a PO net are engine edge cases (fault at the
/// very source / sink of the cone); the capped collapsed list can drop
/// them, so they are always re-appended.
void addBoundaryStuckSites(const Netlist& nl, std::vector<FaultSite>& f) {
    const auto addNetFault = [&](NetId net) {
        for (const bool sa1 : {false, true}) {
            FaultSite s;
            s.net = net;
            s.stuck_at_one = sa1;
            if (std::find(f.begin(), f.end(), s) == f.end()) f.push_back(s);
        }
    };
    if (!nl.pis().empty()) addNetFault(nl.pis().front());
    if (!nl.pos().empty()) addNetFault(nl.pos().front());
}

void addBoundaryTransitionSites(const Netlist& nl, std::vector<TransitionFault>& f) {
    const auto addNetFault = [&](NetId net) {
        for (const Transition k : {Transition::SlowToRise, Transition::SlowToFall}) {
            const TransitionFault tf{net, k};
            if (std::find(f.begin(), f.end(), tf) == f.end()) f.push_back(tf);
        }
    };
    if (!nl.pis().empty()) addNetFault(nl.pis().front());
    if (!nl.pos().empty()) addNetFault(nl.pos().front());
}

std::vector<FaultSite> stuckFaults(const Netlist& nl, std::size_t cap) {
    std::vector<FaultSite> f = collapsedStuckAtFaults(nl);
    if (f.size() > cap) f.resize(cap);
    addBoundaryStuckSites(nl, f);
    return f;
}

std::vector<TransitionFault> transitionFaults(const Netlist& nl, std::size_t cap) {
    std::vector<TransitionFault> f = allTransitionFaults(nl);
    if (f.size() > cap) f.resize(cap);
    addBoundaryTransitionSites(nl, f);
    return f;
}

FaultSimOptions poolOptions(unsigned threads, unsigned words) {
    FaultSimOptions o;
    o.threads = threads;
    o.min_faults_per_worker = 1; // force a real pool even on tiny fault lists
    o.words = words;
    return o;
}

/// The scalar single-threaded engine (words = 0) every other configuration
/// must match bit for bit.
FaultSimOptions scalarOracle() { return poolOptions(1, 0); }

/// words = 0 first (thread determinism of the oracle itself), then every
/// requested packed width.
std::vector<unsigned> widthsUnderTest(const FuzzOptions& opts) {
    std::vector<unsigned> ws{0};
    for (const unsigned w : opts.word_widths)
        if (w >= 1 && w <= kMaxPackedWords) ws.push_back(w);
    return ws;
}

bool stuckBitmapMismatch(const Netlist& nl, const std::vector<TwoPattern>& pairs,
                         const FuzzOptions& opts, std::string* detail) {
    std::vector<Pattern> pats;
    pats.reserve(pairs.size());
    for (const TwoPattern& tp : pairs) pats.push_back(tp.v1);
    const std::vector<FaultSite> faults = stuckFaults(nl, opts.max_faults);
    const FaultSimResult serial = runStuckAtFaultSim(nl, pats, faults, scalarOracle());
    for (const unsigned t : opts.thread_counts) {
        for (const unsigned w : widthsUnderTest(opts)) {
            const FaultSimResult par = runStuckAtFaultSim(nl, pats, faults, poolOptions(t, w));
            std::size_t where = 0;
            if (masksDiffer(serial.detected_mask, par.detected_mask, &where)) {
                if (detail) {
                    std::ostringstream os;
                    os << "threads=" << t << " words=" << w << " fault "
                       << toString(nl, faults[where]) << ": scalar serial "
                       << serial.detected_mask[where] << ", engine "
                       << par.detected_mask[where];
                    *detail = os.str();
                }
                return true;
            }
        }
    }
    return false;
}

bool transitionBitmapMismatch(const Netlist& nl, const std::vector<TwoPattern>& pairs,
                              const FuzzOptions& opts, std::string* detail) {
    const std::vector<TransitionFault> faults = transitionFaults(nl, opts.max_faults);
    const FaultSimResult serial = runTransitionFaultSim(nl, pairs, faults, scalarOracle());
    for (const unsigned t : opts.thread_counts) {
        for (const unsigned w : widthsUnderTest(opts)) {
            const FaultSimResult par = runTransitionFaultSim(nl, pairs, faults, poolOptions(t, w));
            std::size_t where = 0;
            if (masksDiffer(serial.detected_mask, par.detected_mask, &where)) {
                if (detail) {
                    std::ostringstream os;
                    os << "threads=" << t << " words=" << w << " fault "
                       << toString(nl, faults[where]) << ": scalar serial "
                       << serial.detected_mask[where] << ", engine "
                       << par.detected_mask[where];
                    *detail = os.str();
                }
                return true;
            }
        }
    }
    return false;
}

bool nDetectMismatch(const Netlist& nl, const std::vector<TwoPattern>& pairs,
                     const FuzzOptions& opts, std::string* detail) {
    const std::vector<TransitionFault> faults = transitionFaults(nl, opts.max_faults);
    const std::vector<std::size_t> serial =
        countTransitionDetections(nl, pairs, faults, scalarOracle());
    for (const unsigned t : opts.thread_counts) {
        for (const unsigned w : widthsUnderTest(opts)) {
            const std::vector<std::size_t> par =
                countTransitionDetections(nl, pairs, faults, poolOptions(t, w));
            for (std::size_t i = 0; i < serial.size(); ++i) {
                if (par.size() == serial.size() && par[i] == serial[i]) continue;
                if (detail) {
                    std::ostringstream os;
                    os << "threads=" << t << " words=" << w << " fault "
                       << toString(nl, faults[i]) << ": scalar serial " << serial[i]
                       << " detections, engine "
                       << (i < par.size() ? std::to_string(par[i]) : std::string("<missing>"));
                    *detail = os.str();
                }
                return true;
            }
        }
    }
    return false;
}

/// Inject some X bits so Kleene propagation is fuzzed too (the fault-sim
/// checks keep the fully-specified list; X-detection semantics are theirs
/// to define, value agreement is not).
std::vector<TwoPattern> withXBits(std::vector<TwoPattern> pairs, std::uint64_t seed) {
    Rng rng(seed);
    for (TwoPattern& tp : pairs)
        for (Pattern* p : {&tp.v1, &tp.v2}) {
            for (Logic& b : p->pis)
                if (rng.chance(0.12)) b = Logic::X;
            for (Logic& b : p->state)
                if (rng.chance(0.12)) b = Logic::X;
        }
    return pairs;
}

struct CheckDef {
    const char* name;
    FailurePredicate fails;
    const std::vector<TwoPattern>* pairs;
};

} // namespace

CircuitSpec fuzzSpec(std::uint64_t seed) {
    Rng rng(seed ^ 0xF022);
    CircuitSpec s;
    s.name = "fuzz" + std::to_string(seed);
    s.n_pis = rng.range(3, 8);
    s.n_pos = rng.range(2, 4);
    s.n_ffs = rng.range(3, 10);
    s.depth = rng.range(4, 11);
    s.n_comb_gates = rng.range(30, 110);
    s.ff_fanout_avg = 1.5 + rng.uniform() * 2.0;
    s.unique_ratio = 1.0 + rng.uniform() * std::min(2.0, s.ff_fanout_avg - 1.0);
    s.seed = rng.next();
    // The generator needs enough interior gates beyond the first level to
    // drive every FF D pin after reserving one backbone gate per level:
    // n_comb_gates >= n_fl + (depth - 1) + n_ffs.
    const int n_fl = static_cast<int>(s.unique_ratio * s.n_ffs + 0.5);
    s.n_comb_gates = std::max(s.n_comb_gates, n_fl + s.depth + s.n_ffs + 4);
    return s;
}

FuzzReport runFuzz(const FuzzOptions& opts) {
    static obs::Counter& c_seeds = obs::counter("verify.fuzz.seeds");
    static obs::Counter& c_checks = obs::counter("verify.fuzz.checks");
    static obs::Counter& c_findings = obs::counter("verify.fuzz.findings");

    const Library& lib = [] () -> const Library& {
        static const Library l = makeDefaultLibrary();
        return l;
    }();

    FuzzReport rep;
    for (std::uint64_t seed = opts.start_seed; seed < opts.start_seed + opts.seeds; ++seed) {
        obs::ScopedSpan seed_span("seed-" + std::to_string(seed), "verify.seed");
        c_seeds.add(1);
        ++rep.seeds_run;

        Netlist scanned = generateCircuit(fuzzSpec(seed), lib);
        insertScan(scanned);

        const std::vector<TwoPattern> engine_pairs =
            randomTwoPatterns(scanned, opts.stuck_patterns, seed * kEngineSeedMix + 1);
        const std::vector<TwoPattern> x_pairs = withXBits(engine_pairs, seed ^ 0x5E);
        const std::vector<TwoPattern> eq_pairs =
            makeEquivalencePairs(scanned, opts.random_pairs, opts.atpg_pairs,
                                 seed * kPairSeedMix + 1);

        const EquivalenceOptions eq_opts;
        std::optional<Netlist> mutant;
        VariantNetlists variants;
        MutantInfo mutant_info;
        if (opts.mutant_seed != 0) {
            mutant = injectMutant(scanned, opts.mutant_seed ^ (seed * kPairSeedMix),
                                  &mutant_info);
            variants.flh = &*mutant;
        }

        const std::vector<CheckDef> checks = {
            {"per-net",
             [](const Netlist& n, const std::vector<TwoPattern>& ps) {
                 return perNetMismatch(n, ps, nullptr);
             },
             &x_pairs},
            {"packed-pernet",
             [&opts](const Netlist& n, const std::vector<TwoPattern>& ps) {
                 return packedPerNetMismatch(n, ps, opts, nullptr);
             },
             &x_pairs},
            {"seq-capture",
             [](const Netlist& n, const std::vector<TwoPattern>& ps) {
                 return seqCaptureMismatch(n, ps, nullptr);
             },
             &x_pairs},
            {"stuck-bitmap",
             [&opts](const Netlist& n, const std::vector<TwoPattern>& ps) {
                 return stuckBitmapMismatch(n, ps, opts, nullptr);
             },
             &engine_pairs},
            {"transition-bitmap",
             [&opts](const Netlist& n, const std::vector<TwoPattern>& ps) {
                 return transitionBitmapMismatch(n, ps, opts, nullptr);
             },
             &engine_pairs},
            {"n-detect",
             [&opts](const Netlist& n, const std::vector<TwoPattern>& ps) {
                 return nDetectMismatch(n, ps, opts, nullptr);
             },
             &engine_pairs},
            {"dft-equivalence",
             [&eq_opts, &variants](const Netlist& n, const std::vector<TwoPattern>& ps) {
                 return !checkDftEquivalence(n, ps, eq_opts, variants).ok();
             },
             &eq_pairs},
        };

        for (const CheckDef& check : checks) {
            obs::ScopedSpan check_span(check.name, "verify.check");
            c_checks.add(1);
            ++rep.checks_run;
            if (!check.fails(scanned, *check.pairs)) continue;

            c_findings.add(1);
            FuzzFinding finding;
            finding.seed = seed;
            finding.check = check.name;

            // Re-run the detailed probe for the report text.
            std::string detail;
            if (finding.check == "per-net") perNetMismatch(scanned, *check.pairs, &detail);
            else if (finding.check == "packed-pernet")
                packedPerNetMismatch(scanned, *check.pairs, opts, &detail);
            else if (finding.check == "seq-capture")
                seqCaptureMismatch(scanned, *check.pairs, &detail);
            else if (finding.check == "stuck-bitmap")
                stuckBitmapMismatch(scanned, *check.pairs, opts, &detail);
            else if (finding.check == "transition-bitmap")
                transitionBitmapMismatch(scanned, *check.pairs, opts, &detail);
            else if (finding.check == "n-detect")
                nDetectMismatch(scanned, *check.pairs, opts, &detail);
            else
                detail = checkDftEquivalence(scanned, *check.pairs, eq_opts, variants).summary();
            if (opts.mutant_seed != 0 && finding.check == "dft-equivalence")
                detail += " [injected mutant: " + mutant_info.describe() + "]";
            finding.detail = detail;

            // Shrink and persist — except expected mutant findings, which
            // are the mutation-testing success signal, not a bug.
            const bool expected_mutant =
                opts.mutant_seed != 0 && finding.check == "dft-equivalence";
            if (opts.shrink && !opts.corpus_dir.empty() && !expected_mutant) {
                ShrinkOptions sh;
                sh.max_rounds = opts.shrink_rounds;
                const ShrinkResult shrunk =
                    shrinkReproducer(scanned, *check.pairs, check.fails, sh);
                finding.shrunk_gates = shrunk.gates_after;
                std::ostringstream note;
                note << "fuzz seed " << seed << " check " << finding.check << ": " << detail
                     << "\nshrunk from " << shrunk.gates_before << " gates / "
                     << shrunk.pairs_before << " pairs to " << shrunk.gates_after << " / "
                     << shrunk.pairs_after;
                std::string stem = "fuzz_seed" + std::to_string(seed) + "_" + finding.check;
                std::replace(stem.begin(), stem.end(), '-', '_');
                const ReproducerPaths paths = writeReproducer(
                    opts.corpus_dir, stem, shrunk.netlist, shrunk.pairs, note.str());
                finding.bench_path = paths.bench;
                finding.pairs_path = paths.pairs;
            }
            rep.findings.push_back(std::move(finding));
            if (opts.stop_on_first) return rep;
        }
    }
    return rep;
}

} // namespace flh
