// DFT equivalence checking: the paper's transparency claim, made executable.
//
// First-level hold (like enhanced scan and MUX-hold before it) promises to be
// *functionally transparent*: a circuit equipped with any of the three holding
// schemes must capture exactly the same response to an arbitrary (V1, V2)
// two-pattern test as the bare combinational logic evaluated directly
// (Fig. 1b / Fig. 5b). This module drives the full five-phase protocol
// (scan V1 -> apply V1 -> hold + scan V2 -> launch -> capture) through
// SequentialSim for every holding style and compares, capture bit for capture
// bit, against the direct-evaluation oracle — plus the protocol audits (hold
// integrity, launch fidelity) that plain scan fails by construction.
//
// The checker also powers mutation testing: injectMutant() corrupts one gate
// function, and checking the corrupted netlist as one style's implementation
// against the pristine reference must produce a mismatch — the guard against
// a vacuously-passing checker.
#pragma once

#include "core/test_application.hpp"

#include <span>
#include <string>
#include <vector>

namespace flh {

/// One observed disagreement between a DFT variant and the oracle.
struct EquivalenceMismatch {
    HoldStyle style = HoldStyle::None;
    std::size_t pair = 0;     ///< index into the checked pair list
    std::string kind;         ///< "capture", "po", "scan-out", "hold-audit", "launch-audit", "shape"
    std::size_t position = 0; ///< bit index inside the compared vector
    Logic expected = Logic::X;
    Logic got = Logic::X;

    [[nodiscard]] std::string describe() const;
};

/// What to compare. Defaults check everything the paper's protocol promises.
struct EquivalenceOptions {
    std::vector<HoldStyle> styles{HoldStyle::EnhancedScan, HoldStyle::MuxHold, HoldStyle::Flh};
    bool check_pos = true;      ///< primary-output response at launch vs direct evaluation
    bool check_scan_out = true; ///< scanned-out response must equal the capture
    bool audit_protocol = true; ///< hold integrity + launch fidelity must both pass
    std::size_t max_mismatches = 8; ///< stop collecting after this many
};

/// Per-style implementation netlists. Null entries fall back to the
/// reference netlist (the normal case: the holding styles are behavioral
/// overlays on one scanned netlist). Mutation testing points one style at a
/// corrupted copy; the shrinker points all of them at candidate reductions.
struct VariantNetlists {
    const Netlist* enhanced = nullptr;
    const Netlist* mux = nullptr;
    const Netlist* flh = nullptr;

    [[nodiscard]] const Netlist& forStyle(HoldStyle s, const Netlist& reference) const noexcept;
};

struct EquivalenceReport {
    std::size_t pairs_checked = 0;
    std::size_t comparisons = 0; ///< individual bit/audit comparisons made
    std::vector<EquivalenceMismatch> mismatches;

    [[nodiscard]] bool ok() const noexcept { return mismatches.empty(); }
    [[nodiscard]] std::string summary() const;
};

/// Run the Fig. 5b protocol for every pair under every requested style and
/// compare against direct evaluation of `reference`. Pair shapes must match
/// the reference netlist (pis/state sized to pis()/flipFlops()).
[[nodiscard]] EquivalenceReport checkDftEquivalence(const Netlist& reference,
                                                    std::span<const TwoPattern> pairs,
                                                    const EquivalenceOptions& opts = {},
                                                    const VariantNetlists& variants = {});

/// Primary-output response to a pattern, evaluated directly (the PO half of
/// the oracle; expectedCapture in core/test_application.hpp is the FF half).
[[nodiscard]] std::vector<Logic> expectedPoResponse(const Netlist& nl, const Pattern& p);

/// Fully random (V1, V2) pairs: both halves independent, arbitrary — the
/// pairs only enhanced scan and FLH can apply.
[[nodiscard]] std::vector<TwoPattern> randomTwoPatterns(const Netlist& nl, std::size_t count,
                                                        std::uint64_t seed);

/// Random + ATPG-generated pair set for a netlist: `random_pairs` arbitrary
/// pairs followed by up to `atpg_pairs` transition tests from the
/// enhanced-scan ATPG (deterministic per seed).
[[nodiscard]] std::vector<TwoPattern> makeEquivalencePairs(const Netlist& nl,
                                                           std::size_t random_pairs,
                                                           std::size_t atpg_pairs,
                                                           std::uint64_t seed);

/// Description of an injected mutation (for reporting and for re-deriving
/// the mutant on a shrunk netlist by output-net name).
struct MutantInfo {
    GateId gate = kInvalidId;
    std::string output_net;
    CellFn original = CellFn::Inv;
    CellFn mutated = CellFn::Inv;

    [[nodiscard]] std::string describe() const;
};

/// Copy `nl` with one seeded combinational gate's function flipped to a
/// different same-arity function. Throws if the netlist has no mutable gate.
[[nodiscard]] Netlist injectMutant(const Netlist& nl, std::uint64_t seed,
                                   MutantInfo* info = nullptr);

} // namespace flh
