#include "verify/corpus.hpp"

#include "netlist/bench_io.hpp"
#include "util/strings.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace flh {

namespace {

std::string bitsToken(const std::vector<Logic>& bits) {
    if (bits.empty()) return "-";
    std::string s;
    s.reserve(bits.size());
    for (const Logic b : bits) s.push_back(toChar(b));
    return s;
}

std::vector<Logic> parseToken(const std::string& tok, int line) {
    if (tok == "-") return {};
    std::vector<Logic> out;
    out.reserve(tok.size());
    for (const char c : tok) {
        switch (c) {
            case '0': out.push_back(Logic::Zero); break;
            case '1': out.push_back(Logic::One); break;
            case 'X':
            case 'x': out.push_back(Logic::X); break;
            default:
                throw std::runtime_error("pairs parse error at line " + std::to_string(line) +
                                         ": bad bit '" + std::string(1, c) + "'");
        }
    }
    return out;
}

std::string readFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open " + path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

std::string pairsToString(const std::vector<TwoPattern>& pairs, const std::string& note) {
    std::ostringstream os;
    if (!note.empty()) {
        std::istringstream lines(note);
        std::string line;
        while (std::getline(lines, line)) os << "# " << line << "\n";
    }
    os << "# <v1_pis> <v1_state> <v2_pis> <v2_state>   ('-' = empty)\n";
    for (const TwoPattern& tp : pairs)
        os << bitsToken(tp.v1.pis) << " " << bitsToken(tp.v1.state) << " "
           << bitsToken(tp.v2.pis) << " " << bitsToken(tp.v2.state) << "\n";
    return os.str();
}

std::vector<TwoPattern> parsePairs(const std::string& text, std::string* note_out) {
    std::vector<TwoPattern> out;
    std::string note;
    bool in_leading_comments = true;

    std::istringstream lines(text);
    std::string raw;
    int line_no = 0;
    while (std::getline(lines, raw)) {
        ++line_no;
        const std::string_view line = trim(raw);
        if (line.empty()) continue;
        if (line.front() == '#') {
            // The schema line pairsToString always appends is boilerplate,
            // not part of the entry's note — skip it so notes round-trip.
            const std::string_view body = trim(line.substr(1));
            if (in_leading_comments && body.rfind("<v1_pis>", 0) != 0) {
                if (!note.empty()) note.push_back('\n');
                note.append(body);
            }
            continue;
        }
        in_leading_comments = false;
        const std::vector<std::string> toks = splitTrim(line, ' ');
        if (toks.size() != 4)
            throw std::runtime_error("pairs parse error at line " + std::to_string(line_no) +
                                     ": expected 4 tokens, got " + std::to_string(toks.size()));
        TwoPattern tp;
        tp.v1.pis = parseToken(toks[0], line_no);
        tp.v1.state = parseToken(toks[1], line_no);
        tp.v2.pis = parseToken(toks[2], line_no);
        tp.v2.state = parseToken(toks[3], line_no);
        if (tp.v1.pis.size() != tp.v2.pis.size() || tp.v1.state.size() != tp.v2.state.size())
            throw std::runtime_error("pairs parse error at line " + std::to_string(line_no) +
                                     ": V1/V2 shape mismatch");
        out.push_back(std::move(tp));
    }
    if (note_out) *note_out = std::move(note);
    return out;
}

ReproducerPaths writeReproducer(const std::string& dir, const std::string& stem,
                                const Netlist& nl, const std::vector<TwoPattern>& pairs,
                                const std::string& note) {
    namespace fs = std::filesystem;
    fs::create_directories(dir);
    ReproducerPaths paths;
    paths.bench = (fs::path(dir) / (stem + ".bench")).string();
    paths.pairs = (fs::path(dir) / (stem + ".pairs")).string();

    std::ofstream bench(paths.bench, std::ios::binary | std::ios::trunc);
    if (!bench) throw std::runtime_error("cannot write " + paths.bench);
    writeBench(bench, nl);

    std::ofstream pf(paths.pairs, std::ios::binary | std::ios::trunc);
    if (!pf) throw std::runtime_error("cannot write " + paths.pairs);
    pf << pairsToString(pairs, note);
    return paths;
}

std::vector<CorpusEntry> loadCorpus(const std::string& dir, const Library& lib) {
    namespace fs = std::filesystem;
    if (!fs::is_directory(dir)) throw std::runtime_error("corpus dir not found: " + dir);

    std::map<std::string, std::pair<bool, bool>> stems; // stem -> (has bench, has pairs)
    for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
        if (!e.is_regular_file()) continue;
        const fs::path p = e.path();
        if (p.extension() == ".bench") stems[p.stem().string()].first = true;
        else if (p.extension() == ".pairs") stems[p.stem().string()].second = true;
    }

    std::vector<CorpusEntry> out;
    for (const auto& [stem, have] : stems) {
        if (!have.first || !have.second)
            throw std::runtime_error("corpus entry '" + stem + "' is missing its " +
                                     (have.first ? ".pairs" : ".bench") + " file");
        const std::string bench_path = (fs::path(dir) / (stem + ".bench")).string();
        const std::string pairs_path = (fs::path(dir) / (stem + ".pairs")).string();
        Netlist nl = readBenchFile(bench_path, lib);
        std::string note;
        std::vector<TwoPattern> pairs = parsePairs(readFile(pairs_path), &note);
        for (const TwoPattern& tp : pairs) {
            if (tp.v1.pis.size() != nl.pis().size() || tp.v1.state.size() != nl.flipFlops().size())
                throw std::runtime_error("corpus entry '" + stem + "': pair shape (" +
                                         std::to_string(tp.v1.pis.size()) + " pis, " +
                                         std::to_string(tp.v1.state.size()) + " state bits) " +
                                         "does not match the netlist");
        }
        out.push_back(CorpusEntry{stem, std::move(nl), std::move(pairs), std::move(note)});
    }
    std::sort(out.begin(), out.end(),
              [](const CorpusEntry& a, const CorpusEntry& b) { return a.name < b.name; });
    return out;
}

} // namespace flh
