#include "verify/equivalence.hpp"

#include "atpg/transition_atpg.hpp"
#include "obs/telemetry.hpp"
#include "util/rng.hpp"

#include <sstream>
#include <stdexcept>

namespace flh {

namespace {

void applyPattern(PatternSim& sim, const Pattern& p) {
    const Netlist& nl = sim.netlist();
    if (p.pis.size() != nl.pis().size() || p.state.size() != nl.flipFlops().size())
        throw std::invalid_argument("pattern shape mismatch for " + nl.name());
    for (std::size_t k = 0; k < p.pis.size(); ++k) sim.setNet(nl.pis()[k], PV::all(p.pis[k]));
    for (std::size_t k = 0; k < p.state.size(); ++k)
        sim.setNet(nl.gate(nl.flipFlops()[k]).output, PV::all(p.state[k]));
}

/// Compare two Logic vectors; X compares equal only to X (the oracle and the
/// protocol must agree even about what is unknown).
void compareBits(const std::vector<Logic>& expected, const std::vector<Logic>& got,
                 HoldStyle style, std::size_t pair, const char* kind,
                 EquivalenceReport& rep, const EquivalenceOptions& opts) {
    if (expected.size() != got.size()) {
        if (rep.mismatches.size() < opts.max_mismatches)
            rep.mismatches.push_back(EquivalenceMismatch{style, pair, "shape", 0,
                                                         Logic::X, Logic::X});
        return;
    }
    for (std::size_t i = 0; i < expected.size(); ++i) {
        ++rep.comparisons;
        if (expected[i] == got[i]) continue;
        if (rep.mismatches.size() < opts.max_mismatches)
            rep.mismatches.push_back(
                EquivalenceMismatch{style, pair, kind, i, expected[i], got[i]});
    }
}

} // namespace

std::string EquivalenceMismatch::describe() const {
    std::ostringstream os;
    os << "pair " << pair << " style " << toString(style) << " " << kind;
    if (kind == "capture" || kind == "po" || kind == "scan-out")
        os << "[" << position << "]: expected " << toChar(expected) << " got " << toChar(got);
    return os.str();
}

std::string EquivalenceReport::summary() const {
    std::ostringstream os;
    os << pairs_checked << " pairs, " << comparisons << " comparisons, "
       << mismatches.size() << " mismatches";
    for (const EquivalenceMismatch& m : mismatches) os << "; " << m.describe();
    return os.str();
}

const Netlist& VariantNetlists::forStyle(HoldStyle s, const Netlist& reference) const noexcept {
    switch (s) {
        case HoldStyle::EnhancedScan: return enhanced ? *enhanced : reference;
        case HoldStyle::MuxHold: return mux ? *mux : reference;
        case HoldStyle::Flh: return flh ? *flh : reference;
        case HoldStyle::None: break;
    }
    return reference;
}

std::vector<Logic> expectedPoResponse(const Netlist& nl, const Pattern& p) {
    PatternSim sim(nl);
    applyPattern(sim, p);
    sim.evalAll();
    std::vector<Logic> out;
    out.reserve(nl.pos().size());
    for (const NetId po : nl.pos()) out.push_back(sim.get(po).get(0));
    return out;
}

EquivalenceReport checkDftEquivalence(const Netlist& reference, std::span<const TwoPattern> pairs,
                                      const EquivalenceOptions& opts,
                                      const VariantNetlists& variants) {
    static obs::Counter& c_pairs = obs::counter("verify.equivalence.pairs");
    static obs::Counter& c_mismatches = obs::counter("verify.equivalence.mismatches");
    obs::ScopedSpan span("check-" + reference.name(), "verify.equivalence");

    EquivalenceReport rep;
    for (std::size_t p = 0; p < pairs.size(); ++p) {
        const TwoPattern& tp = pairs[p];
        const std::vector<Logic> oracle_capture = expectedCapture(reference, tp);
        const std::vector<Logic> oracle_po =
            opts.check_pos ? expectedPoResponse(reference, tp.v2) : std::vector<Logic>{};

        for (const HoldStyle style : opts.styles) {
            const Netlist& impl = variants.forStyle(style, reference);
            TwoPatternApplicator app(impl, style);
            const ApplicationResult res = app.apply(tp);

            compareBits(oracle_capture, res.captured, style, p, "capture", rep, opts);
            if (opts.check_pos) compareBits(oracle_po, res.po_launch, style, p, "po", rep, opts);
            if (opts.check_scan_out)
                compareBits(res.captured, res.scan_out, style, p, "scan-out", rep, opts);
            if (opts.audit_protocol) {
                ++rep.comparisons;
                if (!res.hold_intact && rep.mismatches.size() < opts.max_mismatches)
                    rep.mismatches.push_back(EquivalenceMismatch{style, p, "hold-audit", 0,
                                                                 Logic::One, Logic::Zero});
                ++rep.comparisons;
                if (!res.launch_faithful && rep.mismatches.size() < opts.max_mismatches)
                    rep.mismatches.push_back(EquivalenceMismatch{style, p, "launch-audit", 0,
                                                                 Logic::One, Logic::Zero});
            }
        }
        ++rep.pairs_checked;
        if (rep.mismatches.size() >= opts.max_mismatches) break;
    }
    c_pairs.add(rep.pairs_checked);
    c_mismatches.add(rep.mismatches.size());
    return rep;
}

std::vector<TwoPattern> randomTwoPatterns(const Netlist& nl, std::size_t count,
                                          std::uint64_t seed) {
    const std::vector<Pattern> v1 = randomPatterns(nl, count, seed);
    const std::vector<Pattern> v2 = randomPatterns(nl, count, seed ^ 0x9E3779B97F4A7C15ULL);
    std::vector<TwoPattern> out(count);
    for (std::size_t i = 0; i < count; ++i) out[i] = TwoPattern{v1[i], v2[i]};
    return out;
}

std::vector<TwoPattern> makeEquivalencePairs(const Netlist& nl, std::size_t random_pairs,
                                             std::size_t atpg_pairs, std::uint64_t seed) {
    std::vector<TwoPattern> pairs = randomTwoPatterns(nl, random_pairs, seed);
    if (atpg_pairs > 0) {
        // Deterministic transition ATPG over a truncated fault sample keeps
        // the per-circuit cost bounded; the tests it emits exercise launch
        // paths random pairs rarely hit.
        std::vector<TransitionFault> faults = allTransitionFaults(nl);
        Rng rng(seed ^ 0xA7);
        rng.shuffle(faults);
        faults.resize(std::min<std::size_t>(faults.size(), 4 * atpg_pairs));
        TransitionAtpgConfig cfg;
        cfg.random_pairs = 0;
        cfg.seed = seed ^ 0xA8;
        const TransitionAtpgResult atpg =
            generateTransitionTests(nl, TestApplication::EnhancedScan, faults, cfg);
        for (std::size_t i = 0; i < atpg.tests.size() && i < atpg_pairs; ++i)
            pairs.push_back(atpg.tests[i]);
    }
    return pairs;
}

std::string MutantInfo::describe() const {
    std::ostringstream os;
    os << "gate " << gate << " (" << output_net << "): " << toString(original) << " -> "
       << toString(mutated);
    return os.str();
}

Netlist injectMutant(const Netlist& nl, std::uint64_t seed, MutantInfo* info) {
    // Same-arity alternatives per function; the library stocks all of them.
    static const std::vector<std::vector<CellFn>> kGroups = {
        {CellFn::Buf, CellFn::Inv},
        {CellFn::And, CellFn::Nand, CellFn::Or, CellFn::Nor, CellFn::Xor, CellFn::Xnor},
        {CellFn::Aoi21, CellFn::Oai21, CellFn::Mux2},
        {CellFn::Aoi22, CellFn::Oai22},
    };
    const auto groupOf = [](CellFn fn) -> const std::vector<CellFn>* {
        for (const auto& g : kGroups)
            for (const CellFn f : g)
                if (f == fn) return &g;
        return nullptr;
    };

    // Alternatives the library can actually implement at the gate's arity
    // (XOR/XNOR, say, are only stocked 2-input; a 3-input NAND must not
    // mutate into them).
    const auto alternativesOf = [&](GateId g) {
        std::vector<CellFn> alts;
        const Gate& gate = nl.gate(g);
        if (const std::vector<CellFn>* group = groupOf(gate.fn))
            for (const CellFn fn : *group)
                if (fn != gate.fn && nl.library().has(fn, static_cast<int>(gate.inputs.size())))
                    alts.push_back(fn);
        return alts;
    };

    std::vector<GateId> candidates;
    for (const GateId g : nl.combGates())
        if (!alternativesOf(g).empty()) candidates.push_back(g);
    if (candidates.empty())
        throw std::invalid_argument("injectMutant: no mutable gate in " + nl.name());

    Rng rng(seed);
    const GateId victim = candidates[rng.below(candidates.size())];
    const CellFn original = nl.gate(victim).fn;
    const std::vector<CellFn> alts = alternativesOf(victim);
    const CellFn mutated = alts[rng.below(alts.size())];

    Netlist out = nl;
    out.replaceGate(victim, mutated, nl.gate(victim).inputs);
    if (info) *info = MutantInfo{victim, nl.net(nl.gate(victim).output).name, original, mutated};
    return out;
}

} // namespace flh
