// Reproducer corpus: every bug the fuzzer ever found, kept as a permanent
// regression test.
//
// One reproducer is two sibling files sharing a stem:
//   <stem>.bench — the (usually shrunk) netlist, standard ISCAS89 .bench
//                  (netlist/bench_io.hpp round-trips it);
//   <stem>.pairs — the two-pattern stimuli, one pair per line:
//                      <v1_pis> <v1_state> <v2_pis> <v2_state>
//                  each token a string over {0,1,X} indexed like pis() /
//                  flipFlops(), or "-" for an empty vector (zero-FF or
//                  zero-PI circuits). '#' starts a comment; the leading
//                  comment block is the entry's note (what the bug was).
//
// tests/corpus/ holds the committed entries (hand-written seeds plus
// anything the fuzzer shrinks); tests/verify_test.cpp replays them all.
#pragma once

#include "fault/fault_sim.hpp"

#include <string>
#include <vector>

namespace flh {

struct CorpusEntry {
    std::string name; ///< file stem
    Netlist netlist;
    std::vector<TwoPattern> pairs;
    std::string note; ///< leading comment block of the .pairs file
};

/// Serialize pairs to the .pairs text format (note emitted as comments).
[[nodiscard]] std::string pairsToString(const std::vector<TwoPattern>& pairs,
                                        const std::string& note = "");

/// Parse a .pairs text. Throws std::runtime_error with a line number on
/// malformed input. `note_out`, when given, receives the leading comments.
[[nodiscard]] std::vector<TwoPattern> parsePairs(const std::string& text,
                                                 std::string* note_out = nullptr);

/// Paths of one written reproducer.
struct ReproducerPaths {
    std::string bench;
    std::string pairs;
};

/// Write <dir>/<stem>.bench + <dir>/<stem>.pairs (creating `dir` if needed).
ReproducerPaths writeReproducer(const std::string& dir, const std::string& stem,
                                const Netlist& nl, const std::vector<TwoPattern>& pairs,
                                const std::string& note = "");

/// Load every <stem>.bench + <stem>.pairs pair under `dir`, sorted by stem.
/// Validates each pair's shape against its netlist; a .bench without a
/// sibling .pairs (or vice versa) is an error.
[[nodiscard]] std::vector<CorpusEntry> loadCorpus(const std::string& dir, const Library& lib);

} // namespace flh
