// Greedy reproducer minimization: shrink a failing (netlist, pair set) while
// the failure persists, so every bug the fuzzer finds becomes a small,
// human-readable regression test.
//
// Two reduction moves, applied to a fixpoint:
//  * drop pairs — remove each (V1, V2) pair in turn, keep the removal if the
//    predicate still fails;
//  * drop gates — remove one gate (combinational or flip-flop) and promote
//    its output net to a primary input whose per-pattern value is the net's
//    settled value in the *unshrunk* candidate. Freezing the removed cone at
//    its observed values leaves every surviving net's response unchanged, so
//    a mismatch rooted elsewhere keeps reproducing while the netlist melts
//    away around it.
//
// Gate order and primary-input order are preserved across a removal (the new
// input is appended at the end), so pair vectors remap mechanically and the
// predicate sees structurally comparable inputs every round.
#pragma once

#include "fault/fault_sim.hpp"

#include <functional>
#include <utility>
#include <vector>

namespace flh {

/// Returns true while the candidate still exhibits the failure.
using FailurePredicate = std::function<bool(const Netlist&, const std::vector<TwoPattern>&)>;

struct ShrinkOptions {
    std::size_t max_rounds = 6; ///< full drop-pairs + drop-gates sweeps
};

struct ShrinkResult {
    Netlist netlist;
    std::vector<TwoPattern> pairs;
    std::size_t rounds = 0;
    std::size_t gates_before = 0;
    std::size_t gates_after = 0;
    std::size_t pairs_before = 0;
    std::size_t pairs_after = 0;
};

/// Minimize `nl`/`pairs` under `still_fails` (which must hold for the inputs
/// as given — throws std::invalid_argument otherwise, a guard against
/// shrinking a non-reproducer).
[[nodiscard]] ShrinkResult shrinkReproducer(Netlist nl, std::vector<TwoPattern> pairs,
                                            const FailurePredicate& still_fails,
                                            const ShrinkOptions& opts = {});

/// One gate-removal step: rebuild without gate `victim`, promoting its output
/// net to a trailing primary input, and remap `pairs` (per-pattern frozen
/// value for combinational victims; the state bit moves into the new input
/// for flip-flop victims). Exposed for direct testing.
[[nodiscard]] std::pair<Netlist, std::vector<TwoPattern>> removeGate(
    const Netlist& nl, GateId victim, const std::vector<TwoPattern>& pairs);

} // namespace flh
