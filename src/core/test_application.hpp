// The paper's test-application protocol (Fig. 5b), executed cycle by cycle
// on the scan-chain simulator.
//
// Phases:
//   1. scan-in V1    — TC=0: the holding hardware isolates the logic while
//                      V1's state shifts through the chain;
//   2. apply V1      — TC=1 for one cycle with V1's PI bits: the logic
//                      settles to its response to V1;
//   3. hold + scan V2— TC=0 again: FLH's gating freezes the first-level
//                      outputs (enhanced scan freezes the latch outputs)
//                      while V2 shifts in;
//   4. launch        — TC=1 with V2's PI bits: the V1 -> V2 transition
//                      launches into the settled logic;
//   5. capture       — one rated clock later the response is captured in
//                      the flip-flops (and subsequently scanned out).
//
// The applicator also *audits* the protocol: it records whether the logic
// state held faithfully during phase 3 (hold integrity) and whether the
// launch transition seen by the logic was exactly V1 -> V2 (launch
// fidelity). Plain scan (HoldStyle::None) fails both — which is precisely
// why arbitrary two-pattern application needs enhanced scan or FLH.
#pragma once

#include "fault/fault_sim.hpp"
#include "sim/sequential.hpp"

#include <string>
#include <vector>

namespace flh {

/// One row of the Fig. 5b trace.
struct PhaseRecord {
    std::string phase;         ///< "scan-V1", "apply-V1", "scan-V2", "launch", "capture"
    int cycles = 0;            ///< scan-chain cycles spent
    bool tc_high = false;      ///< test-control level during the phase
    std::uint64_t comb_toggles = 0; ///< switching inside the combinational block
};

struct ApplicationResult {
    std::vector<PhaseRecord> trace;
    bool hold_intact = false;     ///< comb state == response(V1) through phase 3
    double hold_fidelity_pct = 0.0; ///< fraction of gate outputs that held
    bool launch_faithful = false; ///< transition applied was exactly V1 -> V2
    std::vector<Logic> po_launch; ///< primary-output response after the launch settle
    std::vector<Logic> captured;  ///< FF capture after the rated clock
    std::vector<Logic> scan_out;  ///< captured state shifted back out
};

/// Executes two-pattern tests against a netlist equipped with the given
/// holding style.
class TwoPatternApplicator {
public:
    TwoPatternApplicator(const Netlist& nl, HoldStyle style);

    /// Partial FLH: hold only the given subset of first-level gates
    /// (cheaper hardware, possibly corrupted holds — the audit reports it).
    TwoPatternApplicator(const Netlist& nl, std::vector<GateId> flh_gated_gates);

    [[nodiscard]] HoldStyle style() const noexcept { return style_; }

    /// Run the full protocol for one test.
    [[nodiscard]] ApplicationResult apply(const TwoPattern& tp);

private:
    const Netlist* nl_;
    HoldStyle style_;
    std::vector<GateId> custom_gated_;
    bool use_custom_gated_ = false;
};

/// Reference capture: the circuit's combinational response to V2 evaluated
/// directly (what a faithful application must produce).
[[nodiscard]] std::vector<Logic> expectedCapture(const Netlist& nl, const TwoPattern& tp);

} // namespace flh
