#include "core/test_application.hpp"

#include <algorithm>

namespace flh {

namespace {

std::vector<PV> toPv(const std::vector<Logic>& bits) {
    std::vector<PV> out(bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) out[i] = PV::all(bits[i]);
    return out;
}

std::vector<Logic> combSnapshot(const SequentialSim& seq) {
    const Netlist& nl = seq.sim().netlist();
    std::vector<Logic> snap;
    snap.reserve(nl.topoOrder().size());
    for (const GateId g : nl.topoOrder()) snap.push_back(seq.sim().get(nl.gate(g).output).get(0));
    return snap;
}

bool snapshotsMatch(const std::vector<Logic>& ref, const std::vector<Logic>& now) {
    for (std::size_t i = 0; i < ref.size(); ++i) {
        if (ref[i] == Logic::X) continue;
        if (now[i] != ref[i]) return false;
    }
    return true;
}

double snapshotFidelityPct(const std::vector<Logic>& ref, const std::vector<Logic>& now) {
    std::size_t definite = 0;
    std::size_t held = 0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        if (ref[i] == Logic::X) continue;
        ++definite;
        if (now[i] == ref[i]) ++held;
    }
    return definite ? 100.0 * static_cast<double>(held) / static_cast<double>(definite) : 100.0;
}

} // namespace

TwoPatternApplicator::TwoPatternApplicator(const Netlist& nl, HoldStyle style)
    : nl_(&nl), style_(style) {}

TwoPatternApplicator::TwoPatternApplicator(const Netlist& nl, std::vector<GateId> flh_gated_gates)
    : nl_(&nl),
      style_(HoldStyle::Flh),
      custom_gated_(std::move(flh_gated_gates)),
      use_custom_gated_(true) {}

ApplicationResult TwoPatternApplicator::apply(const TwoPattern& tp) {
    ApplicationResult res;
    SequentialSim seq(*nl_, style_);
    if (use_custom_gated_) seq.setFlhGatedGates(custom_gated_);
    PatternSim& sim = seq.sim();
    sim.enableToggleCount(true);

    const std::size_t n = seq.ffCount();
    const auto combToggles = [&] {
        std::uint64_t total = 0;
        for (const GateId g : nl_->topoOrder()) total += sim.toggleCounts()[nl_->gate(g).output];
        return total;
    };
    const auto phase = [&](const std::string& name, int cycles, bool tc,
                           std::uint64_t toggles_before) {
        res.trace.push_back(PhaseRecord{name, cycles, tc, combToggles() - toggles_before});
    };

    // Start from an all-zero state, logic settled.
    seq.setState(std::vector<PV>(n, PV::all(Logic::Zero)));
    seq.setPis(toPv(tp.v1.pis));
    seq.settle();

    // Phase 1: scan in V1 with the logic isolated (TC = 0).
    std::uint64_t mark = combToggles();
    seq.setHolding(true);
    for (std::size_t i = 0; i < n; ++i) seq.shift(PV::all(tp.v1.state[i]));
    phase("scan-V1", static_cast<int>(n), false, mark);

    // Phase 2: apply V1 (TC = 1 for one cycle), logic settles to its
    // response; that response is the hold reference.
    mark = combToggles();
    seq.setHolding(false);
    seq.setPis(toPv(tp.v1.pis));
    seq.settle();
    const std::vector<Logic> v1_response = combSnapshot(seq);
    phase("apply-V1", 1, true, mark);

    // Phase 3: hold and scan in V2.
    mark = combToggles();
    seq.setHolding(true);
    for (std::size_t i = 0; i < n; ++i) seq.shift(PV::all(tp.v2.state[i]));
    const std::vector<Logic> after_shift = combSnapshot(seq);
    res.hold_intact = snapshotsMatch(v1_response, after_shift);
    res.hold_fidelity_pct = snapshotFidelityPct(v1_response, after_shift);
    phase("scan-V2", static_cast<int>(n), false, mark);

    // Phase 4: launch V1 -> V2 (TC = 1, V2's PI bits applied).
    // Launch fidelity: the pre-launch logic state must still be V1's
    // response, and the chain must hold exactly V2's state.
    bool state_is_v2 = true;
    for (std::size_t i = 0; i < n; ++i)
        if (seq.state()[i].get(0) != tp.v2.state[i]) state_is_v2 = false;
    res.launch_faithful = res.hold_intact && state_is_v2;

    mark = combToggles();
    seq.setPis(toPv(tp.v2.pis));
    seq.setHolding(false);
    seq.settle();
    res.po_launch.reserve(nl_->pos().size());
    for (const NetId po : nl_->pos()) res.po_launch.push_back(sim.get(po).get(0));
    phase("launch", 1, true, mark);

    // Phase 5: capture at the rated clock.
    mark = combToggles();
    seq.clock();
    res.captured.resize(n);
    for (std::size_t i = 0; i < n; ++i) res.captured[i] = seq.state()[i].get(0);
    phase("capture", 1, true, mark);

    // Scan the response out (isolated again).
    seq.setHolding(true);
    for (std::size_t i = 0; i < n; ++i)
        res.scan_out.push_back(seq.shift(PV::all(Logic::Zero)).get(0));
    seq.setHolding(false);
    return res;
}

std::vector<Logic> expectedCapture(const Netlist& nl, const TwoPattern& tp) {
    return nextState(nl, tp.v2);
}

} // namespace flh
