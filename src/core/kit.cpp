#include "core/kit.hpp"

#include "iscas/circuits.hpp"

namespace flh {

namespace {
const Library& defaultLibrary() {
    static const Library lib = makeDefaultLibrary();
    return lib;
}
} // namespace

DelayTestKit DelayTestKit::forCircuit(const std::string& name) {
    return DelayTestKit(makeCircuit(name, defaultLibrary()));
}

DelayTestKit::DelayTestKit(Netlist netlist) : nl_(std::move(netlist)) {
    if (!isFullScan(nl_)) scan_ = insertScan(nl_);
}

DftEvaluation DelayTestKit::evaluate(HoldStyle style, const PowerConfig& power) const {
    return evaluateDft(nl_, planDft(nl_, style), power);
}

FanoutOptResult DelayTestKit::optimizeFanout(const FanoutOptConfig& cfg) {
    return flh::optimizeFanout(nl_, cfg);
}

CampaignResult DelayTestKit::runDelayTestCampaign(HoldStyle style,
                                                  const TransitionAtpgConfig& cfg,
                                                  std::size_t max_applied) const {
    CampaignResult res;
    res.style = style;

    // FLH supports arbitrary pairs, exactly like enhanced scan; plain scan
    // without holding can only do broadside.
    const TestApplication app = (style == HoldStyle::None) ? TestApplication::Broadside
                                                           : TestApplication::EnhancedScan;

    const auto faults = allTransitionFaults(nl_);
    const TransitionAtpgResult atpg = generateTransitionTests(nl_, app, faults, cfg);
    res.tests = atpg.tests.size();
    res.coverage_pct = atpg.coverage.coveragePct();

    TwoPatternApplicator applicator(nl_, style);
    const std::size_t limit = std::min(max_applied, atpg.tests.size());
    for (std::size_t i = 0; i < limit; ++i) {
        const ApplicationResult r = applicator.apply(atpg.tests[i]);
        ++res.applied;
        if (r.hold_intact) ++res.holds_intact;
        if (r.launch_faithful) ++res.launches_faithful;
        if (r.captured == expectedCapture(nl_, atpg.tests[i])) ++res.captures_correct;
    }
    return res;
}

ScanShiftPowerResult DelayTestKit::scanShiftPower(HoldStyle style, int n_patterns) const {
    return measureScanShiftPower(nl_, style, n_patterns);
}

} // namespace flh
