// DelayTestKit: the library's one-stop API.
//
// Wraps the full flow the paper evaluates:
//   circuit -> full scan -> choose holding style (enhanced scan / MUX / FLH)
//           -> area/delay/power evaluation        (Tables I-III)
//           -> fanout optimization                (Table IV / Section V)
//           -> transition ATPG + fault simulation (Section IV)
//           -> cycle-accurate two-pattern application with hold auditing
//              (Fig. 5b).
//
// Example:
//   DelayTestKit kit = DelayTestKit::forCircuit("s838");
//   auto eval = kit.evaluate(HoldStyle::Flh);
//   auto camp = kit.runDelayTestCampaign(HoldStyle::Flh);
//   std::cout << eval.area_increase_pct << " " << camp.coverage_pct << "\n";
#pragma once

#include "atpg/transition_atpg.hpp"
#include "core/test_application.hpp"
#include "dft/design.hpp"
#include "dft/fanout_opt.hpp"
#include "dft/scan.hpp"

#include <memory>
#include <string>

namespace flh {

/// Result of an end-to-end delay-test campaign (generate + apply + audit).
struct CampaignResult {
    HoldStyle style = HoldStyle::Flh;
    std::size_t tests = 0;
    double coverage_pct = 0.0;       ///< transition-fault coverage of the set
    std::size_t applied = 0;         ///< tests executed through the Fig. 5b protocol
    std::size_t holds_intact = 0;    ///< applications with hold integrity
    std::size_t launches_faithful = 0;
    std::size_t captures_correct = 0; ///< captured == expected good response
};

class DelayTestKit {
public:
    /// Build the kit for a registered circuit ("s27", "s298", ... "s13207");
    /// inserts full scan.
    [[nodiscard]] static DelayTestKit forCircuit(const std::string& name);

    /// Build from an arbitrary sequential netlist (scan inserted here).
    explicit DelayTestKit(Netlist netlist);

    [[nodiscard]] const Netlist& netlist() const noexcept { return nl_; }
    [[nodiscard]] const ScanInfo& scanInfo() const noexcept { return scan_; }
    [[nodiscard]] const Library& library() const noexcept { return nl_.library(); }

    /// Structural statistics (Table I's left columns).
    [[nodiscard]] NetlistStats stats() const { return computeStats(nl_); }

    /// Area/delay/power evaluation of one holding style (Tables I-III).
    [[nodiscard]] DftEvaluation evaluate(HoldStyle style,
                                         const PowerConfig& power = {}) const;

    /// Section V fanout optimization (mutates the kit's netlist). Returns
    /// the before/after report.
    FanoutOptResult optimizeFanout(const FanoutOptConfig& cfg = {});

    /// Generate a transition-fault test set for the given application style
    /// (FLH and enhanced scan share TestApplication::EnhancedScan), apply
    /// every test through the Fig. 5b protocol with the given holding
    /// hardware, and audit the application.
    [[nodiscard]] CampaignResult runDelayTestCampaign(
        HoldStyle style, const TransitionAtpgConfig& cfg = {},
        std::size_t max_applied = 32) const;

    /// Scan-shift (test-mode) power comparison for this circuit.
    [[nodiscard]] ScanShiftPowerResult scanShiftPower(HoldStyle style,
                                                      int n_patterns = 8) const;

private:
    Netlist nl_;
    ScanInfo scan_{};
};

} // namespace flh
