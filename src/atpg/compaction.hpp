// Static test-set compaction (reverse-order pass).
//
// ATPG emits patterns greedily, so late patterns (generated for the hard
// faults) often cover many of the faults the early random patterns were
// kept for. The classical fix: fault-simulate the set in reverse order and
// keep only the patterns that detect something new. Coverage is preserved
// exactly; test time (scan cycles) drops with the pattern count — relevant
// because enhanced-scan/FLH tests cost *two* chain loads each (Fig. 5b).
#pragma once

#include "fault/fault_sim.hpp"

#include <vector>

namespace flh {

struct CompactionStats {
    std::size_t before = 0;
    std::size_t after = 0;
    std::size_t detected = 0; ///< faults detected (unchanged by compaction)

    [[nodiscard]] double reductionPct() const noexcept {
        return before ? 100.0 * static_cast<double>(before - after) /
                            static_cast<double>(before)
                      : 0.0;
    }
};

/// Keep only stuck-at patterns that detect a new fault (reverse order).
CompactionStats compactStuckAtTests(const Netlist& nl, std::vector<Pattern>& patterns,
                                    std::span<const FaultSite> faults);

/// Keep only two-pattern tests that detect a new transition fault.
CompactionStats compactTransitionTests(const Netlist& nl, std::vector<TwoPattern>& tests,
                                       std::span<const TransitionFault> faults);

} // namespace flh
