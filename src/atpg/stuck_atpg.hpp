// Stuck-at test generation: random-pattern phase with fault dropping,
// followed by deterministic PODEM top-off.
#pragma once

#include "atpg/podem.hpp"
#include "util/rng.hpp"

#include <vector>

namespace flh {

struct StuckAtpgConfig {
    int random_patterns = 128;
    PodemConfig podem{};
    std::uint64_t seed = 7;
};

struct StuckAtpgResult {
    std::vector<Pattern> patterns; ///< fully specified (X random-filled)
    FaultSimResult coverage;       ///< over the given fault list
    std::size_t podem_generated = 0;
    std::size_t aborted = 0;
    std::size_t untestable = 0;
};

/// Random-fill every X in a pattern (seeded).
void fillRandom(Pattern& p, Rng& rng);

[[nodiscard]] StuckAtpgResult generateStuckAtTests(const Netlist& nl,
                                                   std::span<const FaultSite> faults,
                                                   const StuckAtpgConfig& cfg = {});

} // namespace flh
