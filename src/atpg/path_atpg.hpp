// Path-delay test generation (non-robust sensitization) for the three
// application styles.
//
// V2 must statically sensitize the entire path and set its input to the
// post-transition value; V1 sets the path input to the opposite value.
// With FLH (enhanced-scan application) the two justifications are
// independent; skewed-load and broadside inherit their structural V1
// constraints, which is why critical-path delay testing motivates the
// paper's arbitrary-pair capability.
#pragma once

#include "atpg/podem.hpp"
#include "fault/path_delay.hpp"

namespace flh {

struct PathAtpgConfig {
    PodemConfig podem{};
    int justify_retries = 2;
    std::uint64_t seed = 13;
};

struct PathAtpgResult {
    std::size_t attempted = 0;
    std::size_t tested = 0;            ///< tests generated and validated
    std::size_t unsensitizable = 0;    ///< no static sensitization exists
    std::size_t infeasible = 0;        ///< constraints proven unsatisfiable (false path)
    std::size_t aborted = 0;           ///< backtrack budget exhausted
    std::size_t justify_failed = 0;    ///< V1-side / validation failures
    std::vector<std::pair<PathDelayFault, TwoPattern>> tests;

    [[nodiscard]] double coveragePct() const noexcept {
        return attempted ? 100.0 * static_cast<double>(tested) / static_cast<double>(attempted)
                         : 0.0;
    }
};

/// Generate two-pattern tests for both polarities of each path.
[[nodiscard]] PathAtpgResult generatePathDelayTests(const Netlist& nl,
                                                    std::span<const DelayPath> paths,
                                                    TestApplication style,
                                                    const PathAtpgConfig& cfg = {});

} // namespace flh
