#include "atpg/path_atpg.hpp"

#include "atpg/stuck_atpg.hpp"
#include "util/rng.hpp"

namespace flh {

PathAtpgResult generatePathDelayTests(const Netlist& nl, std::span<const DelayPath> paths,
                                      TestApplication style, const PathAtpgConfig& cfg) {
    PathAtpgResult res;
    Podem podem(nl, cfg.podem);
    Rng rng(cfg.seed);
    const auto& ffs = nl.flipFlops();

    for (const DelayPath& path : paths) {
        for (const bool rising : {true, false}) {
            ++res.attempted;
            const PathDelayFault fault{path, rising};

            const auto values = onPathValues(nl, path, rising);
            std::vector<std::pair<NetId, Logic>> cons;
            if (values.empty() || !sensitizationConstraints(nl, path, cons)) {
                ++res.unsensitizable;
                continue;
            }

            // V2 objectives: sensitization + post-transition input value.
            std::vector<std::pair<NetId, Logic>> v2_obj = cons;
            v2_obj.push_back({path.nets[0], values[0]});
            podem.clearFrozen();
            Pattern v2;
            const PodemOutcome v2_out = podem.justifyAll(v2_obj, v2);
            if (v2_out == PodemOutcome::Untestable) {
                ++res.infeasible; // a false path: no input can sensitize it
                continue;
            }
            if (v2_out == PodemOutcome::Aborted) {
                ++res.aborted;
                continue;
            }

            bool added = false;
            for (int attempt = 0; attempt < cfg.justify_retries && !added; ++attempt) {
                Pattern v2f = v2;
                fillRandom(v2f, rng);
                TwoPattern tp;
                tp.v2 = v2f;

                const Logic v1_value = negate(values[0]);
                switch (style) {
                    case TestApplication::EnhancedScan: {
                        podem.clearFrozen();
                        Pattern v1;
                        if (podem.justify(path.nets[0], v1_value, v1) != PodemOutcome::Success)
                            break;
                        fillRandom(v1, rng);
                        tp.v1 = std::move(v1);
                        break;
                    }
                    case TestApplication::SkewedLoad: {
                        podem.clearFrozen();
                        for (std::size_t i = 0; i + 1 < ffs.size(); ++i)
                            podem.freeze(nl.gate(ffs[i + 1]).output, v2f.state[i]);
                        Pattern v1;
                        if (podem.justify(path.nets[0], v1_value, v1) != PodemOutcome::Success)
                            break;
                        fillRandom(v1, rng);
                        // The pair must be structurally exact.
                        tp = makePair(nl, style, v1, v2f.pis,
                                      v2f.state.empty() ? Logic::Zero : v2f.state.back());
                        break;
                    }
                    case TestApplication::Broadside: {
                        std::vector<std::pair<NetId, Logic>> v1_obj;
                        for (std::size_t i = 0; i < ffs.size(); ++i)
                            v1_obj.push_back({nl.gate(ffs[i]).inputs[0], v2f.state[i]});
                        v1_obj.push_back({path.nets[0], v1_value});
                        podem.clearFrozen();
                        Pattern v1;
                        if (podem.justifyAll(v1_obj, v1) != PodemOutcome::Success) break;
                        fillRandom(v1, rng);
                        tp = makePair(nl, style, v1, v2f.pis);
                        break;
                    }
                }
                if (tp.v1.state.empty()) break; // justification failed
                if (testsPath(nl, fault, tp)) {
                    res.tests.push_back({fault, tp});
                    ++res.tested;
                    added = true;
                }
            }
            if (!added) ++res.justify_failed;
        }
    }
    return res;
}

} // namespace flh
