#include "atpg/stuck_atpg.hpp"

#include "obs/telemetry.hpp"

namespace flh {

void fillRandom(Pattern& p, Rng& rng) {
    for (Logic& b : p.pis)
        if (b == Logic::X) b = rng.chance(0.5) ? Logic::One : Logic::Zero;
    for (Logic& b : p.state)
        if (b == Logic::X) b = rng.chance(0.5) ? Logic::One : Logic::Zero;
}

StuckAtpgResult generateStuckAtTests(const Netlist& nl, std::span<const FaultSite> faults,
                                     const StuckAtpgConfig& cfg) {
    obs::ScopedSpan span("atpg:stuck_at", "atpg");
    StuckAtpgResult res;
    Rng rng(cfg.seed);

    // Phase 1: random patterns with fault dropping.
    {
        obs::ScopedSpan phase_span("atpg:stuck_at:random", "atpg");
        res.patterns =
            randomPatterns(nl, static_cast<std::size_t>(cfg.random_patterns), rng.next());
        res.coverage = runStuckAtFaultSim(nl, res.patterns, faults);
    }

    // Phase 2: deterministic top-off for survivors.
    obs::ScopedSpan topoff_span("atpg:stuck_at:topoff", "atpg");
    Podem podem(nl, cfg.podem);
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
        if (res.coverage.detected_mask[fi]) continue;
        Pattern p;
        switch (podem.generate(faults[fi], p)) {
            case PodemOutcome::Success: {
                fillRandom(p, rng);
                // Drop every remaining fault this pattern also catches.
                const Pattern one[1] = {p};
                const FaultSimResult hit = runStuckAtFaultSim(nl, one, faults);
                for (std::size_t fj = 0; fj < faults.size(); ++fj) {
                    if (hit.detected_mask[fj] && !res.coverage.detected_mask[fj]) {
                        res.coverage.detected_mask[fj] = true;
                        ++res.coverage.detected;
                    }
                }
                res.patterns.push_back(std::move(p));
                ++res.podem_generated;
                break;
            }
            case PodemOutcome::Aborted:
                ++res.aborted;
                break;
            case PodemOutcome::Untestable:
                ++res.untestable;
                break;
        }
    }
    static obs::Counter& c_generated = obs::counter("atpg.generated");
    static obs::Counter& c_aborted = obs::counter("atpg.aborted");
    static obs::Counter& c_untestable = obs::counter("atpg.untestable");
    c_generated.add(res.podem_generated);
    c_aborted.add(res.aborted);
    c_untestable.add(res.untestable);
    return res;
}

} // namespace flh
