// PODEM (Path-Oriented DEcision Making) test generation.
//
// Combinational, over the full-scan view: the controllable sources are the
// primary inputs and the flip-flop outputs (scan state); the observation
// points are the primary outputs and the flip-flop D inputs.
//
// The implementation runs good and faulty machines side by side in two
// pattern slots of the event-driven simulator, which gives the classical
// D-algebra for free: a net carries "D" when the two slots hold definite,
// different values. Backtracing uses a generic gate-agnostic objective rule
// (try each unassigned input with each value; prefer the one that forces the
// objective), so complex cells (AOI/OAI/MUX) need no special cases.
//
// Sources can be frozen to fixed values before generation — that is how the
// skewed-load ATPG constrains V1's state to be the shifted V2 state, and how
// broadside justification pins the required next-state bits.
//
// Implication deliberately stays on the one-word PatternSim rather than the
// word-packed PackedSim: PODEM implies a single candidate assignment at a
// time (two slots of one word), so wider planes would only add memory
// traffic. Grading the generated tests, by contrast, goes through the
// packed engine via runStuckAtFaultSim / runTransitionFaultSim, whose
// width clamp (ceil(n_patterns / 64)) keeps the one-test-at-a-time calls
// on a single word automatically.
#pragma once

#include "fault/fault_sim.hpp"

#include <optional>
#include <vector>

namespace flh {

struct PodemConfig {
    int max_backtracks = 300;
    std::uint64_t seed = 1; ///< decision-ordering randomization
};

/// Outcome classification for one generation attempt.
enum class PodemOutcome : std::uint8_t { Success, Untestable, Aborted };

class Podem {
public:
    explicit Podem(const Netlist& nl, PodemConfig cfg = {});

    /// Freeze a source (PI or FF output) net to a value for all subsequent
    /// calls; pass Logic::X to unfreeze. Throws if `net` is not a source.
    void freeze(NetId net, Logic value);
    void clearFrozen();

    /// Generate a pattern detecting `fault`. On success the pattern has
    /// Logic::X in positions PODEM never needed (caller random-fills).
    PodemOutcome generate(const FaultSite& fault, Pattern& out);

    /// Justify `value` on `net` (no fault, no propagation requirement).
    PodemOutcome justify(NetId net, Logic value, Pattern& out);

    /// Justify several (net, value) requirements simultaneously.
    PodemOutcome justifyAll(const std::vector<std::pair<NetId, Logic>>& objectives, Pattern& out);

    [[nodiscard]] std::size_t backtracksUsed() const noexcept { return backtracks_; }

private:
    struct Decision {
        NetId source;
        Logic value;
        bool tried_both;
    };

    void resetState();
    void assignSource(NetId source, Logic v);
    [[nodiscard]] Logic goodValue(NetId n) const;
    [[nodiscard]] Logic faultyValue(NetId n) const;
    [[nodiscard]] bool hasD(NetId n) const;
    [[nodiscard]] bool isSource(NetId n) const;

    /// Walk an objective back to an unassigned, unfrozen source.
    [[nodiscard]] std::optional<std::pair<NetId, Logic>> backtrace(NetId net, Logic v);

    /// Gates with D on an input and X on the output.
    [[nodiscard]] std::vector<GateId> dFrontier() const;

    /// True if some observation point carries D.
    [[nodiscard]] bool faultObserved() const;

    /// Shared decision loop; `goal` returns +1 done, 0 keep going, -1 dead end.
    template <typename GoalFn, typename ObjectiveFn>
    PodemOutcome decisionLoop(GoalFn goal, ObjectiveFn next_objective, Pattern& out);

    Pattern extractPattern() const;

    const Netlist* nl_;
    PodemConfig cfg_;
    PatternSim sim_;  ///< good machine
    PatternSim fsim_; ///< faulty machine (fault injected during generate)
    std::vector<NetId> sources_;
    std::vector<Logic> frozen_;   ///< per net (X = not frozen)
    std::vector<Logic> assigned_; ///< per net (X = unassigned), sources only
    std::vector<Decision> stack_;
    std::size_t backtracks_ = 0;
    bool fault_active_ = false;
    FaultSite fault_{};
};

} // namespace flh
