#include "atpg/transition_atpg.hpp"

#include "obs/telemetry.hpp"

#include <algorithm>

namespace flh {

namespace {

Pattern randomPattern(const Netlist& nl, Rng& rng) {
    Pattern p;
    p.pis.assign(nl.pis().size(), Logic::X);
    p.state.assign(nl.flipFlops().size(), Logic::X);
    fillRandom(p, rng);
    return p;
}

std::vector<Logic> randomBits(std::size_t n, Rng& rng) {
    std::vector<Logic> v(n);
    for (Logic& b : v) b = rng.chance(0.5) ? Logic::One : Logic::Zero;
    return v;
}

/// Random two-pattern test respecting the style's structural constraint.
TwoPattern randomPair(const Netlist& nl, TestApplication style, Rng& rng) {
    const Pattern v1 = randomPattern(nl, rng);
    switch (style) {
        case TestApplication::EnhancedScan: {
            TwoPattern tp;
            tp.v1 = v1;
            tp.v2 = randomPattern(nl, rng);
            return tp;
        }
        case TestApplication::Broadside:
        case TestApplication::SkewedLoad:
            return makePair(nl, style, v1, randomBits(nl.pis().size(), rng),
                            rng.chance(0.5) ? Logic::One : Logic::Zero);
    }
    return {};
}

} // namespace

TransitionAtpgResult generateTransitionTests(const Netlist& nl, TestApplication style,
                                             std::span<const TransitionFault> faults,
                                             const TransitionAtpgConfig& cfg) {
    obs::ScopedSpan span(obs::enabled() ? std::string("atpg:transition:") + toString(style)
                                        : std::string(),
                         "atpg");
    TransitionAtpgResult res;
    res.style = style;
    Rng rng(cfg.seed);

    // Phase 1: random pairs with fault dropping.
    {
        obs::ScopedSpan phase_span("atpg:transition:random", "atpg");
        for (int i = 0; i < cfg.random_pairs; ++i)
            res.tests.push_back(randomPair(nl, style, rng));
        res.coverage = runTransitionFaultSim(nl, res.tests, faults);
    }

    // Phase 2: deterministic top-off.
    obs::ScopedSpan topoff_span("atpg:transition:topoff", "atpg");
    Podem podem(nl, cfg.podem);
    const auto& ffs = nl.flipFlops();

    const auto tryAddTest = [&](std::size_t fi, const TwoPattern& tp) -> bool {
        const TwoPattern one[1] = {tp};
        const FaultSimResult hit = runTransitionFaultSim(nl, one, faults);
        if (!hit.detected_mask[fi]) return false;
        for (std::size_t fj = 0; fj < faults.size(); ++fj) {
            if (hit.detected_mask[fj] && !res.coverage.detected_mask[fj]) {
                res.coverage.detected_mask[fj] = true;
                ++res.coverage.detected;
            }
        }
        res.tests.push_back(tp);
        ++res.generated;
        return true;
    };

    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
        if (res.coverage.detected_mask[fi]) continue;
        const TransitionFault& tf = faults[fi];

        // V2: detect the equivalent stuck-at fault.
        Pattern v2;
        podem.clearFrozen();
        const PodemOutcome v2_out = podem.generate(tf.equivalentStuckAt(), v2);
        if (v2_out == PodemOutcome::Untestable) {
            ++res.untestable;
            continue;
        }
        if (v2_out == PodemOutcome::Aborted) {
            ++res.aborted;
            continue;
        }

        bool added = false;
        for (int attempt = 0; attempt < cfg.justify_retries && !added; ++attempt) {
            switch (style) {
                case TestApplication::EnhancedScan: {
                    // V1: independently justify the initial value at the site.
                    Pattern v1;
                    podem.clearFrozen();
                    if (podem.justify(tf.net, tf.initialValue(), v1) != PodemOutcome::Success)
                        break;
                    fillRandom(v1, rng);
                    TwoPattern tp;
                    tp.v1 = std::move(v1);
                    tp.v2 = v2;
                    fillRandom(tp.v2, rng);
                    added = tryAddTest(fi, tp);
                    break;
                }
                case TestApplication::SkewedLoad: {
                    // V1's state is V2's state shifted back by one position;
                    // only the PIs and the scan-out-end bit remain free.
                    Pattern v2f = v2;
                    fillRandom(v2f, rng);
                    podem.clearFrozen();
                    for (std::size_t i = 0; i + 1 < ffs.size(); ++i)
                        podem.freeze(nl.gate(ffs[i + 1]).output, v2f.state[i]);
                    Pattern v1;
                    if (podem.justify(tf.net, tf.initialValue(), v1) != PodemOutcome::Success) {
                        ++res.justify_failures;
                        break;
                    }
                    fillRandom(v1, rng);
                    // Re-derive V2's state from the (filled) V1 so the pair
                    // is structurally exact, keeping V2's required PIs.
                    TwoPattern tp = makePair(nl, style, v1, v2f.pis,
                                             v2f.state.empty() ? Logic::Zero
                                                               : v2f.state.back());
                    added = tryAddTest(fi, tp);
                    break;
                }
                case TestApplication::Broadside: {
                    // V1 must drive the circuit into V2's required state:
                    // justify every specified bit of V2.state at the FF D
                    // inputs — the sequential justification that makes
                    // broadside coverage poor.
                    std::vector<std::pair<NetId, Logic>> objectives;
                    for (std::size_t i = 0; i < ffs.size(); ++i) {
                        if (v2.state[i] == Logic::X) continue;
                        objectives.push_back({nl.gate(ffs[i]).inputs[0], v2.state[i]});
                    }
                    // The initial value at the site must hold in V1 as well.
                    objectives.push_back({tf.net, tf.initialValue()});
                    Pattern v1;
                    podem.clearFrozen();
                    if (podem.justifyAll(objectives, v1) != PodemOutcome::Success) {
                        ++res.justify_failures;
                        break;
                    }
                    fillRandom(v1, rng);
                    TwoPattern tp = makePair(nl, style, v1, [&] {
                        Pattern v2f = v2;
                        fillRandom(v2f, rng);
                        return v2f.pis;
                    }());
                    added = tryAddTest(fi, tp);
                    break;
                }
            }
        }
        (void)added;
    }
    static obs::Counter& c_generated = obs::counter("atpg.generated");
    static obs::Counter& c_aborted = obs::counter("atpg.aborted");
    static obs::Counter& c_untestable = obs::counter("atpg.untestable");
    c_generated.add(res.generated);
    c_aborted.add(res.aborted);
    c_untestable.add(res.untestable);
    return res;
}

} // namespace flh
