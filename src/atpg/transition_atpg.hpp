// Two-pattern (transition-fault) test generation for the paper's three
// application styles.
//
// The generation difficulty ordering is the paper's motivation (Section I):
//  * EnhancedScan — V1 and V2 are independent PODEM problems ("allows easy
//    application of a transition and enables deterministic choice of any
//    launching pattern ... for best possible fault coverage"). FLH applies
//    the *same* vectors — the benches verify the coverage is identical.
//  * SkewedLoad — V1's state is V2's state shifted by one position, so the
//    launch pattern is highly correlated with the initialization pattern
//    ("test generation for high fault coverage can be difficult").
//  * Broadside — V2's state must be the circuit's response to V1, a
//    sequential justification problem ("can suffer from poor fault
//    coverage").
#pragma once

#include "atpg/stuck_atpg.hpp"

namespace flh {

struct TransitionAtpgConfig {
    int random_pairs = 128;
    int justify_retries = 3; ///< re-tries with different fills (constrained styles)
    PodemConfig podem{};
    std::uint64_t seed = 11;
};

struct TransitionAtpgResult {
    TestApplication style = TestApplication::EnhancedScan;
    std::vector<TwoPattern> tests;
    FaultSimResult coverage; ///< final fault-sim over all generated tests
    std::size_t generated = 0;
    std::size_t aborted = 0;
    std::size_t untestable = 0;
    std::size_t justify_failures = 0; ///< V1 could not meet the style constraint
};

[[nodiscard]] TransitionAtpgResult generateTransitionTests(const Netlist& nl,
                                                           TestApplication style,
                                                           std::span<const TransitionFault> faults,
                                                           const TransitionAtpgConfig& cfg = {});

} // namespace flh
