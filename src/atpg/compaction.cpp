#include "atpg/compaction.hpp"

#include <algorithm>

namespace flh {

namespace {

/// Shared reverse-order greedy pass.
template <typename Test, typename DetectFn>
CompactionStats compact(std::vector<Test>& tests, std::size_t n_faults, DetectFn detects_new) {
    CompactionStats stats;
    stats.before = tests.size();
    std::vector<bool> covered(n_faults, false);
    std::vector<bool> keep(tests.size(), false);
    for (std::size_t i = tests.size(); i-- > 0;) {
        if (detects_new(tests[i], covered)) keep[i] = true;
    }
    std::vector<Test> kept;
    kept.reserve(tests.size());
    for (std::size_t i = 0; i < tests.size(); ++i)
        if (keep[i]) kept.push_back(std::move(tests[i]));
    tests = std::move(kept);
    stats.after = tests.size();
    for (const bool c : covered)
        if (c) ++stats.detected;
    return stats;
}

} // namespace

CompactionStats compactStuckAtTests(const Netlist& nl, std::vector<Pattern>& patterns,
                                    std::span<const FaultSite> faults) {
    return compact(patterns, faults.size(), [&](const Pattern& p, std::vector<bool>& covered) {
        const Pattern one[1] = {p};
        const FaultSimResult r = runStuckAtFaultSim(nl, one, faults);
        bool fresh = false;
        for (std::size_t f = 0; f < faults.size(); ++f) {
            if (r.detected_mask[f] && !covered[f]) {
                covered[f] = true;
                fresh = true;
            }
        }
        return fresh;
    });
}

CompactionStats compactTransitionTests(const Netlist& nl, std::vector<TwoPattern>& tests,
                                       std::span<const TransitionFault> faults) {
    return compact(tests, faults.size(), [&](const TwoPattern& t, std::vector<bool>& covered) {
        const TwoPattern one[1] = {t};
        const FaultSimResult r = runTransitionFaultSim(nl, one, faults);
        bool fresh = false;
        for (std::size_t f = 0; f < faults.size(); ++f) {
            if (r.detected_mask[f] && !covered[f]) {
                covered[f] = true;
                fresh = true;
            }
        }
        return fresh;
    });
}

} // namespace flh
