#include "atpg/podem.hpp"

#include <cassert>
#include <stdexcept>

namespace flh {

Podem::Podem(const Netlist& nl, PodemConfig cfg) : nl_(&nl), cfg_(cfg), sim_(nl), fsim_(nl) {
    for (const NetId pi : nl.pis()) sources_.push_back(pi);
    for (const GateId ff : nl.flipFlops()) sources_.push_back(nl.gate(ff).output);
    frozen_.assign(nl.netCount(), Logic::X);
    assigned_.assign(nl.netCount(), Logic::X);
}

void Podem::freeze(NetId net, Logic value) {
    if (!isSource(net)) throw std::invalid_argument("freeze: not a source net");
    frozen_.at(net) = value;
}

void Podem::clearFrozen() { frozen_.assign(nl_->netCount(), Logic::X); }

bool Podem::isSource(NetId n) const {
    const Net& net = nl_->net(n);
    return net.is_pi || (net.driver != kInvalidId && isSequential(nl_->gate(net.driver).fn));
}

void Podem::resetState() {
    sim_.reset();
    fsim_.reset();
    assigned_.assign(nl_->netCount(), Logic::X);
    stack_.clear();
    backtracks_ = 0;
    if (fault_active_) fsim_.injectFault(fault_);
    for (const NetId s : sources_) {
        if (frozen_[s] != Logic::X) {
            assigned_[s] = frozen_[s];
            sim_.setNet(s, PV::all(frozen_[s]));
            fsim_.setNet(s, PV::all(frozen_[s]));
        }
    }
    sim_.propagate();
    fsim_.propagate();
}

void Podem::assignSource(NetId source, Logic v) {
    assigned_[source] = v;
    sim_.setNet(source, PV::all(v));
    fsim_.setNet(source, PV::all(v));
    sim_.propagate();
    fsim_.propagate();
}

Logic Podem::goodValue(NetId n) const { return sim_.get(n).get(0); }
Logic Podem::faultyValue(NetId n) const { return fsim_.get(n).get(0); }

bool Podem::hasD(NetId n) const {
    const Logic g = goodValue(n);
    const Logic f = faultyValue(n);
    return g != Logic::X && f != Logic::X && g != f;
}

std::optional<std::pair<NetId, Logic>> Podem::backtrace(NetId net, Logic v) {
    // Walk toward the sources on the good machine, at each gate choosing an
    // unassigned input whose value can still produce the objective. The
    // choice only steers the search — a poor pick is corrected by
    // backtracking, so the generic rule is sound for every cell function.
    for (int guard = 0; guard < static_cast<int>(nl_->netCount()) + 8; ++guard) {
        if (isSource(net)) {
            if (assigned_[net] != Logic::X || frozen_[net] != Logic::X) return std::nullopt;
            return std::make_pair(net, v);
        }
        const GateId g = nl_->net(net).driver;
        if (g == kInvalidId) return std::nullopt;
        const Gate& gate = nl_->gate(g);

        const auto evalWith = [&](std::size_t pin, Logic b) {
            Logic ins[8];
            for (std::size_t p = 0; p < gate.inputs.size(); ++p)
                ins[p] = (p == pin) ? b : goodValue(gate.inputs[p]);
            return evalCellScalar(gate.fn, {ins, gate.inputs.size()});
        };

        std::optional<std::pair<std::size_t, Logic>> forcing;
        std::optional<std::pair<std::size_t, Logic>> possible;
        for (std::size_t p = 0; p < gate.inputs.size() && !forcing; ++p) {
            if (goodValue(gate.inputs[p]) != Logic::X) continue;
            for (const Logic b : {Logic::Zero, Logic::One}) {
                const Logic r = evalWith(p, b);
                if (r == v) {
                    forcing = {p, b};
                    break;
                }
                if (r == Logic::X && !possible) possible = {p, b};
            }
        }
        const auto choice = forcing ? forcing : possible;
        if (!choice) return std::nullopt;
        net = gate.inputs[choice->first];
        v = choice->second;
    }
    return std::nullopt;
}

std::vector<GateId> Podem::dFrontier() const {
    std::vector<GateId> out;
    for (const GateId g : nl_->topoOrder()) {
        const Gate& gate = nl_->gate(g);
        if (goodValue(gate.output) != Logic::X && faultyValue(gate.output) != Logic::X &&
            goodValue(gate.output) == faultyValue(gate.output))
            continue;
        if (hasD(gate.output)) continue; // already propagated past this gate
        bool d_in = false;
        for (const NetId in : gate.inputs)
            if (hasD(in)) {
                d_in = true;
                break;
            }
        // A pin fault creates its difference *inside* the receiving gate:
        // the input net itself never carries D.
        if (!d_in && fault_active_ && fault_.isPinFault() && fault_.gate == g &&
            goodValue(fault_.net) != Logic::X)
            d_in = true;
        if (d_in) out.push_back(g);
    }
    return out;
}

bool Podem::faultObserved() const {
    for (const NetId po : nl_->pos())
        if (hasD(po)) return true;
    for (const GateId ff : nl_->flipFlops())
        if (hasD(nl_->gate(ff).inputs[0])) return true;
    return false;
}

Pattern Podem::extractPattern() const {
    Pattern p;
    p.pis.reserve(nl_->pis().size());
    p.state.reserve(nl_->flipFlops().size());
    for (const NetId pi : nl_->pis()) p.pis.push_back(assigned_[pi]);
    for (const GateId ff : nl_->flipFlops()) p.state.push_back(assigned_[nl_->gate(ff).output]);
    return p;
}

template <typename GoalFn, typename ObjectiveFn>
PodemOutcome Podem::decisionLoop(GoalFn goal, ObjectiveFn next_objective, Pattern& out) {
    const auto unassign = [&](NetId s) {
        assigned_[s] = Logic::X;
        sim_.setNet(s, PV::all(Logic::X));
        fsim_.setNet(s, PV::all(Logic::X));
        sim_.propagate();
        fsim_.propagate();
    };
    const auto backtrack = [&]() -> bool {
        ++backtracks_;
        while (!stack_.empty()) {
            Decision& d = stack_.back();
            if (!d.tried_both) {
                d.tried_both = true;
                d.value = negate(d.value);
                assignSource(d.source, d.value);
                return true;
            }
            unassign(d.source);
            stack_.pop_back();
        }
        return false;
    };

    for (;;) {
        if (backtracks_ > static_cast<std::size_t>(cfg_.max_backtracks))
            return PodemOutcome::Aborted;

        const int state = goal();
        if (state > 0) {
            out = extractPattern();
            return PodemOutcome::Success;
        }
        bool dead = state < 0;

        std::optional<std::pair<NetId, Logic>> assign;
        if (!dead) {
            const auto obj = next_objective();
            if (!obj) {
                dead = true;
            } else {
                assign = backtrace(obj->first, obj->second);
                if (!assign) dead = true;
            }
        }
        if (dead) {
            if (!backtrack()) return PodemOutcome::Untestable;
            continue;
        }
        stack_.push_back(Decision{assign->first, assign->second, false});
        assignSource(assign->first, assign->second);
    }
}

PodemOutcome Podem::generate(const FaultSite& fault, Pattern& out) {
    fault_active_ = true;
    fault_ = fault;
    resetState();

    const Logic activate = fault.stuck_at_one ? Logic::Zero : Logic::One;

    const auto goal = [&]() -> int {
        if (faultObserved()) return 1;
        const Logic site = goodValue(fault.net);
        if (site != Logic::X && site != activate) return -1; // cannot activate
        return 0;
    };
    const auto next_objective = [&]() -> std::optional<std::pair<NetId, Logic>> {
        // 1) Activate the fault.
        if (goodValue(fault.net) == Logic::X) return std::make_pair(fault.net, activate);
        // 2) Advance the D-frontier: set an X input of a frontier gate to
        //    its non-controlling-ish value (backtrace fixes bad guesses).
        const auto frontier = dFrontier();
        for (const GateId g : frontier) {
            const Gate& gate = nl_->gate(g);
            for (const NetId in : gate.inputs) {
                if (goodValue(in) != Logic::X) continue;
                const Logic nc = (gate.fn == CellFn::And || gate.fn == CellFn::Nand)
                                     ? Logic::One
                                     : Logic::Zero;
                return std::make_pair(in, nc);
            }
        }
        return std::nullopt; // frontier empty or saturated
    };

    const PodemOutcome r = decisionLoop(goal, next_objective, out);
    fault_active_ = false;
    return r;
}

PodemOutcome Podem::justify(NetId net, Logic value, Pattern& out) {
    return justifyAll({{net, value}}, out);
}

PodemOutcome Podem::justifyAll(const std::vector<std::pair<NetId, Logic>>& objectives,
                               Pattern& out) {
    fault_active_ = false;
    resetState();

    const auto goal = [&]() -> int {
        bool all = true;
        for (const auto& [net, v] : objectives) {
            const Logic cur = goodValue(net);
            if (cur == Logic::X) {
                all = false;
            } else if (cur != v) {
                return -1;
            }
        }
        return all ? 1 : 0;
    };
    const auto next_objective = [&]() -> std::optional<std::pair<NetId, Logic>> {
        for (const auto& [net, v] : objectives)
            if (goodValue(net) == Logic::X) return std::make_pair(net, v);
        return std::nullopt;
    };
    return decisionLoop(goal, next_objective, out);
}

} // namespace flh
