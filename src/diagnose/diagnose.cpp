#include "diagnose/diagnose.hpp"

#include <algorithm>

namespace flh {

namespace {

void loadPattern(PatternSim& sim, const Pattern& p) {
    const Netlist& nl = sim.netlist();
    for (std::size_t i = 0; i < nl.pis().size(); ++i)
        sim.setNet(nl.pis()[i], PV::all(p.pis[i]));
    for (std::size_t i = 0; i < nl.flipFlops().size(); ++i)
        sim.setNet(nl.gate(nl.flipFlops()[i]).output, PV::all(p.state[i]));
    sim.propagate();
}

Response observe(const PatternSim& sim) {
    const Netlist& nl = sim.netlist();
    Response r;
    r.reserve(nl.pos().size() + nl.flipFlops().size());
    for (const NetId po : nl.pos()) r.push_back(sim.get(po).get(0));
    for (const GateId ff : nl.flipFlops()) r.push_back(sim.get(nl.gate(ff).inputs[0]).get(0));
    return r;
}

} // namespace

std::vector<Response> simulateGoodResponses(const Netlist& nl,
                                            std::span<const TwoPattern> tests) {
    std::vector<Response> out;
    out.reserve(tests.size());
    PatternSim sim(nl);
    for (const TwoPattern& tp : tests) {
        loadPattern(sim, tp.v2);
        out.push_back(observe(sim));
    }
    return out;
}

std::vector<Response> simulateFaultyResponses(const Netlist& nl,
                                              std::span<const TwoPattern> tests,
                                              const TransitionFault& fault) {
    // A slow net manifests only when the test launches the late transition:
    // V1 must establish the initial value. If it does, the capture equals
    // the V2 response with the net stuck at its old value; otherwise the
    // die responds like the good machine.
    std::vector<Response> out;
    out.reserve(tests.size());
    PatternSim sim_v1(nl);
    PatternSim sim_v2(nl);
    for (const TwoPattern& tp : tests) {
        loadPattern(sim_v1, tp.v1);
        const bool launched = sim_v1.get(fault.net).get(0) == fault.initialValue();
        loadPattern(sim_v2, tp.v2);
        if (launched) {
            sim_v2.injectFault(fault.equivalentStuckAt());
            sim_v2.propagate();
            out.push_back(observe(sim_v2));
            sim_v2.clearFault();
            sim_v2.propagate();
        } else {
            out.push_back(observe(sim_v2));
        }
    }
    return out;
}

std::size_t DiagnosisResult::rankOf(std::size_t fault_index) const {
    for (std::size_t i = 0; i < ranking.size(); ++i)
        if (ranking[i].fault_index == fault_index) return i + 1;
    return 0;
}

std::size_t DiagnosisResult::bestTieSize() const {
    if (ranking.empty()) return 0;
    std::size_t n = 0;
    while (n < ranking.size() && ranking[n].mismatching_tests == ranking[0].mismatching_tests)
        ++n;
    return n;
}

DiagnosisResult diagnose(const Netlist& nl, std::span<const TwoPattern> tests,
                         std::span<const Response> observed,
                         std::span<const TransitionFault> candidates) {
    DiagnosisResult res;
    res.ranking.reserve(candidates.size());
    for (std::size_t c = 0; c < candidates.size(); ++c) {
        const auto predicted = simulateFaultyResponses(nl, tests, candidates[c]);
        int mismatches = 0;
        for (std::size_t t = 0; t < tests.size(); ++t)
            if (predicted[t] != observed[t]) ++mismatches;
        res.ranking.push_back(Candidate{c, mismatches});
    }
    std::stable_sort(res.ranking.begin(), res.ranking.end(),
                     [](const Candidate& a, const Candidate& b) {
                         return a.mismatching_tests < b.mismatching_tests;
                     });
    return res;
}

} // namespace flh
