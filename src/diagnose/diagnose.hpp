// Delay-fault diagnosis (Section I: "Scan-based structural delay testing
// not only helps detection but also diagnosis of delay faults, and hence,
// is a popular choice").
//
// Cause-effect diagnosis: given the observed per-test responses of a
// defective die, every candidate transition fault's responses are simulated
// and scored against the observation. The arbitrary two-pattern application
// (FLH/enhanced scan) is what makes the per-test responses reproducible
// enough for this to work: each test applies a known (V1, V2).
#pragma once

#include "fault/fault_sim.hpp"

#include <vector>

namespace flh {

/// Per-test capture view (POs then FF D values, fully specified).
using Response = std::vector<Logic>;

/// Simulate the responses a die with `fault` produces under `tests`.
[[nodiscard]] std::vector<Response> simulateFaultyResponses(const Netlist& nl,
                                                            std::span<const TwoPattern> tests,
                                                            const TransitionFault& fault);

/// Good-machine responses.
[[nodiscard]] std::vector<Response> simulateGoodResponses(const Netlist& nl,
                                                          std::span<const TwoPattern> tests);

struct Candidate {
    std::size_t fault_index = 0;
    int mismatching_tests = 0; ///< tests where candidate's prediction misses
};

struct DiagnosisResult {
    /// Candidates ranked best-first (fewest mismatches).
    std::vector<Candidate> ranking;

    /// Rank of a given fault index (1-based; 0 = not present).
    [[nodiscard]] std::size_t rankOf(std::size_t fault_index) const;
    /// Number of candidates tied at the best score.
    [[nodiscard]] std::size_t bestTieSize() const;
};

/// Rank `candidates` by how well their simulated responses explain
/// `observed` (one response per test).
[[nodiscard]] DiagnosisResult diagnose(const Netlist& nl, std::span<const TwoPattern> tests,
                                       std::span<const Response> observed,
                                       std::span<const TransitionFault> candidates);

} // namespace flh
