// Structural Verilog export.
//
// Emits the netlist as a synthesizable gate-level module over a small
// companion cell library (primitive gates + behavioral DFF/SDFF models),
// and — when a DftDesign is supplied at the dft layer — the FLH supply
// gating as per-gate wrapper instantiations. This is what a downstream
// adopter tapes in: the logic untouched, the holding hardware explicit.
#pragma once

#include "netlist/netlist.hpp"

#include <iosfwd>
#include <string>
#include <vector>

namespace flh {

struct VerilogOptions {
    /// Gates to wrap in an FLH supply-gating cell (usually the unique
    /// first-level gates); the wrapper adds TC/TC_B gating pins.
    std::vector<GateId> flh_gated_gates;
    /// Emit the companion primitive-cell definitions after the module.
    bool emit_cell_models = true;
};

void writeVerilog(std::ostream& os, const Netlist& nl, const VerilogOptions& opt = {});
[[nodiscard]] std::string writeVerilogString(const Netlist& nl, const VerilogOptions& opt = {});

/// Sanitize a net name into a legal Verilog identifier (non-identifier
/// characters become '_', a leading digit gains an "n_" prefix, and exact
/// Verilog keywords are escaped with a trailing '_'). Distinct names can
/// still sanitize to the same identifier ("a[0]" vs "a_0_"); writeVerilog
/// uniquifies per module, so prefer reading names from its output when
/// cross-referencing.
[[nodiscard]] std::string verilogName(const std::string& name);

} // namespace flh
