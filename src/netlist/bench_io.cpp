#include "netlist/bench_io.hpp"

#include "util/strings.hpp"

#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace flh {

namespace {

std::optional<CellFn> opToFn(const std::string& op) {
    const std::string u = toUpper(op);
    if (u == "AND") return CellFn::And;
    if (u == "OR") return CellFn::Or;
    if (u == "NAND") return CellFn::Nand;
    if (u == "NOR") return CellFn::Nor;
    if (u == "NOT" || u == "INV") return CellFn::Inv;
    if (u == "BUFF" || u == "BUF") return CellFn::Buf;
    if (u == "XOR") return CellFn::Xor;
    if (u == "XNOR") return CellFn::Xnor;
    if (u == "AOI21") return CellFn::Aoi21;
    if (u == "AOI22") return CellFn::Aoi22;
    if (u == "OAI21") return CellFn::Oai21;
    if (u == "OAI22") return CellFn::Oai22;
    if (u == "MUX2" || u == "MUX") return CellFn::Mux2;
    if (u == "DFF") return CellFn::Dff;
    if (u == "SDFF") return CellFn::Sdff;
    return std::nullopt;
}

std::string fnToOp(CellFn fn) {
    switch (fn) {
        case CellFn::Buf: return "BUFF";
        case CellFn::Inv: return "NOT";
        case CellFn::Mux2: return "MUX2";
        default: return toString(fn);
    }
}

struct PendingGate {
    std::string output;
    CellFn fn;
    std::vector<std::string> inputs;
    int line;
};

[[noreturn]] void fail(int line, const std::string& what) {
    throw std::runtime_error("bench parse error at line " + std::to_string(line) + ": " + what);
}

/// Associative base function used for the partial reductions when a wide
/// gate is tree-decomposed; the inverting variants (NAND/NOR/XNOR) keep the
/// inversion on the final gate only, so the overall logic is unchanged.
std::optional<CellFn> reductionFn(CellFn fn) {
    switch (fn) {
        case CellFn::And:
        case CellFn::Nand: return CellFn::And;
        case CellFn::Or:
        case CellFn::Nor: return CellFn::Or;
        case CellFn::Xor:
        case CellFn::Xnor: return CellFn::Xor;
        default: return std::nullopt;
    }
}

/// Add a combinational gate, tree-decomposing it when the library has no
/// cell of this width or the width exceeds the simulators' kMaxGateArity
/// ceiling (the simulators evaluate gates into fixed-size input buffers, so
/// Netlist::addGate rejects wider combinational gates outright). Partial
/// reductions land on fresh nets named `<out>__w<k>`.
void addGateDecomposed(Netlist& nl, CellFn fn, std::vector<NetId> ins, NetId out) {
    const Library& lib = nl.library();
    const auto fits = [&](CellFn f, std::size_t n) {
        return n <= kMaxGateArity && lib.has(f, static_cast<int>(n));
    };
    if (fits(fn, ins.size())) {
        nl.addGate(fn, ins, out);
        return;
    }
    const auto base = reductionFn(fn);
    if (!base)
        throw std::runtime_error(std::string("no ") + toString(fn) + "/" +
                                 std::to_string(ins.size()) +
                                 " cell in library and the function is not decomposable");
    int max_ar = 0;
    for (int n = static_cast<int>(std::min<std::size_t>(kMaxGateArity, ins.size())); n >= 2; --n)
        if (lib.has(*base, n)) {
            max_ar = n;
            break;
        }
    if (max_ar < 2)
        throw std::runtime_error(std::string("no 2+-input ") + toString(*base) +
                                 " cell to decompose " + toString(fn) + "/" +
                                 std::to_string(ins.size()));
    int tmp = 0;
    const auto freshNet = [&] {
        std::string n;
        do {
            n = nl.net(out).name + "__w" + std::to_string(tmp++);
        } while (nl.findNet(n));
        return nl.addNet(n);
    };
    while (!fits(fn, ins.size())) {
        if (ins.size() <= static_cast<std::size_t>(max_ar))
            throw std::runtime_error(std::string("no ") + toString(fn) + "/" +
                                     std::to_string(ins.size()) +
                                     " cell to finish decomposition");
        std::vector<NetId> chunk(ins.begin(), ins.begin() + max_ar);
        ins.erase(ins.begin(), ins.begin() + max_ar);
        const NetId t = freshNet();
        nl.addGate(*base, chunk, t);
        ins.push_back(t);
    }
    nl.addGate(fn, ins, out);
}

} // namespace

Netlist readBench(std::istream& in, const std::string& name, const Library& lib) {
    std::vector<std::string> inputs;
    std::vector<std::string> outputs;
    std::vector<PendingGate> pending;

    std::string raw;
    int line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        std::string_view line = trim(raw);
        if (const auto hash = line.find('#'); hash != std::string_view::npos)
            line = trim(line.substr(0, hash));
        if (line.empty()) continue;

        // INPUT(n) / OUTPUT(n) declarations. The keyword must be a whole
        // token — immediately followed by the parenthesized argument — so a
        // gate whose output name merely starts with it ("INPUT1 = AND(a, b)")
        // is not swallowed as a declaration.
        const auto declArg = [&](std::string_view kw) -> std::optional<std::string> {
            if (line.size() < kw.size() || toUpper(std::string(line.substr(0, kw.size()))) != kw)
                return std::nullopt;
            const std::string_view rest = trim(line.substr(kw.size()));
            if (rest.empty() || rest.front() != '(') return std::nullopt;
            const auto rp = rest.rfind(')');
            if (rp == std::string_view::npos) fail(line_no, "malformed declaration");
            return std::string(trim(rest.substr(1, rp - 1)));
        };
        if (auto n = declArg("INPUT")) {
            inputs.push_back(std::move(*n));
            continue;
        }
        if (auto n = declArg("OUTPUT")) {
            outputs.push_back(std::move(*n));
            continue;
        }

        const auto eq = line.find('=');
        if (eq == std::string_view::npos) fail(line_no, "expected assignment");
        const std::string lhs{trim(line.substr(0, eq))};
        const std::string_view rhs = trim(line.substr(eq + 1));
        const auto rl = rhs.find('(');
        const auto rr = rhs.rfind(')');
        if (rl == std::string_view::npos || rr == std::string_view::npos || rr < rl)
            fail(line_no, "expected OP(args)");
        const std::string op{trim(rhs.substr(0, rl))};
        const auto fn = opToFn(op);
        if (!fn) fail(line_no, "unknown operator '" + op + "'");
        PendingGate pg;
        pg.output = lhs;
        pg.fn = *fn;
        pg.inputs = splitTrim(rhs.substr(rl + 1, rr - rl - 1), ',');
        pg.line = line_no;
        if (pg.inputs.empty()) fail(line_no, "gate with no inputs");
        pending.push_back(std::move(pg));
    }

    Netlist nl(name, lib);
    const auto ensureNet = [&nl](const std::string& n) {
        if (const auto id = nl.findNet(n)) return *id;
        return nl.addNet(n);
    };

    for (const std::string& n : inputs) nl.addPi(n);
    // Create output nets of all gates first so forward references resolve.
    for (const PendingGate& pg : pending) ensureNet(pg.output);
    for (const PendingGate& pg : pending) {
        std::vector<NetId> ins;
        ins.reserve(pg.inputs.size());
        for (const std::string& i : pg.inputs) ins.push_back(ensureNet(i));
        const NetId out = *nl.findNet(pg.output);
        try {
            if (pg.fn == CellFn::Dff) {
                if (ins.size() != 1) fail(pg.line, "DFF takes one input");
                nl.addDff(ins[0], out);
            } else {
                if (pg.fn == CellFn::Sdff && ins.size() != 3)
                    fail(pg.line, "SDFF takes three inputs (D, SI, SE)");
                if (isSequential(pg.fn)) {
                    // addGate registers sequential cells (SDFF included) in
                    // flipFlops(), same as the addDff path.
                    nl.addGate(pg.fn, ins, out);
                } else {
                    addGateDecomposed(nl, pg.fn, std::move(ins), out);
                }
            }
        } catch (const std::exception& e) {
            fail(pg.line, e.what());
        }
    }
    for (const std::string& n : outputs) {
        const auto id = nl.findNet(n);
        if (!id) throw std::runtime_error("OUTPUT references unknown net: " + n);
        nl.markPo(*id);
    }
    nl.check();
    return nl;
}

Netlist readBenchString(const std::string& text, const std::string& name, const Library& lib) {
    std::istringstream is(text);
    return readBench(is, name, lib);
}

Netlist readBenchFile(const std::string& path, const Library& lib) {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("cannot open " + path);
    std::string name = path;
    if (const auto slash = name.find_last_of('/'); slash != std::string::npos)
        name = name.substr(slash + 1);
    if (const auto dot = name.find_last_of('.'); dot != std::string::npos)
        name = name.substr(0, dot);
    return readBench(is, name, lib);
}

void writeBench(std::ostream& os, const Netlist& nl) {
    os << "# " << nl.name() << "\n";
    for (NetId pi : nl.pis()) os << "INPUT(" << nl.net(pi).name << ")\n";
    for (NetId po : nl.pos()) os << "OUTPUT(" << nl.net(po).name << ")\n";
    os << "\n";
    for (GateId g = 0; g < nl.gateCount(); ++g) {
        const Gate& gate = nl.gate(g);
        os << nl.net(gate.output).name << " = " << fnToOp(gate.fn) << "(";
        for (std::size_t i = 0; i < gate.inputs.size(); ++i) {
            if (i) os << ", ";
            os << nl.net(gate.inputs[i]).name;
        }
        os << ")\n";
    }
}

std::string writeBenchString(const Netlist& nl) {
    std::ostringstream os;
    writeBench(os, nl);
    return os.str();
}

} // namespace flh
