#include "netlist/netlist.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <stdexcept>
#include <unordered_set>

namespace flh {

Netlist::Netlist(std::string name, const Library& lib) : name_(std::move(name)), lib_(&lib) {}

NetId Netlist::addNet(const std::string& name) {
    if (by_name_.contains(name)) throw std::invalid_argument("duplicate net name: " + name);
    const NetId id = static_cast<NetId>(nets_.size());
    nets_.push_back(Net{name, kInvalidId, false});
    by_name_.emplace(name, id);
    invalidateCaches();
    return id;
}

NetId Netlist::addPi(const std::string& name) {
    const NetId id = addNet(name);
    nets_[id].is_pi = true;
    pis_.push_back(id);
    return id;
}

void Netlist::markPo(NetId net) {
    if (net >= nets_.size()) throw std::out_of_range("markPo: bad net");
    if (std::find(pos_.begin(), pos_.end(), net) == pos_.end()) pos_.push_back(net);
}

GateId Netlist::addGate(CellFn fn, const std::vector<NetId>& inputs, NetId output) {
    if (!isSequential(fn) && inputs.size() > kMaxGateArity)
        throw std::invalid_argument("addGate: arity " + std::to_string(inputs.size()) +
                                    " exceeds kMaxGateArity (" +
                                    std::to_string(kMaxGateArity) +
                                    "); decompose wide gates (see readBench)");
    const CellId cell = lib_->find(fn, static_cast<int>(inputs.size()));
    if (output >= nets_.size()) throw std::out_of_range("addGate: bad output net");
    if (nets_[output].driver != kInvalidId || nets_[output].is_pi)
        throw std::invalid_argument("addGate: net already driven: " + nets_[output].name);
    for (NetId in : inputs)
        if (in >= nets_.size()) throw std::out_of_range("addGate: bad input net");

    const GateId id = static_cast<GateId>(gates_.size());
    gates_.push_back(Gate{cell, fn, inputs, output});
    nets_[output].driver = id;
    if (isSequential(fn)) ffs_.push_back(id);
    invalidateCaches();
    return id;
}

GateId Netlist::addDff(NetId d, NetId q) { return addGate(CellFn::Dff, {d}, q); }

void Netlist::rewireInput(GateId gate, int pin, NetId net) {
    Gate& g = gates_.at(gate);
    g.inputs.at(static_cast<std::size_t>(pin)) = net;
    invalidateCaches();
}

void Netlist::setDriver(NetId net, GateId g) {
    nets_.at(net).driver = g;
    invalidateCaches();
}

void Netlist::replaceGate(GateId g, CellFn fn, const std::vector<NetId>& inputs) {
    Gate& gate = gates_.at(g);
    if (isSequential(gate.fn) != isSequential(fn))
        throw std::invalid_argument("replaceGate must not change sequential status");
    if (!isSequential(fn) && inputs.size() > kMaxGateArity)
        throw std::invalid_argument("replaceGate: arity " + std::to_string(inputs.size()) +
                                    " exceeds kMaxGateArity (" +
                                    std::to_string(kMaxGateArity) + ")");
    const CellId cell = lib_->find(fn, static_cast<int>(inputs.size()));
    for (NetId in : inputs)
        if (in >= nets_.size()) throw std::out_of_range("replaceGate: bad input net");
    gate.cell = cell;
    gate.fn = fn;
    gate.inputs = inputs;
    invalidateCaches();
}

std::vector<GateId> Netlist::combGates() const {
    std::vector<GateId> out;
    out.reserve(gates_.size() - ffs_.size());
    for (GateId i = 0; i < gates_.size(); ++i)
        if (!isSequential(gates_[i].fn)) out.push_back(i);
    return out;
}

std::optional<NetId> Netlist::findNet(const std::string& name) const {
    const auto it = by_name_.find(name);
    if (it == by_name_.end()) return std::nullopt;
    return it->second;
}

const std::vector<PinRef>& Netlist::fanout(NetId net) const {
    if (!fanout_valid_) buildFanout();
    return fanout_.at(net);
}

void Netlist::buildFanout() const {
    fanout_.assign(nets_.size(), {});
    for (GateId g = 0; g < gates_.size(); ++g) {
        const Gate& gate = gates_[g];
        for (int pin = 0; pin < static_cast<int>(gate.inputs.size()); ++pin)
            fanout_[gate.inputs[static_cast<std::size_t>(pin)]].push_back(PinRef{g, pin});
    }
    fanout_valid_ = true;
}

void Netlist::buildTopo() const {
    // Kahn's algorithm over combinational gates. FF outputs and PIs are
    // already "known", so a gate becomes ready when all its input nets are
    // either sources or driven by already-ordered gates.
    if (!fanout_valid_) buildFanout();
    topo_.clear();
    levels_.assign(gates_.size(), 0);

    std::vector<int> pending(gates_.size(), 0);
    std::deque<GateId> ready;
    std::size_t n_comb = 0;

    const auto sourceNet = [&](NetId n) {
        const Net& net = nets_[n];
        return net.is_pi || (net.driver != kInvalidId && isSequential(gates_[net.driver].fn));
    };

    for (GateId g = 0; g < gates_.size(); ++g) {
        if (isSequential(gates_[g].fn)) continue;
        ++n_comb;
        int deps = 0;
        for (NetId in : gates_[g].inputs)
            if (!sourceNet(in)) ++deps;
        pending[g] = deps;
        if (deps == 0) ready.push_back(g);
    }

    std::vector<int> net_level(nets_.size(), 0);
    while (!ready.empty()) {
        const GateId g = ready.front();
        ready.pop_front();
        topo_.push_back(g);
        int lvl = 0;
        for (NetId in : gates_[g].inputs) lvl = std::max(lvl, net_level[in]);
        levels_[g] = lvl + 1;
        net_level[gates_[g].output] = lvl + 1;
        for (const PinRef& pr : fanout_[gates_[g].output]) {
            if (isSequential(gates_[pr.gate].fn)) continue;
            if (--pending[pr.gate] == 0) ready.push_back(pr.gate);
        }
    }

    if (topo_.size() != n_comb)
        throw std::runtime_error("netlist '" + name_ + "' has a combinational loop");
    topo_valid_ = true;
}

const std::vector<GateId>& Netlist::topoOrder() const {
    if (!topo_valid_) buildTopo();
    return topo_;
}

const std::vector<int>& Netlist::levels() const {
    if (!topo_valid_) buildTopo();
    return levels_;
}

int Netlist::logicDepth() const {
    const auto& lv = levels();
    int depth = 0;
    for (int l : lv) depth = std::max(depth, l);
    return depth;
}

double Netlist::totalAreaUm2() const {
    double area = 0.0;
    for (const Gate& g : gates_) area += lib_->cell(g.cell).areaUm2(lib_->tech());
    return area;
}

double Netlist::netCapFf(NetId net) const {
    const Tech& t = lib_->tech();
    double cap = 0.0;
    for (const PinRef& pr : fanout(net)) {
        const Gate& g = gates_[pr.gate];
        cap += lib_->cell(g.cell).pinCapFf(t, pr.pin);
        cap += t.c_wire_ff_per_fanout;
    }
    const Net& n = nets_[net];
    if (n.driver != kInvalidId)
        cap += lib_->cell(gates_[n.driver].cell).outputParasiticFf(t);
    return cap;
}

std::vector<GateId> Netlist::uniqueFirstLevelGates() const {
    std::unordered_set<GateId> seen;
    std::vector<GateId> out;
    for (GateId ff : ffs_) {
        for (const PinRef& pr : fanout(gates_[ff].output)) {
            if (isSequential(gates_[pr.gate].fn)) continue;
            if (seen.insert(pr.gate).second) out.push_back(pr.gate);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::size_t Netlist::totalFfFanout() const {
    // Logic fanout only: scan-chain SI pins and FF D pins are not part of
    // the paper's "fanouts" columns.
    std::size_t total = 0;
    for (GateId ff : ffs_) {
        for (const PinRef& pr : fanout(gates_[ff].output))
            if (!isSequential(gates_[pr.gate].fn)) ++total;
    }
    return total;
}

void Netlist::check() const {
    for (NetId n = 0; n < nets_.size(); ++n) {
        const Net& net = nets_[n];
        if (net.is_pi && net.driver != kInvalidId)
            throw std::runtime_error("PI net also gate-driven: " + net.name);
        if (!net.is_pi && net.driver == kInvalidId)
            throw std::runtime_error("undriven net: " + net.name);
        if (net.driver != kInvalidId && gates_.at(net.driver).output != n)
            throw std::runtime_error("driver mismatch on net: " + net.name);
    }
    for (GateId g = 0; g < gates_.size(); ++g) {
        const Gate& gate = gates_[g];
        const Cell& cell = lib_->cell(gate.cell);
        if (static_cast<int>(gate.inputs.size()) != cell.n_inputs)
            throw std::runtime_error("arity mismatch on gate " + std::to_string(g));
        if (gate.fn != cell.fn)
            throw std::runtime_error("cell/function mismatch on gate " + std::to_string(g));
    }
    (void)topoOrder(); // throws on combinational loops
}

void Netlist::invalidateCaches() const {
    fanout_valid_ = false;
    topo_valid_ = false;
}

NetlistStats computeStats(const Netlist& nl) {
    NetlistStats s;
    s.n_pis = nl.pis().size();
    s.n_pos = nl.pos().size();
    s.n_ffs = nl.flipFlops().size();
    s.n_comb_gates = nl.gateCount() - s.n_ffs;
    s.total_ff_fanout = nl.totalFfFanout();
    s.unique_first_level = nl.uniqueFirstLevelGates().size();
    s.logic_depth = nl.logicDepth();
    s.area_um2 = nl.totalAreaUm2();
    return s;
}

} // namespace flh
