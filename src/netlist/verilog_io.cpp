#include "netlist/verilog_io.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace flh {

namespace {

bool isVerilogKeyword(const std::string& s) {
    static const std::unordered_set<std::string> kw = {
        "always",  "and",    "assign",   "begin",  "buf",       "case",    "casex",
        "casez",   "default", "defparam", "else",   "end",       "endcase", "endfunction",
        "endmodule", "for",  "function", "if",     "initial",   "inout",   "input",
        "integer", "logic",  "module",   "nand",   "negedge",   "nor",     "not",
        "or",      "output", "parameter", "posedge", "real",     "reg",     "repeat",
        "signed",  "supply0", "supply1", "time",   "tri",       "unsigned", "while",
        "wire",    "xnor",   "xor"};
    return kw.contains(s);
}

} // namespace

std::string verilogName(const std::string& name) {
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
        const auto uc = static_cast<unsigned char>(c);
        out += (std::isalnum(uc) || c == '_') ? c : '_';
    }
    if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) out.insert(0, "n_");
    // A sanitized name that lands exactly on a Verilog keyword would make
    // the emitted module unparsable ("wire wire;"); escape it.
    if (isVerilogKeyword(out)) out += '_';
    return out;
}

namespace {

const char* cellModule(CellFn fn) {
    switch (fn) {
        case CellFn::Buf: return "FLH_BUF";
        case CellFn::Inv: return "FLH_INV";
        case CellFn::And: return "FLH_AND";
        case CellFn::Nand: return "FLH_NAND";
        case CellFn::Or: return "FLH_OR";
        case CellFn::Nor: return "FLH_NOR";
        case CellFn::Xor: return "FLH_XOR";
        case CellFn::Xnor: return "FLH_XNOR";
        case CellFn::Aoi21: return "FLH_AOI21";
        case CellFn::Aoi22: return "FLH_AOI22";
        case CellFn::Oai21: return "FLH_OAI21";
        case CellFn::Oai22: return "FLH_OAI22";
        case CellFn::Mux2: return "FLH_MUX2";
        case CellFn::Dff: return "FLH_DFF";
        case CellFn::Sdff: return "FLH_SDFF";
    }
    return "FLH_UNKNOWN";
}

// Behavioural companion models; the FLH-gated wrapper adds the keeper
// semantics (hold the output while tc_b is high).
constexpr const char* kCellModels = R"(
// ---- companion cell models (behavioural) -----------------------------
module FLH_BUF(input a, output y); assign y = a; endmodule
module FLH_INV(input a, output y); assign y = ~a; endmodule
module FLH_AND #(parameter N=2)(input [N-1:0] a, output y); assign y = &a; endmodule
module FLH_NAND #(parameter N=2)(input [N-1:0] a, output y); assign y = ~&a; endmodule
module FLH_OR #(parameter N=2)(input [N-1:0] a, output y); assign y = |a; endmodule
module FLH_NOR #(parameter N=2)(input [N-1:0] a, output y); assign y = ~|a; endmodule
module FLH_XOR #(parameter N=2)(input [N-1:0] a, output y); assign y = ^a; endmodule
module FLH_XNOR #(parameter N=2)(input [N-1:0] a, output y); assign y = ~^a; endmodule
module FLH_AOI21(input a, input b, input c, output y); assign y = ~((a & b) | c); endmodule
module FLH_AOI22(input a, input b, input c, input d, output y);
  assign y = ~((a & b) | (c & d));
endmodule
module FLH_OAI21(input a, input b, input c, output y); assign y = ~((a | b) & c); endmodule
module FLH_OAI22(input a, input b, input c, input d, output y);
  assign y = ~((a | b) & (c | d));
endmodule
module FLH_MUX2(input a, input b, input s, output y); assign y = s ? b : a; endmodule
module FLH_DFF(input clk, input d, output reg q);
  always @(posedge clk) q <= d;
endmodule
module FLH_SDFF(input clk, input d, input si, input se, output reg q);
  always @(posedge clk) q <= se ? si : d;
endmodule
// FLH supply-gating wrapper: in normal mode (tc=1) the inner gate drives y;
// in hold mode (tc=0) the keeper retains the last value (the behavioural
// equivalent of the gated supply + cross-coupled keeper of Fig. 3).
module FLH_HOLD_WRAP(input tc, input y_gate, output y);
  reg held;
  always @(y_gate or tc) if (tc) held <= y_gate;
  assign y = tc ? y_gate : held;
endmodule
)";

} // namespace

void writeVerilog(std::ostream& os, const Netlist& nl, const VerilogOptions& opt) {
    const std::unordered_set<GateId> gated(opt.flh_gated_gates.begin(),
                                           opt.flh_gated_gates.end());

    // Distinct nets must stay distinct after sanitization: "a[0]" and
    // "a_0_" both sanitize to "a_0_", a PI named "clk" would collide with
    // the generated clock port, and a net named "u3" with an instance name.
    // Reserve the fixed identifiers, then uniquify nets in NetId order.
    std::unordered_set<std::string> used = {"clk"};
    for (GateId g = 0; g < nl.gateCount(); ++g) {
        used.insert("u" + std::to_string(g));
        used.insert("u" + std::to_string(g) + "_hold");
    }
    std::vector<std::string> net_names(nl.netCount());
    for (NetId n = 0; n < nl.netCount(); ++n) {
        const std::string base = verilogName(nl.net(n).name);
        std::string cand = base;
        for (int k = 2; !used.insert(cand).second; ++k) cand = base + "_" + std::to_string(k);
        net_names[n] = std::move(cand);
    }
    std::unordered_map<GateId, std::string> pregate;
    for (const GateId g : opt.flh_gated_gates) {
        const std::string base = net_names[nl.gate(g).output] + "__pregate";
        std::string cand = base;
        for (int k = 2; !used.insert(cand).second; ++k) cand = base + "_" + std::to_string(k);
        pregate[g] = std::move(cand);
    }

    const auto vn = [&](NetId n) -> const std::string& { return net_names[n]; };

    os << "// Generated by flh (First Level Hold DFT library)\n";
    os << "module " << verilogName(nl.name()) << " (\n  clk";
    for (const NetId pi : nl.pis()) os << ",\n  " << vn(pi);
    for (const NetId po : nl.pos()) os << ",\n  " << vn(po);
    os << "\n);\n";
    os << "  input clk;\n";
    for (const NetId pi : nl.pis()) os << "  input " << vn(pi) << ";\n";
    for (const NetId po : nl.pos()) os << "  output " << vn(po) << ";\n";

    // Internal wires (everything not a port).
    std::unordered_set<NetId> ports(nl.pis().begin(), nl.pis().end());
    for (const NetId po : nl.pos()) ports.insert(po);
    for (NetId n = 0; n < nl.netCount(); ++n)
        if (!ports.contains(n)) os << "  wire " << vn(n) << ";\n";
    // Gated gates drive a shadow net that feeds the hold wrapper.
    for (const GateId g : opt.flh_gated_gates) os << "  wire " << pregate.at(g) << ";\n";
    os << "\n";

    for (GateId g = 0; g < nl.gateCount(); ++g) {
        const Gate& gate = nl.gate(g);
        const bool is_gated = gated.contains(g);
        const std::string out = is_gated ? pregate.at(g) : vn(gate.output);
        const std::string inst = "u" + std::to_string(g);

        if (gate.fn == CellFn::Dff) {
            os << "  FLH_DFF " << inst << " (.clk(clk), .d(" << vn(gate.inputs[0]) << "), .q("
               << out << "));\n";
        } else if (gate.fn == CellFn::Sdff) {
            os << "  FLH_SDFF " << inst << " (.clk(clk), .d(" << vn(gate.inputs[0]) << "), .si("
               << vn(gate.inputs[1]) << "), .se(" << vn(gate.inputs[2]) << "), .q(" << out
               << "));\n";
        } else {
            switch (gate.fn) {
                case CellFn::And:
                case CellFn::Nand:
                case CellFn::Or:
                case CellFn::Nor:
                case CellFn::Xor:
                case CellFn::Xnor: {
                    os << "  " << cellModule(gate.fn) << " #(.N(" << gate.inputs.size() << ")) "
                       << inst << " (.a({";
                    for (std::size_t i = gate.inputs.size(); i-- > 0;) {
                        os << vn(gate.inputs[i]);
                        if (i) os << ", ";
                    }
                    os << "}), .y(" << out << "));\n";
                    break;
                }
                default: {
                    static const char* pins[] = {"a", "b", "c", "d"};
                    os << "  " << cellModule(gate.fn) << " " << inst << " (";
                    for (std::size_t i = 0; i < gate.inputs.size(); ++i)
                        os << "." << pins[i] << "(" << vn(gate.inputs[i]) << "), ";
                    os << ".y(" << out << "));\n";
                    break;
                }
            }
        }
        if (is_gated) {
            // TC is the scan-insertion test-control PI.
            const auto tc = nl.findNet("TC");
            os << "  FLH_HOLD_WRAP u" << g << "_hold (.tc(" << (tc ? vn(*tc) : "1'b1")
               << "), .y_gate(" << pregate.at(g) << "), .y(" << vn(gate.output) << "));\n";
        }
    }
    os << "endmodule\n";
    if (opt.emit_cell_models) os << kCellModels;
}

std::string writeVerilogString(const Netlist& nl, const VerilogOptions& opt) {
    std::ostringstream os;
    writeVerilog(os, nl, opt);
    return os.str();
}

} // namespace flh
