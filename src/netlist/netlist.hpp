// Gate-level netlist: the structure every analysis and transform operates on.
//
// Sequential elements (DFF/SDFF) are gates like any other, but simulation,
// timing, and test tooling treat their outputs as combinational sources
// (pseudo primary inputs) and their D pins as sinks (pseudo primary
// outputs), which is the standard full-scan view the paper assumes.
#pragma once

#include "cell/cells.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace flh {

using NetId = std::uint32_t;
using GateId = std::uint32_t;
inline constexpr std::uint32_t kInvalidId = ~0u;

/// Reference to one input pin of one gate.
struct PinRef {
    GateId gate = kInvalidId;
    int pin = -1;

    [[nodiscard]] bool operator==(const PinRef&) const noexcept = default;
};

struct Net {
    std::string name;
    GateId driver = kInvalidId; ///< kInvalidId for primary inputs
    bool is_pi = false;
};

struct Gate {
    CellId cell = 0;
    CellFn fn = CellFn::Inv;
    std::vector<NetId> inputs;
    NetId output = kInvalidId;
};

class Netlist {
public:
    Netlist(std::string name, const Library& lib);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    void setName(std::string n) { name_ = std::move(n); }
    [[nodiscard]] const Library& library() const noexcept { return *lib_; }

    // ---- construction -------------------------------------------------
    NetId addNet(const std::string& name);
    NetId addPi(const std::string& name);
    void markPo(NetId net);

    /// Add a gate of function `fn` (cell resolved by arity from the library).
    GateId addGate(CellFn fn, const std::vector<NetId>& inputs, NetId output);

    /// Add a D flip-flop (Q = output net, D = input net).
    GateId addDff(NetId d, NetId q);

    /// Rewire input pin `pin` of `gate` to `net`. Invalidates caches.
    void rewireInput(GateId gate, int pin, NetId net);

    /// Change the driver of net `out` to gate `g` (used by transforms that
    /// splice elements into an existing net).
    void setDriver(NetId net, GateId g);

    /// Replace gate `g` with a new function and input list, keeping its
    /// output net (used by scan insertion: DFF -> SDFF). The sequential /
    /// combinational status of the gate must not change.
    void replaceGate(GateId g, CellFn fn, const std::vector<NetId>& inputs);

    // ---- access --------------------------------------------------------
    [[nodiscard]] std::size_t netCount() const noexcept { return nets_.size(); }
    [[nodiscard]] std::size_t gateCount() const noexcept { return gates_.size(); }
    [[nodiscard]] const Net& net(NetId id) const { return nets_.at(id); }
    [[nodiscard]] const Gate& gate(GateId id) const { return gates_.at(id); }
    [[nodiscard]] const std::vector<NetId>& pis() const noexcept { return pis_; }
    [[nodiscard]] const std::vector<NetId>& pos() const noexcept { return pos_; }

    /// Flip-flop gates in scan-chain order.
    [[nodiscard]] const std::vector<GateId>& flipFlops() const noexcept { return ffs_; }

    /// Combinational gates only (everything that is not a DFF/SDFF).
    [[nodiscard]] std::vector<GateId> combGates() const;

    [[nodiscard]] std::optional<NetId> findNet(const std::string& name) const;

    /// Input pins fed by `net` (fanout), rebuilt lazily after edits.
    [[nodiscard]] const std::vector<PinRef>& fanout(NetId net) const;

    /// Combinational gates in topological order (FF outputs and PIs are
    /// sources; FF D-pins and POs are sinks). Throws on combinational loops.
    [[nodiscard]] const std::vector<GateId>& topoOrder() const;

    /// Logic level of each combinational gate (sources at level 1); zero for
    /// flip-flops. Indexed by GateId.
    [[nodiscard]] const std::vector<int>& levels() const;

    /// Maximum combinational logic depth (the paper's "crit-path logic levels").
    [[nodiscard]] int logicDepth() const;

    // ---- derived electrical/summary data --------------------------------
    /// Total active area (um^2): sum of W*L over all cells' transistors.
    [[nodiscard]] double totalAreaUm2() const;

    /// Capacitance on `net` (fF): receiver pin caps + driver output
    /// diffusion + per-fanout wire cap.
    [[nodiscard]] double netCapFf(NetId net) const;

    /// The *unique first level gates*: de-duplicated set of combinational
    /// gates directly driven by a flip-flop output (paper Table I column 4).
    [[nodiscard]] std::vector<GateId> uniqueFirstLevelGates() const;

    /// Total FF fanout (paper Table I column 3): sum over FFs of the number
    /// of input pins their Q nets drive.
    [[nodiscard]] std::size_t totalFfFanout() const;

    /// Structural sanity check; throws std::runtime_error on violations.
    void check() const;

    /// Drop all memoized derived data (called automatically by mutators).
    void invalidateCaches() const;

private:
    std::string name_;
    const Library* lib_;
    std::vector<Net> nets_;
    std::vector<Gate> gates_;
    std::vector<NetId> pis_;
    std::vector<NetId> pos_;
    std::vector<GateId> ffs_;
    std::unordered_map<std::string, NetId> by_name_;

    mutable std::vector<std::vector<PinRef>> fanout_;
    mutable std::vector<GateId> topo_;
    mutable std::vector<int> levels_;
    mutable bool fanout_valid_ = false;
    mutable bool topo_valid_ = false;

    void buildFanout() const;
    void buildTopo() const;
};

/// Aggregate statistics used throughout the paper's tables.
struct NetlistStats {
    std::size_t n_pis = 0;
    std::size_t n_pos = 0;
    std::size_t n_ffs = 0;
    std::size_t n_comb_gates = 0;
    std::size_t total_ff_fanout = 0;
    std::size_t unique_first_level = 0;
    int logic_depth = 0;
    double area_um2 = 0.0;

    /// Paper's "Ratio": unique first-level gates per flip-flop.
    [[nodiscard]] double uniqueFanoutRatio() const noexcept {
        return n_ffs ? static_cast<double>(unique_first_level) / static_cast<double>(n_ffs) : 0.0;
    }
};

[[nodiscard]] NetlistStats computeStats(const Netlist& nl);

} // namespace flh
