// ISCAS89 ".bench" format reader/writer.
//
// The classic format supports INPUT/OUTPUT declarations and assignments of
// the form  G14 = NAND(G0, G8)  with operators AND, OR, NAND, NOR, NOT,
// BUFF, XOR, XNOR, DFF. We additionally accept/emit the complex-gate
// operators AOI21, AOI22, OAI21, OAI22, MUX2 produced by technology mapping
// (the paper maps to a library "containing complex gate types e.g. aoi and
// mux"); files restricted to the classic operators remain fully standard.
#pragma once

#include "netlist/netlist.hpp"

#include <iosfwd>
#include <string>

namespace flh {

/// Parse a .bench netlist. Throws std::runtime_error with a line number on
/// malformed input.
[[nodiscard]] Netlist readBench(std::istream& in, const std::string& name, const Library& lib);
[[nodiscard]] Netlist readBenchString(const std::string& text, const std::string& name,
                                      const Library& lib);
[[nodiscard]] Netlist readBenchFile(const std::string& path, const Library& lib);

/// Serialize a netlist back to .bench. Round-trips with readBench.
void writeBench(std::ostream& os, const Netlist& nl);
[[nodiscard]] std::string writeBenchString(const Netlist& nl);

} // namespace flh
