# Empty dependencies file for path_delay_coverage.
# This may be replaced when dependencies are built.
