file(REMOVE_RECURSE
  "CMakeFiles/path_delay_coverage.dir/path_delay_coverage.cpp.o"
  "CMakeFiles/path_delay_coverage.dir/path_delay_coverage.cpp.o.d"
  "path_delay_coverage"
  "path_delay_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_delay_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
