# Empty compiler generated dependencies file for ablation_chain_order.
# This may be replaced when dependencies are built.
