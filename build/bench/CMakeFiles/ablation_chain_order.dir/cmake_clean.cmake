file(REMOVE_RECURSE
  "CMakeFiles/ablation_chain_order.dir/ablation_chain_order.cpp.o"
  "CMakeFiles/ablation_chain_order.dir/ablation_chain_order.cpp.o.d"
  "ablation_chain_order"
  "ablation_chain_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chain_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
