# Empty compiler generated dependencies file for sec4_bist.
# This may be replaced when dependencies are built.
