file(REMOVE_RECURSE
  "CMakeFiles/sec4_bist.dir/sec4_bist.cpp.o"
  "CMakeFiles/sec4_bist.dir/sec4_bist.cpp.o.d"
  "sec4_bist"
  "sec4_bist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec4_bist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
