file(REMOVE_RECURSE
  "CMakeFiles/motivation_variation.dir/motivation_variation.cpp.o"
  "CMakeFiles/motivation_variation.dir/motivation_variation.cpp.o.d"
  "motivation_variation"
  "motivation_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
