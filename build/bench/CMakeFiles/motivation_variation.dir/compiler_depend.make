# Empty compiler generated dependencies file for motivation_variation.
# This may be replaced when dependencies are built.
