file(REMOVE_RECURSE
  "CMakeFiles/sec4_test_mode_power.dir/sec4_test_mode_power.cpp.o"
  "CMakeFiles/sec4_test_mode_power.dir/sec4_test_mode_power.cpp.o.d"
  "sec4_test_mode_power"
  "sec4_test_mode_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec4_test_mode_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
