# Empty compiler generated dependencies file for sec4_test_mode_power.
# This may be replaced when dependencies are built.
