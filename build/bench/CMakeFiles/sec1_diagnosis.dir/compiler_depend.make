# Empty compiler generated dependencies file for sec1_diagnosis.
# This may be replaced when dependencies are built.
