file(REMOVE_RECURSE
  "CMakeFiles/sec1_diagnosis.dir/sec1_diagnosis.cpp.o"
  "CMakeFiles/sec1_diagnosis.dir/sec1_diagnosis.cpp.o.d"
  "sec1_diagnosis"
  "sec1_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec1_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
