# Empty dependencies file for table4_fanout_opt.
# This may be replaced when dependencies are built.
