file(REMOVE_RECURSE
  "CMakeFiles/table4_fanout_opt.dir/table4_fanout_opt.cpp.o"
  "CMakeFiles/table4_fanout_opt.dir/table4_fanout_opt.cpp.o.d"
  "table4_fanout_opt"
  "table4_fanout_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_fanout_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
