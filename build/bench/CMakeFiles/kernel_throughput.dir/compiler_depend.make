# Empty compiler generated dependencies file for kernel_throughput.
# This may be replaced when dependencies are built.
