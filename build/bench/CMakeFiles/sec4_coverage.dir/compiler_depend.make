# Empty compiler generated dependencies file for sec4_coverage.
# This may be replaced when dependencies are built.
