file(REMOVE_RECURSE
  "CMakeFiles/sec4_coverage.dir/sec4_coverage.cpp.o"
  "CMakeFiles/sec4_coverage.dir/sec4_coverage.cpp.o.d"
  "sec4_coverage"
  "sec4_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec4_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
