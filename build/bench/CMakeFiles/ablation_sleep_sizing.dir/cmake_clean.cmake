file(REMOVE_RECURSE
  "CMakeFiles/ablation_sleep_sizing.dir/ablation_sleep_sizing.cpp.o"
  "CMakeFiles/ablation_sleep_sizing.dir/ablation_sleep_sizing.cpp.o.d"
  "ablation_sleep_sizing"
  "ablation_sleep_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sleep_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
