# Empty dependencies file for ablation_sleep_sizing.
# This may be replaced when dependencies are built.
