file(REMOVE_RECURSE
  "CMakeFiles/ablation_partial_flh.dir/ablation_partial_flh.cpp.o"
  "CMakeFiles/ablation_partial_flh.dir/ablation_partial_flh.cpp.o.d"
  "ablation_partial_flh"
  "ablation_partial_flh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_partial_flh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
