# Empty compiler generated dependencies file for ablation_partial_flh.
# This may be replaced when dependencies are built.
