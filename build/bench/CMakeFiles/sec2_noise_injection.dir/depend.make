# Empty dependencies file for sec2_noise_injection.
# This may be replaced when dependencies are built.
