file(REMOVE_RECURSE
  "CMakeFiles/sec2_noise_injection.dir/sec2_noise_injection.cpp.o"
  "CMakeFiles/sec2_noise_injection.dir/sec2_noise_injection.cpp.o.d"
  "sec2_noise_injection"
  "sec2_noise_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec2_noise_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
