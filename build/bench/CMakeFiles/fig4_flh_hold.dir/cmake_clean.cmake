file(REMOVE_RECURSE
  "CMakeFiles/fig4_flh_hold.dir/fig4_flh_hold.cpp.o"
  "CMakeFiles/fig4_flh_hold.dir/fig4_flh_hold.cpp.o.d"
  "fig4_flh_hold"
  "fig4_flh_hold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_flh_hold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
