# Empty dependencies file for fig4_flh_hold.
# This may be replaced when dependencies are built.
