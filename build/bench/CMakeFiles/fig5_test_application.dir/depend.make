# Empty dependencies file for fig5_test_application.
# This may be replaced when dependencies are built.
