file(REMOVE_RECURSE
  "CMakeFiles/fig5_test_application.dir/fig5_test_application.cpp.o"
  "CMakeFiles/fig5_test_application.dir/fig5_test_application.cpp.o.d"
  "fig5_test_application"
  "fig5_test_application.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_test_application.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
