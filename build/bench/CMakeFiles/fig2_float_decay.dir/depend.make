# Empty dependencies file for fig2_float_decay.
# This may be replaced when dependencies are built.
