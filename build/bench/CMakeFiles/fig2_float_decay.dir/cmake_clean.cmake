file(REMOVE_RECURSE
  "CMakeFiles/fig2_float_decay.dir/fig2_float_decay.cpp.o"
  "CMakeFiles/fig2_float_decay.dir/fig2_float_decay.cpp.o.d"
  "fig2_float_decay"
  "fig2_float_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_float_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
