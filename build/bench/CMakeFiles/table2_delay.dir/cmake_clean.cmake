file(REMOVE_RECURSE
  "CMakeFiles/table2_delay.dir/table2_delay.cpp.o"
  "CMakeFiles/table2_delay.dir/table2_delay.cpp.o.d"
  "table2_delay"
  "table2_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
