file(REMOVE_RECURSE
  "CMakeFiles/sdd_grading.dir/sdd_grading.cpp.o"
  "CMakeFiles/sdd_grading.dir/sdd_grading.cpp.o.d"
  "sdd_grading"
  "sdd_grading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdd_grading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
