# Empty dependencies file for sdd_grading.
# This may be replaced when dependencies are built.
