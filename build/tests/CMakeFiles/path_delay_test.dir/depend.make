# Empty dependencies file for path_delay_test.
# This may be replaced when dependencies are built.
