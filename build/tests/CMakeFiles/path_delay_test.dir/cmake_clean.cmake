file(REMOVE_RECURSE
  "CMakeFiles/path_delay_test.dir/path_delay_test.cpp.o"
  "CMakeFiles/path_delay_test.dir/path_delay_test.cpp.o.d"
  "path_delay_test"
  "path_delay_test.pdb"
  "path_delay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_delay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
