# Empty compiler generated dependencies file for small_delay_test.
# This may be replaced when dependencies are built.
