file(REMOVE_RECURSE
  "CMakeFiles/small_delay_test.dir/small_delay_test.cpp.o"
  "CMakeFiles/small_delay_test.dir/small_delay_test.cpp.o.d"
  "small_delay_test"
  "small_delay_test.pdb"
  "small_delay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/small_delay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
