file(REMOVE_RECURSE
  "CMakeFiles/iscas_test.dir/iscas_test.cpp.o"
  "CMakeFiles/iscas_test.dir/iscas_test.cpp.o.d"
  "iscas_test"
  "iscas_test.pdb"
  "iscas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iscas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
