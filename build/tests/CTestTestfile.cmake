# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/cell_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/iscas_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/sta_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/dft_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/atpg_test[1]_include.cmake")
include("/root/repo/build/tests/analog_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/bist_test[1]_include.cmake")
include("/root/repo/build/tests/path_delay_test[1]_include.cmake")
include("/root/repo/build/tests/variation_test[1]_include.cmake")
include("/root/repo/build/tests/verilog_test[1]_include.cmake")
include("/root/repo/build/tests/diagnose_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/small_delay_test[1]_include.cmake")
