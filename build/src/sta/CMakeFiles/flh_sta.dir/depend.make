# Empty dependencies file for flh_sta.
# This may be replaced when dependencies are built.
