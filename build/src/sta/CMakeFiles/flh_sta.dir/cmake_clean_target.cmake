file(REMOVE_RECURSE
  "libflh_sta.a"
)
