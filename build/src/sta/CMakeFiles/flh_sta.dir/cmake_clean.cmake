file(REMOVE_RECURSE
  "CMakeFiles/flh_sta.dir/timing.cpp.o"
  "CMakeFiles/flh_sta.dir/timing.cpp.o.d"
  "libflh_sta.a"
  "libflh_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flh_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
