# Empty compiler generated dependencies file for flh_diagnose.
# This may be replaced when dependencies are built.
