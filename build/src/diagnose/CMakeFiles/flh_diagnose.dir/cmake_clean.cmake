file(REMOVE_RECURSE
  "CMakeFiles/flh_diagnose.dir/diagnose.cpp.o"
  "CMakeFiles/flh_diagnose.dir/diagnose.cpp.o.d"
  "libflh_diagnose.a"
  "libflh_diagnose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flh_diagnose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
