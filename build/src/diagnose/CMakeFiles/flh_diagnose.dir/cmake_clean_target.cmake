file(REMOVE_RECURSE
  "libflh_diagnose.a"
)
