file(REMOVE_RECURSE
  "CMakeFiles/flh_variation.dir/variation.cpp.o"
  "CMakeFiles/flh_variation.dir/variation.cpp.o.d"
  "libflh_variation.a"
  "libflh_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flh_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
