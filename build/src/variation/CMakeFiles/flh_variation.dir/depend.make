# Empty dependencies file for flh_variation.
# This may be replaced when dependencies are built.
