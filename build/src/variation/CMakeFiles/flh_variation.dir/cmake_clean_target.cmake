file(REMOVE_RECURSE
  "libflh_variation.a"
)
