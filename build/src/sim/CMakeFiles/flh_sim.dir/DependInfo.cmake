
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/pattern_sim.cpp" "src/sim/CMakeFiles/flh_sim.dir/pattern_sim.cpp.o" "gcc" "src/sim/CMakeFiles/flh_sim.dir/pattern_sim.cpp.o.d"
  "/root/repo/src/sim/sequential.cpp" "src/sim/CMakeFiles/flh_sim.dir/sequential.cpp.o" "gcc" "src/sim/CMakeFiles/flh_sim.dir/sequential.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/flh_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/flh_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/flh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
