file(REMOVE_RECURSE
  "CMakeFiles/flh_sim.dir/pattern_sim.cpp.o"
  "CMakeFiles/flh_sim.dir/pattern_sim.cpp.o.d"
  "CMakeFiles/flh_sim.dir/sequential.cpp.o"
  "CMakeFiles/flh_sim.dir/sequential.cpp.o.d"
  "libflh_sim.a"
  "libflh_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flh_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
