# Empty compiler generated dependencies file for flh_sim.
# This may be replaced when dependencies are built.
