file(REMOVE_RECURSE
  "libflh_sim.a"
)
