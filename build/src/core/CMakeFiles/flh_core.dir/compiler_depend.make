# Empty compiler generated dependencies file for flh_core.
# This may be replaced when dependencies are built.
