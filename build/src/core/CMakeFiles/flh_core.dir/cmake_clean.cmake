file(REMOVE_RECURSE
  "CMakeFiles/flh_core.dir/kit.cpp.o"
  "CMakeFiles/flh_core.dir/kit.cpp.o.d"
  "CMakeFiles/flh_core.dir/test_application.cpp.o"
  "CMakeFiles/flh_core.dir/test_application.cpp.o.d"
  "libflh_core.a"
  "libflh_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flh_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
