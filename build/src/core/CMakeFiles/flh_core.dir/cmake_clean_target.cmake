file(REMOVE_RECURSE
  "libflh_core.a"
)
