file(REMOVE_RECURSE
  "CMakeFiles/flh_dft.dir/chain_order.cpp.o"
  "CMakeFiles/flh_dft.dir/chain_order.cpp.o.d"
  "CMakeFiles/flh_dft.dir/design.cpp.o"
  "CMakeFiles/flh_dft.dir/design.cpp.o.d"
  "CMakeFiles/flh_dft.dir/fanout_opt.cpp.o"
  "CMakeFiles/flh_dft.dir/fanout_opt.cpp.o.d"
  "CMakeFiles/flh_dft.dir/scan.cpp.o"
  "CMakeFiles/flh_dft.dir/scan.cpp.o.d"
  "libflh_dft.a"
  "libflh_dft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flh_dft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
