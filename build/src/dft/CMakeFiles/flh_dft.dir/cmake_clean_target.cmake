file(REMOVE_RECURSE
  "libflh_dft.a"
)
