# Empty compiler generated dependencies file for flh_dft.
# This may be replaced when dependencies are built.
