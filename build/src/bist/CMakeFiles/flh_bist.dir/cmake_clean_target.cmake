file(REMOVE_RECURSE
  "libflh_bist.a"
)
