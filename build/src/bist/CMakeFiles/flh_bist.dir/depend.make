# Empty dependencies file for flh_bist.
# This may be replaced when dependencies are built.
