file(REMOVE_RECURSE
  "CMakeFiles/flh_bist.dir/bist.cpp.o"
  "CMakeFiles/flh_bist.dir/bist.cpp.o.d"
  "CMakeFiles/flh_bist.dir/lfsr.cpp.o"
  "CMakeFiles/flh_bist.dir/lfsr.cpp.o.d"
  "libflh_bist.a"
  "libflh_bist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flh_bist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
