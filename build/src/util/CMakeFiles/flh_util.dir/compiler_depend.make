# Empty compiler generated dependencies file for flh_util.
# This may be replaced when dependencies are built.
