file(REMOVE_RECURSE
  "libflh_util.a"
)
