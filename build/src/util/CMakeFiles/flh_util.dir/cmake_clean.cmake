file(REMOVE_RECURSE
  "CMakeFiles/flh_util.dir/rng.cpp.o"
  "CMakeFiles/flh_util.dir/rng.cpp.o.d"
  "CMakeFiles/flh_util.dir/strings.cpp.o"
  "CMakeFiles/flh_util.dir/strings.cpp.o.d"
  "CMakeFiles/flh_util.dir/table.cpp.o"
  "CMakeFiles/flh_util.dir/table.cpp.o.d"
  "libflh_util.a"
  "libflh_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flh_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
