file(REMOVE_RECURSE
  "CMakeFiles/flh_iscas.dir/circuits.cpp.o"
  "CMakeFiles/flh_iscas.dir/circuits.cpp.o.d"
  "CMakeFiles/flh_iscas.dir/generator.cpp.o"
  "CMakeFiles/flh_iscas.dir/generator.cpp.o.d"
  "libflh_iscas.a"
  "libflh_iscas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flh_iscas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
