# Empty compiler generated dependencies file for flh_iscas.
# This may be replaced when dependencies are built.
