
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iscas/circuits.cpp" "src/iscas/CMakeFiles/flh_iscas.dir/circuits.cpp.o" "gcc" "src/iscas/CMakeFiles/flh_iscas.dir/circuits.cpp.o.d"
  "/root/repo/src/iscas/generator.cpp" "src/iscas/CMakeFiles/flh_iscas.dir/generator.cpp.o" "gcc" "src/iscas/CMakeFiles/flh_iscas.dir/generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/flh_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/flh_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/flh_cell.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
