file(REMOVE_RECURSE
  "libflh_iscas.a"
)
