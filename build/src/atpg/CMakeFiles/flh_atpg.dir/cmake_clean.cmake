file(REMOVE_RECURSE
  "CMakeFiles/flh_atpg.dir/compaction.cpp.o"
  "CMakeFiles/flh_atpg.dir/compaction.cpp.o.d"
  "CMakeFiles/flh_atpg.dir/path_atpg.cpp.o"
  "CMakeFiles/flh_atpg.dir/path_atpg.cpp.o.d"
  "CMakeFiles/flh_atpg.dir/podem.cpp.o"
  "CMakeFiles/flh_atpg.dir/podem.cpp.o.d"
  "CMakeFiles/flh_atpg.dir/stuck_atpg.cpp.o"
  "CMakeFiles/flh_atpg.dir/stuck_atpg.cpp.o.d"
  "CMakeFiles/flh_atpg.dir/transition_atpg.cpp.o"
  "CMakeFiles/flh_atpg.dir/transition_atpg.cpp.o.d"
  "libflh_atpg.a"
  "libflh_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flh_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
