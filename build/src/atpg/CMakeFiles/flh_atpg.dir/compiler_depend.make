# Empty compiler generated dependencies file for flh_atpg.
# This may be replaced when dependencies are built.
