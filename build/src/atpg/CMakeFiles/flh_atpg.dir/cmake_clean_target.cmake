file(REMOVE_RECURSE
  "libflh_atpg.a"
)
