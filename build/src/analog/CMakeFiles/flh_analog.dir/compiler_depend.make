# Empty compiler generated dependencies file for flh_analog.
# This may be replaced when dependencies are built.
