file(REMOVE_RECURSE
  "libflh_analog.a"
)
