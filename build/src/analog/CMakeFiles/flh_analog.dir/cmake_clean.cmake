file(REMOVE_RECURSE
  "CMakeFiles/flh_analog.dir/analog.cpp.o"
  "CMakeFiles/flh_analog.dir/analog.cpp.o.d"
  "CMakeFiles/flh_analog.dir/flh_chain.cpp.o"
  "CMakeFiles/flh_analog.dir/flh_chain.cpp.o.d"
  "libflh_analog.a"
  "libflh_analog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flh_analog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
