
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analog/analog.cpp" "src/analog/CMakeFiles/flh_analog.dir/analog.cpp.o" "gcc" "src/analog/CMakeFiles/flh_analog.dir/analog.cpp.o.d"
  "/root/repo/src/analog/flh_chain.cpp" "src/analog/CMakeFiles/flh_analog.dir/flh_chain.cpp.o" "gcc" "src/analog/CMakeFiles/flh_analog.dir/flh_chain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cell/CMakeFiles/flh_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/flh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
