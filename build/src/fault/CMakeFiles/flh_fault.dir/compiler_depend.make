# Empty compiler generated dependencies file for flh_fault.
# This may be replaced when dependencies are built.
