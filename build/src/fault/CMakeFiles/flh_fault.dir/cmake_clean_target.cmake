file(REMOVE_RECURSE
  "libflh_fault.a"
)
