file(REMOVE_RECURSE
  "CMakeFiles/flh_fault.dir/fault_sim.cpp.o"
  "CMakeFiles/flh_fault.dir/fault_sim.cpp.o.d"
  "CMakeFiles/flh_fault.dir/faults.cpp.o"
  "CMakeFiles/flh_fault.dir/faults.cpp.o.d"
  "CMakeFiles/flh_fault.dir/path_delay.cpp.o"
  "CMakeFiles/flh_fault.dir/path_delay.cpp.o.d"
  "CMakeFiles/flh_fault.dir/small_delay.cpp.o"
  "CMakeFiles/flh_fault.dir/small_delay.cpp.o.d"
  "libflh_fault.a"
  "libflh_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flh_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
