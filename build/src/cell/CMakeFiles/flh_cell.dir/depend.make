# Empty dependencies file for flh_cell.
# This may be replaced when dependencies are built.
