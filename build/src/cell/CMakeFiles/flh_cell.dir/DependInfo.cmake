
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cell/cells.cpp" "src/cell/CMakeFiles/flh_cell.dir/cells.cpp.o" "gcc" "src/cell/CMakeFiles/flh_cell.dir/cells.cpp.o.d"
  "/root/repo/src/cell/dft_cells.cpp" "src/cell/CMakeFiles/flh_cell.dir/dft_cells.cpp.o" "gcc" "src/cell/CMakeFiles/flh_cell.dir/dft_cells.cpp.o.d"
  "/root/repo/src/cell/logic.cpp" "src/cell/CMakeFiles/flh_cell.dir/logic.cpp.o" "gcc" "src/cell/CMakeFiles/flh_cell.dir/logic.cpp.o.d"
  "/root/repo/src/cell/tech.cpp" "src/cell/CMakeFiles/flh_cell.dir/tech.cpp.o" "gcc" "src/cell/CMakeFiles/flh_cell.dir/tech.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/flh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
