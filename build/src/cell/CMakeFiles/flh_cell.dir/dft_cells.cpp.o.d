src/cell/CMakeFiles/flh_cell.dir/dft_cells.cpp.o: \
 /root/repo/src/cell/dft_cells.cpp /usr/include/stdc-predef.h \
 /root/repo/src/cell/dft_cells.hpp /root/repo/src/cell/tech.hpp
