file(REMOVE_RECURSE
  "CMakeFiles/flh_cell.dir/cells.cpp.o"
  "CMakeFiles/flh_cell.dir/cells.cpp.o.d"
  "CMakeFiles/flh_cell.dir/dft_cells.cpp.o"
  "CMakeFiles/flh_cell.dir/dft_cells.cpp.o.d"
  "CMakeFiles/flh_cell.dir/logic.cpp.o"
  "CMakeFiles/flh_cell.dir/logic.cpp.o.d"
  "CMakeFiles/flh_cell.dir/tech.cpp.o"
  "CMakeFiles/flh_cell.dir/tech.cpp.o.d"
  "libflh_cell.a"
  "libflh_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flh_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
