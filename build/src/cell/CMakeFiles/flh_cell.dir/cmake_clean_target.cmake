file(REMOVE_RECURSE
  "libflh_cell.a"
)
