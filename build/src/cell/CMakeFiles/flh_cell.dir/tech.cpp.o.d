src/cell/CMakeFiles/flh_cell.dir/tech.cpp.o: /root/repo/src/cell/tech.cpp \
 /usr/include/stdc-predef.h /root/repo/src/cell/tech.hpp
