# Empty compiler generated dependencies file for flh_netlist.
# This may be replaced when dependencies are built.
