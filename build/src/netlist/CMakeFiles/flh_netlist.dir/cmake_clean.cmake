file(REMOVE_RECURSE
  "CMakeFiles/flh_netlist.dir/bench_io.cpp.o"
  "CMakeFiles/flh_netlist.dir/bench_io.cpp.o.d"
  "CMakeFiles/flh_netlist.dir/netlist.cpp.o"
  "CMakeFiles/flh_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/flh_netlist.dir/verilog_io.cpp.o"
  "CMakeFiles/flh_netlist.dir/verilog_io.cpp.o.d"
  "libflh_netlist.a"
  "libflh_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flh_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
