file(REMOVE_RECURSE
  "libflh_netlist.a"
)
