# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("cell")
subdirs("netlist")
subdirs("iscas")
subdirs("sim")
subdirs("sta")
subdirs("power")
subdirs("dft")
subdirs("fault")
subdirs("atpg")
subdirs("analog")
subdirs("core")
subdirs("bist")
subdirs("variation")
subdirs("diagnose")
