# Empty compiler generated dependencies file for flh_power.
# This may be replaced when dependencies are built.
