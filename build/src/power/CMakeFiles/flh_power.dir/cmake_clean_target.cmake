file(REMOVE_RECURSE
  "libflh_power.a"
)
