file(REMOVE_RECURSE
  "CMakeFiles/flh_power.dir/power.cpp.o"
  "CMakeFiles/flh_power.dir/power.cpp.o.d"
  "libflh_power.a"
  "libflh_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flh_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
