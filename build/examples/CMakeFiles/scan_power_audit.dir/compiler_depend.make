# Empty compiler generated dependencies file for scan_power_audit.
# This may be replaced when dependencies are built.
