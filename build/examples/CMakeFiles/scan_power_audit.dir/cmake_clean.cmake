file(REMOVE_RECURSE
  "CMakeFiles/scan_power_audit.dir/scan_power_audit.cpp.o"
  "CMakeFiles/scan_power_audit.dir/scan_power_audit.cpp.o.d"
  "scan_power_audit"
  "scan_power_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_power_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
