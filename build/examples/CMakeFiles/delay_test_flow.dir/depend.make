# Empty dependencies file for delay_test_flow.
# This may be replaced when dependencies are built.
