file(REMOVE_RECURSE
  "CMakeFiles/delay_test_flow.dir/delay_test_flow.cpp.o"
  "CMakeFiles/delay_test_flow.dir/delay_test_flow.cpp.o.d"
  "delay_test_flow"
  "delay_test_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delay_test_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
