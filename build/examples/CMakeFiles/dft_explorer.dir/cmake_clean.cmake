file(REMOVE_RECURSE
  "CMakeFiles/dft_explorer.dir/dft_explorer.cpp.o"
  "CMakeFiles/dft_explorer.dir/dft_explorer.cpp.o.d"
  "dft_explorer"
  "dft_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dft_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
