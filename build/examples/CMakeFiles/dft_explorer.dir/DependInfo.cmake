
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/dft_explorer.cpp" "examples/CMakeFiles/dft_explorer.dir/dft_explorer.cpp.o" "gcc" "examples/CMakeFiles/dft_explorer.dir/dft_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/flh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dft/CMakeFiles/flh_dft.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/flh_power.dir/DependInfo.cmake"
  "/root/repo/build/src/atpg/CMakeFiles/flh_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/flh_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/flh_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/iscas/CMakeFiles/flh_iscas.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/flh_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/analog/CMakeFiles/flh_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/flh_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/flh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
