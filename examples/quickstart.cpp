// Quickstart: load a circuit, insert full scan + FLH, and read the costs.
//
// Shows the three entry points most users need:
//   1. DelayTestKit::forCircuit — a registered ISCAS89-like benchmark;
//   2. readBenchString — your own netlist in .bench format;
//   3. evaluate(HoldStyle::...) — the area/delay/power comparison engine.
#include "core/kit.hpp"
#include "netlist/bench_io.hpp"
#include "util/table.hpp"

#include <iostream>

using namespace flh;

int main() {
    // --- 1. a registered benchmark ----------------------------------------
    DelayTestKit kit = DelayTestKit::forCircuit("s298");
    const NetlistStats st = kit.stats();
    std::cout << "Circuit s298: " << st.n_ffs << " scan FFs, " << st.n_comb_gates
              << " gates, depth " << st.logic_depth << ", " << st.unique_first_level
              << " unique first-level gates (ratio " << fmt(st.uniqueFanoutRatio(), 2)
              << " per FF)\n\n";

    TextTable table({"Holding style", "Area ovh %", "Delay ovh %", "Power ovh %"});
    for (const HoldStyle style :
         {HoldStyle::EnhancedScan, HoldStyle::MuxHold, HoldStyle::Flh}) {
        const DftEvaluation e = kit.evaluate(style);
        table.addRow({toString(style), fmt(e.area_increase_pct), fmt(e.delay_increase_pct),
                      fmt(e.power_increase_pct)});
    }
    std::cout << table.render() << "\n";

    // --- 2. your own netlist in .bench format ------------------------------
    const std::string my_design = R"(
INPUT(clk_en)
INPUT(d0)
INPUT(d1)
OUTPUT(match)
q0 = DFF(n0)
q1 = DFF(n1)
n0 = MUX2(q0, d0, clk_en)
n1 = MUX2(q1, d1, clk_en)
x0 = XNOR(q0, d0)
x1 = XNOR(q1, d1)
match = AND(x0, x1)
)";
    const Library& lib = DelayTestKit::forCircuit("s27").library();
    DelayTestKit mine(readBenchString(my_design, "matcher", lib));
    std::cout << "Custom 'matcher' design: scan chain of " << mine.scanInfo().chain_length
              << " FFs, FLH gates " << planDft(mine.netlist(), HoldStyle::Flh).gated_gates.size()
              << " first-level gates\n";
    const DftEvaluation e = mine.evaluate(HoldStyle::Flh);
    std::cout << "FLH on 'matcher': +" << fmt(e.area_increase_pct) << "% area, +"
              << fmt(e.delay_increase_pct) << "% delay, +" << fmt(e.power_increase_pct)
              << "% power\n";
    return 0;
}
