// flh_obsmerge: merge per-process observability exports into one fleet view.
//
//   flh_obsmerge --traces d1/trace.json,d2/trace.json,d3/trace.json
//                --drains d1/drain.json,d2/drain.json,d3/drain.json
//                --events d1/events.jsonl,d2/events.jsonl,d3/events.jsonl
//                --out fleet_trace.json --report fleet_report.json
//
// Every flh_flow / flh_serve process exports its trace, time-series, and
// event log with timestamps on its own steady clock, plus a wall-clock
// anchor (wall_epoch_us) captured at the same instant the steady epoch was
// pinned. The merger aligns process i by shifting all of its timestamps by
// (wall_epoch[i] - min wall_epoch), re-pids it as pid i+1, folds its event
// log in as instant events, and emits one Chrome trace_event file the
// chrome://tracing or Perfetto viewer opens as an N-process timeline.
//
// The companion report (schema flh.obs.fleet/1) summarizes the fleet:
// per-drainer utilization (busy design time / whole-pass wall time), the
// top-K straggler designs across all drainers, and the fleet-wide
// per-design drain-time histogram, rebuilt by adding the drain summaries'
// buckets (obs::Histogram bucket indices are shared across processes, so
// addition is exact — the merged count must equal the number of designs
// the fleet drained).
#include "obs/telemetry.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace flh;

namespace {

constexpr const char* kUsage = R"(usage: flh_obsmerge [options]
  --traces LIST      comma-separated Chrome traces, one per process
                     (a process's --trace export; "-" = none for that slot)
  --drains LIST      drain summaries (flh.flow.drain/2), one per process
  --events LIST      JSONL event logs (flh.obs.events/1), one per process
  --timeseries LIST  time-series exports (flh.obs.timeseries/1), one per
                     process (folded into the report, not the trace: the
                     sampler already mirrors counters into each trace)
  --labels LIST      display names for the processes (default proc-N)
  --out FILE         merged Chrome trace (default fleet_trace.json)
  --report FILE      fleet report, schema flh.obs.fleet/1
                     (default fleet_report.json)
  --top N            straggler rows in the report (default 5)
  --quiet            suppress the console summary
  --help

All lists must have the same length; "-" skips a slot. At least one input
list is required.
)";

std::string readFileOrDie(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "flh_obsmerge: cannot read " << path << "\n";
        std::exit(1);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

double numOr(const JsonValue& v, const std::string& key, double fallback) {
    if (v.kind != JsonValue::Kind::Obj || !v.has(key)) return fallback;
    const JsonValue& f = v.at(key);
    return f.kind == JsonValue::Kind::Num ? f.num : fallback;
}

std::string strOr(const JsonValue& v, const std::string& key, const std::string& fallback) {
    if (v.kind != JsonValue::Kind::Obj || !v.has(key)) return fallback;
    const JsonValue& f = v.at(key);
    return f.kind == JsonValue::Kind::Str ? f.str : fallback;
}

/// Re-emit a parsed value verbatim (object keys in map order — the merged
/// trace is a derived artifact, not a byte-stable report).
void writeValue(JsonWriter& w, const JsonValue& v) {
    switch (v.kind) {
    case JsonValue::Kind::Null: w.rawValue("null"); break;
    case JsonValue::Kind::Bool: w.value(v.b); break;
    case JsonValue::Kind::Num: w.value(v.num); break;
    case JsonValue::Kind::Str: w.value(v.str); break;
    case JsonValue::Kind::Arr:
        w.beginArray();
        for (const JsonValue& e : v.arr) writeValue(w, e);
        w.endArray();
        break;
    case JsonValue::Kind::Obj:
        w.beginObject();
        for (const auto& [k, e] : v.obj) {
            w.key(k);
            writeValue(w, e);
        }
        w.endObject();
        break;
    }
}

struct StragglerRow {
    std::string design;
    std::string drainer;
    double wall_ms = 0.0;
    bool failed = false;
};

/// Everything one process contributed, after parsing.
struct ProcessView {
    std::string label;
    bool has_epoch = false;
    double wall_epoch_us = 0.0; ///< first anchor seen across its files
    double offset_us = 0.0;     ///< shift applied to its timestamps

    std::vector<JsonValue> trace_events; ///< raw traceEvents entries
    std::vector<JsonValue> log_events;   ///< parsed JSONL event records
    std::uint64_t events_dropped = 0;    ///< rate-limited drops (trailer)

    // Time-series digest (report only).
    std::uint64_t samples = 0;
    double peak_rss_bytes = 0.0;

    // Drain summary digest.
    bool has_drain = false;
    std::uint64_t designs_total = 0;
    std::uint64_t claimed = 0;
    std::uint64_t already_claimed = 0;
    std::uint64_t failures = 0;
    double drain_wall_ms = 0.0;
    double busy_ms = 0.0; ///< sum of per-design wall times
    std::vector<StragglerRow> designs;
    std::vector<std::uint64_t> drain_buckets; ///< dense obs::Histogram layout
    std::uint64_t drain_count = 0;
    double drain_sum = 0.0;
    double drain_min = 0.0;
    double drain_max = 0.0;

    void adoptEpoch(const JsonValue& doc) {
        if (has_epoch || doc.kind != JsonValue::Kind::Obj || !doc.has("wall_epoch_us"))
            return;
        wall_epoch_us = numOr(doc, "wall_epoch_us", 0.0);
        has_epoch = true;
    }
};

void loadTrace(ProcessView& p, const std::string& path) {
    const JsonValue doc = parseJson(readFileOrDie(path));
    p.adoptEpoch(doc);
    if (doc.kind != JsonValue::Kind::Obj || !doc.has("traceEvents")) {
        std::cerr << "flh_obsmerge: " << path << ": no traceEvents array\n";
        std::exit(1);
    }
    for (const JsonValue& e : doc.at("traceEvents").arr)
        if (e.kind == JsonValue::Kind::Obj) p.trace_events.push_back(e);
}

void loadEvents(ProcessView& p, const std::string& path) {
    std::istringstream in(readFileOrDie(path));
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        const JsonValue v = parseJson(line);
        if (first) {
            first = false;
            const std::string schema = strOr(v, "schema", "");
            if (schema == "flh.obs.events/1") {
                p.adoptEpoch(v);
                continue; // header line, not an event
            }
        }
        if (strOr(v, "event", "") == "sink_close") {
            if (v.has("fields"))
                p.events_dropped += static_cast<std::uint64_t>(
                    numOr(v.at("fields"), "dropped_rate_limited", 0.0));
            continue;
        }
        p.log_events.push_back(v);
    }
}

void loadTimeseries(ProcessView& p, const std::string& path) {
    const JsonValue doc = parseJson(readFileOrDie(path));
    p.adoptEpoch(doc);
    if (doc.kind != JsonValue::Kind::Obj || !doc.has("rows")) return;
    // Schema pins columns[1] to rss_bytes (see Sampler::timeseriesJson).
    for (const JsonValue& row : doc.at("rows").arr) {
        if (row.kind != JsonValue::Kind::Arr || row.arr.size() < 2) continue;
        ++p.samples;
        p.peak_rss_bytes = std::max(p.peak_rss_bytes, row.arr[1].num);
    }
}

void loadDrain(ProcessView& p, const std::string& path) {
    const JsonValue doc = parseJson(readFileOrDie(path));
    const std::string schema = strOr(doc, "schema", "");
    if (schema != "flh.flow.drain/2") {
        std::cerr << "flh_obsmerge: " << path << ": unsupported drain schema '" << schema
                  << "'\n";
        std::exit(1);
    }
    p.has_drain = true;
    p.designs_total = static_cast<std::uint64_t>(numOr(doc, "designs_total", 0.0));
    p.claimed = static_cast<std::uint64_t>(numOr(doc, "claimed", 0.0));
    p.already_claimed = static_cast<std::uint64_t>(numOr(doc, "already_claimed", 0.0));
    p.failures = static_cast<std::uint64_t>(numOr(doc, "failures", 0.0));
    p.drain_wall_ms = numOr(doc, "drain_wall_ms", 0.0);
    if (doc.has("designs")) {
        for (const JsonValue& d : doc.at("designs").arr) {
            StragglerRow row;
            row.design = strOr(d, "name", "?");
            row.drainer = p.label;
            row.wall_ms = numOr(d, "wall_ms", 0.0);
            row.failed = d.has("failed") && d.at("failed").b;
            p.busy_ms += row.wall_ms;
            p.designs.push_back(std::move(row));
        }
    }
    p.drain_buckets.assign(obs::Histogram::kBucketCount, 0);
    if (doc.has("drain_ms")) {
        const JsonValue& h = doc.at("drain_ms");
        p.drain_count = static_cast<std::uint64_t>(numOr(h, "count", 0.0));
        p.drain_sum = numOr(h, "sum", 0.0);
        p.drain_min = numOr(h, "min", 0.0);
        p.drain_max = numOr(h, "max", 0.0);
        if (h.has("buckets")) {
            for (const JsonValue& pair : h.at("buckets").arr) {
                if (pair.kind != JsonValue::Kind::Arr || pair.arr.size() != 2) continue;
                const std::size_t idx = static_cast<std::size_t>(pair.arr[0].num);
                if (idx < p.drain_buckets.size())
                    p.drain_buckets[idx] += static_cast<std::uint64_t>(pair.arr[1].num);
            }
        }
    }
}

/// An event queued for the merged trace: metadata rows sort ahead of
/// timed rows, timed rows sort by shifted timestamp.
struct MergedEvent {
    bool meta = false;
    double ts = 0.0;
    JsonValue ev;
};

JsonValue numValue(double v) {
    JsonValue j;
    j.kind = JsonValue::Kind::Num;
    j.num = v;
    return j;
}

JsonValue strValue(std::string s) {
    JsonValue j;
    j.kind = JsonValue::Kind::Str;
    j.str = std::move(s);
    return j;
}

} // namespace

int main(int argc, char** argv) {
    cli::ArgScan scan(argc, argv, "flh_obsmerge", kUsage);
    std::vector<std::string> traces, drains, events, timeseries, labels;
    std::string out_path = "fleet_trace.json";
    std::string report_path = "fleet_report.json";
    std::size_t top_k = 5;
    bool quiet = false;

    while (scan.next()) {
        if (scan.is("--traces")) traces = scan.list();
        else if (scan.is("--drains")) drains = scan.list();
        else if (scan.is("--events")) events = scan.list();
        else if (scan.is("--timeseries")) timeseries = scan.list();
        else if (scan.is("--labels")) labels = scan.list();
        else if (scan.is("--out")) out_path = scan.value();
        else if (scan.is("--report")) report_path = scan.value();
        else if (scan.is("--top")) top_k = scan.num<std::size_t>();
        else if (scan.is("--quiet")) quiet = true;
        else scan.unknownOption();
    }

    const std::size_t n = std::max({traces.size(), drains.size(), events.size(),
                                    timeseries.size(), labels.size()});
    if (n == 0) scan.usageError("no inputs: pass at least one of --traces/--drains/...");
    const auto checkLen = [&](const std::vector<std::string>& list, const char* flag) {
        if (!list.empty() && list.size() != n)
            scan.usageError(std::string(flag) + " has " + std::to_string(list.size()) +
                            " entries, expected " + std::to_string(n));
    };
    checkLen(traces, "--traces");
    checkLen(drains, "--drains");
    checkLen(events, "--events");
    checkLen(timeseries, "--timeseries");
    checkLen(labels, "--labels");

    const auto slot = [](const std::vector<std::string>& list, std::size_t i) {
        return i < list.size() && list[i] != "-" ? list[i] : std::string();
    };

    std::vector<ProcessView> procs(n);
    try {
        for (std::size_t i = 0; i < n; ++i) {
            ProcessView& p = procs[i];
            p.label = slot(labels, i).empty() ? "proc-" + std::to_string(i + 1)
                                              : labels[i];
            const std::string tp = slot(traces, i);
            const std::string ep = slot(events, i);
            const std::string sp = slot(timeseries, i);
            const std::string dp = slot(drains, i);
            if (!tp.empty()) loadTrace(p, tp);
            if (!ep.empty()) loadEvents(p, ep);
            if (!sp.empty()) loadTimeseries(p, sp);
            if (!dp.empty()) loadDrain(p, dp);
        }
    } catch (const std::exception& e) {
        std::cerr << "flh_obsmerge: " << e.what() << "\n";
        return 1;
    }

    // Clock alignment: the earliest wall anchor becomes the fleet origin;
    // each process's steady timestamps shift by its wall delta. A process
    // with no anchor stays unshifted (best effort, still viewable).
    double min_epoch = 0.0;
    bool any_epoch = false;
    for (const ProcessView& p : procs) {
        if (!p.has_epoch) continue;
        min_epoch = any_epoch ? std::min(min_epoch, p.wall_epoch_us) : p.wall_epoch_us;
        any_epoch = true;
    }
    for (ProcessView& p : procs)
        p.offset_us = p.has_epoch ? p.wall_epoch_us - min_epoch : 0.0;

    // Build the merged event list: re-pid, shift, fold event logs in as
    // instant events on a dedicated tid-0 lane per process.
    std::vector<MergedEvent> merged;
    for (std::size_t i = 0; i < n; ++i) {
        ProcessView& p = procs[i];
        const double pid = static_cast<double>(i + 1);
        bool saw_process_name = false;
        for (JsonValue& e : p.trace_events) {
            MergedEvent m;
            e.obj["pid"] = numValue(pid);
            if (strOr(e, "ph", "") == "M") {
                m.meta = true;
                if (strOr(e, "name", "") == "process_name") {
                    saw_process_name = true;
                    e.obj["args"].obj["name"] = strValue(p.label);
                }
            } else if (e.has("ts")) {
                e.obj["ts"] = numValue(e.at("ts").num + p.offset_us);
                m.ts = e.at("ts").num;
            }
            m.ev = std::move(e);
            merged.push_back(std::move(m));
        }
        if (!saw_process_name &&
            (!p.log_events.empty() || !p.trace_events.empty())) {
            JsonValue meta;
            meta.kind = JsonValue::Kind::Obj;
            meta.obj["name"] = strValue("process_name");
            meta.obj["ph"] = strValue("M");
            meta.obj["pid"] = numValue(pid);
            meta.obj["args"].kind = JsonValue::Kind::Obj;
            meta.obj["args"].obj["name"] = strValue(p.label);
            merged.push_back(MergedEvent{true, 0.0, std::move(meta)});
        }
        if (!p.log_events.empty()) {
            JsonValue meta;
            meta.kind = JsonValue::Kind::Obj;
            meta.obj["name"] = strValue("thread_name");
            meta.obj["ph"] = strValue("M");
            meta.obj["pid"] = numValue(pid);
            meta.obj["tid"] = numValue(0.0);
            meta.obj["args"].kind = JsonValue::Kind::Obj;
            meta.obj["args"].obj["name"] = strValue("events");
            merged.push_back(MergedEvent{true, 0.0, std::move(meta)});
        }
        for (const JsonValue& rec : p.log_events) {
            MergedEvent m;
            m.ts = numOr(rec, "ts_us", 0.0) + p.offset_us;
            JsonValue e;
            e.kind = JsonValue::Kind::Obj;
            e.obj["name"] =
                strValue(strOr(rec, "component", "?") + "/" + strOr(rec, "event", "?"));
            e.obj["cat"] = strValue("event");
            e.obj["ph"] = strValue("i");
            e.obj["s"] = strValue("p");
            e.obj["ts"] = numValue(m.ts);
            e.obj["pid"] = numValue(pid);
            e.obj["tid"] = numValue(0.0);
            JsonValue args;
            args.kind = JsonValue::Kind::Obj;
            args.obj["level"] = strValue(strOr(rec, "level", "info"));
            if (rec.has("trace_id")) args.obj["trace_id"] = rec.at("trace_id");
            if (rec.has("fields"))
                for (const auto& [k, v] : rec.at("fields").obj) args.obj[k] = v;
            e.obj["args"] = std::move(args);
            m.ev = std::move(e);
            merged.push_back(std::move(m));
        }
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const MergedEvent& a, const MergedEvent& b) {
                         if (a.meta != b.meta) return a.meta;
                         if (a.meta) return false;
                         return a.ts < b.ts;
                     });

    {
        JsonWriter w;
        w.beginObject();
        w.kv("displayTimeUnit", "ms");
        w.kv("wall_epoch_us", min_epoch);
        w.key("traceEvents");
        w.beginArray();
        for (const MergedEvent& m : merged) writeValue(w, m.ev);
        w.endArray();
        w.endObject();
        cli::writeFileOrDie("flh_obsmerge", out_path, w.str() + "\n");
    }

    // Fleet rollups: straggler table + histogram merge by bucket addition.
    std::vector<StragglerRow> stragglers;
    std::vector<std::uint64_t> fleet_buckets(obs::Histogram::kBucketCount, 0);
    std::uint64_t fleet_count = 0;
    std::uint64_t claimed_total = 0;
    std::uint64_t designs_total = 0;
    std::uint64_t failures_total = 0;
    double fleet_sum = 0.0;
    double fleet_min = 0.0;
    double fleet_max = 0.0;
    bool fleet_nonempty = false;
    for (const ProcessView& p : procs) {
        if (!p.has_drain) continue;
        designs_total = std::max(designs_total, p.designs_total);
        claimed_total += p.claimed;
        failures_total += p.failures;
        for (const StragglerRow& r : p.designs) stragglers.push_back(r);
        for (std::size_t i = 0; i < fleet_buckets.size(); ++i)
            fleet_buckets[i] += p.drain_buckets[i];
        fleet_count += p.drain_count;
        fleet_sum += p.drain_sum;
        if (p.drain_count > 0) {
            fleet_min = fleet_nonempty ? std::min(fleet_min, p.drain_min) : p.drain_min;
            fleet_max = fleet_nonempty ? std::max(fleet_max, p.drain_max) : p.drain_max;
            fleet_nonempty = true;
        }
    }
    std::stable_sort(stragglers.begin(), stragglers.end(),
                     [](const StragglerRow& a, const StragglerRow& b) {
                         return a.wall_ms > b.wall_ms;
                     });
    if (stragglers.size() > top_k) stragglers.resize(top_k);

    std::uint64_t timed_events = 0;
    for (const MergedEvent& m : merged)
        if (!m.meta) ++timed_events;

    {
        JsonWriter w;
        w.beginObject();
        w.kv("schema", "flh.obs.fleet/1");
        w.kv("wall_epoch_us", min_epoch);
        w.kv("trace_events", timed_events);
        w.key("processes");
        w.beginArray();
        for (std::size_t i = 0; i < n; ++i) {
            const ProcessView& p = procs[i];
            w.beginObject();
            w.kv("label", p.label);
            w.kv("pid", static_cast<std::uint64_t>(i + 1));
            w.kv("wall_epoch_us", p.wall_epoch_us);
            w.kv("offset_us", p.offset_us);
            w.kv("spans", static_cast<std::uint64_t>(p.trace_events.size()));
            w.kv("events", static_cast<std::uint64_t>(p.log_events.size()));
            w.kv("events_dropped", p.events_dropped);
            w.kv("samples", p.samples);
            w.kv("peak_rss_bytes", p.peak_rss_bytes);
            if (p.has_drain) {
                w.key("drain");
                w.beginObject();
                w.kv("claimed", p.claimed);
                w.kv("already_claimed", p.already_claimed);
                w.kv("failures", p.failures);
                w.kv("drain_wall_ms", p.drain_wall_ms);
                w.kv("busy_ms", p.busy_ms);
                w.kv("utilization",
                     p.drain_wall_ms > 0.0 ? p.busy_ms / p.drain_wall_ms : 0.0);
                w.endObject();
            }
            w.endObject();
        }
        w.endArray();
        w.kv("designs_total", designs_total);
        w.kv("claimed_total", claimed_total);
        w.kv("failures_total", failures_total);
        w.key("stragglers");
        w.beginArray();
        for (const StragglerRow& r : stragglers) {
            w.beginObject();
            w.kv("design", r.design);
            w.kv("drainer", r.drainer);
            w.kv("wall_ms", r.wall_ms);
            w.kv("failed", r.failed);
            w.endObject();
        }
        w.endArray();
        w.key("drain_ms");
        w.beginObject();
        w.kv("count", fleet_count);
        w.kv("sum", fleet_sum);
        w.kv("min", fleet_min);
        w.kv("max", fleet_max);
        w.kv("p50", obs::percentileFromBuckets(fleet_buckets, 0.50, fleet_min, fleet_max));
        w.kv("p95", obs::percentileFromBuckets(fleet_buckets, 0.95, fleet_min, fleet_max));
        w.kv("p99", obs::percentileFromBuckets(fleet_buckets, 0.99, fleet_min, fleet_max));
        w.key("buckets");
        w.beginArray();
        for (std::size_t i = 0; i < fleet_buckets.size(); ++i) {
            if (fleet_buckets[i] == 0) continue;
            w.beginArray();
            w.value(static_cast<std::uint64_t>(i));
            w.value(fleet_buckets[i]);
            w.endArray();
        }
        w.endArray();
        w.endObject();
        w.endObject();
        cli::writeFileOrDie("flh_obsmerge", report_path, w.str() + "\n");
    }

    if (!quiet) {
        std::cout << "flh_obsmerge: merged " << n << " processes, " << timed_events
                  << " trace events -> " << out_path << "\n";
        if (claimed_total > 0) {
            std::cout << "fleet: " << claimed_total << "/" << designs_total
                      << " designs drained, " << failures_total << " failures\n";
            for (const StragglerRow& r : stragglers)
                std::cout << "  straggler " << r.design << " (" << r.drainer << "): "
                          << fmt(r.wall_ms, 1) << " ms" << (r.failed ? " FAILED" : "")
                          << "\n";
        }
        std::cout << "report: " << report_path << "\n";
    }
    return 0;
}
