// flh_fuzz: differential verification driver.
//
//   flh_fuzz --seeds 500                  # cross-engine + DFT-equivalence fuzz
//   flh_fuzz --inject-mutant --seeds 20   # mutation-testing smoke: the checker
//                                         # must catch a corrupted FLH netlist
//   flh_fuzz --check-corpus tests/corpus  # replay committed reproducers
//
// Every seed deterministically generates a random sequential circuit, scans
// it, and cross-checks: a naive reference evaluator vs PatternSim, the
// word-packed PackedSim at every --words width vs the same reference,
// SequentialSim::clock vs the nextState oracle, the scalar serial engine vs
// fault simulation at every --threads count x --words width (bitmaps and
// n-detect counts), and the paper's Fig. 5b two-pattern protocol under
// enhanced scan / MUX-hold / FLH vs direct evaluation. Any mismatch is greedily shrunk to a small .bench +
// .pairs reproducer under --corpus and the run exits non-zero.
//
// In --inject-mutant mode the FLH variant is deliberately corrupted (one gate
// function flipped) and the exit codes invert: 0 means the checker caught the
// mutant within the seed budget, 1 means it slept through — the guard against
// a vacuously-passing checker.
#include "obs/benchio.hpp"
#include "obs/sampler.hpp"
#include "obs/telemetry.hpp"
#include "util/cli.hpp"
#include "verify/corpus.hpp"
#include "verify/fuzz.hpp"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

using namespace flh;

namespace {

constexpr const char* kUsage = R"(usage: flh_fuzz [options]
  --seeds N            fuzz seeds to run (default 100)
  --start-seed N       first seed (default 1)
  --pairs N            random (V1,V2) pairs per seed (default 12)
  --atpg-pairs N       ATPG-generated pairs per seed (default 6)
  --patterns N         stuck-at patterns per seed (default 16)
  --max-faults N       fault-list cap per seed (default 96)
  --threads LIST       comma-separated thread counts to cross-check
                       (default 1,4)
  --words LIST         comma-separated packed word widths to cross-check
                       against the scalar words=0 oracle (default 1,4,8)
  --corpus DIR         where shrunk reproducers are written
                       (default fuzz_corpus)
  --no-shrink          report mismatches without minimizing them
  --keep-going         do not stop at the first finding
  --check-corpus DIR   replay every reproducer in DIR through the
                       equivalence checker instead of fuzzing
  --inject-mutant      corrupt the FLH variant (mutation-testing smoke);
                       exit 0 iff the checker catches it
  --mutant-seed N      mutation seed for --inject-mutant (default 1)
  --trace FILE         write a Chrome trace_event JSON (enables telemetry)
  --metrics FILE       write telemetry metrics wrapped in the provenance
                       envelope (enables telemetry)
  --out DIR            directory for --metrics (overrides FLH_BENCH_OUT)
  --heartbeat SEC      print a progress heartbeat to stderr every SEC seconds
  --quiet              suppress per-finding console output
  --help
)";

int replayCorpus(const std::string& dir, bool quiet) {
    const Library lib = makeDefaultLibrary();
    const std::vector<CorpusEntry> corpus = loadCorpus(dir, lib);
    std::size_t bad = 0;
    for (const CorpusEntry& entry : corpus) {
        const EquivalenceReport rep = checkDftEquivalence(entry.netlist, entry.pairs);
        if (!quiet)
            std::cout << entry.name << ": " << rep.pairs_checked << " pairs, "
                      << (rep.ok() ? "ok" : "MISMATCH") << "\n";
        if (!rep.ok()) {
            ++bad;
            std::cerr << "flh_fuzz: corpus entry '" << entry.name << "' fails: "
                      << rep.summary() << "\n";
        }
    }
    if (!quiet)
        std::cout << corpus.size() << " corpus entries replayed, " << bad << " failing\n";
    return bad == 0 ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    cli::ArgScan scan(argc, argv, "flh_fuzz", kUsage);
    cli::CommonFlags common;
    common.parse_threads = false; // --threads is a cross-check LIST here
    FuzzOptions opts;
    opts.corpus_dir = "fuzz_corpus";
    std::string check_corpus_dir;
    bool inject_mutant = false;
    std::uint64_t mutant_seed = 1;

    while (scan.next()) {
        if (common.tryParse(scan)) continue;
        if (scan.is("--seeds")) opts.seeds = scan.num<std::size_t>();
        else if (scan.is("--start-seed")) opts.start_seed = scan.num<std::uint64_t>();
        else if (scan.is("--pairs")) opts.random_pairs = scan.num<std::size_t>();
        else if (scan.is("--atpg-pairs")) opts.atpg_pairs = scan.num<std::size_t>();
        else if (scan.is("--patterns")) opts.stuck_patterns = scan.num<std::size_t>();
        else if (scan.is("--max-faults")) opts.max_faults = scan.num<std::size_t>();
        else if (scan.is("--threads")) opts.thread_counts = scan.numList<unsigned>();
        else if (scan.is("--words")) opts.word_widths = scan.numList<unsigned>();
        else if (scan.is("--corpus")) opts.corpus_dir = scan.value();
        else if (scan.is("--no-shrink")) opts.shrink = false;
        else if (scan.is("--keep-going")) opts.stop_on_first = false;
        else if (scan.is("--check-corpus")) check_corpus_dir = scan.value();
        else if (scan.is("--inject-mutant")) inject_mutant = true;
        else if (scan.is("--mutant-seed")) mutant_seed = scan.num<std::uint64_t>();
        else scan.unknownOption();
    }

    if (common.wantsTelemetry()) {
        obs::setEnabled(true);
        obs::setThreadLabel("main");
    }

    std::unique_ptr<obs::Sampler> sampler;
    if (common.heartbeat_s > 0.0) {
        obs::SamplerOptions sopts;
        sopts.heartbeat_every_s = common.heartbeat_s;
        sopts.heartbeat_out = &std::cerr;
        sampler = std::make_unique<obs::Sampler>(sopts);
        sampler->start();
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t checks_run = 0;
    int exit_code = 0;
    if (!check_corpus_dir.empty()) {
        try {
            exit_code = replayCorpus(check_corpus_dir, common.quiet);
        } catch (const std::exception& e) {
            std::cerr << "flh_fuzz: " << e.what() << "\n";
            exit_code = 1;
        }
    } else {
        if (inject_mutant) opts.mutant_seed = mutant_seed;
        const FuzzReport rep = runFuzz(opts);
        checks_run = rep.checks_run;

        if (!common.quiet) {
            std::cout << rep.seeds_run << " seeds, " << rep.checks_run << " checks, "
                      << rep.findings.size() << " findings\n";
            for (const FuzzFinding& f : rep.findings) {
                std::cout << "seed " << f.seed << " [" << f.check << "] " << f.detail << "\n";
                if (!f.bench_path.empty())
                    std::cout << "  reproducer: " << f.bench_path << " + " << f.pairs_path
                              << " (" << f.shrunk_gates << " gates after shrink)\n";
            }
        }

        if (inject_mutant) {
            const bool caught = std::any_of(
                rep.findings.begin(), rep.findings.end(),
                [](const FuzzFinding& f) { return f.check == "dft-equivalence"; });
            if (!common.quiet)
                std::cout << "mutant " << (caught ? "caught" : "NOT caught") << " within "
                          << rep.seeds_run << " seeds\n";
            exit_code = caught ? 0 : 1;
        } else {
            exit_code = rep.ok() ? 0 : 1;
        }
    }

    const double wall_ns =
        std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0)
            .count();
    if (sampler) sampler->stop();

    if (!common.trace_path.empty())
        cli::writeFileOrDie("flh_fuzz", common.trace_path, obs::traceJson());
    if (!common.metrics_path.empty()) {
        // Envelope export: the flat flh.obs.metrics payload nests under
        // "results", plus one whole-run entry so flh_benchdiff can track
        // fuzz throughput across builds.
        obs::BenchWriter bw("flh.obs.metrics/1");
        obs::BenchEntry e;
        e.name = "fuzz/checks";
        e.threads = 1;
        e.time_samples.push_back(wall_ns);
        if (checks_run > 0 && wall_ns > 0.0)
            e.ips_samples.push_back(static_cast<double>(checks_run) / (wall_ns / 1e9));
        bw.add(std::move(e));
        bw.setResults(obs::metricsJson());
        cli::writeFileOrDie("flh_fuzz", obs::benchOutPath(common.metrics_path, common.out_flag),
                            bw.json());
    }
    return exit_code;
}
