// Scan power audit: how much energy does a full scan-test session burn in
// the combinational block under each holding style?
//
// A test session = N pattern loads through the chain. Plain scan pays the
// redundant-switching tax on every shift cycle (Section IV); enhanced scan
// and FLH suppress it completely — FLH while keeping the *area* of the
// holding hardware on the first-level gates instead of on every FF.
#include "core/kit.hpp"
#include "util/table.hpp"

#include <iostream>

using namespace flh;

int main(int argc, char** argv) {
    const std::string circuit = argc > 1 ? argv[1] : "s641";
    const DelayTestKit kit = DelayTestKit::forCircuit(circuit);
    const std::size_t chain = kit.scanInfo().chain_length;

    std::cout << "=== Scan power audit: " << circuit << " (chain length " << chain
              << ") ===\n\n";

    TextTable table({"Style", "Comb shift power (uW)", "FF-output wire power (uW)",
                     "Comb toggles", "Holding area (um^2)"});
    for (const HoldStyle s :
         {HoldStyle::None, HoldStyle::EnhancedScan, HoldStyle::MuxHold, HoldStyle::Flh}) {
        const ScanShiftPowerResult r = kit.scanShiftPower(s);
        const double area = dftAreaUm2(kit.netlist(), planDft(kit.netlist(), s));
        table.addRow({toString(s), fmt(r.comb_switching_uw, 3), fmt(r.ffq_switching_uw, 3),
                      std::to_string(r.comb_toggles), fmt(area, 2)});
    }
    std::cout << table.render() << "\n";

    const auto none = kit.scanShiftPower(HoldStyle::None);
    const double share =
        100.0 * none.comb_switching_uw / (none.comb_switching_uw + none.ffq_switching_uw);
    std::cout << "Without holding, " << fmt(share, 1)
              << "% of shift-mode switching power is redundant combinational activity\n"
                 "(Gerstendorfer & Wunderlich report ~78% of test energy in this class).\n"
                 "Both enhanced scan and FLH eliminate it; FLH additionally keeps the\n"
                 "scan-FF outputs free of extra series elements in normal mode.\n";
    return 0;
}
