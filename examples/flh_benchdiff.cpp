// flh_benchdiff: run-over-run perf comparison and CI regression gate.
//
//   flh_benchdiff --baseline bench/baselines --candidate run/
//
// Loads every envelope-format BENCH_*.json under the two directories,
// matches benchmarks by (payload_schema, name, threads), and flags a
// regression only when the candidate median leaves the baseline IQR by
// more than --threshold (default 10%) — repetition spread absorbs normal
// jitter. Prints a comparison table, writes a machine BENCH_diff.json
// (schema flh.bench.diff/1), and exits 1 on regressions or missing
// benchmarks. --warn-only downgrades those to warnings for noisy shared
// runners, while --fail-above R still hard-fails on catastrophic (> R x)
// slowdowns.
#include "obs/benchdiff.hpp"
#include "util/cli.hpp"

#include <iostream>
#include <string>

using namespace flh;
using namespace flh::obs;

namespace {

constexpr const char* kUsage = R"(usage: flh_benchdiff --baseline DIR --candidate DIR [options]
  --baseline DIR       envelope BENCH_*.json set to compare against
  --candidate DIR      envelope BENCH_*.json set under test
  --threshold F        IQR-escape ratio that flags a regression
                       (default 0.10 = 10% beyond the baseline median)
  --fail-above R       hard-fail when candidate median > R x baseline
                       median, even under --warn-only (default 0 = off)
  --min-time-ns N      skip baselines with median below N ns — timer
                       noise dominates there (default 50000)
  --json FILE          machine diff report (default BENCH_diff.json,
                       honors --out / FLH_BENCH_OUT for bare filenames)
  --out DIR            output directory for --json (default FLH_BENCH_OUT
                       env var, then the current directory)
  --warn-only          report regressions/missing but exit 0 (hard
                       failures from --fail-above still exit 1)
  --quiet              suppress the console table
  --help
)";

} // namespace

int main(int argc, char** argv) {
    cli::ArgScan scan(argc, argv, "flh_benchdiff", kUsage);
    cli::CommonFlags common;
    common.parse_threads = false; // no thread pool here
    std::string baseline_dir;
    std::string candidate_dir;
    std::string json_path = "BENCH_diff.json";
    DiffOptions opts;
    bool warn_only = false;

    while (scan.next()) {
        if (common.tryParse(scan)) continue;
        if (scan.is("--baseline")) baseline_dir = scan.value();
        else if (scan.is("--candidate")) candidate_dir = scan.value();
        else if (scan.is("--threshold")) opts.ratio = scan.num<double>();
        else if (scan.is("--fail-above")) opts.fail_above = scan.num<double>();
        else if (scan.is("--min-time-ns")) opts.min_time_ns = scan.num<double>();
        else if (scan.is("--json")) json_path = scan.value();
        else if (scan.is("--warn-only")) warn_only = true;
        else scan.unknownOption();
    }
    if (baseline_dir.empty() || candidate_dir.empty())
        scan.usageError("--baseline and --candidate are both required");

    std::vector<BenchPoint> base;
    std::vector<BenchPoint> cand;
    try {
        base = loadBenchDir(baseline_dir);
        cand = loadBenchDir(candidate_dir);
    } catch (const std::exception& e) {
        std::cerr << "flh_benchdiff: " << e.what() << "\n";
        return 2;
    }
    if (base.empty()) {
        std::cerr << "flh_benchdiff: no envelope benchmarks under " << baseline_dir << "\n";
        return 2;
    }
    if (cand.empty()) {
        std::cerr << "flh_benchdiff: no envelope benchmarks under " << candidate_dir << "\n";
        return 2;
    }

    const DiffReport rep = diffBench(base, cand, opts);

    const std::string path = benchOutPath(json_path, common.out_flag);
    cli::writeFileOrDie("flh_benchdiff", path, rep.json());

    if (!common.quiet) {
        std::cout << rep.table().render();
        std::cout << "\n" << rep.rows.size() << " benchmarks compared: "
                  << rep.regressions() << " regressions, " << rep.improvements()
                  << " improvements, " << rep.added() << " new, " << rep.missing()
                  << " missing, " << rep.count(Verdict::Skipped) << " skipped\n";
        if (!base.empty() && !cand.empty() && !base.front().git_sha.empty())
            std::cout << "baseline sha " << base.front().git_sha.substr(0, 12)
                      << " -> candidate sha " << cand.front().git_sha.substr(0, 12)
                      << "\n";
        std::cout << "diff report: " << path << "\n";
    }

    if (rep.hardFailures()) {
        std::cerr << "flh_benchdiff: hard failure — a benchmark slowed beyond "
                  << opts.fail_above << "x the baseline\n";
        return 1;
    }
    const bool soft_fail = rep.regressions() > 0 || rep.missing() > 0;
    if (soft_fail && !warn_only) return 1;
    if (soft_fail)
        std::cerr << "flh_benchdiff: regressions present (warn-only mode, exiting 0)\n";
    return 0;
}
