// flh_benchdiff: run-over-run perf comparison and CI regression gate.
//
//   flh_benchdiff --baseline bench/baselines --candidate run/
//
// Loads every envelope-format BENCH_*.json under the two directories,
// matches benchmarks by (payload_schema, name, threads), and flags a
// regression only when the candidate median leaves the baseline IQR by
// more than --threshold (default 10%) — repetition spread absorbs normal
// jitter. Prints a comparison table, writes a machine BENCH_diff.json
// (schema flh.bench.diff/1), and exits 1 on regressions or missing
// benchmarks. --warn-only downgrades those to warnings for noisy shared
// runners, while --fail-above R still hard-fails on catastrophic (> R x)
// slowdowns.
#include "obs/benchdiff.hpp"

#include <charconv>
#include <fstream>
#include <iostream>
#include <string>

using namespace flh;
using namespace flh::obs;

namespace {

constexpr const char* kUsage = R"(usage: flh_benchdiff --baseline DIR --candidate DIR [options]
  --baseline DIR       envelope BENCH_*.json set to compare against
  --candidate DIR      envelope BENCH_*.json set under test
  --threshold F        IQR-escape ratio that flags a regression
                       (default 0.10 = 10% beyond the baseline median)
  --fail-above R       hard-fail when candidate median > R x baseline
                       median, even under --warn-only (default 0 = off)
  --min-time-ns N      skip baselines with median below N ns — timer
                       noise dominates there (default 50000)
  --json FILE          machine diff report (default BENCH_diff.json,
                       honors --out / FLH_BENCH_OUT for bare filenames)
  --out DIR            output directory for --json (default FLH_BENCH_OUT
                       env var, then the current directory)
  --warn-only          report regressions/missing but exit 0 (hard
                       failures from --fail-above still exit 1)
  --quiet              suppress the console table
  --help
)";

[[noreturn]] void usageError(const std::string& msg) {
    std::cerr << "flh_benchdiff: " << msg << "\n" << kUsage;
    std::exit(2);
}

template <typename T> T parseNum(const std::string& flag, const std::string& s) {
    T v{};
    const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc() || p != s.data() + s.size())
        usageError("bad value for " + flag + ": '" + s + "'");
    return v;
}

} // namespace

int main(int argc, char** argv) {
    std::string baseline_dir;
    std::string candidate_dir;
    std::string json_path = "BENCH_diff.json";
    std::string out_flag;
    DiffOptions opts;
    bool warn_only = false;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) usageError("missing value after " + arg);
            return argv[++i];
        };
        if (arg == "--baseline") baseline_dir = next();
        else if (arg == "--candidate") candidate_dir = next();
        else if (arg == "--threshold") opts.ratio = parseNum<double>(arg, next());
        else if (arg == "--fail-above") opts.fail_above = parseNum<double>(arg, next());
        else if (arg == "--min-time-ns") opts.min_time_ns = parseNum<double>(arg, next());
        else if (arg == "--json") json_path = next();
        else if (arg == "--out") out_flag = next();
        else if (arg == "--warn-only") warn_only = true;
        else if (arg == "--quiet") quiet = true;
        else if (arg == "--help" || arg == "-h") {
            std::cout << kUsage;
            return 0;
        } else usageError("unknown option '" + arg + "'");
    }
    if (baseline_dir.empty() || candidate_dir.empty())
        usageError("--baseline and --candidate are both required");

    std::vector<BenchPoint> base;
    std::vector<BenchPoint> cand;
    try {
        base = loadBenchDir(baseline_dir);
        cand = loadBenchDir(candidate_dir);
    } catch (const std::exception& e) {
        std::cerr << "flh_benchdiff: " << e.what() << "\n";
        return 2;
    }
    if (base.empty()) {
        std::cerr << "flh_benchdiff: no envelope benchmarks under " << baseline_dir << "\n";
        return 2;
    }
    if (cand.empty()) {
        std::cerr << "flh_benchdiff: no envelope benchmarks under " << candidate_dir << "\n";
        return 2;
    }

    const DiffReport rep = diffBench(base, cand, opts);

    const std::string path = benchOutPath(json_path, out_flag);
    {
        std::ofstream out(path, std::ios::trunc);
        out << rep.json();
        if (!out) {
            std::cerr << "flh_benchdiff: cannot write " << path << "\n";
            return 2;
        }
    }

    if (!quiet) {
        std::cout << rep.table().render();
        std::cout << "\n" << rep.rows.size() << " benchmarks compared: "
                  << rep.regressions() << " regressions, " << rep.improvements()
                  << " improvements, " << rep.added() << " new, " << rep.missing()
                  << " missing, " << rep.count(Verdict::Skipped) << " skipped\n";
        if (!base.empty() && !cand.empty() && !base.front().git_sha.empty())
            std::cout << "baseline sha " << base.front().git_sha.substr(0, 12)
                      << " -> candidate sha " << cand.front().git_sha.substr(0, 12)
                      << "\n";
        std::cout << "diff report: " << path << "\n";
    }

    if (rep.hardFailures()) {
        std::cerr << "flh_benchdiff: hard failure — a benchmark slowed beyond "
                  << opts.fail_above << "x the baseline\n";
        return 1;
    }
    const bool soft_fail = rep.regressions() > 0 || rep.missing() > 0;
    if (soft_fail && !warn_only) return 1;
    if (soft_fail)
        std::cerr << "flh_benchdiff: regressions present (warn-only mode, exiting 0)\n";
    return 0;
}
