// flh_serve: the flow engine as a long-lived local service.
//
//   flh_serve --socket /tmp/flh.sock --threads 0
//   flh_serve --port 7421 --queue 128 --sample 200
//
// One warm process owns the design/graph memos and a single .flowcache/
// cone; clients speak the length-prefixed JSON protocol (ping / flow /
// fuzz / equiv / metrics / shutdown — see src/serve/protocol.hpp) over a
// Unix domain socket or loopback TCP. Compatible concurrent flow requests
// coalesce into one cache cone; a bounded admission queue rejects overload
// with structured retry-after errors; every request gets a trace id that
// threads through the telemetry lanes.
//
// The process runs until a shutdown request or SIGINT/SIGTERM, then writes
// the --trace/--metrics exports (telemetry spans all requests served) and
// prints a final stats line. flh_client is the matching load generator.
#include "obs/eventlog.hpp"
#include "obs/telemetry.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"

#include <atomic>
#include <csignal>
#include <iostream>
#include <thread>

#include <unistd.h>

using namespace flh;

namespace {

constexpr const char* kUsage = R"(usage: flh_serve [options]
  --socket PATH        listen on a Unix domain socket at PATH
  --port N             listen on 127.0.0.1:N (0 = kernel-assigned; printed
                       on startup). Default when --socket is absent: port 0
  --threads N          worker pool width; 0 = one per hardware thread
                       (default 0)
  --queue N            admission queue bound (default 64)
  --deadline-ms F      default queue-wait deadline for requests that carry
                       none (default 0 = none)
  --idle-ms N          drop connections that idle or stall mid-frame for
                       N ms (default 30000; 0 = never)
  --cache-dir DIR      flow result cache directory (default .flowcache)
  --cache-max-bytes N  GC byte budget (suffixes k/m/g); 0 = unbounded
  --cache-max-entries N GC entry budget; 0 = unbounded
  --cache-max-age SEC  GC age bound in seconds; 0 = none
  --cache-gc           run one cache GC pass on startup
  --no-cache           flow stages recompute every time
  --sample MS          run the metrics sampler at MS cadence; metrics
                       responses then include the time-series
  --trace FILE         write a Chrome trace_event JSON on exit (enables
                       telemetry; spans carry per-request trace ids)
  --metrics FILE       write flat telemetry metrics on exit (enables
                       telemetry)
  --events FILE        write a structured JSONL event log (overload
                       rejections, coalesced batches, session drops;
                       independent of --trace)
  --quiet              suppress startup/summary lines
  --help
)";

} // namespace

int main(int argc, char** argv) {
    cli::ArgScan scan(argc, argv, "flh_serve", kUsage);
    cli::CommonFlags common;
    common.threads = 0; // service default: one worker per hardware thread
    cli::CacheFlags cache_flags;
    serve::ServeOptions opts;
    std::string socket_path;
    bool port_set = false;
    std::uint16_t port = 0;
    unsigned sample_ms = 0;

    while (scan.next()) {
        if (common.tryParse(scan)) continue;
        if (cache_flags.tryParse(scan)) continue;
        if (scan.is("--socket")) socket_path = scan.value();
        else if (scan.is("--port")) {
            port = scan.num<std::uint16_t>();
            port_set = true;
        }
        else if (scan.is("--queue")) opts.queue_limit = scan.num<std::size_t>();
        else if (scan.is("--deadline-ms")) opts.default_deadline_ms = scan.num<double>();
        else if (scan.is("--idle-ms")) opts.io_timeout_ms = scan.num<unsigned>();
        else if (scan.is("--sample")) sample_ms = scan.num<unsigned>();
        else scan.unknownOption();
    }
    if (!socket_path.empty() && port_set)
        scan.usageError("--socket and --port are mutually exclusive");
    opts.flow.cache = makeCacheConfig(cache_flags);

    opts.workers = common.threads;
    opts.sampler_period_ms = sample_ms;
    opts.endpoint = socket_path.empty() ? net::Endpoint::tcpAt(port)
                                        : net::Endpoint::unixAt(socket_path);

    if (common.wantsTelemetry() || sample_ms > 0) {
        obs::setEnabled(true);
        obs::setThreadLabel("main");
    }

    // Event sink: separate gate from span telemetry, closed (with its
    // drop-count trailer) on every return path below.
    struct EventSinkCloser {
        ~EventSinkCloser() { obs::closeEventSink(); }
    } event_sink_closer;
    if (!common.events_path.empty()) {
        obs::setEventLogEnabled(true);
        if (!obs::openEventSink(common.events_path)) {
            std::cerr << "flh_serve: cannot write " << common.events_path << "\n";
            return 1;
        }
    }

    // SIGINT/SIGTERM stop the server cleanly: the signals are blocked on
    // every thread and consumed by a dedicated sigwait thread (a plain
    // handler could not safely call requestStop, which takes locks).
    sigset_t stop_signals;
    sigemptyset(&stop_signals);
    sigaddset(&stop_signals, SIGINT);
    sigaddset(&stop_signals, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &stop_signals, nullptr);

    serve::Server server(opts);
    try {
        server.start();
    } catch (const std::exception& e) {
        std::cerr << "flh_serve: " << e.what() << "\n";
        return 1;
    }

    // Cleared the instant sigwait returns: past that point the thread may
    // exit at any moment, and pthread_kill on a terminated thread is
    // undefined — so the wake-up below must go to the process, not the
    // thread, and only while this is still set.
    std::atomic<bool> signal_thread_waiting{true};
    std::thread signal_thread([&] {
        int sig = 0;
        sigwait(&stop_signals, &sig);
        signal_thread_waiting.store(false);
        server.requestStop();
    });

    if (!common.quiet) {
        std::cout << "flh_serve: listening on " << server.boundEndpoint().describe()
                  << std::endl; // flushed so wrappers can scrape the port
    }

    server.waitUntilStopped();
    // If the stop came from a shutdown request, the signal thread is still
    // parked in sigwait: a process-directed SIGTERM can only be consumed
    // by it (every thread blocks the signal). If it already took a signal,
    // either no SIGTERM is sent or the extra one stays pending-and-blocked
    // until exit — both harmless, unlike pthread_kill on a thread that may
    // have terminated.
    if (signal_thread_waiting.load()) kill(getpid(), SIGTERM);
    signal_thread.join();

    if (!common.trace_path.empty())
        cli::writeFileOrDie("flh_serve", common.trace_path, obs::traceJson());
    if (!common.metrics_path.empty())
        cli::writeFileOrDie("flh_serve", common.metrics_path, obs::metricsJson());

    if (!common.quiet) {
        const serve::StatsSnapshot s = server.stats();
        std::cout << "flh_serve: " << s.connections << " connections, " << s.ok << " ok, "
                  << s.errors << " errors (" << s.rejected_overload << " overload, "
                  << s.rejected_deadline << " deadline, " << s.rejected_shutdown
                  << " shutdown), " << s.coalesced << " coalesced, " << s.batched
                  << " batched\n";
    }
    return 0;
}
