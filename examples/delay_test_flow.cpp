// End-to-end delay-test flow: generate a two-pattern transition-fault test
// set, apply it through the Fig. 5(b) protocol on an FLH-equipped circuit,
// audit every application, and finally show an actual slow gate being caught
// by comparing a faulty machine's captures against the good ones.
#include "core/kit.hpp"
#include "util/table.hpp"

#include <iostream>

using namespace flh;

int main(int argc, char** argv) {
    const std::string circuit = argc > 1 ? argv[1] : "s344";
    const DelayTestKit kit = DelayTestKit::forCircuit(circuit);
    const Netlist& nl = kit.netlist();

    std::cout << "=== Delay-test flow on " << circuit << " (FLH) ===\n\n";

    // 1. Generate the test set (arbitrary pairs — FLH's whole point).
    const auto faults = allTransitionFaults(nl);
    TransitionAtpgConfig cfg;
    cfg.random_pairs = 64;
    const TransitionAtpgResult atpg =
        generateTransitionTests(nl, TestApplication::EnhancedScan, faults, cfg);
    std::cout << "ATPG: " << atpg.tests.size() << " two-pattern tests, "
              << fmt(atpg.coverage.coveragePct(), 2) << "% transition coverage ("
              << atpg.untestable << " untestable, " << atpg.aborted << " aborted)\n";

    // 2. Apply a sample through the scan protocol and audit it.
    TwoPatternApplicator app(nl, HoldStyle::Flh);
    std::size_t faithful = 0;
    const std::size_t n_apply = std::min<std::size_t>(16, atpg.tests.size());
    for (std::size_t i = 0; i < n_apply; ++i) {
        const ApplicationResult r = app.apply(atpg.tests[i]);
        if (r.launch_faithful && r.captured == expectedCapture(nl, atpg.tests[i])) ++faithful;
    }
    std::cout << "Application audit: " << faithful << "/" << n_apply
              << " tests applied with intact hold, faithful launch, correct capture\n\n";

    // 3. Demonstrate detection: one batched n-detect pass grades every
    //    (fault, test) combination at once — no per-pair re-simulation.
    const std::vector<std::size_t> n_det = countTransitionDetections(nl, atpg.tests, faults);
    TextTable table({"Fault", "Detected by # tests", "Observation"});
    int shown = 0;
    for (std::size_t fi = 0; fi < faults.size() && shown < 6; ++fi) {
        if (!atpg.coverage.detected_mask[fi] || n_det[fi] == 0) continue;
        table.addRow({toString(nl, faults[fi]), std::to_string(n_det[fi]),
                      "captured response differs from good machine"});
        ++shown;
    }
    std::cout << "Sample detections:\n" << table.render();
    std::cout << "\nThe same vectors applied with enhanced-scan hardware give identical\n"
                 "coverage (Section IV) — FLH changes the holding mechanism, not the test.\n";
    return 0;
}
