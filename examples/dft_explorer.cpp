// DFT design-space explorer: for a chosen circuit, compare the three holding
// styles, sweep the FLH sleep sizing, and run the Section-V fanout optimizer
// — the workflow of a DFT engineer deciding how to equip a design for
// two-pattern delay test. Optional CSV output for plotting.
//
// Usage: dft_explorer [circuit] [--csv]
#include "core/kit.hpp"
#include "util/table.hpp"

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace flh;

int main(int argc, char** argv) {
    std::string circuit = "s838";
    bool csv = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--csv") {
            csv = true;
        } else {
            circuit = arg;
        }
    }

    DelayTestKit kit = DelayTestKit::forCircuit(circuit);
    std::cout << "=== DFT explorer: " << circuit << " ===\n\n";

    // --- style comparison ---------------------------------------------------
    std::vector<std::vector<std::string>> rows;
    TextTable styles({"Style", "Area ovh %", "Delay ovh %", "Power ovh %"});
    for (const HoldStyle s : {HoldStyle::EnhancedScan, HoldStyle::MuxHold, HoldStyle::Flh}) {
        const DftEvaluation e = kit.evaluate(s);
        std::vector<std::string> row = {toString(s), fmt(e.area_increase_pct),
                                        fmt(e.delay_increase_pct), fmt(e.power_increase_pct)};
        styles.addRow(row);
        rows.push_back(std::move(row));
    }
    std::cout << styles.render() << "\n";

    // --- FLH sleep sizing sweep ----------------------------------------------
    TextTable sweep({"sleep_w", "Area ovh %", "Delay ovh %"});
    for (const double w : {1.0, 1.5, 1.75, 2.5, 4.0}) {
        DftSizing sizing;
        sizing.flh.sleep_w = w;
        const DftDesign d = planDft(kit.netlist(), HoldStyle::Flh, sizing);
        const TimingResult base = runSta(kit.netlist());
        const TimingResult with = runSta(kit.netlist(), makeTimingOverlay(kit.netlist(), d));
        sweep.addRow({fmt(w, 2),
                      fmt(100.0 * dftAreaUm2(kit.netlist(), d) / kit.netlist().totalAreaUm2()),
                      fmt(100.0 * (with.critical_delay_ps - base.critical_delay_ps) /
                              base.critical_delay_ps,
                          3)});
    }
    std::cout << "FLH sleep-pair sizing sweep:\n" << sweep.render() << "\n";

    // --- fanout optimization ---------------------------------------------------
    const DftEvaluation before = kit.evaluate(HoldStyle::Flh);
    const FanoutOptResult opt = kit.optimizeFanout();
    const DftEvaluation after = kit.evaluate(HoldStyle::Flh);
    std::cout << "Fanout optimization (Section V): first-level gates "
              << opt.first_level_before << " -> " << opt.first_level_after << ", FLH area ovh "
              << fmt(before.area_increase_pct) << "% -> " << fmt(after.area_increase_pct)
              << "% (+ " << opt.inverters_added << " inverters), delay "
              << fmt(opt.delay_before_ps, 1) << " -> " << fmt(opt.delay_after_ps, 1)
              << " ps\n";

    if (csv) {
        std::ostringstream os;
        writeCsv(os, {"style", "area_pct", "delay_pct", "power_pct"}, rows);
        std::cout << "\nCSV:\n" << os.str();
    }
    return 0;
}
