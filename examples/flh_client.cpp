// flh_client: load generator and correctness checker for flh_serve.
//
//   flh_client --port 7421 --requests 200 --connections 4 --rps 100
//   flh_client --socket /tmp/flh.sock --manifest load.json --bench-json BENCH_serve.json
//
// Replays a request manifest (a JSON array of request templates, cycled
// round-robin; a built-in flow+ping mix when no --manifest is given)
// against a running flh_serve, over --connections parallel connections,
// paced to --rps across all of them (0 = as fast as possible). Every
// response is checked — id match, ok flag, result shape — and latency is
// recorded per request. The summary reports achieved requests/sec,
// p50/p95/p99 latency, the flow cache hit rate, and per-error-code
// rejection counts; --bench-json writes all of it as a provenance
// envelope (payload schema flh.bench.serve/1) that flh_benchdiff can gate
// in CI. --expect-ok / --hit-rate-min turn the run into a pass/fail
// check; --shutdown stops the server after the run.
#include "obs/benchio.hpp"
#include "serve/protocol.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace flh;

namespace {

constexpr const char* kUsage = R"(usage: flh_client [options]
  --socket PATH        connect to a Unix domain socket
  --port N             connect to 127.0.0.1:N
  --requests N         total requests to send (default 100)
  --connections N      parallel client connections (default 1)
  --rps F              target requests/sec across all connections
                       (default 0 = unpaced)
  --manifest FILE      JSON array of request templates, e.g.
                       [{"type":"flow","params":{"circuits":["s27"]}},
                        {"type":"ping"}] — cycled round-robin
  --circuits LIST      circuits for the built-in flow template
                       (default s27,s298)
  --pairs N            ATPG pairs for the built-in flow template
                       (default 16)
  --deadline-ms F      per-request queue-wait deadline (default 0 = none)
  --retries N          resend budget per request on an overloaded
                       rejection, honouring retry_after_ms (default 0)
  --trace-ids          stamp every request with a wire trace id
                       (flhc-<pid>.c<conn>.r<seq>); the server adopts it
                       as the prefix of that request's span trace id, so
                       merged traces group client and server by request
  --bench-json FILE    write the flh.bench.serve/1 provenance envelope
                       (honors --out / FLH_BENCH_OUT for bare filenames)
  --out DIR            output directory for --bench-json
  --expect-ok          exit 1 if any request ends in an error
  --hit-rate-min F     exit 1 unless the flow cache hit rate >= F
  --shutdown           send a shutdown request after the run
  --quiet              suppress the console summary
  --help
)";

struct Template {
    serve::RequestType type = serve::RequestType::Ping;
    std::string params_json = "{}";
    double deadline_ms = 0.0;
};

struct Tally {
    std::vector<double> latency_ms; ///< one entry per completed request
    std::uint64_t sent = 0;
    std::uint64_t ok = 0;
    std::uint64_t errors = 0;
    std::uint64_t retries = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t flow_hits = 0;
    std::uint64_t flow_misses = 0;
    std::map<std::string, std::uint64_t> error_codes;
    std::vector<std::string> failures; ///< first few human-readable failures

    void noteFailure(std::string what) {
        ++errors;
        if (failures.size() < 8) failures.push_back(std::move(what));
    }
};

std::vector<Template> loadManifest(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot read manifest '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    const JsonValue doc = parseJson(buf.str());
    if (doc.kind != JsonValue::Kind::Arr || doc.arr.empty())
        throw std::runtime_error("manifest '" + path + "' must be a non-empty JSON array");
    std::vector<Template> out;
    for (const JsonValue& entry : doc.arr) {
        if (entry.kind != JsonValue::Kind::Obj)
            throw std::runtime_error("manifest entries must be objects");
        Template t;
        const std::string type = serve::strOr(entry, "type", "");
        const std::optional<serve::RequestType> rt = serve::requestTypeFromString(type);
        if (!rt) throw std::runtime_error("manifest entry has unknown type '" + type + "'");
        t.type = *rt;
        if (entry.has("params")) t.params_json = serve::canonicalJson(entry.at("params"));
        t.deadline_ms = serve::numOr(entry, "deadline_ms", 0.0);
        out.push_back(std::move(t));
    }
    return out;
}

std::vector<Template> builtinMix(const std::vector<std::string>& circuits, int pairs) {
    JsonWriter w;
    w.beginObject();
    w.key("circuits");
    w.beginArray();
    for (const std::string& c : circuits) w.value(c);
    w.endArray();
    w.kv("pairs", pairs);
    w.endObject();
    Template flow;
    flow.type = serve::RequestType::Flow;
    flow.params_json = w.str();
    Template ping; // interleaved pings exercise the inline fast path
    return {flow, ping};
}

/// Send one request (with its overload-retry budget) and score the reply.
void runOne(const net::Socket& sock, const Template& t, std::uint64_t id,
            double default_deadline_ms, unsigned retries, const std::string& trace,
            Tally& tally) {
    serve::Request req;
    req.id = id;
    req.type = t.type;
    req.deadline_ms = t.deadline_ms > 0.0 ? t.deadline_ms : default_deadline_ms;
    req.trace = trace;
    req.params_json = t.params_json;
    const std::string frame = req.toJson();

    for (unsigned attempt = 0;; ++attempt) {
        const auto t0 = std::chrono::steady_clock::now();
        if (!net::writeFrame(sock, frame))
            throw std::runtime_error("server closed the connection mid-request");
        const std::optional<std::string> raw = net::readFrame(sock);
        if (!raw) throw std::runtime_error("server closed the connection before replying");
        const double ms =
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                .count();

        const serve::ParsedResponse resp = serve::parseResponse(*raw);
        ++tally.sent;
        if (resp.id != id) {
            tally.noteFailure("response id " + std::to_string(resp.id) +
                              " does not match request id " + std::to_string(id));
            return;
        }
        if (!resp.ok) {
            ++tally.error_codes[resp.error.code];
            if (resp.error.code == "overloaded" && attempt < retries) {
                ++tally.retries;
                std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
                    std::max(1.0, resp.error.retry_after_ms)));
                continue;
            }
            tally.noteFailure("id " + std::to_string(id) + ": " + resp.error.code + ": " +
                              resp.error.message);
            return;
        }

        tally.latency_ms.push_back(ms);
        ++tally.ok;
        if (resp.coalesced) ++tally.coalesced;
        const JsonValue& r = resp.result;
        if (t.type == serve::RequestType::Ping && !(r.has("pong") && r.at("pong").b)) {
            --tally.ok;
            tally.noteFailure("id " + std::to_string(id) + ": ping reply missing pong");
        } else if (t.type == serve::RequestType::Flow) {
            tally.flow_hits += static_cast<std::uint64_t>(serve::numOr(r, "hits", 0.0));
            tally.flow_misses += static_cast<std::uint64_t>(serve::numOr(r, "misses", 0.0));
            if (serve::numOr(r, "failures", 0.0) > 0.0) {
                --tally.ok;
                tally.noteFailure("id " + std::to_string(id) + ": flow reported stage failures");
            }
        }
        return;
    }
}

} // namespace

int main(int argc, char** argv) {
    cli::ArgScan scan(argc, argv, "flh_client", kUsage);
    cli::CommonFlags common;
    common.parse_threads = false; // parallelism is --connections here
    std::string socket_path;
    std::uint16_t port = 0;
    bool port_set = false;
    std::uint64_t total_requests = 100;
    unsigned connections = 1;
    double rps = 0.0;
    std::string manifest_path;
    std::vector<std::string> circuits = {"s27", "s298"};
    int pairs = 16;
    double deadline_ms = 0.0;
    unsigned retries = 0;
    std::string bench_path;
    bool trace_ids = false;
    bool expect_ok = false;
    double hit_rate_min = -1.0;
    bool send_shutdown = false;

    while (scan.next()) {
        if (common.tryParse(scan)) continue;
        if (scan.is("--socket")) socket_path = scan.value();
        else if (scan.is("--port")) {
            port = scan.num<std::uint16_t>();
            port_set = true;
        }
        else if (scan.is("--requests")) total_requests = scan.num<std::uint64_t>();
        else if (scan.is("--connections")) connections = scan.num<unsigned>();
        else if (scan.is("--rps")) rps = scan.num<double>();
        else if (scan.is("--manifest")) manifest_path = scan.value();
        else if (scan.is("--circuits")) circuits = scan.list();
        else if (scan.is("--pairs")) pairs = scan.num<int>();
        else if (scan.is("--deadline-ms")) deadline_ms = scan.num<double>();
        else if (scan.is("--retries")) retries = scan.num<unsigned>();
        else if (scan.is("--trace-ids")) trace_ids = true;
        else if (scan.is("--bench-json")) bench_path = scan.value();
        else if (scan.is("--expect-ok")) expect_ok = true;
        else if (scan.is("--hit-rate-min")) hit_rate_min = scan.num<double>();
        else if (scan.is("--shutdown")) send_shutdown = true;
        else scan.unknownOption();
    }
    if (socket_path.empty() && !port_set)
        scan.usageError("one of --socket or --port is required");
    if (!socket_path.empty() && port_set)
        scan.usageError("--socket and --port are mutually exclusive");
    if (connections == 0) scan.usageError("--connections must be at least 1");

    const net::Endpoint ep = socket_path.empty() ? net::Endpoint::tcpAt(port)
                                                 : net::Endpoint::unixAt(socket_path);

    std::vector<Template> templates;
    try {
        templates = manifest_path.empty() ? builtinMix(circuits, pairs)
                                          : loadManifest(manifest_path);
    } catch (const std::exception& e) {
        std::cerr << "flh_client: " << e.what() << "\n";
        return 1;
    }

    // One thread per connection; a shared atomic cursor deals requests out,
    // and pacing targets the request's global slot so --rps holds across
    // connections regardless of how work is interleaved.
    std::atomic<std::uint64_t> cursor{0};
    std::vector<Tally> tallies(connections);
    std::vector<std::string> conn_errors(connections);
    std::vector<std::thread> threads;
    const std::string trace_prefix =
        trace_ids ? "flhc-" + std::to_string(::getpid()) : std::string();
    const auto start = std::chrono::steady_clock::now();
    for (unsigned c = 0; c < connections; ++c) {
        threads.emplace_back([&, c] {
            try {
                const net::Socket sock = net::connectTo(ep);
                for (;;) {
                    const std::uint64_t i = cursor.fetch_add(1, std::memory_order_relaxed);
                    if (i >= total_requests) break;
                    if (rps > 0.0) {
                        const auto slot = start + std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(static_cast<double>(i) / rps));
                        std::this_thread::sleep_until(slot);
                    }
                    std::string trace;
                    if (trace_ids)
                        trace = trace_prefix + ".c" + std::to_string(c) + ".r" +
                                std::to_string(i + 1);
                    runOne(sock, templates[i % templates.size()], i + 1, deadline_ms,
                           retries, trace, tallies[c]);
                }
            } catch (const std::exception& e) {
                conn_errors[c] = e.what();
            }
        });
    }
    for (std::thread& t : threads) t.join();
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    // Merge the per-connection tallies.
    Tally all;
    for (const Tally& t : tallies) {
        all.sent += t.sent;
        all.ok += t.ok;
        all.errors += t.errors;
        all.retries += t.retries;
        all.coalesced += t.coalesced;
        all.flow_hits += t.flow_hits;
        all.flow_misses += t.flow_misses;
        all.latency_ms.insert(all.latency_ms.end(), t.latency_ms.begin(), t.latency_ms.end());
        for (const auto& [code, n] : t.error_codes) all.error_codes[code] += n;
        for (const std::string& f : t.failures)
            if (all.failures.size() < 8) all.failures.push_back(f);
    }
    bool transport_failed = false;
    for (unsigned c = 0; c < connections; ++c) {
        if (conn_errors[c].empty()) continue;
        transport_failed = true;
        std::cerr << "flh_client: connection " << c << ": " << conn_errors[c] << "\n";
    }

    std::sort(all.latency_ms.begin(), all.latency_ms.end());
    const double p50 = stats::percentileSorted(all.latency_ms, 0.50);
    const double p95 = stats::percentileSorted(all.latency_ms, 0.95);
    const double p99 = stats::percentileSorted(all.latency_ms, 0.99);
    const double achieved_rps = wall_s > 0.0 ? static_cast<double>(all.sent) / wall_s : 0.0;
    const std::uint64_t flow_total = all.flow_hits + all.flow_misses;
    const double hit_rate =
        flow_total > 0 ? static_cast<double>(all.flow_hits) / static_cast<double>(flow_total)
                       : 0.0;

    if (send_shutdown) {
        try {
            const net::Socket sock = net::connectTo(ep);
            serve::Request req;
            req.id = total_requests + 1;
            req.type = serve::RequestType::Shutdown;
            if (!net::writeFrame(sock, req.toJson()) || !net::readFrame(sock))
                throw std::runtime_error("no shutdown acknowledgement");
        } catch (const std::exception& e) {
            std::cerr << "flh_client: shutdown request failed: " << e.what() << "\n";
            transport_failed = true;
        }
    }

    if (!bench_path.empty()) {
        // Envelope export: latency samples as a bench entry (so benchdiff
        // tracks the medians/IQR), plus the serve summary as the legacy
        // payload under "results".
        obs::BenchWriter bw("flh.bench.serve/1", connections);
        obs::BenchEntry lat;
        lat.name = "serve/request";
        lat.threads = connections;
        for (const double ms : all.latency_ms) lat.time_samples.push_back(ms * 1e6);
        if (achieved_rps > 0.0) lat.ips_samples.push_back(achieved_rps);
        if (!lat.time_samples.empty()) bw.add(std::move(lat));

        JsonWriter w;
        w.beginObject();
        w.kv("schema", "flh.bench.serve/1");
        w.kv("requests", all.sent);
        w.kv("ok", all.ok);
        w.kv("errors", all.errors);
        w.kv("retries", all.retries);
        w.kv("coalesced", all.coalesced);
        w.kv("connections", static_cast<std::uint64_t>(connections));
        w.kv("target_rps", rps);
        w.kv("achieved_rps", achieved_rps);
        w.key("latency_ms");
        w.beginObject();
        w.kv("p50", p50);
        w.kv("p95", p95);
        w.kv("p99", p99);
        w.endObject();
        w.key("flow");
        w.beginObject();
        w.kv("hits", all.flow_hits);
        w.kv("misses", all.flow_misses);
        w.kv("hit_rate", hit_rate);
        w.endObject();
        w.key("error_codes");
        w.beginObject();
        for (const auto& [code, n] : all.error_codes) w.kv(code, n);
        w.endObject();
        w.endObject();
        bw.setResults(w.str());
        cli::writeFileOrDie("flh_client", obs::benchOutPath(bench_path, common.out_flag),
                            bw.json());
    }

    if (!common.quiet) {
        std::cout << all.sent << " requests over " << connections << " connections in "
                  << fmt(wall_s, 2) << " s (" << fmt(achieved_rps, 1) << " req/s): "
                  << all.ok << " ok, " << all.errors << " errors, " << all.retries
                  << " retries, " << all.coalesced << " coalesced\n";
        std::cout << "latency p50 " << fmt(p50, 2) << " ms, p95 " << fmt(p95, 2)
                  << " ms, p99 " << fmt(p99, 2) << " ms\n";
        if (flow_total > 0)
            std::cout << "flow cache: " << all.flow_hits << " hits / " << flow_total
                      << " stages (" << fmt(100.0 * hit_rate, 1) << "%)\n";
        for (const auto& [code, n] : all.error_codes)
            std::cout << "  " << code << ": " << n << "\n";
        for (const std::string& f : all.failures) std::cout << "  failure: " << f << "\n";
        if (!bench_path.empty()) std::cout << "bench: " << bench_path << "\n";
    }

    if (transport_failed) return 1;
    if (expect_ok && (all.errors > 0 || all.ok != total_requests)) {
        std::cerr << "flh_client: --expect-ok: " << all.errors << " errors, " << all.ok
                  << "/" << total_requests << " ok\n";
        return 1;
    }
    if (hit_rate_min >= 0.0 && hit_rate < hit_rate_min) {
        std::cerr << "flh_client: flow cache hit rate " << fmt(100.0 * hit_rate, 1)
                  << "% below required " << fmt(100.0 * hit_rate_min, 1) << "%\n";
        return 1;
    }
    return 0;
}
