// flh_flow: run the paper's full evaluation flow (Tables I-IV + Section IV
// coverage) as one DAG over a list of designs, with a persistent
// content-addressed result cache.
//
//   flh_flow --circuits s27,s298,s1423 --threads 0
//
// Re-running an unchanged sweep is served from .flowcache/ (every stage a
// hit); editing a config or a netlist recomputes only the invalidated cone.
// A killed run resumes the same way — finished stages replay from cache.
//
// Outputs:
//   flow_report.json   deterministic run report (bit-identical across
//                      thread counts, cache states, and repeated runs)
//   flow_profile.json  wall time / cache hit-miss / faults-per-second
//   stdout             per-stage console table + summary
//   --trace FILE       Chrome trace_event JSON (chrome://tracing /
//                      Perfetto): one lane per worker thread, spans for
//                      every stage, cache probe, and fault-sim partition
//   --metrics FILE     flat telemetry counters/gauges
//   --bench-json FILE  BENCH_flow.json bench-trajectory export (provenance
//                      envelope, per-stage entries, legacy payload under
//                      "results")
//   --sample MS        background metrics sampler: counter curves in the
//                      trace + --timeseries export
//   --heartbeat SEC    rate-limited stderr progress line for long runs
#include "flow/paper_flow.hpp"
#include "obs/benchio.hpp"
#include "obs/sampler.hpp"
#include "obs/telemetry.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

#include <iostream>
#include <memory>
#include <string>
#include <vector>

using namespace flh;

namespace {

constexpr const char* kUsage = R"(usage: flh_flow [options]
  --circuits LIST      comma-separated registry names or .bench paths
                       (default: s27,s298)
  --threads N          worker threads, scheduler AND fault-sim; 0 = one per
                       hardware thread (default 1)
  --sim-threads N      override the fault-sim budget separately from the
                       scheduler width
  --cache-dir DIR      result cache directory (default .flowcache)
  --no-cache           recompute everything, touch no cache
  --report FILE        deterministic run report (default flow_report.json)
  --profile FILE       timing/cache profile (default flow_profile.json)
  --trace FILE         write a Chrome trace_event JSON (enables telemetry)
  --metrics FILE       write flat telemetry metrics (enables telemetry)
  --bench-json FILE    write the bench-trajectory export (BENCH_flow.json)
  --out DIR            directory for bench exports (overrides FLH_BENCH_OUT)
  --sample MS          sample counters/RSS every MS ms on a background thread
  --timeseries FILE    write the sampled time-series (requires --sample)
  --heartbeat SEC      print a progress heartbeat to stderr every SEC seconds
  --pairs N            ATPG random pairs (default 64)
  --seed N             ATPG seed (default 11)
  --require-hit-rate F exit 1 unless cache hit rate >= F (CI guard)
  --quiet              suppress the console table
  --help
)";

} // namespace

int main(int argc, char** argv) {
    cli::ArgScan scan(argc, argv, "flh_flow", kUsage);
    cli::CommonFlags common;
    std::vector<std::string> circuits = {"s27", "s298"};
    FlowOptions opts;
    PaperFlowConfig cfg;
    std::string report_path = "flow_report.json";
    std::string profile_path = "flow_profile.json";
    std::string bench_path;
    std::string timeseries_path;
    unsigned sample_ms = 0;
    double require_hit_rate = -1.0;
    bool sim_threads_set = false;

    while (scan.next()) {
        if (common.tryParse(scan)) continue;
        if (scan.is("--circuits")) circuits = scan.list();
        else if (scan.is("--sim-threads")) {
            opts.sim_threads = scan.num<unsigned>();
            sim_threads_set = true;
        }
        else if (scan.is("--cache-dir")) opts.cache_dir = scan.value();
        else if (scan.is("--no-cache")) opts.use_cache = false;
        else if (scan.is("--report")) report_path = scan.value();
        else if (scan.is("--profile")) profile_path = scan.value();
        else if (scan.is("--bench-json")) bench_path = scan.value();
        else if (scan.is("--sample")) sample_ms = scan.num<unsigned>();
        else if (scan.is("--timeseries")) timeseries_path = scan.value();
        else if (scan.is("--pairs")) cfg.random_pairs = scan.num<int>();
        else if (scan.is("--seed")) cfg.atpg_seed = scan.num<std::uint64_t>();
        else if (scan.is("--require-hit-rate")) require_hit_rate = scan.num<double>();
        else scan.unknownOption();
    }
    if (circuits.empty()) scan.usageError("empty --circuits list");

    // One --threads flag drives both pools (ExecPolicy everywhere);
    // --sim-threads remains as an explicit override.
    opts.threads = common.threads;
    if (!sim_threads_set) opts.sim_threads = common.threads;

    if (!timeseries_path.empty() && sample_ms == 0)
        scan.usageError("--timeseries requires --sample MS");
    if (sample_ms == 0 && common.heartbeat_s > 0.0) sample_ms = 200;

    // Telemetry stays compiled in but disabled unless an export was asked
    // for — the deterministic report is identical either way.
    if (common.wantsTelemetry() || sample_ms > 0) {
        obs::setEnabled(true);
        obs::setThreadLabel("main");
    }

    std::vector<DesignInput> designs;
    designs.reserve(circuits.size());
    for (const std::string& c : circuits) {
        try {
            designs.push_back(designInputFor(c));
        } catch (const std::exception& e) {
            std::cerr << "flh_flow: cannot load design '" << c << "': " << e.what() << "\n";
            return 1;
        }
    }

    const FlowGraph graph = buildPaperFlow(cfg);

    // The sampler runs only around the flow itself so the time-series
    // brackets real work, not argument parsing or report serialisation.
    std::unique_ptr<obs::Sampler> sampler;
    if (sample_ms > 0) {
        obs::SamplerOptions sopts;
        sopts.period_ms = sample_ms;
        sopts.heartbeat_every_s = common.heartbeat_s;
        if (common.heartbeat_s > 0.0) sopts.heartbeat_out = &std::cerr;
        sampler = std::make_unique<obs::Sampler>(sopts);
        sampler->start();
    }

    const RunReport report = runFlow(graph, designs, opts);

    if (sampler) sampler->stop();

    cli::writeFileOrDie("flh_flow", report_path, report.reportJson());
    cli::writeFileOrDie("flh_flow", profile_path, report.profileJson());
    if (!common.trace_path.empty())
        cli::writeFileOrDie("flh_flow", common.trace_path, obs::traceJson());
    if (!common.metrics_path.empty())
        cli::writeFileOrDie("flh_flow", common.metrics_path, obs::metricsJson());
    if (sampler && !timeseries_path.empty())
        cli::writeFileOrDie("flh_flow", obs::benchOutPath(timeseries_path, common.out_flag),
                            sampler->timeseriesJson());
    if (!bench_path.empty()) {
        // Envelope export: one entry per stage execution plus a whole-run
        // aggregate, with the legacy flh.bench.flow/1 payload under
        // "results" for consumers of the old format.
        obs::BenchWriter bw("flh.bench.flow/1", opts.threads);
        for (const StageRecord& r : report.records()) {
            obs::BenchEntry e;
            e.name = "stage/" + r.design + "/" + r.stage;
            e.threads = opts.threads;
            e.time_samples.push_back(r.wall_ms * 1e6);
            if (r.work_items > 0) e.ips_samples.push_back(r.itemsPerSecond());
            bw.add(std::move(e));
        }
        obs::BenchEntry total;
        total.name = "flow/total";
        total.threads = opts.threads;
        total.time_samples.push_back(report.totalWallMs() * 1e6);
        bw.add(std::move(total));
        bw.setResults(report.benchJson());
        cli::writeFileOrDie("flh_flow", obs::benchOutPath(bench_path, common.out_flag),
                            bw.json());
    }

    if (!common.quiet) {
        std::cout << report.table().render();
        std::cout << "\n" << designs.size() << " designs x " << graph.size() << " stages: "
                  << report.hits() << " cache hits, " << report.misses() << " misses, "
                  << report.failures() << " failures ("
                  << fmt(100.0 * report.hitRate(), 1) << "% hit rate)\n";
        std::cout << "total stage wall time " << fmt(report.totalWallMs(), 1)
                  << " ms, peak test count " << report.peakTests() << "\n";
        std::cout << "report: " << report_path << "  profile: " << profile_path << "\n";
        if (!common.trace_path.empty())
            std::cout << "trace: " << common.trace_path << " (" << obs::spanCount()
                      << " spans, " << obs::laneCount() << " lanes)\n";
        if (!common.metrics_path.empty()) std::cout << "metrics: " << common.metrics_path << "\n";
        if (!bench_path.empty()) std::cout << "bench: " << bench_path << "\n";
    }

    if (report.failures() > 0) {
        for (const StageRecord& r : report.records())
            if (r.failed)
                std::cerr << "flh_flow: " << r.design << "/" << r.stage << ": " << r.error
                          << "\n";
        return 1;
    }
    if (require_hit_rate >= 0.0 && report.hitRate() < require_hit_rate) {
        std::cerr << "flh_flow: cache hit rate " << fmt(100.0 * report.hitRate(), 1)
                  << "% below required " << fmt(100.0 * require_hit_rate, 1) << "%\n";
        return 1;
    }
    return 0;
}
