// flh_flow: run the paper's full evaluation flow (Tables I-IV + Section IV
// coverage) as one DAG over a list of designs, with a persistent
// content-addressed result cache.
//
//   flh_flow --circuits s27,s298,s1423 --threads 0
//
// Re-running an unchanged sweep is served from .flowcache/ (every stage a
// hit); editing a config or a netlist recomputes only the invalidated cone.
// A killed run resumes the same way — finished stages replay from cache.
//
// Outputs:
//   flow_report.json   deterministic run report (bit-identical across
//                      thread counts, cache states, and repeated runs)
//   flow_profile.json  wall time / cache hit-miss / faults-per-second
//   stdout             per-stage console table + summary
//   --trace FILE       Chrome trace_event JSON (chrome://tracing /
//                      Perfetto): one lane per worker thread, spans for
//                      every stage, cache probe, and fault-sim partition
//   --metrics FILE     flat telemetry counters/gauges
//   --bench-json FILE  BENCH_flow.json bench-trajectory export (provenance
//                      envelope, per-stage entries, legacy payload under
//                      "results")
//   --sample MS        background metrics sampler: counter curves in the
//                      trace + --timeseries export
//   --heartbeat SEC    rate-limited stderr progress line for long runs
#include "flow/paper_flow.hpp"
#include "obs/benchio.hpp"
#include "obs/sampler.hpp"
#include "obs/telemetry.hpp"
#include "util/strings.hpp"

#include <memory>

#include <charconv>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace flh;

namespace {

constexpr const char* kUsage = R"(usage: flh_flow [options]
  --circuits LIST      comma-separated registry names or .bench paths
                       (default: s27,s298)
  --threads N          worker threads, scheduler AND fault-sim; 0 = one per
                       hardware thread (default 1)
  --sim-threads N      override the fault-sim budget separately from the
                       scheduler width
  --cache-dir DIR      result cache directory (default .flowcache)
  --no-cache           recompute everything, touch no cache
  --report FILE        deterministic run report (default flow_report.json)
  --profile FILE       timing/cache profile (default flow_profile.json)
  --trace FILE         write a Chrome trace_event JSON (enables telemetry)
  --metrics FILE       write flat telemetry metrics (enables telemetry)
  --bench-json FILE    write the bench-trajectory export (BENCH_flow.json)
  --out DIR            directory for bench exports (overrides FLH_BENCH_OUT)
  --sample MS          sample counters/RSS every MS ms on a background thread
  --timeseries FILE    write the sampled time-series (requires --sample)
  --heartbeat SEC      print a progress heartbeat to stderr every SEC seconds
  --pairs N            ATPG random pairs (default 64)
  --seed N             ATPG seed (default 11)
  --require-hit-rate F exit 1 unless cache hit rate >= F (CI guard)
  --quiet              suppress the console table
  --help
)";

[[noreturn]] void usageError(const std::string& msg) {
    std::cerr << "flh_flow: " << msg << "\n" << kUsage;
    std::exit(2);
}

template <typename T> T parseNum(const std::string& flag, const std::string& s) {
    T v{};
    const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc() || p != s.data() + s.size())
        usageError("bad value for " + flag + ": '" + s + "'");
    return v;
}

void writeFile(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        std::cerr << "flh_flow: cannot write " << path << "\n";
        std::exit(1);
    }
    out << bytes;
}

} // namespace

int main(int argc, char** argv) {
    std::vector<std::string> circuits = {"s27", "s298"};
    FlowOptions opts;
    PaperFlowConfig cfg;
    std::string report_path = "flow_report.json";
    std::string profile_path = "flow_profile.json";
    std::string trace_path;
    std::string metrics_path;
    std::string bench_path;
    std::string out_flag;
    std::string timeseries_path;
    unsigned sample_ms = 0;
    double heartbeat_s = 0.0;
    double require_hit_rate = -1.0;
    bool quiet = false;
    bool sim_threads_set = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) usageError("missing value after " + arg);
            return argv[++i];
        };
        if (arg == "--circuits") circuits = splitTrim(next(), ',');
        else if (arg == "--threads") opts.threads = parseNum<unsigned>(arg, next());
        else if (arg == "--sim-threads") {
            opts.sim_threads = parseNum<unsigned>(arg, next());
            sim_threads_set = true;
        }
        else if (arg == "--cache-dir") opts.cache_dir = next();
        else if (arg == "--no-cache") opts.use_cache = false;
        else if (arg == "--report") report_path = next();
        else if (arg == "--profile") profile_path = next();
        else if (arg == "--trace") trace_path = next();
        else if (arg == "--metrics") metrics_path = next();
        else if (arg == "--bench-json") bench_path = next();
        else if (arg == "--out") out_flag = next();
        else if (arg == "--sample") sample_ms = parseNum<unsigned>(arg, next());
        else if (arg == "--timeseries") timeseries_path = next();
        else if (arg == "--heartbeat") heartbeat_s = parseNum<double>(arg, next());
        else if (arg == "--pairs") cfg.random_pairs = parseNum<int>(arg, next());
        else if (arg == "--seed") cfg.atpg_seed = parseNum<std::uint64_t>(arg, next());
        else if (arg == "--require-hit-rate") {
            // from_chars<double> handles the fraction directly.
            const std::string v = next();
            require_hit_rate = parseNum<double>(arg, v);
        } else if (arg == "--quiet") quiet = true;
        else if (arg == "--help" || arg == "-h") {
            std::cout << kUsage;
            return 0;
        } else usageError("unknown option '" + arg + "'");
    }
    if (circuits.empty()) usageError("empty --circuits list");

    // One --threads flag drives both pools (ExecPolicy everywhere);
    // --sim-threads remains as an explicit override.
    if (!sim_threads_set) opts.sim_threads = opts.threads;

    if (!timeseries_path.empty() && sample_ms == 0)
        usageError("--timeseries requires --sample MS");
    if (sample_ms == 0 && heartbeat_s > 0.0) sample_ms = 200;

    // Telemetry stays compiled in but disabled unless an export was asked
    // for — the deterministic report is identical either way.
    if (!trace_path.empty() || !metrics_path.empty() || sample_ms > 0) {
        obs::setEnabled(true);
        obs::setThreadLabel("main");
    }

    std::vector<DesignInput> designs;
    designs.reserve(circuits.size());
    for (const std::string& c : circuits) {
        try {
            designs.push_back(designInputFor(c));
        } catch (const std::exception& e) {
            std::cerr << "flh_flow: cannot load design '" << c << "': " << e.what() << "\n";
            return 1;
        }
    }

    const FlowGraph graph = buildPaperFlow(cfg);

    // The sampler runs only around the flow itself so the time-series
    // brackets real work, not argument parsing or report serialisation.
    std::unique_ptr<obs::Sampler> sampler;
    if (sample_ms > 0) {
        obs::SamplerOptions sopts;
        sopts.period_ms = sample_ms;
        sopts.heartbeat_every_s = heartbeat_s;
        if (heartbeat_s > 0.0) sopts.heartbeat_out = &std::cerr;
        sampler = std::make_unique<obs::Sampler>(sopts);
        sampler->start();
    }

    const RunReport report = runFlow(graph, designs, opts);

    if (sampler) sampler->stop();

    writeFile(report_path, report.reportJson());
    writeFile(profile_path, report.profileJson());
    if (!trace_path.empty()) writeFile(trace_path, obs::traceJson());
    if (!metrics_path.empty()) writeFile(metrics_path, obs::metricsJson());
    if (sampler && !timeseries_path.empty())
        writeFile(obs::benchOutPath(timeseries_path, out_flag), sampler->timeseriesJson());
    if (!bench_path.empty()) {
        // Envelope export: one entry per stage execution plus a whole-run
        // aggregate, with the legacy flh.bench.flow/1 payload under
        // "results" for consumers of the old format.
        obs::BenchWriter bw("flh.bench.flow/1", opts.threads);
        for (const StageRecord& r : report.records()) {
            obs::BenchEntry e;
            e.name = "stage/" + r.design + "/" + r.stage;
            e.threads = opts.threads;
            e.time_samples.push_back(r.wall_ms * 1e6);
            if (r.work_items > 0) e.ips_samples.push_back(r.itemsPerSecond());
            bw.add(std::move(e));
        }
        obs::BenchEntry total;
        total.name = "flow/total";
        total.threads = opts.threads;
        total.time_samples.push_back(report.totalWallMs() * 1e6);
        bw.add(std::move(total));
        bw.setResults(report.benchJson());
        writeFile(obs::benchOutPath(bench_path, out_flag), bw.json());
    }

    if (!quiet) {
        std::cout << report.table().render();
        std::cout << "\n" << designs.size() << " designs x " << graph.size() << " stages: "
                  << report.hits() << " cache hits, " << report.misses() << " misses, "
                  << report.failures() << " failures ("
                  << fmt(100.0 * report.hitRate(), 1) << "% hit rate)\n";
        std::cout << "total stage wall time " << fmt(report.totalWallMs(), 1)
                  << " ms, peak test count " << report.peakTests() << "\n";
        std::cout << "report: " << report_path << "  profile: " << profile_path << "\n";
        if (!trace_path.empty())
            std::cout << "trace: " << trace_path << " (" << obs::spanCount() << " spans, "
                      << obs::laneCount() << " lanes)\n";
        if (!metrics_path.empty()) std::cout << "metrics: " << metrics_path << "\n";
        if (!bench_path.empty()) std::cout << "bench: " << bench_path << "\n";
    }

    if (report.failures() > 0) {
        for (const StageRecord& r : report.records())
            if (r.failed)
                std::cerr << "flh_flow: " << r.design << "/" << r.stage << ": " << r.error
                          << "\n";
        return 1;
    }
    if (require_hit_rate >= 0.0 && report.hitRate() < require_hit_rate) {
        std::cerr << "flh_flow: cache hit rate " << fmt(100.0 * report.hitRate(), 1)
                  << "% below required " << fmt(100.0 * require_hit_rate, 1) << "%\n";
        return 1;
    }
    return 0;
}
