// flh_flow: run the paper's full evaluation flow (Tables I-IV + Section IV
// coverage) as one DAG over a list of designs, with a persistent
// content-addressed result cache.
//
//   flh_flow --circuits s27,s298,s1423 --threads 0
//
// Re-running an unchanged sweep is served from .flowcache/ (every stage a
// hit); editing a config or a netlist recomputes only the invalidated cone.
// A killed run resumes the same way — finished stages replay from cache.
//
// Outputs:
//   flow_report.json   deterministic run report (bit-identical across
//                      thread counts, cache states, and repeated runs)
//   flow_profile.json  wall time / cache hit-miss / faults-per-second
//   stdout             per-stage console table + summary
//   --trace FILE       Chrome trace_event JSON (chrome://tracing /
//                      Perfetto): one lane per worker thread, spans for
//                      every stage, cache probe, and fault-sim partition
//   --metrics FILE     flat telemetry counters/gauges
//   --bench-json FILE  BENCH_flow.json bench-trajectory export
#include "flow/paper_flow.hpp"
#include "obs/telemetry.hpp"
#include "util/strings.hpp"

#include <charconv>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace flh;

namespace {

constexpr const char* kUsage = R"(usage: flh_flow [options]
  --circuits LIST      comma-separated registry names or .bench paths
                       (default: s27,s298)
  --threads N          worker threads, scheduler AND fault-sim; 0 = one per
                       hardware thread (default 1)
  --sim-threads N      override the fault-sim budget separately from the
                       scheduler width
  --cache-dir DIR      result cache directory (default .flowcache)
  --no-cache           recompute everything, touch no cache
  --report FILE        deterministic run report (default flow_report.json)
  --profile FILE       timing/cache profile (default flow_profile.json)
  --trace FILE         write a Chrome trace_event JSON (enables telemetry)
  --metrics FILE       write flat telemetry metrics (enables telemetry)
  --bench-json FILE    write the bench-trajectory export (BENCH_flow.json)
  --pairs N            ATPG random pairs (default 64)
  --seed N             ATPG seed (default 11)
  --require-hit-rate F exit 1 unless cache hit rate >= F (CI guard)
  --quiet              suppress the console table
  --help
)";

[[noreturn]] void usageError(const std::string& msg) {
    std::cerr << "flh_flow: " << msg << "\n" << kUsage;
    std::exit(2);
}

template <typename T> T parseNum(const std::string& flag, const std::string& s) {
    T v{};
    const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc() || p != s.data() + s.size())
        usageError("bad value for " + flag + ": '" + s + "'");
    return v;
}

void writeFile(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        std::cerr << "flh_flow: cannot write " << path << "\n";
        std::exit(1);
    }
    out << bytes;
}

} // namespace

int main(int argc, char** argv) {
    std::vector<std::string> circuits = {"s27", "s298"};
    FlowOptions opts;
    PaperFlowConfig cfg;
    std::string report_path = "flow_report.json";
    std::string profile_path = "flow_profile.json";
    std::string trace_path;
    std::string metrics_path;
    std::string bench_path;
    double require_hit_rate = -1.0;
    bool quiet = false;
    bool sim_threads_set = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) usageError("missing value after " + arg);
            return argv[++i];
        };
        if (arg == "--circuits") circuits = splitTrim(next(), ',');
        else if (arg == "--threads") opts.threads = parseNum<unsigned>(arg, next());
        else if (arg == "--sim-threads") {
            opts.sim_threads = parseNum<unsigned>(arg, next());
            sim_threads_set = true;
        }
        else if (arg == "--cache-dir") opts.cache_dir = next();
        else if (arg == "--no-cache") opts.use_cache = false;
        else if (arg == "--report") report_path = next();
        else if (arg == "--profile") profile_path = next();
        else if (arg == "--trace") trace_path = next();
        else if (arg == "--metrics") metrics_path = next();
        else if (arg == "--bench-json") bench_path = next();
        else if (arg == "--pairs") cfg.random_pairs = parseNum<int>(arg, next());
        else if (arg == "--seed") cfg.atpg_seed = parseNum<std::uint64_t>(arg, next());
        else if (arg == "--require-hit-rate") {
            // from_chars<double> handles the fraction directly.
            const std::string v = next();
            require_hit_rate = parseNum<double>(arg, v);
        } else if (arg == "--quiet") quiet = true;
        else if (arg == "--help" || arg == "-h") {
            std::cout << kUsage;
            return 0;
        } else usageError("unknown option '" + arg + "'");
    }
    if (circuits.empty()) usageError("empty --circuits list");

    // One --threads flag drives both pools (ExecPolicy everywhere);
    // --sim-threads remains as an explicit override.
    if (!sim_threads_set) opts.sim_threads = opts.threads;

    // Telemetry stays compiled in but disabled unless an export was asked
    // for — the deterministic report is identical either way.
    if (!trace_path.empty() || !metrics_path.empty()) {
        obs::setEnabled(true);
        obs::setThreadLabel("main");
    }

    std::vector<DesignInput> designs;
    designs.reserve(circuits.size());
    for (const std::string& c : circuits) {
        try {
            designs.push_back(designInputFor(c));
        } catch (const std::exception& e) {
            std::cerr << "flh_flow: cannot load design '" << c << "': " << e.what() << "\n";
            return 1;
        }
    }

    const FlowGraph graph = buildPaperFlow(cfg);
    const RunReport report = runFlow(graph, designs, opts);

    writeFile(report_path, report.reportJson());
    writeFile(profile_path, report.profileJson());
    if (!trace_path.empty()) writeFile(trace_path, obs::traceJson());
    if (!metrics_path.empty()) writeFile(metrics_path, obs::metricsJson());
    if (!bench_path.empty()) writeFile(bench_path, report.benchJson());

    if (!quiet) {
        std::cout << report.table().render();
        std::cout << "\n" << designs.size() << " designs x " << graph.size() << " stages: "
                  << report.hits() << " cache hits, " << report.misses() << " misses, "
                  << report.failures() << " failures ("
                  << fmt(100.0 * report.hitRate(), 1) << "% hit rate)\n";
        std::cout << "total stage wall time " << fmt(report.totalWallMs(), 1)
                  << " ms, peak test count " << report.peakTests() << "\n";
        std::cout << "report: " << report_path << "  profile: " << profile_path << "\n";
        if (!trace_path.empty())
            std::cout << "trace: " << trace_path << " (" << obs::spanCount() << " spans, "
                      << obs::laneCount() << " lanes)\n";
        if (!metrics_path.empty()) std::cout << "metrics: " << metrics_path << "\n";
        if (!bench_path.empty()) std::cout << "bench: " << bench_path << "\n";
    }

    if (report.failures() > 0) {
        for (const StageRecord& r : report.records())
            if (r.failed)
                std::cerr << "flh_flow: " << r.design << "/" << r.stage << ": " << r.error
                          << "\n";
        return 1;
    }
    if (require_hit_rate >= 0.0 && report.hitRate() < require_hit_rate) {
        std::cerr << "flh_flow: cache hit rate " << fmt(100.0 * report.hitRate(), 1)
                  << "% below required " << fmt(100.0 * require_hit_rate, 1) << "%\n";
        return 1;
    }
    return 0;
}
