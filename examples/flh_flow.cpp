// flh_flow: run the paper's full evaluation flow (Tables I-IV + Section IV
// coverage) as one DAG over a list of designs, with a persistent
// content-addressed result cache.
//
//   flh_flow --circuits s27,s298,s1423 --threads 0
//
// Re-running an unchanged sweep is served from .flowcache/ (every stage a
// hit); editing a config or a netlist recomputes only the invalidated cone.
// A killed run resumes the same way — finished stages replay from cache.
//
// Outputs:
//   flow_report.json   deterministic run report (bit-identical across
//                      thread counts, cache states, and repeated runs)
//   flow_profile.json  wall time / cache hit-miss / faults-per-second
//   stdout             per-stage console table + summary
//   --trace FILE       Chrome trace_event JSON (chrome://tracing /
//                      Perfetto): one lane per worker thread, spans for
//                      every stage, cache probe, and fault-sim partition
//   --metrics FILE     flat telemetry counters/gauges
//   --bench-json FILE  BENCH_flow.json bench-trajectory export (provenance
//                      envelope, per-stage entries, legacy payload under
//                      "results")
//   --sample MS        background metrics sampler: counter curves in the
//                      trace + --timeseries export
//   --heartbeat SEC    rate-limited stderr progress line for long runs
#include "flow/manifest.hpp"
#include "flow/paper_flow.hpp"
#include "obs/benchio.hpp"
#include "obs/eventlog.hpp"
#include "obs/sampler.hpp"
#include "obs/telemetry.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

#include <iostream>
#include <memory>
#include <string>
#include <vector>

using namespace flh;

namespace {

constexpr const char* kUsage = R"(usage: flh_flow [options]
  --circuits LIST      comma-separated registry names or .bench paths
                       (default: s27,s298)
  --threads N          worker threads, scheduler AND fault-sim; 0 = one per
                       hardware thread (default 1)
  --sim-threads N      override the fault-sim budget separately from the
                       scheduler width
  --cache-dir DIR      result cache directory (default .flowcache)
  --cache-max-bytes N  GC byte budget (suffixes k/m/g); 0 = unbounded
  --cache-max-entries N GC entry budget; 0 = unbounded
  --cache-max-age SEC  GC age bound in seconds; 0 = none
  --cache-gc           run one GC pass when the cache opens
  --no-cache           recompute everything, touch no cache
  --gc                 standalone mode: GC the cache under the budgets
                       above, print the result, and exit (no flow runs)
  --gc-json FILE       write the GC result + cache stats as JSON
  --drain MANIFEST     fleet mode: cooperatively drain a manifest of
                       designs (claim files coordinate N processes
                       sharing one cache; see --claims)
  --claims DIR         claim directory for --drain
                       (default: <MANIFEST>.claims)
  --drain-summary FILE write this drainer's summary JSON (claim counts,
                       hit/miss totals, cache stats)
  --report FILE        deterministic run report (default flow_report.json)
  --profile FILE       timing/cache profile (default flow_profile.json)
  --trace FILE         write a Chrome trace_event JSON (enables telemetry)
  --metrics FILE       write flat telemetry metrics (enables telemetry)
  --events FILE        write a structured JSONL event log (claim races,
                       GC evictions, ...; independent of --trace)
  --bench-json FILE    write the bench-trajectory export (BENCH_flow.json)
  --out DIR            directory for bench exports (overrides FLH_BENCH_OUT)
  --sample MS          sample counters/RSS every MS ms on a background thread
  --timeseries FILE    write the sampled time-series (requires --sample)
  --heartbeat SEC      print a progress heartbeat to stderr every SEC seconds
  --pairs N            ATPG random pairs (default 64)
  --seed N             ATPG seed (default 11)
  --require-hit-rate F exit 1 unless cache hit rate >= F (CI guard)
  --quiet              suppress the console table
  --help
)";

} // namespace

int main(int argc, char** argv) {
    cli::ArgScan scan(argc, argv, "flh_flow", kUsage);
    cli::CommonFlags common;
    cli::CacheFlags cache_flags;
    std::vector<std::string> circuits = {"s27", "s298"};
    FlowOptions opts;
    PaperFlowConfig cfg;
    std::string report_path = "flow_report.json";
    std::string profile_path = "flow_profile.json";
    std::string bench_path;
    std::string timeseries_path;
    std::string manifest_path;
    std::string claims_dir;
    std::string drain_summary_path;
    std::string gc_json_path;
    bool gc_mode = false;
    unsigned sample_ms = 0;
    double require_hit_rate = -1.0;
    bool sim_threads_set = false;

    while (scan.next()) {
        if (common.tryParse(scan)) continue;
        if (cache_flags.tryParse(scan)) continue;
        if (scan.is("--circuits")) circuits = scan.list();
        else if (scan.is("--sim-threads")) {
            opts.sim_threads = scan.num<unsigned>();
            sim_threads_set = true;
        }
        else if (scan.is("--gc")) gc_mode = true;
        else if (scan.is("--gc-json")) gc_json_path = scan.value();
        else if (scan.is("--drain")) manifest_path = scan.value();
        else if (scan.is("--claims")) claims_dir = scan.value();
        else if (scan.is("--drain-summary")) drain_summary_path = scan.value();
        else if (scan.is("--report")) report_path = scan.value();
        else if (scan.is("--profile")) profile_path = scan.value();
        else if (scan.is("--bench-json")) bench_path = scan.value();
        else if (scan.is("--sample")) sample_ms = scan.num<unsigned>();
        else if (scan.is("--timeseries")) timeseries_path = scan.value();
        else if (scan.is("--pairs")) cfg.random_pairs = scan.num<int>();
        else if (scan.is("--seed")) cfg.atpg_seed = scan.num<std::uint64_t>();
        else if (scan.is("--require-hit-rate")) require_hit_rate = scan.num<double>();
        else scan.unknownOption();
    }
    if (circuits.empty()) scan.usageError("empty --circuits list");
    if (gc_mode && !manifest_path.empty()) scan.usageError("--gc and --drain are exclusive");
    opts.cache = makeCacheConfig(cache_flags);

    // The JSONL event sink is independent of the span/metrics telemetry
    // gate: decision events (claim races, GC evictions) flow even when
    // tracing is off. The guard closes the sink (writing the trailer) on
    // every return path below.
    struct EventSinkCloser {
        ~EventSinkCloser() { obs::closeEventSink(); }
    } event_sink_closer;
    if (!common.events_path.empty()) {
        obs::setEventLogEnabled(true);
        if (!obs::openEventSink(common.events_path)) {
            std::cerr << "flh_flow: cannot write " << common.events_path << "\n";
            return 1;
        }
    }

    // Standalone GC mode: open the cache (a fresh handle pins nothing, so
    // the budgets bite), run one pass, report, exit.
    if (gc_mode) {
        if (!opts.cache.enabled) scan.usageError("--gc with --no-cache makes no sense");
        opts.cache.gc_on_open = false; // the explicit gc() below is the pass
        try {
            FlowCache cache(opts.cache);
            const GcResult gc = cache.gc();
            const CacheStats stats = cache.stats();
            if (!gc_json_path.empty()) {
                JsonWriter w;
                w.beginObject();
                w.kv("schema", "flh.flow.gc/1");
                w.key("gc");
                gc.writeJson(w);
                w.key("cache");
                stats.writeJson(w);
                w.endObject();
                cli::writeFileOrDie("flh_flow", gc_json_path, w.str() + "\n");
            }
            if (!common.quiet) {
                std::cout << "flh_flow: gc " << opts.cache.dir << ": scanned "
                          << gc.scanned_entries << " entries (" << gc.scanned_bytes
                          << " bytes), evicted " << gc.evicted_entries << " ("
                          << gc.evicted_bytes << " bytes), swept " << gc.swept_temps
                          << " temps; live " << gc.live_entries << " entries ("
                          << gc.live_bytes << " bytes), shard skew "
                          << fmt(stats.shard_skew, 2) << "\n";
            }
        } catch (const std::exception& e) {
            std::cerr << "flh_flow: gc failed: " << e.what() << "\n";
            return 1;
        }
        return 0;
    }

    // One --threads flag drives both pools (ExecPolicy everywhere);
    // --sim-threads remains as an explicit override.
    opts.threads = common.threads;
    if (!sim_threads_set) opts.sim_threads = common.threads;

    if (!timeseries_path.empty() && sample_ms == 0)
        scan.usageError("--timeseries requires --sample MS");
    if (sample_ms == 0 && common.heartbeat_s > 0.0) sample_ms = 200;

    // Telemetry stays compiled in but disabled unless an export was asked
    // for — the deterministic report is identical either way.
    if (common.wantsTelemetry() || sample_ms > 0) {
        obs::setEnabled(true);
        obs::setThreadLabel("main");
    }

    // Fleet mode: drain a manifest cooperatively with any number of other
    // drainer processes sharing the cache, then report this drainer's slice.
    if (!manifest_path.empty()) {
        try {
            const Manifest manifest = loadManifest(manifest_path);
            if (claims_dir.empty()) claims_dir = manifest_path + ".claims";
            std::shared_ptr<FlowCache> cache;
            if (opts.cache.enabled) {
                cache = std::make_shared<FlowCache>(opts.cache);
                opts.cache_handle = cache;
            }
            std::unique_ptr<obs::Sampler> sampler;
            if (sample_ms > 0) {
                obs::SamplerOptions sopts;
                sopts.period_ms = sample_ms;
                sopts.heartbeat_every_s = common.heartbeat_s;
                if (common.heartbeat_s > 0.0) sopts.heartbeat_out = &std::cerr;
                sampler = std::make_unique<obs::Sampler>(sopts);
                sampler->start();
            }
            const DrainReport drain = drainManifest(manifest, claims_dir, opts);
            if (sampler) sampler->stop();
            const RunReport& report = drain.report;

            cli::writeFileOrDie("flh_flow", report_path, report.reportJson());
            cli::writeFileOrDie("flh_flow", profile_path, report.profileJson());
            const CacheStats stats = cache ? cache->stats() : CacheStats{};
            if (!drain_summary_path.empty())
                cli::writeFileOrDie("flh_flow", drain_summary_path,
                                    drain.summaryJson(stats) + "\n");
            if (!common.trace_path.empty())
                cli::writeFileOrDie("flh_flow", common.trace_path, obs::traceJson());
            if (!common.metrics_path.empty())
                cli::writeFileOrDie("flh_flow", common.metrics_path, obs::metricsJson());
            if (sampler && !timeseries_path.empty())
                cli::writeFileOrDie("flh_flow",
                                    obs::benchOutPath(timeseries_path, common.out_flag),
                                    sampler->timeseriesJson());

            if (!common.quiet) {
                std::cout << "flh_flow: drained " << drain.claimed << "/" << drain.total
                          << " designs (" << drain.already_claimed
                          << " claimed elsewhere): " << report.hits() << " hits, "
                          << report.misses() << " misses, " << report.failures()
                          << " failures\n";
            }
            if (report.failures() > 0) {
                for (const StageRecord& r : report.records())
                    if (r.failed)
                        std::cerr << "flh_flow: " << r.design << "/" << r.stage << ": "
                                  << r.error << "\n";
                return 1;
            }
            if (require_hit_rate >= 0.0 && drain.claimed > 0 &&
                report.hitRate() < require_hit_rate) {
                std::cerr << "flh_flow: cache hit rate " << fmt(100.0 * report.hitRate(), 1)
                          << "% below required " << fmt(100.0 * require_hit_rate, 1)
                          << "%\n";
                return 1;
            }
        } catch (const std::exception& e) {
            std::cerr << "flh_flow: drain failed: " << e.what() << "\n";
            return 1;
        }
        return 0;
    }

    std::vector<DesignInput> designs;
    designs.reserve(circuits.size());
    for (const std::string& c : circuits) {
        try {
            designs.push_back(designInputFor(c));
        } catch (const std::exception& e) {
            std::cerr << "flh_flow: cannot load design '" << c << "': " << e.what() << "\n";
            return 1;
        }
    }

    const FlowGraph graph = buildPaperFlow(cfg);

    // The sampler runs only around the flow itself so the time-series
    // brackets real work, not argument parsing or report serialisation.
    std::unique_ptr<obs::Sampler> sampler;
    if (sample_ms > 0) {
        obs::SamplerOptions sopts;
        sopts.period_ms = sample_ms;
        sopts.heartbeat_every_s = common.heartbeat_s;
        if (common.heartbeat_s > 0.0) sopts.heartbeat_out = &std::cerr;
        sampler = std::make_unique<obs::Sampler>(sopts);
        sampler->start();
    }

    // Open the cache handle here rather than inside runFlow so the final
    // stats scan (gauges for --metrics) sees the same handle the run used.
    std::shared_ptr<FlowCache> cache;
    if (opts.cache.enabled) {
        cache = std::make_shared<FlowCache>(opts.cache);
        opts.cache_handle = cache;
    }

    const RunReport report = runFlow(graph, designs, opts);

    if (sampler) sampler->stop();

    if (cache) (void)cache->stats(); // refresh cache.entries/bytes gauges

    cli::writeFileOrDie("flh_flow", report_path, report.reportJson());
    cli::writeFileOrDie("flh_flow", profile_path, report.profileJson());
    if (!common.trace_path.empty())
        cli::writeFileOrDie("flh_flow", common.trace_path, obs::traceJson());
    if (!common.metrics_path.empty())
        cli::writeFileOrDie("flh_flow", common.metrics_path, obs::metricsJson());
    if (sampler && !timeseries_path.empty())
        cli::writeFileOrDie("flh_flow", obs::benchOutPath(timeseries_path, common.out_flag),
                            sampler->timeseriesJson());
    if (!bench_path.empty()) {
        // Envelope export: one entry per stage execution plus a whole-run
        // aggregate, with the legacy flh.bench.flow/1 payload under
        // "results" for consumers of the old format.
        obs::BenchWriter bw("flh.bench.flow/1", opts.threads);
        for (const StageRecord& r : report.records()) {
            obs::BenchEntry e;
            e.name = "stage/" + r.design + "/" + r.stage;
            e.threads = opts.threads;
            e.time_samples.push_back(r.wall_ms * 1e6);
            if (r.work_items > 0) e.ips_samples.push_back(r.itemsPerSecond());
            bw.add(std::move(e));
        }
        obs::BenchEntry total;
        total.name = "flow/total";
        total.threads = opts.threads;
        total.time_samples.push_back(report.totalWallMs() * 1e6);
        bw.add(std::move(total));
        bw.setResults(report.benchJson());
        cli::writeFileOrDie("flh_flow", obs::benchOutPath(bench_path, common.out_flag),
                            bw.json());
    }

    if (!common.quiet) {
        std::cout << report.table().render();
        std::cout << "\n" << designs.size() << " designs x " << graph.size() << " stages: "
                  << report.hits() << " cache hits, " << report.misses() << " misses, "
                  << report.failures() << " failures ("
                  << fmt(100.0 * report.hitRate(), 1) << "% hit rate)\n";
        std::cout << "total stage wall time " << fmt(report.totalWallMs(), 1)
                  << " ms, peak test count " << report.peakTests() << "\n";
        std::cout << "report: " << report_path << "  profile: " << profile_path << "\n";
        if (!common.trace_path.empty())
            std::cout << "trace: " << common.trace_path << " (" << obs::spanCount()
                      << " spans, " << obs::laneCount() << " lanes)\n";
        if (!common.metrics_path.empty()) std::cout << "metrics: " << common.metrics_path << "\n";
        if (!bench_path.empty()) std::cout << "bench: " << bench_path << "\n";
    }

    if (report.failures() > 0) {
        for (const StageRecord& r : report.records())
            if (r.failed)
                std::cerr << "flh_flow: " << r.design << "/" << r.stage << ": " << r.error
                          << "\n";
        return 1;
    }
    if (require_hit_rate >= 0.0 && report.hitRate() < require_hit_rate) {
        std::cerr << "flh_flow: cache hit rate " << fmt(100.0 * report.hitRate(), 1)
                  << "% below required " << fmt(100.0 * require_hit_rate, 1) << "%\n";
        return 1;
    }
    return 0;
}
