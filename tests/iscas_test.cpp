#include "iscas/circuits.hpp"
#include "netlist/bench_io.hpp"

#include <gtest/gtest.h>

namespace flh {
namespace {

const Library& lib() {
    static const Library l = makeDefaultLibrary();
    return l;
}

TEST(S27, MatchesPublishedStructure) {
    const Netlist nl = makeS27(lib());
    EXPECT_EQ(nl.pis().size(), 4u);
    EXPECT_EQ(nl.pos().size(), 1u);
    EXPECT_EQ(nl.flipFlops().size(), 3u);
    EXPECT_EQ(nl.combGates().size(), 10u);
    EXPECT_NO_THROW(nl.check());
}

TEST(S27, FirstLevelGates) {
    const Netlist nl = makeS27(lib());
    // G5 feeds G10... (NOR G5,G9); G6 feeds G8; G7 feeds G12: three distinct
    // first-level gates.
    EXPECT_EQ(nl.uniqueFirstLevelGates().size(), 3u);
    EXPECT_EQ(nl.totalFfFanout(), 3u);
}

TEST(Registry, ElevenPaperCircuits) {
    EXPECT_EQ(paperCircuits().size(), 11u);
    EXPECT_EQ(findCircuit("s838").unique_ratio, 3.0);
    EXPECT_THROW((void)findCircuit("s9999"), std::out_of_range);
}

TEST(Registry, AverageStatisticsMatchPaper) {
    // Paper Table I: 2.3 average fanouts and 1.8 unique fanouts per FF.
    double fan = 0.0;
    double uniq = 0.0;
    for (const CircuitSpec& s : paperCircuits()) {
        fan += s.ff_fanout_avg;
        uniq += s.unique_ratio;
    }
    fan /= static_cast<double>(paperCircuits().size());
    uniq /= static_cast<double>(paperCircuits().size());
    EXPECT_NEAR(fan, 2.3, 0.25);
    EXPECT_NEAR(uniq, 1.8, 0.2);
}

TEST(Registry, TableIvSubset) {
    const auto subset = tableIvCircuits();
    EXPECT_EQ(subset.size(), 8u);
    for (const CircuitSpec& s : subset) EXPECT_GE(s.n_ffs, 14);
}

class GeneratorFidelity : public ::testing::TestWithParam<const char*> {};

TEST_P(GeneratorFidelity, MatchesSpecStatistics) {
    const CircuitSpec& spec = findCircuit(GetParam());
    const Netlist nl = generateCircuit(spec, lib());
    nl.check();
    const NetlistStats st = computeStats(nl);

    EXPECT_EQ(st.n_ffs, static_cast<std::size_t>(spec.n_ffs));
    EXPECT_EQ(st.n_pis, static_cast<std::size_t>(spec.n_pis));
    EXPECT_EQ(st.n_comb_gates, static_cast<std::size_t>(spec.n_comb_gates));
    // Exact construction invariants:
    EXPECT_EQ(st.unique_first_level,
              static_cast<std::size_t>(static_cast<int>(spec.unique_ratio * spec.n_ffs + 0.5)));
    EXPECT_NEAR(static_cast<double>(st.total_ff_fanout) / static_cast<double>(spec.n_ffs),
                spec.ff_fanout_avg, 0.15);
    // Depth is pinned by the backbone chain.
    EXPECT_EQ(st.logic_depth, spec.depth);
    EXPECT_GE(st.n_pos, static_cast<std::size_t>(spec.n_pos));
}

INSTANTIATE_TEST_SUITE_P(PaperCircuits, GeneratorFidelity,
                         ::testing::Values("s298", "s344", "s386", "s510", "s641", "s838",
                                           "s1196", "s1423", "s5378"));

TEST(Generator, Deterministic) {
    const CircuitSpec& spec = findCircuit("s298");
    const Netlist a = generateCircuit(spec, lib());
    const Netlist b = generateCircuit(spec, lib());
    EXPECT_EQ(writeBenchString(a), writeBenchString(b));
}

TEST(Generator, SeedChangesCircuit) {
    CircuitSpec spec = findCircuit("s298");
    const Netlist a = generateCircuit(spec, lib());
    spec.seed ^= 0xdeadbeef;
    const Netlist b = generateCircuit(spec, lib());
    EXPECT_NE(writeBenchString(a), writeBenchString(b));
}

TEST(Generator, RoundTripsThroughBenchFormat) {
    const Netlist nl = generateCircuit(findCircuit("s344"), lib());
    const Netlist back = readBenchString(writeBenchString(nl), nl.name(), lib());
    EXPECT_EQ(computeStats(back).n_comb_gates, computeStats(nl).n_comb_gates);
    EXPECT_EQ(computeStats(back).logic_depth, computeStats(nl).logic_depth);
    EXPECT_EQ(computeStats(back).unique_first_level, computeStats(nl).unique_first_level);
}

TEST(Generator, LargeCircuitsBuild) {
    for (const char* name : {"s9234", "s13207"}) {
        const Netlist nl = generateCircuit(findCircuit(name), lib());
        EXPECT_NO_THROW(nl.check()) << name;
        EXPECT_EQ(computeStats(nl).n_ffs, static_cast<std::size_t>(findCircuit(name).n_ffs));
    }
}

TEST(Generator, MakeCircuitDispatches) {
    EXPECT_EQ(makeCircuit("s27", lib()).combGates().size(), 10u);
    EXPECT_EQ(makeCircuit("s298", lib()).flipFlops().size(), 14u);
}

} // namespace
} // namespace flh
