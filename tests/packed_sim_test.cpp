// Word-packed engine tests: the SIMD block kernel against the scalar cell
// evaluator, PackedSim against PatternSim net-for-net, and the packed
// fault-simulation path against the scalar oracle bitmap-for-bitmap.
#include "fault/parallel_sim.hpp"
#include "iscas/circuits.hpp"
#include "sim/packed_sim.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace flh {
namespace {

const Library& lib() {
    static const Library l = makeDefaultLibrary();
    return l;
}

// Every combinational cell function with the arities the evaluator accepts.
struct FnArity {
    CellFn fn;
    std::size_t lo;
    std::size_t hi;
};

const std::vector<FnArity>& combFns() {
    static const std::vector<FnArity> fns = {
        {CellFn::Buf, 1, 1},   {CellFn::Inv, 1, 1},   {CellFn::And, 2, kMaxGateArity},
        {CellFn::Nand, 2, kMaxGateArity}, {CellFn::Or, 2, kMaxGateArity},
        {CellFn::Nor, 2, kMaxGateArity},  {CellFn::Xor, 2, kMaxGateArity},
        {CellFn::Xnor, 2, kMaxGateArity}, {CellFn::Aoi21, 3, 3}, {CellFn::Aoi22, 4, 4},
        {CellFn::Oai21, 3, 3}, {CellFn::Oai22, 4, 4},  {CellFn::Mux2, 3, 3},
    };
    return fns;
}

PV randomPv(Rng& rng) {
    const std::uint64_t x = rng.next() & rng.next(); // sparse unknowns
    return PV{rng.next() & ~x, x};
}

// The block kernel must agree with evalCell word-for-word at every width and
// at every SIMD level the host supports (scalar tail handling included).
TEST(LogicBlock, MatchesEvalCellAtEveryWidthAndSimdLevel) {
    const SimdLevel detected = detectedSimdLevel();
    Rng rng(11);
    for (const SimdLevel level : {SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512}) {
        if (level > detected) continue;
        setSimdLevel(level);
        ASSERT_EQ(activeSimdLevel(), level);
        for (const FnArity& fa : combFns()) {
            for (std::size_t arity = fa.lo; arity <= fa.hi; ++arity) {
                for (unsigned words = 1; words <= kMaxPackedWords; ++words) {
                    std::vector<std::vector<std::uint64_t>> iv(arity), ix(arity);
                    std::vector<const std::uint64_t*> pv(arity), px(arity);
                    std::vector<std::vector<PV>> per_word(words, std::vector<PV>(arity));
                    for (std::size_t i = 0; i < arity; ++i) {
                        iv[i].resize(words);
                        ix[i].resize(words);
                        for (unsigned w = 0; w < words; ++w) {
                            const PV p = randomPv(rng);
                            iv[i][w] = p.v;
                            ix[i][w] = p.x;
                            per_word[w][i] = p;
                        }
                        pv[i] = iv[i].data();
                        px[i] = ix[i].data();
                    }
                    std::vector<std::uint64_t> ov(words, ~0ULL), ox(words, ~0ULL);
                    evalCellBlock(fa.fn, pv.data(), px.data(), arity, ov.data(), ox.data(),
                                  words);
                    for (unsigned w = 0; w < words; ++w) {
                        const PV want = evalCell(fa.fn, per_word[w]);
                        ASSERT_EQ((PV{ov[w], ox[w]}), want)
                            << toString(fa.fn) << " arity " << arity << " words " << words
                            << " word " << w << " level " << toString(level);
                    }
                }
            }
        }
    }
    setSimdLevel(detected); // restore for the rest of the binary
}

TEST(PackedSim, CtorRejectsInvalidWordCounts) {
    const Netlist nl = makeS27(lib());
    EXPECT_THROW(PackedSim(nl, 0), std::invalid_argument);
    EXPECT_THROW(PackedSim(nl, kMaxPackedWords + 1), std::invalid_argument);
    EXPECT_NO_THROW(PackedSim(nl, 1));
    EXPECT_NO_THROW(PackedSim(nl, kMaxPackedWords));
}

std::vector<std::vector<PV>> randomWordSources(const Netlist& nl, unsigned words, Rng& rng,
                                               bool with_x) {
    // sources[w][k]: word w's PV for source k (PIs then FF outputs).
    std::vector<std::vector<PV>> s(words);
    const std::size_t n = nl.pis().size() + nl.flipFlops().size();
    for (unsigned w = 0; w < words; ++w) {
        s[w].resize(n);
        for (PV& p : s[w]) p = with_x ? randomPv(rng) : PV{rng.next(), 0};
    }
    return s;
}

void applyWordSources(PackedSim& sim, const std::vector<std::vector<PV>>& src) {
    const Netlist& nl = sim.netlist();
    for (unsigned w = 0; w < src.size(); ++w) {
        std::size_t k = 0;
        for (const NetId pi : nl.pis()) sim.setNet(pi, w, src[w][k++]);
        for (const GateId ff : nl.flipFlops()) sim.setNet(nl.gate(ff).output, w, src[w][k++]);
    }
}

void applySources(PatternSim& sim, const std::vector<PV>& sources) {
    const Netlist& nl = sim.netlist();
    std::size_t k = 0;
    for (const NetId pi : nl.pis()) sim.setNet(pi, sources[k++]);
    for (const GateId ff : nl.flipFlops()) sim.setNet(nl.gate(ff).output, sources[k++]);
}

// Each word of the packed engine must match an independent PatternSim run of
// that word's sources — including X-laden sources.
void expectMatchesScalarPerWord(const Netlist& nl, unsigned words, std::uint64_t seed,
                                bool with_x) {
    PackedSim packed(nl, words);
    Rng rng(seed);
    for (int round = 0; round < 6; ++round) {
        const auto src = randomWordSources(nl, words, rng, with_x);
        applyWordSources(packed, src);
        packed.propagate();
        for (unsigned w = 0; w < words; ++w) {
            PatternSim ref(nl);
            applySources(ref, src[w]);
            ref.propagate();
            for (NetId n = 0; n < nl.netCount(); ++n)
                ASSERT_EQ(packed.get(n, w), ref.get(n))
                    << "net " << nl.net(n).name << " word " << w << " round " << round;
        }
    }
}

TEST(PackedSim, MatchesPatternSimPerWordOnS27) {
    for (const unsigned words : {1u, 4u, 8u}) expectMatchesScalarPerWord(makeS27(lib()), words, 100 + words, false);
}

TEST(PackedSim, MatchesPatternSimPerWordOnSyntheticCircuit) {
    const Netlist nl = makeCircuit("s298", lib());
    for (const unsigned words : {1u, 4u, 8u}) expectMatchesScalarPerWord(nl, words, 200 + words, false);
}

TEST(PackedSim, MatchesPatternSimWithUnknowns) {
    const Netlist nl = makeCircuit("s344", lib());
    for (const unsigned words : {1u, 4u, 8u}) expectMatchesScalarPerWord(nl, words, 300 + words, true);
}

TEST(PackedSim, EventDrivenSkipsUnaffectedLogic) {
    const Netlist nl = makeCircuit("s344", lib());
    PackedSim sim(nl, 4);
    Rng rng(303);
    applyWordSources(sim, randomWordSources(nl, 4, rng, false));
    const std::size_t full = sim.propagate();
    EXPECT_GT(full, 0u);
    EXPECT_EQ(sim.propagate(), 0u);
    // Flipping one word of one PI must evaluate only its cone.
    const NetId pi = nl.pis()[0];
    const PV cur = sim.get(pi, 2);
    sim.setNet(pi, 2, PV{~cur.v, 0});
    const std::size_t partial = sim.propagate();
    EXPECT_GT(partial, 0u);
    EXPECT_LT(partial, full);
}

TEST(PackedSim, ClearFaultRestoresExactPreInjectState) {
    const Netlist nl = makeS27(lib());
    PackedSim sim(nl, 4);
    Rng rng(606);
    applyWordSources(sim, randomWordSources(nl, 4, rng, false));
    sim.propagate();
    std::vector<PV> before(nl.netCount() * 4);
    for (NetId n = 0; n < nl.netCount(); ++n)
        for (unsigned w = 0; w < 4; ++w) before[n * 4 + w] = sim.get(n, w);

    for (const FaultSite& f : {
             FaultSite{nl.gate(nl.topoOrder()[0]).output, kInvalidId, -1, true},
             FaultSite{nl.pis()[0], kInvalidId, -1, false},
             FaultSite{nl.gate(nl.topoOrder()[1]).inputs[0], nl.topoOrder()[1], 0, true},
         }) {
        sim.injectFault(f);
        sim.propagate();
        if (!f.isPinFault())
            for (unsigned w = 0; w < 4; ++w)
                ASSERT_EQ(sim.get(f.net, w), PV::all(f.stuck_at_one ? Logic::One : Logic::Zero));
        sim.clearFault();
        for (NetId n = 0; n < nl.netCount(); ++n)
            for (unsigned w = 0; w < 4; ++w)
                ASSERT_EQ(sim.get(n, w), before[n * 4 + w]) << "net " << nl.net(n).name;
        sim.propagate();
        for (NetId n = 0; n < nl.netCount(); ++n)
            for (unsigned w = 0; w < 4; ++w) ASSERT_EQ(sim.get(n, w), before[n * 4 + w]);
    }
}

TEST(PackedSim, ToggleCountsImmuneToFaultGrading) {
    // Grading faults (inject / propagate / clear) must leave toggle counts
    // exactly as a fault-free run of the same stimuli would.
    const Netlist nl = makeS27(lib());
    Rng rng(909);
    const auto src_a = randomWordSources(nl, 4, rng, false);
    const auto src_b = randomWordSources(nl, 4, rng, false);

    PackedSim clean(nl, 4);
    clean.enableToggleCount(true);
    applyWordSources(clean, src_a);
    clean.propagate();
    applyWordSources(clean, src_b);
    clean.propagate();

    PackedSim graded(nl, 4);
    graded.enableToggleCount(true);
    applyWordSources(graded, src_a);
    graded.propagate();
    for (const GateId g : {nl.topoOrder()[0], nl.topoOrder()[2]}) {
        FaultSite f;
        f.net = nl.gate(g).output;
        f.stuck_at_one = true;
        graded.injectFault(f);
        graded.propagate();
        graded.clearFault();
    }
    applyWordSources(graded, src_b);
    graded.propagate();

    EXPECT_EQ(graded.totalToggles(), clean.totalToggles());
    EXPECT_EQ(graded.toggleCounts(), clean.toggleCounts());
}

// ---------------------------------------------------------- fault bitmaps ----

std::vector<TwoPattern> randomTests(const Netlist& nl, std::size_t count, std::uint64_t seed) {
    const auto v1 = randomPatterns(nl, count, seed);
    const auto v2 = randomPatterns(nl, count, seed ^ 0xABCD);
    std::vector<TwoPattern> tests(count);
    for (std::size_t i = 0; i < count; ++i) tests[i] = TwoPattern{v1[i], v2[i]};
    return tests;
}

// The packed engine at any width must produce the identical detected bitmap
// to the scalar oracle (words = 0), including for partial final blocks.
TEST(PackedFaultSim, StuckAtBitmapsMatchScalarOracle) {
    const Netlist nl = makeCircuit("s386", lib());
    const auto faults = collapsedStuckAtFaults(nl);
    for (const std::size_t count : {37u, 100u, 130u, 520u}) {
        const auto pats = randomPatterns(nl, count, 42 + count);
        FaultSimOptions scalar;
        scalar.words = 0;
        const FaultSimResult want = runStuckAtFaultSim(nl, pats, faults, scalar);
        for (const unsigned words : {1u, 4u, 8u}) {
            FaultSimOptions opts;
            opts.words = words;
            const FaultSimResult got = runStuckAtFaultSim(nl, pats, faults, opts);
            EXPECT_EQ(got.detected, want.detected) << count << " patterns, words " << words;
            ASSERT_EQ(got.detected_mask, want.detected_mask)
                << count << " patterns, words " << words;
        }
    }
}

TEST(PackedFaultSim, TransitionBitmapsMatchScalarOracle) {
    const Netlist nl = makeCircuit("s510", lib());
    const auto faults = allTransitionFaults(nl);
    for (const std::size_t count : {50u, 130u}) {
        const auto tests = randomTests(nl, count, 7 + count);
        FaultSimOptions scalar;
        scalar.words = 0;
        const FaultSimResult want = runTransitionFaultSim(nl, tests, faults, scalar);
        for (const unsigned words : {1u, 4u, 8u}) {
            FaultSimOptions opts;
            opts.words = words;
            const FaultSimResult got = runTransitionFaultSim(nl, tests, faults, opts);
            ASSERT_EQ(got.detected_mask, want.detected_mask)
                << count << " tests, words " << words;
        }
    }
}

TEST(PackedFaultSim, NDetectCountsMatchScalarOracle) {
    const Netlist nl = makeCircuit("s298", lib());
    const auto faults = allTransitionFaults(nl);
    const auto tests = randomTests(nl, 130, 99);
    FaultSimOptions scalar;
    scalar.words = 0;
    const auto want = countTransitionDetections(nl, tests, faults, scalar);
    for (const unsigned words : {1u, 4u, 8u}) {
        FaultSimOptions opts;
        opts.words = words;
        const auto got = countTransitionDetections(nl, tests, faults, opts);
        ASSERT_EQ(got, want) << "words " << words;
    }
}

TEST(PackedFaultSim, ThreadCountDoesNotChangePackedBitmap) {
    const Netlist nl = makeCircuit("s386", lib());
    const auto faults = collapsedStuckAtFaults(nl);
    const auto pats = randomPatterns(nl, 200, 5);
    FaultSimOptions base;
    base.words = 8;
    base.min_faults_per_worker = 1; // force a real pool even on small lists
    const FaultSimResult want = runStuckAtFaultSim(nl, pats, faults, base);
    for (const unsigned threads : {2u, 4u}) {
        FaultSimOptions opts = base;
        opts.threads = threads;
        const FaultSimResult got = runStuckAtFaultSim(nl, pats, faults, opts);
        ASSERT_EQ(got.detected_mask, want.detected_mask) << "threads " << threads;
    }
}

} // namespace
} // namespace flh
