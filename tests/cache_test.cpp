// Sharded flow cache: key validation, GC policy (budgets, LRU order, age,
// pins), temp-file hygiene, multi-process safety under fork(), and the
// manifest drain protocol (claim files, done markers, warm re-drains).
#include "flow/cache.hpp"
#include "flow/manifest.hpp"
#include "util/filelock.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

namespace flh {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed on destruction.
struct TempDir {
    std::string dir;
    TempDir() {
        static std::atomic<int> counter{0};
        dir = (fs::temp_directory_path() /
               ("flh_cache_test_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter++)))
                  .string();
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(dir, ec);
    }
};

/// A settable clock the CacheConfig::clock seam can capture by value.
struct FakeClock {
    std::shared_ptr<std::atomic<std::uint64_t>> t =
        std::make_shared<std::atomic<std::uint64_t>>(1000);
    [[nodiscard]] std::function<std::uint64_t()> fn() const {
        auto p = t;
        return [p] { return p->load(); };
    }
    void set(std::uint64_t ms) { t->store(ms); }
};

/// A well-formed key whose leading byte (= shard) and tail are chosen.
CacheKey makeKey(unsigned shard, unsigned n) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%02x%030x", shard & 0xffu, n);
    return CacheKey::parse(std::string_view(buf, 32));
}

Artifact artOf(const std::string& value, std::size_t pad = 0) {
    Artifact a;
    a.setStr("value", value);
    if (pad > 0) a.setBlob("pad", std::string(pad, 'p'));
    return a;
}

// ---- CacheKey ----------------------------------------------------------

TEST(CacheKey, ParseRoundTripsAndShardsByLeadingByte) {
    const std::string hex = "ab000000000000000000000000000042";
    const CacheKey k = CacheKey::parse(hex);
    EXPECT_EQ(k.hex(), hex);
    EXPECT_EQ(k.shard(), 0xabu);
    EXPECT_EQ(CacheKey::parse("00000000000000000000000000000000").shard(), 0u);
    EXPECT_EQ(CacheKey::parse("ff000000000000000000000000000000").shard(), 0xffu);
    // Uppercase input parses but renders canonically lowercase.
    EXPECT_EQ(CacheKey::parse("AB000000000000000000000000000042").hex(), hex);
    // Hashing and parsing agree.
    const Hash128 h = contentHash("some stage cone");
    EXPECT_EQ(CacheKey::parse(h.hex()), CacheKey::fromHash(h));
}

TEST(CacheKey, RejectsMalformedHex) {
    EXPECT_THROW((void)CacheKey::parse(""), std::invalid_argument);
    EXPECT_THROW((void)CacheKey::parse("abc"), std::invalid_argument);
    EXPECT_THROW((void)CacheKey::parse(std::string(31, '0')), std::invalid_argument);
    EXPECT_THROW((void)CacheKey::parse(std::string(33, '0')), std::invalid_argument);
    EXPECT_THROW((void)CacheKey::parse("0000000000000000000000000000000g"),
                 std::invalid_argument);
    EXPECT_THROW((void)CacheKey::parse("xy000000000000000000000000000000"),
                 std::invalid_argument);
}

// ---- handle counters ---------------------------------------------------

TEST(FlowCacheStats, CountsHitsMissesStoresAndScansDisk) {
    TempDir tmp;
    CacheConfig cfg;
    cfg.dir = tmp.dir;
    FlowCache cache(cfg);

    const CacheKey k1 = makeKey(0x11, 1);
    const CacheKey k2 = makeKey(0x22, 2);
    EXPECT_FALSE(cache.get(k1).has_value()); // miss
    cache.put(k1, artOf("one"));
    cache.put(k2, artOf("two", 512));
    const std::optional<Artifact> got = cache.get(k1); // hit
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->str("value"), "one");

    const CacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.stores, 2u);
    EXPECT_EQ(s.entries, 2u);
    EXPECT_GT(s.bytes, 512u);
    EXPECT_EQ(s.shards_used, 2u);
    EXPECT_EQ(s.max_shard_entries, 1u);
    EXPECT_DOUBLE_EQ(s.shard_skew, 1.0);
    EXPECT_EQ(cache.pinnedCount(), 2u);
}

// ---- GC policy ---------------------------------------------------------

TEST(FlowCacheGc, EntryBudgetEvictsLeastRecentlyTouchedFirst) {
    TempDir tmp;
    FakeClock clk;
    CacheConfig cfg;
    cfg.dir = tmp.dir;
    cfg.clock = clk.fn();

    // Five entries across five shards, touched at strictly increasing times.
    std::vector<CacheKey> keys;
    {
        FlowCache writer(cfg);
        for (unsigned i = 0; i < 5; ++i) {
            clk.set(1000 * (i + 1));
            keys.push_back(makeKey(0x10 * (i + 1), i));
            writer.put(keys.back(), artOf("v" + std::to_string(i)));
        }
    }

    // A fresh handle pins nothing, so the budget bites: keep the 2 newest.
    clk.set(10000);
    CacheConfig gc_cfg = cfg;
    gc_cfg.max_entries = 2;
    FlowCache collector(gc_cfg);
    const GcResult gc = collector.gc();
    EXPECT_EQ(gc.scanned_entries, 5u);
    EXPECT_EQ(gc.evicted_entries, 3u);
    EXPECT_EQ(gc.live_entries, 2u);
    EXPECT_EQ(gc.scanned_bytes, gc.evicted_bytes + gc.live_bytes);

    FlowCache reader(cfg);
    EXPECT_FALSE(reader.get(keys[0]).has_value());
    EXPECT_FALSE(reader.get(keys[1]).has_value());
    EXPECT_FALSE(reader.get(keys[2]).has_value());
    EXPECT_TRUE(reader.get(keys[3]).has_value());
    EXPECT_TRUE(reader.get(keys[4]).has_value());
}

TEST(FlowCacheGc, HitRefreshesLruOrder) {
    TempDir tmp;
    FakeClock clk;
    CacheConfig cfg;
    cfg.dir = tmp.dir;
    cfg.clock = clk.fn();

    const CacheKey oldest = makeKey(0x01, 1);
    const CacheKey newer = makeKey(0x02, 2);
    {
        FlowCache writer(cfg);
        clk.set(1000);
        writer.put(oldest, artOf("a"));
        clk.set(2000);
        writer.put(newer, artOf("b"));
        // Touch the oldest entry last: a hit appends a T record, so it is
        // now the most recently used.
        clk.set(3000);
        EXPECT_TRUE(writer.get(oldest).has_value());
    }

    clk.set(4000);
    CacheConfig gc_cfg = cfg;
    gc_cfg.max_entries = 1;
    FlowCache collector(gc_cfg);
    const GcResult gc = collector.gc();
    EXPECT_EQ(gc.evicted_entries, 1u);

    FlowCache reader(cfg);
    EXPECT_TRUE(reader.get(oldest).has_value()); // survived thanks to the hit
    EXPECT_FALSE(reader.get(newer).has_value());
}

TEST(FlowCacheGc, ByteBudgetHoldsAfterEviction) {
    TempDir tmp;
    FakeClock clk;
    CacheConfig cfg;
    cfg.dir = tmp.dir;
    cfg.clock = clk.fn();

    std::vector<CacheKey> keys;
    {
        FlowCache writer(cfg);
        for (unsigned i = 0; i < 4; ++i) {
            clk.set(1000 * (i + 1));
            keys.push_back(makeKey(0x40 + i, i));
            writer.put(keys.back(), artOf("v", 1000)); // equal-size entries
        }
    }
    const std::uint64_t total = FlowCache(cfg).stats().bytes;
    ASSERT_GT(total, 0u);
    const std::uint64_t per_entry = total / 4;

    clk.set(10000);
    CacheConfig gc_cfg = cfg;
    gc_cfg.max_bytes = 2 * per_entry; // room for exactly two entries
    FlowCache collector(gc_cfg);
    const GcResult gc = collector.gc();
    EXPECT_EQ(gc.evicted_entries, 2u);
    EXPECT_LE(gc.live_bytes, gc_cfg.max_bytes);

    FlowCache reader(cfg);
    EXPECT_FALSE(reader.get(keys[0]).has_value());
    EXPECT_FALSE(reader.get(keys[1]).has_value());
    EXPECT_TRUE(reader.get(keys[2]).has_value());
    EXPECT_TRUE(reader.get(keys[3]).has_value());
}

TEST(FlowCacheGc, AgeBoundEvictsOnlyStaleEntries) {
    TempDir tmp;
    FakeClock clk;
    CacheConfig cfg;
    cfg.dir = tmp.dir;
    cfg.clock = clk.fn();

    const CacheKey stale = makeKey(0x0a, 1);
    const CacheKey fresh = makeKey(0x0b, 2);
    {
        FlowCache writer(cfg);
        clk.set(1000);
        writer.put(stale, artOf("old"));
        clk.set(800000);
        writer.put(fresh, artOf("new"));
    }

    clk.set(1000000);
    CacheConfig gc_cfg = cfg;
    gc_cfg.max_age_s = 300.0; // cutoff at t=700000: only `stale` is older
    FlowCache collector(gc_cfg);
    const GcResult gc = collector.gc();
    EXPECT_EQ(gc.evicted_entries, 1u);

    FlowCache reader(cfg);
    EXPECT_FALSE(reader.get(stale).has_value());
    EXPECT_TRUE(reader.get(fresh).has_value());
}

TEST(FlowCacheGc, PinnedEntriesSurviveTheHandlesOwnGc) {
    TempDir tmp;
    FakeClock clk;
    CacheConfig cfg;
    cfg.dir = tmp.dir;
    cfg.clock = clk.fn();
    cfg.max_entries = 1; // far below what the run stores

    FlowCache cache(cfg);
    std::vector<CacheKey> keys;
    for (unsigned i = 0; i < 3; ++i) {
        clk.set(1000 * (i + 1));
        keys.push_back(makeKey(0x60 + i, i));
        cache.put(keys.back(), artOf("v" + std::to_string(i)));
    }
    // Everything this handle stored is its live working set: GC spares it
    // even though the entry budget is exceeded.
    const GcResult gc = cache.gc();
    EXPECT_EQ(gc.evicted_entries, 0u);
    EXPECT_EQ(gc.live_entries, 3u);
    for (const CacheKey& k : keys) EXPECT_TRUE(cache.get(k).has_value());

    // A fresh handle (a separate `flh_flow --gc` process) has no pins.
    FlowCache collector(cfg);
    EXPECT_EQ(collector.gc().evicted_entries, 2u);
}

TEST(FlowCacheGc, SweepsStaleTempDroppings) {
    TempDir tmp;
    CacheConfig cfg;
    cfg.dir = tmp.dir;
    cfg.temp_sweep_age_s = 0.0; // sweep any temp regardless of age

    FlowCache cache(cfg);
    const CacheKey k = makeKey(0x7f, 9);
    cache.put(k, artOf("live"));

    // Simulate crashed writers: orphaned temps next to a live artifact.
    const std::string shard_dir = tmp.dir + "/7f";
    std::ofstream(shard_dir + "/" + k.hex() + ".tmp3.12345") << "partial";
    std::ofstream(shard_dir + "/" + k.hex() + ".tmp4.99999") << "partial";

    const GcResult gc = cache.gc();
    EXPECT_EQ(gc.swept_temps, 2u);
    EXPECT_EQ(gc.evicted_entries, 0u);
    EXPECT_TRUE(cache.get(k).has_value());
    // The shard directory holds only the artifact and its index files now.
    for (const auto& e : fs::directory_iterator(shard_dir))
        EXPECT_EQ(e.path().filename().string().find(".tmp"), std::string::npos)
            << e.path();
}

// ---- store hygiene -----------------------------------------------------

TEST(FlowCachePut, FailedRenameLeavesNoTempBehind) {
    TempDir tmp;
    CacheConfig cfg;
    cfg.dir = tmp.dir;
    FlowCache cache(cfg);
    const CacheKey k = makeKey(0x2a, 7);

    // Occupy the artifact path with a non-empty directory: the final
    // rename must fail, and the failed store must clean up its temp file.
    const std::string art_path = tmp.dir + "/2a/" + k.hex() + ".art";
    fs::create_directories(art_path + "/blocker");
    EXPECT_THROW(cache.put(k, artOf("doomed")), std::exception);
    for (const auto& e : fs::directory_iterator(tmp.dir + "/2a"))
        EXPECT_EQ(e.path().filename().string().find(".tmp"), std::string::npos)
            << "orphaned temp after failed rename: " << e.path();

    // Once the obstruction is gone the same key stores and loads cleanly.
    fs::remove_all(art_path);
    cache.put(k, artOf("fine"));
    const std::optional<Artifact> got = cache.get(k);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->str("value"), "fine");
}

// ---- multi-process -----------------------------------------------------

TEST(FlowCacheMp, ForkedWritersReadersAndGcNeverSeeTornArtifacts) {
    // N child processes hammer one cache directory: every child writes
    // head/tail-stamped artifacts over a shared key set while reading the
    // others' keys, and some children run GC through fresh unpinned handles
    // so eviction races real traffic. The invariant under fire: a reader
    // sees a complete artifact or a clean miss, never a torn entry.
    TempDir tmp;
    constexpr int kProcs = 4;
    constexpr int kIters = 25;
    constexpr unsigned kKeys = 8;

    std::vector<pid_t> pids;
    for (int p = 0; p < kProcs; ++p) {
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0) << "fork failed";
        if (pid == 0) {
            int bad = 0;
            try {
                CacheConfig cfg;
                cfg.dir = tmp.dir;
                FlowCache cache(cfg);
                for (int i = 0; i < kIters; ++i) {
                    for (unsigned k = 0; k < kKeys; ++k) {
                        const CacheKey key = makeKey(k * 0x21, k);
                        const std::string token = key.hex() + ":" + std::to_string(p) +
                                                  ":" + std::to_string(i);
                        Artifact art;
                        art.setStr("head", token);
                        art.setBlob("bulk", std::string(4096, 'x'));
                        art.setStr("tail", token);
                        cache.put(key, art);
                        const CacheKey probe = makeKey(((k + 1) % kKeys) * 0x21,
                                                       (k + 1) % kKeys);
                        const std::optional<Artifact> got = cache.get(probe);
                        if (got && (got->str("head") != got->str("tail") ||
                                    got->blob("bulk").size() != 4096u))
                            ++bad;
                    }
                    if (p % 2 == 1 && i % 10 == 9) {
                        // Concurrent collector: fresh handle, tight budget.
                        // temp_sweep_age_s stays at the default: a zero-age
                        // sweep would delete other writers' in-flight temps
                        // (the default exists precisely to protect them).
                        CacheConfig gc_cfg;
                        gc_cfg.dir = tmp.dir;
                        gc_cfg.max_entries = kKeys / 2;
                        (void)FlowCache(gc_cfg).gc();
                    }
                }
            } catch (const std::exception& e) {
                std::fprintf(stderr, "cache stress child %d threw: %s\n", p, e.what());
                ::_exit(100);
            } catch (...) {
                ::_exit(100);
            }
            ::_exit(bad == 0 ? 0 : 1);
        }
        pids.push_back(pid);
    }
    for (const pid_t pid : pids) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 0) << "child saw torn artifacts or threw";
    }

    // After the dust settles, every surviving key deserializes completely.
    CacheConfig cfg;
    cfg.dir = tmp.dir;
    FlowCache cache(cfg);
    unsigned present = 0;
    for (unsigned k = 0; k < kKeys; ++k) {
        const std::optional<Artifact> art = cache.get(makeKey(k * 0x21, k));
        if (!art) continue; // evicted by a racing GC: a clean miss
        ++present;
        EXPECT_EQ(art->str("head"), art->str("tail"));
    }
    const CacheStats s = cache.stats();
    EXPECT_EQ(s.entries, present);
    EXPECT_LE(s.entries, static_cast<std::uint64_t>(kKeys));
}

// ---- manifest parsing --------------------------------------------------

TEST(Manifest, ParsesConfigKnobsAndDesignForms) {
    const std::string doc = R"({
        "schema": "flh.flow.manifest/1",
        "pairs": 4, "seed": 7, "power_vectors": 3, "power_seed": 99,
        "designs": [
            "s27",
            { "circuit": "s27", "name": "s27.f2", "attrs": "fleet=2" }
        ]})";
    const Manifest m = parseManifest(doc);
    EXPECT_EQ(m.cfg.random_pairs, 4);
    EXPECT_EQ(m.cfg.atpg_seed, 7u);
    EXPECT_EQ(m.cfg.power_vectors, 3);
    EXPECT_EQ(m.cfg.power_seed, 99u);
    ASSERT_EQ(m.designs.size(), 2u);
    EXPECT_EQ(m.designs[0].circuit, "s27");
    EXPECT_EQ(m.designs[0].name, "s27"); // defaults to circuit
    EXPECT_EQ(m.designs[1].name, "s27.f2");
    EXPECT_EQ(m.designs[1].attrs, "fleet=2");

    const DesignInput d = resolveManifestEntry(m.designs[1]);
    EXPECT_EQ(d.name, "s27.f2");
    EXPECT_NE(d.attrs.find("fleet=2"), std::string::npos);
}

TEST(Manifest, RejectsMalformedDocuments) {
    EXPECT_THROW((void)parseManifest("not json"), std::runtime_error);
    EXPECT_THROW((void)parseManifest("[]"), std::runtime_error);
    EXPECT_THROW((void)parseManifest(R"({"schema":"flh.flow.manifest/9","designs":["s27"]})"),
                 std::runtime_error);
    EXPECT_THROW((void)parseManifest(R"({"schema":"flh.flow.manifest/1"})"),
                 std::runtime_error);
    EXPECT_THROW((void)parseManifest(R"({"schema":"flh.flow.manifest/1","designs":[]})"),
                 std::runtime_error);
    EXPECT_THROW((void)parseManifest(R"({"designs":["s27","s27"]})"), std::runtime_error);
    EXPECT_THROW((void)parseManifest(R"({"designs":[42]})"), std::runtime_error);
    EXPECT_THROW((void)parseManifest(R"({"designs":[{"name":"x"}]})"), std::runtime_error);
    EXPECT_THROW((void)parseManifest(R"({"designs":[""]})"), std::runtime_error);
    // Non-string name/attrs would silently coerce to "" (and collapse cache
    // cones across variants) if accepted — the parser must reject them.
    EXPECT_THROW((void)parseManifest(R"({"designs":[{"circuit":"s27","name":7}]})"),
                 std::runtime_error);
    EXPECT_THROW(
        (void)parseManifest(R"({"designs":[{"circuit":"s27","attrs":{"fleet":"3"}}]})"),
        std::runtime_error);
}

// ---- manifest draining -------------------------------------------------

Manifest smallManifest(int designs) {
    Manifest m;
    m.cfg.random_pairs = 2;
    m.cfg.power_vectors = 2;
    for (int i = 0; i < designs; ++i) {
        ManifestEntry e;
        e.circuit = "s27";
        e.name = "s27.f" + std::to_string(i);
        e.attrs = "fleet=" + std::to_string(i);
        m.designs.push_back(std::move(e));
    }
    return m;
}

TEST(ManifestDrain, ClaimsEachDesignOnceAndWarmRedrainHitsEverything) {
    TempDir tmp;
    const Manifest m = smallManifest(3);
    FlowOptions opts;
    opts.cache.dir = tmp.dir + "/cache";

    // Cold drain: this process claims every design and computes everything.
    const DrainReport r1 = drainManifest(m, tmp.dir + "/claims1", opts);
    EXPECT_EQ(r1.total, 3u);
    EXPECT_EQ(r1.claimed, 3u);
    EXPECT_EQ(r1.already_claimed, 0u);
    EXPECT_EQ(r1.report.failures(), 0u);
    EXPECT_EQ(r1.report.hits(), 0u);
    EXPECT_GT(r1.report.misses(), 0u);

    // Every claimed design left an "ok" done marker next to its claim.
    unsigned claims = 0, dones = 0;
    for (const auto& e : fs::directory_iterator(tmp.dir + "/claims1")) {
        const std::string name = e.path().filename().string();
        if (name.size() > 6 && name.rfind(".claim") == name.size() - 6) ++claims;
        if (name.size() > 5 && name.rfind(".done") == name.size() - 5) {
            ++dones;
            const std::optional<std::string> body = readFileIfExists(e.path().string());
            ASSERT_TRUE(body.has_value());
            EXPECT_EQ(*body, "ok\n");
        }
    }
    EXPECT_EQ(claims, 3u);
    EXPECT_EQ(dones, 3u);

    // Same claims directory again: everything is already claimed.
    const DrainReport r2 = drainManifest(m, tmp.dir + "/claims1", opts);
    EXPECT_EQ(r2.claimed, 0u);
    EXPECT_EQ(r2.already_claimed, 3u);
    EXPECT_TRUE(r2.report.records().empty());

    // Fresh claims directory over the warm cache: all hits, no recompute.
    const DrainReport r3 = drainManifest(m, tmp.dir + "/claims2", opts);
    EXPECT_EQ(r3.claimed, 3u);
    EXPECT_EQ(r3.report.misses(), 0u);
    EXPECT_DOUBLE_EQ(r3.report.hitRate(), 1.0);

    // The drain summary carries the claim counts and the cache snapshot.
    CacheConfig cfg = opts.cache;
    const std::string summary = r3.summaryJson(FlowCache(cfg).stats());
    EXPECT_NE(summary.find("\"schema\": \"flh.flow.drain/2\""), std::string::npos);
    EXPECT_NE(summary.find("\"claimed\": 3"), std::string::npos);
    EXPECT_NE(summary.find("\"hit_rate\": 1"), std::string::npos);

    // /2 additions: per-design wall times and their mergeable histogram.
    EXPECT_EQ(r3.drained.size(), 3u);
    EXPECT_GT(r3.drain_wall_ms, 0.0);
    for (const DrainedDesign& d : r3.drained) {
        EXPECT_FALSE(d.failed);
        EXPECT_GT(d.wall_ms, 0.0);
    }
    EXPECT_NE(summary.find("\"drain_ms\""), std::string::npos);
    EXPECT_NE(summary.find("\"count\": 3"), std::string::npos);
}

TEST(ManifestDrain, ForkedDrainersPartitionTheManifestExactly) {
    TempDir tmp;
    const Manifest m = smallManifest(4);
    const std::string claims = tmp.dir + "/claims";

    // Two racing drainer processes: the claim files guarantee each design
    // is computed by exactly one of them. Children report their claimed
    // count through the exit status.
    std::vector<pid_t> pids;
    for (int p = 0; p < 2; ++p) {
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0) << "fork failed";
        if (pid == 0) {
            try {
                FlowOptions opts;
                opts.cache.dir = tmp.dir + "/cache";
                const DrainReport r = drainManifest(m, claims, opts);
                if (r.report.failures() > 0) ::_exit(101);
                if (r.claimed + r.already_claimed != r.total) ::_exit(102);
                ::_exit(static_cast<int>(r.claimed));
            } catch (...) {
                ::_exit(100);
            }
        }
        pids.push_back(pid);
    }
    int total_claimed = 0;
    for (const pid_t pid : pids) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        const int code = WEXITSTATUS(status);
        ASSERT_LT(code, 100) << "drainer child failed";
        total_claimed += code;
    }
    EXPECT_EQ(total_claimed, 4);

    // A late arrival finds nothing left to do.
    FlowOptions opts;
    opts.cache.dir = tmp.dir + "/cache";
    const DrainReport late = drainManifest(m, claims, opts);
    EXPECT_EQ(late.claimed, 0u);
    EXPECT_EQ(late.already_claimed, 4u);
}

} // namespace
} // namespace flh
