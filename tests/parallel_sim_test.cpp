#include "fault/parallel_sim.hpp"

#include "dft/scan.hpp"
#include "iscas/circuits.hpp"

#include <gtest/gtest.h>

namespace flh {
namespace {

const Library& lib() {
    static const Library l = makeDefaultLibrary();
    return l;
}

std::vector<TwoPattern> arbitraryPairs(const Netlist& nl, std::size_t count,
                                       std::uint64_t seed) {
    const auto v1s = randomPatterns(nl, count, seed);
    const auto v2s = randomPatterns(nl, count, seed + 1);
    std::vector<TwoPattern> tests;
    tests.reserve(count);
    for (std::size_t i = 0; i < count; ++i) tests.push_back(TwoPattern{v1s[i], v2s[i]});
    return tests;
}

FaultSimOptions threaded(unsigned n) {
    FaultSimOptions opts;
    opts.threads = n;
    opts.min_faults_per_worker = 1; // exercise the pool even on small lists
    return opts;
}

TEST(FaultSimOptions, ResolveThreads) {
    FaultSimOptions opts; // defaults: threads = 1
    EXPECT_EQ(opts.resolveThreads(100000), 1u);
    opts.threads = 8;
    EXPECT_EQ(opts.resolveThreads(100000), 8u);
    // Shrink floor: 8 requested, but 100 faults / 64 per worker -> 1.
    EXPECT_EQ(opts.resolveThreads(100), 1u);
    EXPECT_EQ(opts.resolveThreads(64 * 3), 3u);
    EXPECT_EQ(opts.resolveThreads(0), 1u); // never zero workers
    opts.threads = 0;                      // auto
    EXPECT_GE(opts.resolveThreads(100000), 1u);
}

TEST(FaultSimOptions, ResolveThreadsGuardsDegenerateKnobs) {
    // min_faults_per_worker == 0 disables the work-based clamp instead of
    // dividing by zero.
    FaultSimOptions opts;
    opts.threads = 4;
    opts.min_faults_per_worker = 0;
    EXPECT_EQ(opts.resolveThreads(1), 4u);
    EXPECT_EQ(opts.resolveThreads(0), 4u);
    // Auto thread count is >= 1 even where hardware_concurrency() reports 0.
    opts.threads = 0;
    opts.min_faults_per_worker = 1;
    EXPECT_GE(ExecPolicy::hardwareThreads(), 1u);
    EXPECT_EQ(opts.resolveThreads(1u << 20), ExecPolicy::hardwareThreads());
}

TEST(FaultSimOptions, ExecPolicyViewMirrorsLegacyFields) {
    // The legacy threads/min_faults_per_worker fields are thin aliases of
    // the shared ExecPolicy: both views must resolve identically.
    FaultSimOptions opts;
    opts.threads = 3;
    opts.min_faults_per_worker = 10;
    EXPECT_EQ(opts.exec().threads, 3u);
    EXPECT_EQ(opts.exec().min_items_per_worker, 10u);
    for (const std::size_t n : {0u, 5u, 25u, 1000u})
        EXPECT_EQ(opts.resolveThreads(n), opts.exec().resolveThreads(n)) << n;

    ExecPolicy p;
    p.threads = 7;
    p.min_items_per_worker = 2;
    opts.setExec(p);
    EXPECT_EQ(opts.threads, 7u);
    EXPECT_EQ(opts.min_faults_per_worker, 2u);
}

TEST(ParallelFaultSim, StuckAtDeterministicAcrossThreadCounts) {
    for (const char* name : {"s298", "s1423"}) {
        const Netlist nl = makeCircuit(name, lib());
        const auto pats = randomPatterns(nl, 96, 11);
        const auto faults = collapsedStuckAtFaults(nl);
        const FaultSimResult serial = runStuckAtFaultSim(nl, pats, faults);
        for (unsigned t : {2u, 4u, 8u}) {
            const FaultSimResult par = runStuckAtFaultSim(nl, pats, faults, threaded(t));
            EXPECT_EQ(par.detected, serial.detected) << name << " threads=" << t;
            EXPECT_EQ(par.detected_mask, serial.detected_mask) << name << " threads=" << t;
        }
    }
}

TEST(ParallelFaultSim, TransitionDeterministicAcrossThreadCounts) {
    for (const char* name : {"s298", "s1423"}) {
        const Netlist nl = makeCircuit(name, lib());
        const auto tests = arbitraryPairs(nl, 96, 17);
        const auto faults = allTransitionFaults(nl);
        const FaultSimResult serial = runTransitionFaultSim(nl, tests, faults);
        for (unsigned t : {2u, 4u, 8u}) {
            const FaultSimResult par = runTransitionFaultSim(nl, tests, faults, threaded(t));
            EXPECT_EQ(par.detected, serial.detected) << name << " threads=" << t;
            EXPECT_EQ(par.detected_mask, serial.detected_mask) << name << " threads=" << t;
        }
    }
}

TEST(ParallelFaultSim, AutoThreadCountMatchesSerial) {
    const Netlist nl = makeCircuit("s298", lib());
    const auto pats = randomPatterns(nl, 64, 23);
    const auto faults = collapsedStuckAtFaults(nl);
    FaultSimOptions opts;
    opts.threads = 0; // one worker per hardware thread
    const FaultSimResult par = runStuckAtFaultSim(nl, pats, faults, opts);
    const FaultSimResult serial = runStuckAtFaultSim(nl, pats, faults);
    EXPECT_EQ(par.detected_mask, serial.detected_mask);
}

TEST(ParallelFaultSim, NDetectCountsMatchBruteForce) {
    const Netlist nl = makeCircuit("s298", lib());
    const auto tests = arbitraryPairs(nl, 70, 29); // spans two 64-wide batches
    const auto faults = allTransitionFaults(nl);

    // Brute force: grade each test alone (valid mask = 1 slot) and sum.
    std::vector<std::size_t> want(faults.size(), 0);
    for (const TwoPattern& tp : tests) {
        const TwoPattern one[1] = {tp};
        const FaultSimResult r = runTransitionFaultSim(nl, one, faults);
        for (std::size_t f = 0; f < faults.size(); ++f)
            if (r.detected_mask[f]) ++want[f];
    }

    EXPECT_EQ(countTransitionDetections(nl, tests, faults), want);
    for (unsigned t : {2u, 4u}) {
        EXPECT_EQ(countTransitionDetections(nl, tests, faults, threaded(t)), want)
            << "threads=" << t;
    }
}

TEST(ParallelFaultSim, NDetectPositiveExactlyForDetectedFaults) {
    // counts[f] > 0 iff the dropping simulator reports f detected.
    const Netlist nl = makeCircuit("s298", lib());
    const auto tests = arbitraryPairs(nl, 48, 41);
    const auto faults = allTransitionFaults(nl);
    const auto counts = countTransitionDetections(nl, tests, faults, threaded(4));
    const FaultSimResult r = runTransitionFaultSim(nl, tests, faults, threaded(4));
    for (std::size_t f = 0; f < faults.size(); ++f)
        EXPECT_EQ(counts[f] > 0, r.detected_mask[f]) << "fault " << f;
}

TEST(ParallelFaultSim, EmptyFaultListAndEmptyPatternSet) {
    const Netlist nl = makeCircuit("s298", lib());
    const auto pats = randomPatterns(nl, 8, 3);
    const auto faults = collapsedStuckAtFaults(nl);
    const auto tests = arbitraryPairs(nl, 8, 5);
    const auto tfaults = allTransitionFaults(nl);
    const FaultSimOptions opts = threaded(4);

    const FaultSimResult no_faults =
        runStuckAtFaultSim(nl, pats, std::span<const FaultSite>{}, opts);
    EXPECT_EQ(no_faults.total, 0u);
    EXPECT_EQ(no_faults.detected, 0u);
    EXPECT_TRUE(no_faults.detected_mask.empty());

    const FaultSimResult no_pats =
        runStuckAtFaultSim(nl, std::span<const Pattern>{}, faults, opts);
    EXPECT_EQ(no_pats.total, faults.size());
    EXPECT_EQ(no_pats.detected, 0u);

    const FaultSimResult no_tests =
        runTransitionFaultSim(nl, std::span<const TwoPattern>{}, tfaults, opts);
    EXPECT_EQ(no_tests.detected, 0u);
    EXPECT_EQ(runTransitionFaultSim(nl, tests, std::span<const TransitionFault>{}, opts).total,
              0u);

    EXPECT_TRUE(
        countTransitionDetections(nl, tests, std::span<const TransitionFault>{}, opts).empty());
    const auto zero_counts =
        countTransitionDetections(nl, std::span<const TwoPattern>{}, tfaults, opts);
    EXPECT_EQ(zero_counts, std::vector<std::size_t>(tfaults.size(), 0));
}

TEST(ParallelFaultSim, MoreThreadsThanFaults) {
    const Netlist nl = makeS27(lib());
    const auto pats = randomPatterns(nl, 16, 7);
    const auto all = collapsedStuckAtFaults(nl);
    const std::vector<FaultSite> two(all.begin(), all.begin() + 2);
    const FaultSimResult par = runStuckAtFaultSim(nl, pats, two, threaded(16));
    const FaultSimResult serial = runStuckAtFaultSim(nl, pats, two);
    EXPECT_EQ(par.detected_mask, serial.detected_mask);
}

TEST(ParallelFaultSim, DeterministicAcrossThreadsAndWordWidths) {
    // The detected bitmap is a pure function of the pattern set: every
    // (threads, words) combination — scalar oracle included — must agree.
    Netlist nl = makeCircuit("s344", lib());
    insertScan(nl);
    const auto faults = allTransitionFaults(nl);
    const auto tests = arbitraryPairs(nl, 150, 17);

    FaultSimOptions oracle;
    oracle.words = 0;
    const FaultSimResult want = runTransitionFaultSim(nl, tests, faults, oracle);
    const auto want_counts = countTransitionDetections(nl, tests, faults, oracle);

    for (const unsigned threads : {1u, 2u, 4u}) {
        for (const unsigned words : {0u, 1u, 4u, 8u}) {
            FaultSimOptions opts = threaded(threads);
            opts.words = words;
            const FaultSimResult got = runTransitionFaultSim(nl, tests, faults, opts);
            ASSERT_EQ(got.detected_mask, want.detected_mask)
                << "threads " << threads << " words " << words;
            ASSERT_EQ(countTransitionDetections(nl, tests, faults, opts), want_counts)
                << "threads " << threads << " words " << words;
        }
    }
}

TEST(ParallelFaultSim, StressManyConcurrentRuns) {
    // ThreadSanitizer-friendly stress: repeated short parallel gradings with
    // maximal worker counts over the shared (read-only) netlist, including a
    // scan-inserted variant so SDFF sources are exercised concurrently too.
    Netlist nl = makeCircuit("s298", lib());
    insertScan(nl);
    const auto faults = allTransitionFaults(nl);
    const auto tests = arbitraryPairs(nl, 40, 53);
    const FaultSimResult want = runTransitionFaultSim(nl, tests, faults);
    for (int round = 0; round < 8; ++round) {
        const FaultSimResult got = runTransitionFaultSim(nl, tests, faults, threaded(8));
        ASSERT_EQ(got.detected_mask, want.detected_mask) << "round " << round;
    }
}

} // namespace
} // namespace flh
