#include "iscas/circuits.hpp"
#include "power/power.hpp"

#include <gtest/gtest.h>

namespace flh {
namespace {

const Library& lib() {
    static const Library l = makeDefaultLibrary();
    return l;
}

TEST(Power, PositiveComponents) {
    const Netlist nl = makeCircuit("s298", lib());
    const PowerResult p = measureNormalPower(nl);
    EXPECT_GT(p.switching_uw, 0.0);
    EXPECT_GT(p.clocking_uw, 0.0);
    EXPECT_GT(p.leakage_uw, 0.0);
    EXPECT_GT(p.toggles, 0u);
    EXPECT_NEAR(p.totalUw(), p.switching_uw + p.clocking_uw + p.leakage_uw, 1e-12);
}

TEST(Power, DeterministicForFixedSeed) {
    const Netlist nl = makeCircuit("s298", lib());
    const PowerResult a = measureNormalPower(nl, {}, {100, 7});
    const PowerResult b = measureNormalPower(nl, {}, {100, 7});
    EXPECT_EQ(a.toggles, b.toggles);
    EXPECT_DOUBLE_EQ(a.totalUw(), b.totalUw());
}

TEST(Power, SeedChangesActivityOnlySlightly) {
    const Netlist nl = makeCircuit("s344", lib());
    const PowerResult a = measureNormalPower(nl, {}, {100, 1});
    const PowerResult b = measureNormalPower(nl, {}, {100, 2});
    EXPECT_NE(a.toggles, b.toggles);
    EXPECT_NEAR(a.totalUw() / b.totalUw(), 1.0, 0.1); // 6400 sampled vectors: stable
}

TEST(Power, ScalesWithCircuitSize) {
    const PowerResult small = measureNormalPower(makeCircuit("s298", lib()));
    const PowerResult big = measureNormalPower(makeCircuit("s1423", lib()));
    EXPECT_GT(big.totalUw(), 2.0 * small.totalUw());
}

TEST(Power, ExtraSwitchedCapIncreasesPower) {
    const Netlist nl = makeCircuit("s298", lib());
    const PowerResult base = measureNormalPower(nl);
    PowerOverlay ov;
    for (const GateId ff : nl.flipFlops()) ov.extra_switched_cap_ff[nl.gate(ff).output] = 5.0;
    const PowerResult with = measureNormalPower(nl, ov);
    EXPECT_GT(with.switching_uw, base.switching_uw);
    EXPECT_DOUBLE_EQ(with.leakage_uw, base.leakage_uw);
}

TEST(Power, LeakFactorReducesLeakage) {
    // The stacking saving is weighted by each gate's idleness, so a 0.5
    // factor lands between half the base leakage (all-idle) and the base
    // (all-toggling).
    const Netlist nl = makeCircuit("s298", lib());
    const PowerResult base = measureNormalPower(nl);
    PowerOverlay ov;
    for (GateId g = 0; g < nl.gateCount(); ++g) ov.gate_leak_factor[g] = 0.5;
    const PowerResult with = measureNormalPower(nl, ov);
    EXPECT_LT(with.leakage_uw, base.leakage_uw);
    EXPECT_GE(with.leakage_uw, 0.5 * base.leakage_uw - 1e-9);
}

TEST(Power, FullyIdleGateGetsFullStackingSaving) {
    // A circuit with frozen inputs never toggles; the factor applies fully.
    Netlist nl("idle", lib());
    const NetId a = nl.addPi("a");
    const NetId y = nl.addNet("y");
    const NetId q = nl.addNet("q");
    nl.addGate(CellFn::Nand, {a, q}, y);
    nl.addDff(y, q);
    nl.markPo(y);
    PowerConfig cfg;
    cfg.pi_toggle_prob = 0.0;
    cfg.ff_hold_prob = 1.0;
    const PowerResult base = measureNormalPower(nl, {}, cfg);
    PowerOverlay ov;
    ov.gate_leak_factor[0] = 0.5;
    const PowerResult with = measureNormalPower(nl, ov, cfg);
    const Tech& t = lib().tech();
    const double gate_leak_uw = lib().cell(nl.gate(0).cell).leakageNw(t) * 1e-3;
    EXPECT_NEAR(base.leakage_uw - with.leakage_uw, 0.5 * gate_leak_uw, 1e-9);
}

TEST(Power, ExtraLeakAdds) {
    const Netlist nl = makeCircuit("s298", lib());
    PowerOverlay ov;
    ov.extra_leak_nw = 1000.0;
    const PowerResult base = measureNormalPower(nl);
    const PowerResult with = measureNormalPower(nl, ov);
    EXPECT_NEAR(with.leakage_uw - base.leakage_uw, 1.0, 1e-9);
}

class ScanShiftPower : public ::testing::TestWithParam<const char*> {};

TEST_P(ScanShiftPower, HoldingElimatesRedundantCombSwitching) {
    const Netlist nl = makeCircuit(GetParam(), lib());
    const auto plain = measureScanShiftPower(nl, HoldStyle::None, 4);
    const auto enh = measureScanShiftPower(nl, HoldStyle::EnhancedScan, 4);
    const auto flh = measureScanShiftPower(nl, HoldStyle::Flh, 4);

    // Section IV: blocking propagation eliminates the redundant switching;
    // FLH "is equally effective in completely eliminating redundant
    // switching power in the combinational logic".
    EXPECT_GT(plain.comb_switching_uw, 0.0);
    EXPECT_EQ(enh.comb_toggles, 0u);
    EXPECT_EQ(flh.comb_toggles, 0u);
    // The ~78% context (Gerstendorfer & Wunderlich): the comb block burns a
    // large share of shift power when unprotected.
    const double share = plain.comb_switching_uw /
                         (plain.comb_switching_uw + plain.ffq_switching_uw);
    EXPECT_GT(share, 0.5) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Circuits, ScanShiftPower, ::testing::Values("s298", "s344", "s641"));

TEST(ScanShiftPowerTest, FlhKeepsFfWireActivityButEnhancedFreezesIt) {
    const Netlist nl = makeCircuit("s298", lib());
    const auto enh = measureScanShiftPower(nl, HoldStyle::EnhancedScan, 4);
    const auto flh = measureScanShiftPower(nl, HoldStyle::Flh, 4);
    EXPECT_EQ(enh.ffq_switching_uw, 0.0);
    EXPECT_GT(flh.ffq_switching_uw, 0.0);
}

} // namespace
} // namespace flh
