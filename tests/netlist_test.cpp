#include "cell/logic.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/netlist.hpp"
#include "dft/scan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace flh {
namespace {

const Library& lib() {
    static const Library l = makeDefaultLibrary();
    return l;
}

// A tiny hand-built circuit: 2 PIs, 1 FF, 3 gates.
Netlist tiny() {
    Netlist nl("tiny", lib());
    const NetId a = nl.addPi("a");
    const NetId b = nl.addPi("b");
    const NetId q = nl.addNet("q");
    const NetId n1 = nl.addNet("n1");
    const NetId n2 = nl.addNet("n2");
    const NetId d = nl.addNet("d");
    nl.addGate(CellFn::Nand, {a, q}, n1);
    nl.addGate(CellFn::Inv, {n1}, n2);
    nl.addGate(CellFn::Nor, {n2, b}, d);
    nl.addDff(d, q);
    nl.markPo(n2);
    return nl;
}

TEST(Netlist, BasicConstruction) {
    const Netlist nl = tiny();
    EXPECT_EQ(nl.netCount(), 6u);
    EXPECT_EQ(nl.gateCount(), 4u);
    EXPECT_EQ(nl.flipFlops().size(), 1u);
    EXPECT_EQ(nl.combGates().size(), 3u);
    EXPECT_NO_THROW(nl.check());
}

TEST(Netlist, DuplicateNetNameRejected) {
    Netlist nl("x", lib());
    nl.addNet("n");
    EXPECT_THROW(nl.addNet("n"), std::invalid_argument);
}

TEST(Netlist, DoubleDriveRejected) {
    Netlist nl("x", lib());
    const NetId a = nl.addPi("a");
    const NetId o = nl.addNet("o");
    nl.addGate(CellFn::Inv, {a}, o);
    EXPECT_THROW(nl.addGate(CellFn::Inv, {a}, o), std::invalid_argument);
    EXPECT_THROW(nl.addGate(CellFn::Inv, {o}, a), std::invalid_argument); // PI as output
}

TEST(Netlist, FanoutTracksRewire) {
    Netlist nl = tiny();
    const NetId a = *nl.findNet("a");
    const NetId b = *nl.findNet("b");
    EXPECT_EQ(nl.fanout(a).size(), 1u);
    EXPECT_EQ(nl.fanout(b).size(), 1u);
    // Rewire the NOR's b-input to a.
    const GateId nor = nl.net(*nl.findNet("d")).driver;
    nl.rewireInput(nor, 1, a);
    EXPECT_EQ(nl.fanout(a).size(), 2u);
    EXPECT_TRUE(nl.fanout(b).empty());
}

TEST(Netlist, TopoOrderRespectsDependencies) {
    const Netlist nl = tiny();
    const auto& order = nl.topoOrder();
    ASSERT_EQ(order.size(), 3u);
    // NAND (level 1) must precede INV (level 2) must precede NOR (level 3).
    const auto& lv = nl.levels();
    EXPECT_EQ(lv[order[0]], 1);
    EXPECT_EQ(lv[order[1]], 2);
    EXPECT_EQ(lv[order[2]], 3);
    EXPECT_EQ(nl.logicDepth(), 3);
}

TEST(Netlist, CombinationalLoopDetected) {
    Netlist nl("loop", lib());
    const NetId a = nl.addPi("a");
    const NetId x = nl.addNet("x");
    const NetId y = nl.addNet("y");
    nl.addGate(CellFn::Nand, {a, y}, x);
    nl.addGate(CellFn::Inv, {x}, y);
    EXPECT_THROW((void)nl.topoOrder(), std::runtime_error);
}

TEST(Netlist, FlipFlopBreaksLoop) {
    // The tiny circuit loops through the FF; that must be fine.
    const Netlist nl = tiny();
    EXPECT_NO_THROW((void)nl.topoOrder());
}

TEST(Netlist, UniqueFirstLevelGates) {
    Netlist nl("fl", lib());
    const NetId a = nl.addPi("a");
    const NetId q0 = nl.addNet("q0");
    const NetId q1 = nl.addNet("q1");
    const NetId d = nl.addNet("d");
    const NetId n1 = nl.addNet("n1");
    const NetId n2 = nl.addNet("n2");
    // Both FFs feed the same NAND -> 1 unique first-level gate, fanout 2.
    const GateId g = nl.addGate(CellFn::Nand, {q0, q1}, n1);
    nl.addGate(CellFn::Inv, {n1}, n2);
    nl.addGate(CellFn::Inv, {n2}, d);
    nl.addDff(d, q0);
    nl.addDff(a, q1);
    nl.markPo(n2);
    const auto fl = nl.uniqueFirstLevelGates();
    ASSERT_EQ(fl.size(), 1u);
    EXPECT_EQ(fl[0], g);
    EXPECT_EQ(nl.totalFfFanout(), 2u);
}

TEST(Netlist, AreaAndCaps) {
    const Netlist nl = tiny();
    EXPECT_GT(nl.totalAreaUm2(), 0.0);
    const NetId n1 = *nl.findNet("n1");
    EXPECT_GT(nl.netCapFf(n1), 0.0);
}

TEST(Netlist, StatsComputed) {
    const NetlistStats s = computeStats(tiny());
    EXPECT_EQ(s.n_pis, 2u);
    EXPECT_EQ(s.n_pos, 1u);
    EXPECT_EQ(s.n_ffs, 1u);
    EXPECT_EQ(s.n_comb_gates, 3u);
    EXPECT_EQ(s.logic_depth, 3);
    EXPECT_GT(s.area_um2, 0.0);
}

// ------------------------------------------------------------- bench IO ----

TEST(BenchIo, ParseSimple) {
    const std::string text = R"(
# comment
INPUT(a)
INPUT(b)
OUTPUT(y)
q = DFF(d)
n1 = NAND(a, q)
y = NOT(n1)
d = NOR(y, b)
)";
    const Netlist nl = readBenchString(text, "t", lib());
    EXPECT_EQ(nl.pis().size(), 2u);
    EXPECT_EQ(nl.pos().size(), 1u);
    EXPECT_EQ(nl.flipFlops().size(), 1u);
    EXPECT_EQ(nl.combGates().size(), 3u);
}

TEST(BenchIo, ForwardReferencesResolve) {
    const std::string text = "INPUT(a)\nOUTPUT(y)\ny = NOT(x)\nx = NOT(a)\n";
    const Netlist nl = readBenchString(text, "t", lib());
    EXPECT_EQ(nl.combGates().size(), 2u);
}

TEST(BenchIo, ComplexGateExtensions) {
    const std::string text =
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\n"
        "y = AOI22(a, b, c, d)\nz = MUX2(a, b, c)\nOUTPUT(z)\n";
    const Netlist nl = readBenchString(text, "t", lib());
    EXPECT_EQ(nl.combGates().size(), 2u);
    EXPECT_EQ(nl.gate(0).fn, CellFn::Aoi22);
    EXPECT_EQ(nl.gate(1).fn, CellFn::Mux2);
}

TEST(BenchIo, MalformedLinesThrow) {
    EXPECT_THROW((void)readBenchString("INPUT a\n", "t", lib()), std::runtime_error);
    EXPECT_THROW((void)readBenchString("y = FROB(a)\n", "t", lib()), std::runtime_error);
    EXPECT_THROW((void)readBenchString("y = NOT()\n", "t", lib()), std::runtime_error);
    EXPECT_THROW((void)readBenchString("y NOT(a)\n", "t", lib()), std::runtime_error);
}

TEST(BenchIo, UnknownOutputThrows) {
    EXPECT_THROW((void)readBenchString("INPUT(a)\nOUTPUT(nope)\n", "t", lib()),
                 std::runtime_error);
}

TEST(BenchIo, RoundTrip) {
    const Netlist nl = tiny();
    const std::string text = writeBenchString(nl);
    const Netlist back = readBenchString(text, "tiny", lib());
    EXPECT_EQ(back.netCount(), nl.netCount());
    EXPECT_EQ(back.gateCount(), nl.gateCount());
    EXPECT_EQ(back.pis().size(), nl.pis().size());
    EXPECT_EQ(back.pos().size(), nl.pos().size());
    EXPECT_EQ(back.flipFlops().size(), nl.flipFlops().size());
    EXPECT_EQ(back.logicDepth(), nl.logicDepth());
    // Second round-trip must be textually identical (canonical form).
    EXPECT_EQ(writeBenchString(back), writeBenchString(nl));
}

TEST(BenchIo, CaseInsensitiveOperatorsAndComments) {
    const std::string text =
        "# header\nINPUT(a)\nOUTPUT(y)\ny = nand(a, x) # trailing comment\nx = not(a)\n";
    const Netlist nl = readBenchString(text, "t", lib());
    EXPECT_EQ(nl.combGates().size(), 2u);
    EXPECT_EQ(nl.gate(0).fn, CellFn::Nand);
}

TEST(BenchIo, SdffRoundTrips) {
    const std::string text =
        "INPUT(d)\nINPUT(si)\nINPUT(se)\nOUTPUT(q)\nq = SDFF(d, si, se)\n";
    const Netlist nl = readBenchString(text, "t", lib());
    EXPECT_EQ(nl.flipFlops().size(), 1u);
    EXPECT_EQ(nl.gate(0).fn, CellFn::Sdff);
    const Netlist back = readBenchString(writeBenchString(nl), "t", lib());
    EXPECT_EQ(back.flipFlops().size(), 1u);
}

TEST(BenchIo, SdffWrongArityRejected) {
    EXPECT_THROW(
        (void)readBenchString("INPUT(d)\nOUTPUT(q)\nq = SDFF(d)\n", "t", lib()),
        std::runtime_error);
}

TEST(BenchIo, NetNamesStartingWithKeywordsAreNotDeclarations) {
    // Regression: prefix matching used to swallow these gate lines as
    // INPUT/OUTPUT declarations.
    const std::string text = R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
INPUT1 = AND(a, b)
OUTPUTX = NOT(INPUT1)
y = NOR(OUTPUTX, b)
)";
    const Netlist nl = readBenchString(text, "t", lib());
    EXPECT_EQ(nl.pis().size(), 2u);
    EXPECT_EQ(nl.pos().size(), 1u);
    EXPECT_EQ(nl.combGates().size(), 3u);
    ASSERT_TRUE(nl.findNet("INPUT1").has_value());
    EXPECT_EQ(nl.gate(nl.net(*nl.findNet("INPUT1")).driver).fn, CellFn::And);
    ASSERT_TRUE(nl.findNet("OUTPUTX").has_value());
    // Whitespace between the keyword and '(' is still a declaration; a
    // non-'(' continuation is not.
    const Netlist ws = readBenchString("INPUT (a)\nOUTPUT (y)\ny = NOT(a)\n", "t", lib());
    EXPECT_EQ(ws.pis().size(), 1u);
    EXPECT_THROW((void)readBenchString("INPUTS(a)\n", "t", lib()), std::runtime_error);
}

TEST(BenchIo, IdentifierEdgeCasesRoundTrip) {
    // Names with operator/keyword prefixes, exact operator names, and
    // bus-like "[0]" suffixes are all legal .bench identifiers and must
    // survive write -> read unchanged.
    const std::string text = R"(
INPUT(in[0])
INPUT(in[1])
INPUT(NAND)
OUTPUT(out[0])
OUTPUT(NOT)
NOTa = NOT(in[0])
AND = AND(NOTa, NAND)
out[0] = NAND(AND, in[1])
NOT = BUFF(out[0])
DFF1 = DFF(NOTa)
OUTPUT2 = XOR(DFF1, AND)
)";
    const Netlist nl = readBenchString(text, "edge", lib());
    EXPECT_EQ(nl.pis().size(), 3u);
    EXPECT_EQ(nl.pos().size(), 2u);
    EXPECT_EQ(nl.flipFlops().size(), 1u);
    for (const char* name : {"in[0]", "in[1]", "NAND", "out[0]", "NOT", "NOTa", "AND",
                             "DFF1", "OUTPUT2"})
        EXPECT_TRUE(nl.findNet(name).has_value()) << name;

    const std::string round = writeBenchString(nl);
    const Netlist back = readBenchString(round, "edge", lib());
    EXPECT_EQ(back.netCount(), nl.netCount());
    EXPECT_EQ(back.gateCount(), nl.gateCount());
    EXPECT_EQ(back.flipFlops().size(), nl.flipFlops().size());
    for (NetId n = 0; n < nl.netCount(); ++n)
        EXPECT_TRUE(back.findNet(nl.net(n).name).has_value()) << nl.net(n).name;
    EXPECT_EQ(writeBenchString(back), round); // canonical after one pass
}

TEST(BenchIo, ScannedNetlistRoundTripsThroughBench) {
    // Full DFF -> SDFF scan insertion must survive writeBench -> readBench:
    // same scan structure, flip-flops registered, canonical re-emit.
    Netlist nl = tiny();
    const ScanInfo info = insertScan(nl);
    ASSERT_TRUE(isFullScan(nl));

    const std::string text = writeBenchString(nl);
    const Netlist back = readBenchString(text, "tiny", lib());
    EXPECT_EQ(back.netCount(), nl.netCount());
    EXPECT_EQ(back.gateCount(), nl.gateCount());
    ASSERT_EQ(back.flipFlops().size(), nl.flipFlops().size());
    EXPECT_TRUE(isFullScan(back));
    for (std::size_t i = 0; i < nl.flipFlops().size(); ++i) {
        const Gate& a = nl.gate(nl.flipFlops()[i]);
        const Gate& b = back.gate(back.flipFlops()[i]);
        EXPECT_EQ(b.fn, CellFn::Sdff);
        ASSERT_EQ(b.inputs.size(), 3u);
        for (std::size_t p = 0; p < 3; ++p)
            EXPECT_EQ(back.net(b.inputs[p]).name, nl.net(a.inputs[p]).name);
        EXPECT_EQ(back.net(b.output).name, nl.net(a.output).name);
    }
    // Scan ports survive: TC and SCAN_IN as PIs, SCAN_OUT as PO.
    EXPECT_TRUE(back.findNet("TC").has_value());
    EXPECT_TRUE(back.findNet("SCAN_IN").has_value());
    const auto so = back.findNet(nl.net(info.scan_out).name);
    ASSERT_TRUE(so.has_value());
    EXPECT_NE(std::find(back.pos().begin(), back.pos().end(), *so), back.pos().end());
    EXPECT_EQ(writeBenchString(back), text);
}

TEST(BenchIo, MixedDffSdffRoundTrip) {
    Netlist nl("mix", lib());
    const NetId a = nl.addPi("a");
    const NetId se = nl.addPi("se");
    const NetId q1 = nl.addNet("q1");
    const NetId q2 = nl.addNet("q2");
    const NetId d = nl.addNet("d");
    nl.addGate(CellFn::Inv, {a}, d);
    nl.addDff(d, q1);
    nl.addGate(CellFn::Sdff, {d, q1, se}, q2);
    nl.markPo(q2);

    const Netlist back = readBenchString(writeBenchString(nl), "mix", lib());
    ASSERT_EQ(back.flipFlops().size(), 2u);
    EXPECT_EQ(back.gate(back.flipFlops()[0]).fn, CellFn::Dff);
    EXPECT_EQ(back.gate(back.flipFlops()[1]).fn, CellFn::Sdff);
    EXPECT_EQ(writeBenchString(back), writeBenchString(nl));
}

TEST(Netlist, ReplaceGateValidation) {
    Netlist nl = tiny();
    const GateId ff = nl.flipFlops()[0];
    const GateId comb = nl.combGates()[0];
    // Sequential status must not change.
    EXPECT_THROW(nl.replaceGate(ff, CellFn::Inv, {nl.pis()[0]}), std::invalid_argument);
    EXPECT_THROW(nl.replaceGate(comb, CellFn::Dff, {nl.pis()[0]}), std::invalid_argument);
    // Arity must resolve to a library cell.
    EXPECT_THROW(nl.replaceGate(comb, CellFn::Nand, {nl.pis()[0]}), std::out_of_range);
    // A valid replacement keeps the output net and updates function.
    const NetId out = nl.gate(comb).output;
    nl.replaceGate(comb, CellFn::Nor, {nl.pis()[0], nl.pis()[1]});
    EXPECT_EQ(nl.gate(comb).fn, CellFn::Nor);
    EXPECT_EQ(nl.gate(comb).output, out);
    EXPECT_NO_THROW(nl.check());
}

TEST(Netlist, NetCapGrowsWithFanout) {
    Netlist nl("f", lib());
    const NetId a = nl.addPi("a");
    const NetId y1 = nl.addNet("y1");
    nl.addGate(CellFn::Inv, {a}, y1);
    nl.markPo(y1);
    const double one = nl.netCapFf(a);
    const NetId y2 = nl.addNet("y2");
    nl.addGate(CellFn::Inv, {a}, y2);
    nl.markPo(y2);
    EXPECT_GT(nl.netCapFf(a), one);
}

TEST(Netlist, CopyIsIndependent) {
    Netlist a = tiny();
    Netlist b = a;
    const NetId extra = b.addNet("extra");
    b.addGate(CellFn::Inv, {b.pis()[0]}, extra);
    EXPECT_EQ(a.gateCount() + 1, b.gateCount());
    EXPECT_NO_THROW(a.check());
    EXPECT_NO_THROW(b.check());
}

TEST(Netlist, WideCombGateRejectedAtConstruction) {
    // Regression: a library can legally carry a cell wider than the
    // simulators' fixed input buffers (kMaxGateArity); the netlist layer must
    // reject such gates at addGate time, not crash in PatternSim::propagate.
    Library wide = makeDefaultLibrary();
    Cell and9;
    and9.name = "AND9";
    and9.fn = CellFn::And;
    and9.n_inputs = 9;
    wide.add(and9);

    Netlist nl("w", wide);
    std::vector<NetId> ins;
    for (int i = 0; i < 9; ++i) ins.push_back(nl.addPi("a" + std::to_string(i)));
    const NetId y = nl.addNet("y");
    EXPECT_THROW(nl.addGate(CellFn::And, ins, y), std::invalid_argument);
}

// Scalar oracle for the decomposition tests: straight topological evaluation.
Logic evalNets(const Netlist& nl, const std::vector<Logic>& pi_vals, NetId out) {
    std::vector<PV> val(nl.netCount(), PV::all(Logic::X));
    std::size_t k = 0;
    for (const NetId pi : nl.pis()) val[pi] = PV::all(pi_vals[k++]);
    for (const GateId g : nl.topoOrder()) {
        const Gate& gate = nl.gate(g);
        std::vector<PV> ins;
        for (const NetId in : gate.inputs) ins.push_back(val[in]);
        val[gate.output] = evalCell(gate.fn, ins);
    }
    return val[out].get(0);
}

TEST(BenchIo, WideGatesDecomposeToLibraryArities) {
    // Regression for the PatternSim ins[kMaxGateArity] overflow: a 9-input
    // .bench gate must be tree-decomposed into library-available arities
    // rather than constructing an out-of-range gate.
    std::string text;
    for (char c = 'a'; c <= 'i'; ++c) text += std::string("INPUT(") + c + ")\n";
    text += "OUTPUT(y)\nOUTPUT(z)\nOUTPUT(x)\n"
            "y = AND(a, b, c, d, e, f, g, h, i)\n"
            "z = NAND(a, b, c, d, e, f, g, h, i)\n"
            "x = XOR(a, b, c, d, e, f, g, h, i)\n";
    const Netlist nl = readBenchString(text, "wide", lib());
    EXPECT_NO_THROW(nl.check());
    for (const GateId g : nl.combGates()) {
        const Gate& gate = nl.gate(g);
        ASSERT_LE(gate.inputs.size(), kMaxGateArity);
        ASSERT_TRUE(lib().has(gate.fn, static_cast<int>(gate.inputs.size())))
            << toString(gate.fn) << "/" << gate.inputs.size();
    }

    const NetId y = *nl.findNet("y");
    const NetId z = *nl.findNet("z");
    const NetId x = *nl.findNet("x");
    // Exhaustive check is 2^9; sample the corners plus a random sweep.
    for (std::uint32_t bits : {0u, 0x1FFu, 0x0AAu, 0x155u, 0x001u, 0x100u, 0x0F3u, 0x1C7u}) {
        std::vector<Logic> pis(9);
        int ones = 0;
        for (int i = 0; i < 9; ++i) {
            pis[i] = (bits >> i) & 1 ? Logic::One : Logic::Zero;
            ones += (bits >> i) & 1;
        }
        const Logic and9 = ones == 9 ? Logic::One : Logic::Zero;
        const Logic xor9 = ones % 2 ? Logic::One : Logic::Zero;
        EXPECT_EQ(evalNets(nl, pis, y), and9) << "bits " << bits;
        EXPECT_EQ(evalNets(nl, pis, z), negate(and9)) << "bits " << bits;
        EXPECT_EQ(evalNets(nl, pis, x), xor9) << "bits " << bits;
    }
}

TEST(BenchIo, WideGateDecompositionRoundTrips) {
    std::string text;
    for (char c = 'a'; c <= 'f'; ++c) text += std::string("INPUT(") + c + ")\n";
    text += "OUTPUT(y)\ny = NOR(a, b, c, d, e, f)\n";
    const Netlist nl = readBenchString(text, "w", lib());
    EXPECT_NO_THROW(nl.check());
    const Netlist back = readBenchString(writeBenchString(nl), "w", lib());
    EXPECT_EQ(back.gateCount(), nl.gateCount());
    EXPECT_NO_THROW(back.check());
}

} // namespace
} // namespace flh
