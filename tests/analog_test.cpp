#include "analog/flh_chain.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace flh {
namespace {

const Tech& tech() { return defaultTech(); }

TEST(MosModel, RegionsBehave) {
    const MosModel n = nmosModel(tech());
    // Off: tiny subthreshold current, increasing with vgs.
    const double off0 = n.currentUa(0.0, 1.0, 1.0);
    const double off1 = n.currentUa(0.1, 1.0, 1.0);
    EXPECT_GT(off0, 0.0);
    EXPECT_LT(off0, 0.1); // well under a microamp
    EXPECT_GT(off1, off0);
    // On, saturation vs linear.
    const double sat = n.currentUa(1.0, 1.0, 1.0);
    const double lin = n.currentUa(1.0, 0.05, 1.0);
    EXPECT_GT(sat, 10.0);
    EXPECT_GT(sat, lin);
    // Width scaling.
    EXPECT_NEAR(n.currentUa(1.0, 1.0, 2.0), 2.0 * sat, 1e-9);
}

TEST(MosModel, OffCurrentMatchesTechCalibration) {
    const MosModel n = nmosModel(tech());
    // At vgs = 0 and large vds the subthreshold current must equal the
    // Tech's i_off (the same number the digital leakage model uses).
    const double i_off_ua = tech().offCurrentNa(1.0) * 1e-3;
    EXPECT_NEAR(n.currentUa(0.0, 1.0, 1.0), i_off_ua, i_off_ua * 0.05);
}

TEST(Analog, InverterSwitches) {
    // Single inverter: output tracks inverted input.
    AnalogCircuit c(tech());
    const NodeId vdd = c.addRail("VDD", tech().vdd);
    const NodeId gnd = c.addRail("GND", 0.0);
    const NodeId in = c.addSource("IN", [](double t) { return t < 500.0 ? 0.0 : 1.0; });
    const NodeId out = c.addNode("OUT", 3.0);
    c.addMos(true, in, vdd, out, 2.0);
    c.addMos(false, in, gnd, out, 1.0);
    c.setInitialVoltage(out, tech().vdd);

    const auto tr = c.run(1500.0, 0.5, {{"OUT", false, out}}, 20);
    const auto& v = tr.trace("OUT");
    EXPECT_GT(v.front(), 0.9);
    EXPECT_LT(v.back(), 0.1);
}

TEST(Analog, UngatedChainPropagates) {
    ChainConfig cfg;
    cfg.sleep_w = 0.0; // no gating
    GatedChain chain = buildGatedInverterChain(
        tech(), cfg, [](double t) { return t < 1000.0 ? 0.0 : 1.0; }, [](double) { return 0.0; });
    const auto tr = chain.ckt.run(4000.0, 0.5,
                                  {{"OUT1", false, chain.outs[0]},
                                   {"OUT2", false, chain.outs[1]},
                                   {"OUT3", false, chain.outs[2]}},
                                  20);
    // After the input rises, OUT1 falls, OUT2 rises, OUT3 falls.
    EXPECT_LT(tr.trace("OUT1").back(), 0.1);
    EXPECT_GT(tr.trace("OUT2").back(), 0.9);
    EXPECT_LT(tr.trace("OUT3").back(), 0.1);
}

TEST(Analog, Fig2FloatingNodeDecaysBelow600mV) {
    // The paper's Fig. 2 observation: with gating on (no keeper) and the
    // input switching high in sleep mode, OUT1's held charge leaks away,
    // falling below 600 mV in under ~100 ns.
    ChainConfig cfg; // keeper off
    GatedChain chain = buildGatedInverterChain(
        tech(), cfg, [](double t) { return t < 2000.0 ? 0.0 : 1.0; },
        [](double t) { return t < 1000.0 ? 0.0 : 1.0; });
    const auto tr =
        chain.ckt.run(200000.0, 1.0, {{"OUT1", false, chain.outs[0]}}, 100);
    const auto& v = tr.trace("OUT1");
    // Initially held high...
    EXPECT_GT(v.front(), 0.9);
    // ...but below 600 mV well before the end of the 200 ns window.
    double t_cross = -1.0;
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (v[i] < 0.6) {
            t_cross = tr.time_ps[i];
            break;
        }
    }
    ASSERT_GT(t_cross, 0.0) << "node never decayed";
    EXPECT_LT(t_cross, 150000.0); // < 150 ns (paper: < 100 ns at 70 nm BPTM)
}

TEST(Analog, Fig2DownstreamShortCircuitCurrent) {
    // As OUT1 drifts toward mid-rail, stage 2 conducts crowbar current.
    ChainConfig cfg;
    GatedChain chain = buildGatedInverterChain(
        tech(), cfg, [](double t) { return t < 2000.0 ? 0.0 : 1.0; },
        [](double t) { return t < 1000.0 ? 0.0 : 1.0; });
    const auto tr = chain.ckt.run(
        200000.0, 1.0,
        {{"OUT1", false, chain.outs[0]}, {"Idd2", true, static_cast<std::uint32_t>(chain.pmos_devs[1])}},
        100);
    const auto& idd2 = tr.trace("Idd2");
    const auto& out1 = tr.trace("OUT1");
    // Short-circuit current when OUT1 sits mid-rail must far exceed the
    // initial (fully-held) leakage level.
    double early = idd2[2];
    double worst = 0.0;
    for (std::size_t i = 0; i < idd2.size(); ++i)
        if (out1[i] < 0.7 && out1[i] > 0.3) worst = std::max(worst, idd2[i]);
    EXPECT_GT(worst, 10.0 * (early + 1e-6));
}

TEST(Analog, Fig4KeeperHoldsState) {
    // With the keeper enabled in sleep mode, OUT1..OUT3 hold despite the
    // input switching (paper Fig. 4).
    ChainConfig cfg;
    cfg.with_keeper = true;
    GatedChain chain = buildGatedInverterChain(
        tech(), cfg, [](double t) { return t < 2000.0 ? 0.0 : 1.0; },
        [](double t) { return t < 1000.0 ? 0.0 : 1.0; });
    const auto tr = chain.ckt.run(200000.0, 1.0,
                                  {{"OUT1", false, chain.outs[0]},
                                   {"OUT2", false, chain.outs[1]},
                                   {"OUT3", false, chain.outs[2]}},
                                  100);
    EXPECT_GT(tr.trace("OUT1").back(), 0.9);
    EXPECT_LT(tr.trace("OUT2").back(), 0.1);
    EXPECT_GT(tr.trace("OUT3").back(), 0.9);
}

TEST(Analog, KeeperReleasesInNormalMode) {
    // When sleep de-asserts, the stage drives its output again and the
    // keeper (loop broken) must not fight the new value.
    ChainConfig cfg;
    cfg.with_keeper = true;
    GatedChain chain = buildGatedInverterChain(
        tech(), cfg, [](double t) { return t < 2000.0 ? 0.0 : 1.0; },
        [](double t) { return (t > 1000.0 && t < 50000.0) ? 1.0 : 0.0; });
    const auto tr = chain.ckt.run(80000.0, 1.0, {{"OUT1", false, chain.outs[0]}}, 100);
    // After release (t > 50 ns) with IN = 1, OUT1 must go low.
    EXPECT_LT(tr.trace("OUT1").back(), 0.1);
}

TEST(Analog, GatedDelayPenaltyIsModest) {
    // Cross-check the Tech::virtual_rail_factor calibration: the gated
    // stage's propagation delay should exceed the ungated one's by a
    // bounded factor, not by the raw series-resistance worst case.
    const auto measureDelay = [&](double sleep_w) {
        ChainConfig cfg;
        cfg.sleep_w = sleep_w;
        GatedChain chain = buildGatedInverterChain(
            tech(), cfg, [](double t) { return t < 500.0 ? 0.0 : 1.0; },
            [](double) { return 0.0; }); // normal mode: gating transistors ON
        const auto tr = chain.ckt.run(3000.0, 0.25, {{"OUT1", false, chain.outs[0]}}, 4);
        const auto& v = tr.trace("OUT1");
        for (std::size_t i = 0; i < v.size(); ++i)
            if (tr.time_ps[i] > 500.0 && v[i] < 0.5) return tr.time_ps[i] - 500.0;
        return -1.0;
    };
    const double d_gated = measureDelay(2.0);
    const double d_plain = measureDelay(0.0);
    ASSERT_GT(d_plain, 0.0);
    ASSERT_GT(d_gated, 0.0);
    EXPECT_GT(d_gated, d_plain);
    EXPECT_LT(d_gated, 1.8 * d_plain);
}

} // namespace
} // namespace flh
